package faircache_test

import (
	"context"
	"errors"
	"testing"
	"time"

	faircache "repro"
)

func partitionedRequest(regions int) faircache.Request {
	return faircache.Request{
		Producer: 0,
		Chunks:   8,
		Options: &faircache.Options{
			Capacity:  3,
			Partition: &faircache.PartitionOptions{Regions: regions},
		},
	}
}

// TestSolvePartitionedDeterministicAcrossWorkers pins the sharded path to
// the repository's determinism contract: the stitched placement is
// byte-identical no matter how many workers fan out over the regions.
func TestSolvePartitionedDeterministicAcrossWorkers(t *testing.T) {
	for name, topo := range testTopologies(t) {
		solver, err := faircache.NewSolver(topo)
		if err != nil {
			t.Fatal(err)
		}
		req := partitionedRequest(4)
		seqOpts := *req.Options
		seqOpts.Workers = 1
		seqReq := req
		seqReq.Options = &seqOpts
		want, err := solver.Solve(context.Background(), seqReq)
		if err != nil {
			t.Fatalf("%s: sequential partitioned solve: %v", name, err)
		}
		for _, workers := range []int{0, 2, 4} {
			parOpts := *req.Options
			parOpts.Workers = workers
			parReq := req
			parReq.Options = &parOpts
			got, err := solver.Solve(context.Background(), parReq)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			sameResult(t, name, want, got)
			if *got.Partition != *want.Partition {
				t.Fatalf("%s workers=%d: partition report %+v != %+v", name, workers, *got.Partition, *want.Partition)
			}
		}
	}
}

// TestSolvePartitionedWarmPlanIsIdentical checks that a repeated sharded
// solve — now running against the memoised plan and warm per-region
// models — reproduces the cold solve exactly.
func TestSolvePartitionedWarmPlanIsIdentical(t *testing.T) {
	for name, topo := range testTopologies(t) {
		solver, err := faircache.NewSolver(topo)
		if err != nil {
			t.Fatal(err)
		}
		req := partitionedRequest(4)
		cold, err := solver.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%s cold: %v", name, err)
		}
		warm, err := solver.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		sameResult(t, name, cold, warm)
		stats := solver.Stats()
		if stats.PartitionedSolves != 2 {
			t.Fatalf("%s: PartitionedSolves = %d, want 2", name, stats.PartitionedSolves)
		}
		if stats.PartitionPlans != 1 {
			t.Fatalf("%s: PartitionPlans = %d, want 1 (plan must be memoised)", name, stats.PartitionPlans)
		}
		if stats.WarmSolves == 0 {
			t.Fatalf("%s: second partitioned solve did not take the warm path", name)
		}
	}
}

// TestSolvePartitionedCostWithinBound measures the stitched placement
// against the unsharded solve on the mid-size topologies of the eval
// comparison (cmd/experiments -fig part) and asserts the cost-error
// factor stays within the documented bound. Region counts scale with
// topology size: over-sharding (regions too small to hold the chunk set
// without heavy replication) is documented to inflate the factor and is
// not what the bound claims.
func TestSolvePartitionedCostWithinBound(t *testing.T) {
	const bound = 1.15
	grid, err := faircache.Grid(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	random, err := faircache.Random(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := faircache.Clustered(6, 12, 11)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		topo    *faircache.Topology
		regions int
	}{
		{"grid 12x12", grid, 4},
		{"random 120", random, 4},
		{"clustered 6x12", clustered, 3},
	}
	for _, tc := range cases {
		name := tc.name
		solver, err := faircache.NewSolver(tc.topo)
		if err != nil {
			t.Fatal(err)
		}
		req := faircache.Request{Producer: 9, Chunks: 5, Options: &faircache.Options{Capacity: 5}}
		global, err := solver.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		shardedReq := req
		shardedReq.Options = &faircache.Options{
			Capacity:  5,
			Partition: &faircache.PartitionOptions{Regions: tc.regions},
		}
		sharded, err := solver.Solve(context.Background(), shardedReq)
		if err != nil {
			t.Fatal(err)
		}
		globalCost, err := global.ContentionCost()
		if err != nil {
			t.Fatal(err)
		}
		shardedCost, err := sharded.ContentionCost()
		if err != nil {
			t.Fatal(err)
		}
		ratio := shardedCost.Total() / globalCost.Total()
		if ratio > bound {
			t.Fatalf("%s: sharded/global cost ratio %.3f exceeds %.2f", name, ratio, bound)
		}
		t.Logf("%s: cost ratio %.3f (bound %.2f)", name, ratio, bound)
	}
}

// TestSolvePartitionedReport sanity-checks the decomposition report: the
// region sizes must cover the topology, the per-region matrices must be
// strictly smaller than the global N², and the halo bookkeeping must be
// internally consistent.
func TestSolvePartitionedReport(t *testing.T) {
	topo, err := faircache.Grid(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), partitionedRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Partition
	if rep == nil {
		t.Fatal("partitioned solve returned no Partition report")
	}
	if rep.Regions < 2 || rep.Regions > 4 {
		t.Fatalf("Regions = %d, want in [2, 4]", rep.Regions)
	}
	if rep.MinRegionNodes < 2 || rep.MaxRegionNodes < rep.MinRegionNodes {
		t.Fatalf("region size bounds [%d, %d] are inconsistent", rep.MinRegionNodes, rep.MaxRegionNodes)
	}
	if rep.MaxRegionNodes*rep.Regions < topo.NumNodes() {
		t.Fatalf("regions cannot cover the topology: %d regions of <= %d nodes vs %d nodes",
			rep.Regions, rep.MaxRegionNodes, topo.NumNodes())
	}
	if rep.CutEdges == 0 || rep.BoundaryNodes == 0 {
		t.Fatalf("a 10x10 grid cut must expose a boundary, got %d cut edges / %d boundary nodes", rep.CutEdges, rep.BoundaryNodes)
	}
	if rep.Halo != faircache.DefaultPartitionHalo {
		t.Fatalf("Halo = %d, want default %d", rep.Halo, faircache.DefaultPartitionHalo)
	}
	if rep.HaloNodes < rep.BoundaryNodes {
		t.Fatalf("HaloNodes %d < BoundaryNodes %d", rep.HaloNodes, rep.BoundaryNodes)
	}
	if rep.DroppedCopies > rep.RebidCandidates {
		t.Fatalf("DroppedCopies %d > RebidCandidates %d", rep.DroppedCopies, rep.RebidCandidates)
	}
	if rep.FullMatrixCells != topo.NumNodes()*topo.NumNodes() {
		t.Fatalf("FullMatrixCells = %d, want %d", rep.FullMatrixCells, topo.NumNodes()*topo.NumNodes())
	}
	if rep.MatrixCells <= 0 || rep.MatrixCells >= rep.FullMatrixCells {
		t.Fatalf("MatrixCells = %d, want in (0, %d): sharding must shrink the matrix footprint",
			rep.MatrixCells, rep.FullMatrixCells)
	}
	// Every stitched chunk must keep at least one reachable copy.
	for n, holders := range res.Holders {
		if len(holders) == 0 {
			t.Fatalf("chunk %d lost all copies in the stitch", n)
		}
	}
}

// TestSolvePartitionedRejectsBadRequests covers the sharded path's typed
// argument errors: unsupported algorithms and impossible region counts.
func TestSolvePartitionedRejectsBadRequests(t *testing.T) {
	topo, err := faircache.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []faircache.Algorithm{faircache.AlgorithmDistributed, faircache.AlgorithmHopCount, faircache.AlgorithmContention, faircache.AlgorithmOptimal} {
		req := partitionedRequest(4)
		req.Algorithm = alg
		if _, err := solver.Solve(context.Background(), req); !errors.Is(err, faircache.ErrBadArgument) {
			t.Fatalf("algorithm %q with Partition: err = %v, want ErrBadArgument", alg, err)
		}
	}
	for _, regions := range []int{-3, 0, 1, 13, 1000} {
		req := partitionedRequest(regions)
		if _, err := solver.Solve(context.Background(), req); !errors.Is(err, faircache.ErrBadArgument) {
			t.Fatalf("regions=%d: err = %v, want ErrBadArgument", regions, err)
		}
	}
}

// TestSolvePartitionedHaloDisabled checks that a negative halo keeps every
// region's copies: reconciliation is off, so nothing may be dropped.
func TestSolvePartitionedHaloDisabled(t *testing.T) {
	topo, err := faircache.Grid(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	req := partitionedRequest(4)
	req.Options.Partition.Halo = -1
	res, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.Halo != 0 {
		t.Fatalf("effective halo = %d, want 0", res.Partition.Halo)
	}
	if res.Partition.RebidCandidates != 0 || res.Partition.DroppedCopies != 0 {
		t.Fatalf("halo disabled but stitch re-bid %d / dropped %d copies",
			res.Partition.RebidCandidates, res.Partition.DroppedCopies)
	}
}

// TestSolvePartitionedLargeTopology is the scale proof: a 2,500-node grid
// — far beyond what the global O(N²) path is run on in tests — solves
// through the sharded path. Placement quality is covered by the bounded
// mid-size tests; here only completion, coverage and the matrix saving
// are asserted (a global evaluation at this size would itself be O(N²)).
func TestSolvePartitionedLargeTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology solve skipped in -short mode")
	}
	topo, err := faircache.Grid(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	req := faircache.Request{
		Producer: 0,
		Chunks:   4,
		Options: &faircache.Options{
			Capacity:  2,
			Partition: &faircache.PartitionOptions{Regions: 25},
		},
	}
	res, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.Regions != 25 {
		t.Fatalf("Regions = %d, want 25", res.Partition.Regions)
	}
	for n, holders := range res.Holders {
		if len(holders) == 0 {
			t.Fatalf("chunk %d has no holders", n)
		}
	}
	full := topo.NumNodes() * topo.NumNodes()
	if res.Partition.MatrixCells*10 > full {
		t.Fatalf("MatrixCells = %d, want < 10%% of N² = %d", res.Partition.MatrixCells, full)
	}
}

// TestPartitionedLargeGridSmoke is the CI smoke target: a partitioned
// 40x40 grid must solve under -race within a strict wall-clock budget.
func TestPartitionedLargeGridSmoke(t *testing.T) {
	topo, err := faircache.Grid(40, 40)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	req := faircache.Request{
		Producer: 0,
		Chunks:   4,
		Options: &faircache.Options{
			Capacity:  2,
			Partition: &faircache.PartitionOptions{Regions: 16},
		},
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := solver.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition.Regions != 16 {
		t.Fatalf("Regions = %d, want 16", res.Partition.Regions)
	}
	t.Logf("partitioned 40x40 solve in %v", time.Since(start))
}
