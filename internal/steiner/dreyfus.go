package steiner

import (
	"fmt"

	"repro/internal/graph"
)

// MaxExactTerminals bounds the Dreyfus–Wagner terminal count: the dynamic
// program is O(3^k·N + 2^k·N²) and becomes impractical beyond this.
const MaxExactTerminals = 14

// ExactCost returns the optimal Steiner tree cost connecting terminals
// under edge weights w, using the Dreyfus–Wagner dynamic program. It is
// exponential in len(terminals) (capped at MaxExactTerminals) and is used
// by the exact baseline on small instances.
func ExactCost(g *graph.Graph, w graph.EdgeWeightFunc, terminals []int) (float64, error) {
	ts := uniqueSorted(terminals)
	if len(ts) <= 1 {
		return 0, nil
	}
	if len(ts) > MaxExactTerminals {
		return 0, fmt.Errorf("steiner: %d terminals exceeds exact limit %d", len(ts), MaxExactTerminals)
	}
	n := g.NumNodes()
	for _, t := range ts {
		if t < 0 || t >= n {
			return 0, fmt.Errorf("steiner: terminal %d out of range [0,%d)", t, n)
		}
	}

	// All-pairs shortest path distances under w (Dijkstra per node).
	dist := make([][]float64, n)
	for v := 0; v < n; v++ {
		dist[v], _ = g.Dijkstra(v, w)
	}
	for _, t := range ts[1:] {
		if dist[ts[0]][t] == graph.Infinite {
			return 0, fmt.Errorf("%w: %v", ErrDisconnected, ts)
		}
	}

	// dp[S][v]: cost of the optimal tree spanning terminal subset S ∪ {v}.
	// Terminals are indexed by position in ts; the last terminal is the
	// root and excluded from subsets (standard trick halves the table).
	k := len(ts) - 1
	root := ts[k]
	full := 1 << k
	dp := make([][]float64, full)
	for s := range dp {
		dp[s] = make([]float64, n)
		for v := range dp[s] {
			dp[s][v] = graph.Infinite
		}
	}
	for i := 0; i < k; i++ {
		for v := 0; v < n; v++ {
			dp[1<<i][v] = dist[ts[i]][v]
		}
	}

	for s := 1; s < full; s++ {
		if s&(s-1) == 0 {
			continue // singletons already initialised
		}
		// Merge step: combine two disjoint sub-subsets at v.
		for v := 0; v < n; v++ {
			best := dp[s][v]
			for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
				if other := s ^ sub; sub < other {
					// Each unordered pair once.
					if c := dp[sub][v] + dp[other][v]; c < best {
						best = c
					}
				}
			}
			dp[s][v] = best
		}
		// Relax step: move the junction along shortest paths. A full
		// Dijkstra over the dp layer is equivalent to relaxing with the
		// all-pairs closure; n is small here so the O(n²) closure is fine.
		for v := 0; v < n; v++ {
			best := dp[s][v]
			for u := 0; u < n; u++ {
				if dp[s][u] == graph.Infinite || dist[u][v] == graph.Infinite {
					continue
				}
				if c := dp[s][u] + dist[u][v]; c < best {
					best = c
				}
			}
			dp[s][v] = best
		}
	}
	return dp[full-1][root], nil
}
