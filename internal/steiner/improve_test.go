package steiner

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestImproveTrivial(t *testing.T) {
	g := graph.NewGrid(3, 3)
	if got := Improve(g, unitWeight, Tree{}, []int{0}); len(got.Edges) != 0 {
		t.Errorf("empty tree improved to %+v", got)
	}
}

func TestImproveFixesDetour(t *testing.T) {
	// Square plus a long detour: 0-1 (1), 1-3 (1), 0-2 (10), 2-3 (10).
	// A deliberately bad tree connects {0, 3} via the heavy path; the
	// local search must swap to the light one.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	w := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		if (u == 0 && v == 2) || (u == 2 && v == 3) {
			return 10
		}
		return 1
	}
	bad := Tree{Edges: []graph.Edge{{U: 0, V: 2}, {U: 2, V: 3}}, Cost: 20}
	improved := Improve(g, w, bad, []int{0, 3})
	if improved.Cost != 2 {
		t.Errorf("improved cost = %g, want 2", improved.Cost)
	}
	if !spansAsTree(improved, []int{0, 3}) {
		t.Errorf("improved result is not a valid tree: %+v", improved)
	}
}

// Property: Improve never increases cost, keeps feasibility, and stays at
// or above the exact optimum on random instances.
func TestImproveNeverWorsensAndStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(12)
		g := randomConnectedGraph(rng, n)
		weights := randomEdgeWeights(g, rng)
		w := func(u, v int) float64 { return weights[graph.Edge{U: u, V: v}.Canonical()] }
		k := 2 + rng.Intn(4)
		if k > n {
			k = n
		}
		terms := rng.Perm(n)[:k]

		base, err := MSTApprox(g, w, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		improved := Improve(g, w, base, terms)
		if improved.Cost > base.Cost+1e-9 {
			t.Errorf("trial %d: Improve raised cost %g -> %g", trial, base.Cost, improved.Cost)
		}
		if !spansAsTree(improved, terms) {
			t.Errorf("trial %d: improved tree infeasible", trial)
		}
		opt, err := ExactCost(g, w, terms)
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if improved.Cost < opt-1e-9 {
			t.Errorf("trial %d: improved cost %g below optimum %g", trial, improved.Cost, opt)
		}
	}
}

// TestImproveHelpsOnAverage verifies the local search actually finds
// improvements on a meaningful fraction of weighted instances (otherwise
// it would be dead code).
func TestImproveHelpsOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	improvedCount, trials := 0, 60
	for trial := 0; trial < trials; trial++ {
		n := 9 + rng.Intn(12)
		g := randomConnectedGraph(rng, n)
		weights := randomEdgeWeights(g, rng)
		w := func(u, v int) float64 { return weights[graph.Edge{U: u, V: v}.Canonical()] }
		terms := rng.Perm(n)[:4]
		base, err := MSTApprox(g, w, terms)
		if err != nil {
			t.Fatal(err)
		}
		if got := Improve(g, w, base, terms); got.Cost < base.Cost-1e-9 {
			improvedCount++
		}
	}
	if improvedCount == 0 {
		t.Error("local search never improved any instance")
	}
	t.Logf("local search improved %d/%d instances", improvedCount, trials)
}
