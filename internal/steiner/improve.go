package steiner

import (
	"slices"

	"repro/internal/graph"
)

// Improve applies key-path local search to a Steiner tree: every key path
// (maximal tree path whose interior vertices have tree-degree 2 and are
// not terminals) is tentatively removed, and the two resulting components
// are reconnected by the cheapest path between them in the full graph. The
// exchange is kept when it lowers the tree cost, and passes repeat until a
// local optimum. This is the classic polynomial improvement step toward
// the stronger Steiner ratios the paper cites ([25]); on the evaluation's
// contention-weighted grids it typically shaves a few percent off the MST
// 2-approximation.
func Improve(g *graph.Graph, w graph.EdgeWeightFunc, tree Tree, terminals []int) Tree {
	return ImproveScratch(g, w, tree, terminals, nil)
}

// ImproveScratch is Improve with the key-path search's per-node scan
// buffers (multi-source Dijkstra rows, side membership, degree counts and
// the union-find) carved out of scr — the same arena the MST construction
// uses, so the per-chunk loop threads one scratch through both phases. nil
// allocates a transient scratch; results are identical either way.
func ImproveScratch(g *graph.Graph, w graph.EdgeWeightFunc, tree Tree, terminals []int, scr *Scratch) Tree {
	if scr == nil {
		scr = &Scratch{}
	}
	ts := uniqueSorted(terminals)
	if len(tree.Edges) == 0 || len(ts) <= 1 {
		return tree
	}
	isTerminal := make(map[int]bool, len(ts))
	for _, t := range ts {
		isTerminal[t] = true
	}

	current := append([]graph.Edge(nil), tree.Edges...)
	for pass := 0; pass < len(ts)+2; pass++ {
		improved := false
		for _, kp := range keyPaths(current, isTerminal) {
			candidate, gain := tryExchange(g, w, current, kp, scr)
			if gain > 1e-9 {
				current = candidate
				improved = true
				break // tree changed; recompute key paths
			}
		}
		if !improved {
			break
		}
	}
	current = scr.pruneLeaves(current, ts, g.NumNodes())
	cost := 0.0
	for _, e := range current {
		cost += w(e.U, e.V)
	}
	return Tree{Edges: current, Cost: cost}
}

// keyPath is a maximal tree path whose interior nodes are non-terminal
// degree-2 vertices.
type keyPath struct {
	edges []graph.Edge
	cost  float64
}

// keyPaths decomposes the tree into its key paths. The maps here are
// proportional to the (small) tree, not the graph, and the decomposition
// runs once per accepted exchange — it is not worth arena treatment.
func keyPaths(edges []graph.Edge, isTerminal map[int]bool) []keyPath {
	adj := map[int][]graph.Edge{}
	deg := map[int]int{}
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
		deg[e.U]++
		deg[e.V]++
	}
	isKey := func(v int) bool { return isTerminal[v] || deg[v] != 2 }

	var paths []keyPath
	seen := map[graph.Edge]bool{}
	var keyNodes []int
	for v := range deg {
		if isKey(v) {
			keyNodes = append(keyNodes, v)
		}
	}
	slices.Sort(keyNodes)
	for _, start := range keyNodes {
		for _, e := range adj[start] {
			if seen[e] {
				continue
			}
			// Walk from start through degree-2 non-key interior nodes.
			var kp keyPath
			prev, cur := start, e.Other(start)
			kp.edges = append(kp.edges, e)
			seen[e] = true
			for !isKey(cur) {
				for _, next := range adj[cur] {
					if next.Other(cur) != prev {
						seen[next] = true
						kp.edges = append(kp.edges, next)
						prev, cur = cur, next.Other(cur)
						break
					}
				}
			}
			paths = append(paths, kp)
		}
	}
	return paths
}

// Side labels for the key-path exchange scan.
const (
	sideNone = int8(0)
	sideA    = int8(1)
	sideB    = int8(2)
)

// growImprove sizes the per-node scan buffers of tryExchange.
func (scr *Scratch) growImprove(n int) {
	if cap(scr.idist) < n {
		scr.idist = make([]float64, n)
		scr.ipred = make([]int32, n)
		scr.visited = make([]bool, n)
		scr.side = make([]int8, n)
	}
	scr.idist = scr.idist[:n]
	scr.ipred = scr.ipred[:n]
	scr.visited = scr.visited[:n]
	scr.side = scr.side[:n]
}

// tryExchange removes a key path and reconnects the two resulting sides
// (anchored at the path's endpoints) with the cheapest available path,
// returning the new edge set and the cost gain (positive = improvement).
// The returned slice is freshly allocated only when an improvement is
// found; otherwise the input edges come back untouched.
func tryExchange(g *graph.Graph, w graph.EdgeWeightFunc, edges []graph.Edge, kp keyPath, scr *Scratch) ([]graph.Edge, float64) {
	n := g.NumNodes()
	scr.growImprove(n)
	oldCost := 0.0
	for _, e := range kp.edges {
		oldCost += w(e.U, e.V)
	}
	kept := scr.edges[:0]
	for _, e := range edges {
		if !slices.Contains(kp.edges, e) {
			kept = append(kept, e)
		}
	}
	scr.edges = kept

	endA, endB := pathEndpoints(kp.edges)

	// Components of the remaining forest, with the endpoints present even
	// when they keep no edges.
	uf := scr.resetUF(n)
	for _, e := range kept {
		ufUnion(uf, int32(e.U), int32(e.V))
	}
	rootA := ufFind(uf, int32(endA))
	rootB := ufFind(uf, int32(endB))
	if rootA == rootB {
		return edges, 0 // path removal did not disconnect (shouldn't happen)
	}

	// Side membership: kept-tree nodes plus the anchoring endpoints. The
	// tree was connected, so every kept endpoint lands in one of the two
	// anchor components.
	side := scr.side
	for i := range side {
		side[i] = sideNone
	}
	mark := func(v int) {
		if ufFind(uf, int32(v)) == rootA {
			side[v] = sideA
		} else {
			side[v] = sideB
		}
	}
	mark(endA)
	mark(endB)
	for _, e := range kept {
		mark(e.U)
		mark(e.V)
	}

	// Multi-source Dijkstra from every side-A node over the full graph.
	// The linear-scan extraction (not a heap) is intentional: its
	// tie-breaking differs from the heap Dijkstra, and the exchange
	// decisions are replayed byte-for-byte in the determinism suites.
	dist, pred, visited := scr.idist, scr.ipred, scr.visited
	for v := 0; v < n; v++ {
		dist[v] = graph.Infinite
		pred[v] = -1
		visited[v] = false
		if side[v] == sideA {
			dist[v] = 0
		}
	}
	for {
		u, best := -1, graph.Infinite
		for v := 0; v < n; v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for _, v := range g.Neighbors(u) {
			if d := dist[u] + w(u, v); d < dist[v] {
				dist[v] = d
				pred[v] = int32(u)
			}
		}
	}

	// Cheapest reconnection into side B. Scan in node order so ties break
	// toward the smallest node id.
	bestNode, bestCost := -1, graph.Infinite
	for v := 0; v < n; v++ {
		if side[v] == sideB && dist[v] < bestCost {
			bestNode, bestCost = v, dist[v]
		}
	}
	if bestNode < 0 || bestCost >= oldCost-1e-9 {
		return edges, 0
	}

	// Splice in the reconnection path.
	result := append([]graph.Edge(nil), kept...)
	for v := bestNode; pred[v] != -1; v = int(pred[v]) {
		e := graph.Edge{U: int(pred[v]), V: v}.Canonical()
		if !slices.Contains(result, e) {
			result = append(result, e)
		}
	}
	return result, oldCost - bestCost
}

// pathEndpoints returns the two degree-1 endpoints of an edge path (for a
// single edge, its two endpoints), smallest first. A key path has exactly
// two such nodes, so the quadratic degree count stays proportional to the
// (short) path, allocation-free.
func pathEndpoints(edges []graph.Edge) (int, int) {
	endA, endB := -1, -1
	for _, e := range edges {
		for _, v := range [2]int{e.U, e.V} {
			d := 0
			for _, f := range edges {
				if f.U == v || f.V == v {
					d++
				}
			}
			if d != 1 {
				continue
			}
			if endA == -1 {
				endA = v
			} else if v != endA && endB == -1 {
				endB = v
			}
		}
	}
	if endA >= 0 && endB >= 0 {
		if endA > endB {
			endA, endB = endB, endA
		}
		return endA, endB
	}
	// Degenerate (cycle) — fall back to the first edge's endpoints.
	return edges[0].U, edges[0].V
}
