package steiner

import (
	"sort"

	"repro/internal/graph"
)

// Improve applies key-path local search to a Steiner tree: every key path
// (maximal tree path whose interior vertices have tree-degree 2 and are
// not terminals) is tentatively removed, and the two resulting components
// are reconnected by the cheapest path between them in the full graph. The
// exchange is kept when it lowers the tree cost, and passes repeat until a
// local optimum. This is the classic polynomial improvement step toward
// the stronger Steiner ratios the paper cites ([25]); on the evaluation's
// contention-weighted grids it typically shaves a few percent off the MST
// 2-approximation.
func Improve(g *graph.Graph, w graph.EdgeWeightFunc, tree Tree, terminals []int) Tree {
	ts := uniqueSorted(terminals)
	if len(tree.Edges) == 0 || len(ts) <= 1 {
		return tree
	}
	isTerminal := make(map[int]bool, len(ts))
	for _, t := range ts {
		isTerminal[t] = true
	}

	current := append([]graph.Edge(nil), tree.Edges...)
	for pass := 0; pass < len(ts)+2; pass++ {
		improved := false
		for _, kp := range keyPaths(current, isTerminal) {
			candidate, gain := tryExchange(g, w, current, kp)
			if gain > 1e-9 {
				current = candidate
				improved = true
				break // tree changed; recompute key paths
			}
		}
		if !improved {
			break
		}
	}
	current = pruneLeaves(current, ts)
	cost := 0.0
	for _, e := range current {
		cost += w(e.U, e.V)
	}
	return Tree{Edges: current, Cost: cost}
}

// keyPath is a maximal tree path whose interior nodes are non-terminal
// degree-2 vertices.
type keyPath struct {
	edges []graph.Edge
	cost  float64
}

// keyPaths decomposes the tree into its key paths.
func keyPaths(edges []graph.Edge, isTerminal map[int]bool) []keyPath {
	adj := map[int][]graph.Edge{}
	deg := map[int]int{}
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
		deg[e.U]++
		deg[e.V]++
	}
	isKey := func(v int) bool { return isTerminal[v] || deg[v] != 2 }

	var paths []keyPath
	seen := map[graph.Edge]bool{}
	var keyNodes []int
	for v := range deg {
		if isKey(v) {
			keyNodes = append(keyNodes, v)
		}
	}
	sort.Ints(keyNodes)
	for _, start := range keyNodes {
		for _, e := range adj[start] {
			if seen[e] {
				continue
			}
			// Walk from start through degree-2 non-key interior nodes.
			var kp keyPath
			prev, cur := start, e.Other(start)
			kp.edges = append(kp.edges, e)
			seen[e] = true
			for !isKey(cur) {
				for _, next := range adj[cur] {
					if next.Other(cur) != prev {
						seen[next] = true
						kp.edges = append(kp.edges, next)
						prev, cur = cur, next.Other(cur)
						break
					}
				}
			}
			paths = append(paths, kp)
		}
	}
	return paths
}

// tryExchange removes a key path and reconnects the two resulting sides
// (anchored at the path's endpoints) with the cheapest available path,
// returning the new edge set and the cost gain (positive = improvement).
func tryExchange(g *graph.Graph, w graph.EdgeWeightFunc, edges []graph.Edge, kp keyPath) ([]graph.Edge, float64) {
	removed := make(map[graph.Edge]bool, len(kp.edges))
	oldCost := 0.0
	for _, e := range kp.edges {
		removed[e] = true
		oldCost += w(e.U, e.V)
	}
	var kept []graph.Edge
	for _, e := range edges {
		if !removed[e] {
			kept = append(kept, e)
		}
	}

	endA, endB := pathEndpoints(kp.edges)

	// Components of the remaining forest, with the endpoints present even
	// when they keep no edges.
	uf := newUnionFind()
	uf.find(endA)
	uf.find(endB)
	for _, e := range kept {
		uf.union(e.U, e.V)
	}
	sideA := uf.find(endA)
	sideB := uf.find(endB)
	if sideA == sideB {
		return edges, 0 // path removal did not disconnect (shouldn't happen)
	}

	// Side membership: kept-tree nodes plus the anchoring endpoints.
	side := map[int]int{endA: sideA, endB: sideB}
	for _, e := range kept {
		side[e.U] = uf.find(e.U)
		side[e.V] = uf.find(e.V)
	}

	// Multi-source Dijkstra from every side-A node over the full graph.
	dist := make([]float64, g.NumNodes())
	pred := make([]int, g.NumNodes())
	for v := range dist {
		dist[v] = graph.Infinite
		pred[v] = -1
	}
	for v, s := range side {
		if s == sideA {
			dist[v] = 0
		}
	}
	visited := make([]bool, g.NumNodes())
	for {
		u, best := -1, graph.Infinite
		for v := 0; v < g.NumNodes(); v++ {
			if !visited[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for _, v := range g.Neighbors(u) {
			if d := dist[u] + w(u, v); d < dist[v] {
				dist[v] = d
				pred[v] = u
			}
		}
	}

	// Cheapest reconnection into side B. Scan in node order so ties break
	// toward the smallest node id, independent of map iteration order.
	bestNode, bestCost := -1, graph.Infinite
	for v := 0; v < g.NumNodes(); v++ {
		if s, ok := side[v]; ok && s == sideB && dist[v] < bestCost {
			bestNode, bestCost = v, dist[v]
		}
	}
	if bestNode < 0 || bestCost >= oldCost-1e-9 {
		return edges, 0
	}

	// Splice in the reconnection path.
	result := append([]graph.Edge(nil), kept...)
	present := map[graph.Edge]bool{}
	for _, e := range result {
		present[e] = true
	}
	for v := bestNode; pred[v] != -1; v = pred[v] {
		e := graph.Edge{U: pred[v], V: v}.Canonical()
		if !present[e] {
			present[e] = true
			result = append(result, e)
		}
	}
	return result, oldCost - bestCost
}

// pathEndpoints returns the two degree-1 endpoints of an edge path (for a
// single edge, its two endpoints).
func pathEndpoints(edges []graph.Edge) (int, int) {
	deg := map[int]int{}
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	var ends []int
	for v, d := range deg {
		if d == 1 {
			ends = append(ends, v)
		}
	}
	sort.Ints(ends)
	if len(ends) >= 2 {
		return ends[0], ends[1]
	}
	// Degenerate (cycle) — fall back to the first edge's endpoints.
	return edges[0].U, edges[0].V
}
