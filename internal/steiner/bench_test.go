package steiner

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkMSTApproxGrid8x8(b *testing.B) {
	g := graph.NewGrid(8, 8)
	w := func(u, v int) float64 { return float64(g.Degree(u) + g.Degree(v)) }
	terminals := []int{0, 7, 28, 56, 63}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MSTApprox(g, w, terminals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactCostGrid5x5SixTerminals(b *testing.B) {
	g := graph.NewGrid(5, 5)
	w := func(u, v int) float64 { return float64(g.Degree(u) + g.Degree(v)) }
	terminals := []int{0, 4, 12, 20, 24, 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExactCost(g, w, terminals); err != nil {
			b.Fatal(err)
		}
	}
}
