package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func unitWeight(u, v int) float64 { return 1 }

func TestMSTApproxTrivialCases(t *testing.T) {
	g := graph.NewGrid(3, 3)
	for _, terms := range [][]int{nil, {4}, {4, 4, 4}} {
		tree, err := MSTApprox(g, unitWeight, terms)
		if err != nil {
			t.Fatalf("MSTApprox(%v): %v", terms, err)
		}
		if len(tree.Edges) != 0 || tree.Cost != 0 {
			t.Errorf("MSTApprox(%v) = %+v, want empty tree", terms, tree)
		}
	}
}

func TestMSTApproxTwoTerminalsIsShortestPath(t *testing.T) {
	g := graph.NewGrid(3, 3)
	tree, err := MSTApprox(g, unitWeight, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 4 {
		t.Errorf("Cost = %g, want 4 (hop distance 0->8)", tree.Cost)
	}
	if len(tree.Edges) != 4 {
		t.Errorf("len(Edges) = %d, want 4", len(tree.Edges))
	}
}

func TestMSTApproxSpansTerminalsWithTree(t *testing.T) {
	g := graph.NewGrid(4, 4)
	terms := []int{0, 3, 12, 15}
	tree, err := MSTApprox(g, unitWeight, terms)
	if err != nil {
		t.Fatal(err)
	}
	assertSpanningTree(t, tree, terms)
	// Optimal for 4 corners of a 4x4 grid is 9 edges (spanning an H/comb
	// shape); MST approx must be within 2x of any lower bound and is 9 or
	// 10 here.
	if tree.Cost > 10 {
		t.Errorf("Cost = %g, want <= 10", tree.Cost)
	}
}

func TestMSTApproxRespectsWeights(t *testing.T) {
	// Square 0-1, 1-3, 0-2, 2-3; heavy top path, cheap bottom.
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	w := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		if u == 0 && v == 1 || u == 1 && v == 3 {
			return 10
		}
		return 1
	}
	tree, err := MSTApprox(g, w, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 2 {
		t.Errorf("Cost = %g, want 2 (via node 2)", tree.Cost)
	}
}

func TestMSTApproxDisconnected(t *testing.T) {
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := MSTApprox(g, unitWeight, []int{0, 3}); err == nil {
		t.Error("want error for disconnected terminals")
	}
}

func TestMSTApproxTerminalOutOfRange(t *testing.T) {
	g := graph.NewGrid(2, 2)
	if _, err := MSTApprox(g, unitWeight, []int{0, 9}); err == nil {
		t.Error("want error for out-of-range terminal")
	}
}

func TestExactCostMatchesKnownOptimum(t *testing.T) {
	// 3x3 grid, terminals at corners: optimal Steiner tree uses the
	// middle cross, cost 6? Corners {0,2,6,8}: optimum is 6 edges
	// (e.g. edges 0-1,1-2,1-4,4-7? no 7-6 and 7-8 needed -> 0-1,1-2,
	// 1-4,4-7,7-6,7-8 = 6 edges).
	g := graph.NewGrid(3, 3)
	got, err := ExactCost(g, unitWeight, []int{0, 2, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("ExactCost = %g, want 6", got)
	}
}

func TestExactCostTwoTerminals(t *testing.T) {
	g := graph.NewGrid(4, 4)
	got, err := ExactCost(g, unitWeight, []int{0, 15})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("ExactCost = %g, want 6", got)
	}
}

func TestExactCostTrivialAndErrors(t *testing.T) {
	g := graph.NewGrid(2, 2)
	if got, err := ExactCost(g, unitWeight, []int{1}); err != nil || got != 0 {
		t.Errorf("single terminal: got (%g, %v), want (0, nil)", got, err)
	}
	if _, err := ExactCost(g, unitWeight, []int{0, 99}); err == nil {
		t.Error("want error for out-of-range terminal")
	}
	tooMany := make([]int, MaxExactTerminals+1)
	for i := range tooMany {
		tooMany[i] = i
	}
	big := graph.NewGrid(4, 4)
	if _, err := ExactCost(big, unitWeight, tooMany); err == nil {
		t.Error("want error above MaxExactTerminals")
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := disc.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ExactCost(disc, unitWeight, []int{0, 3}); err == nil {
		t.Error("want error for disconnected terminals")
	}
}

// Property: the MST approximation is feasible (spans all terminals, is
// acyclic and connected) and within 2x of the exact optimum.
func TestMSTApproxWithinTwiceOptimal(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%10
		k := 2 + int(kRaw)%4
		if k > n {
			k = n
		}
		g := randomConnectedGraph(rng, n)
		weights := randomEdgeWeights(g, rng)
		w := func(u, v int) float64 { return weights[graph.Edge{U: u, V: v}.Canonical()] }
		terms := rng.Perm(n)[:k]

		tree, err := MSTApprox(g, w, terms)
		if err != nil {
			return false
		}
		opt, err := ExactCost(g, w, terms)
		if err != nil {
			return false
		}
		if tree.Cost < opt-1e-9 {
			return false // approximation cannot beat the optimum
		}
		if tree.Cost > 2*opt+1e-9 {
			return false // 2-approximation bound
		}
		return spansAsTree(tree, terms)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreeNodes(t *testing.T) {
	tree := Tree{Edges: []graph.Edge{{U: 2, V: 5}, {U: 5, V: 7}}}
	nodes := tree.Nodes()
	want := []int{2, 5, 7}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("Nodes()[%d] = %d, want %d", i, nodes[i], want[i])
		}
	}
}

func assertSpanningTree(t *testing.T, tree Tree, terminals []int) {
	t.Helper()
	if !spansAsTree(tree, terminals) {
		t.Errorf("tree %+v does not span terminals %v as a tree", tree, terminals)
	}
}

// spansAsTree checks the tree is acyclic, connected, and contains every
// terminal.
func spansAsTree(tree Tree, terminals []int) bool {
	if len(terminals) <= 1 {
		return len(tree.Edges) == 0
	}
	uf := newUnionFind()
	for _, e := range tree.Edges {
		if !uf.union(e.U, e.V) {
			return false // cycle
		}
	}
	root := uf.find(terminals[0])
	for _, term := range terminals[1:] {
		if uf.find(term) != root {
			return false
		}
	}
	// Connected + acyclic over its own node set: |E| = |V| - 1.
	return len(tree.Edges) == len(tree.Nodes())-1
}

// unionFind is a small map-keyed union-find for test assertions (the
// production path uses the dense slice-based one in Scratch).
type unionFind struct {
	parent map[int]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[int]int)}
}

func (u *unionFind) find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p != x {
		r := u.find(p)
		u.parent[x] = r
		return r
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}

func randomEdgeWeights(g *graph.Graph, rng *rand.Rand) map[graph.Edge]float64 {
	weights := make(map[graph.Edge]float64, g.NumEdges())
	for _, e := range g.Edges() {
		weights[e] = 1 + math.Floor(rng.Float64()*9)
	}
	return weights
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}
