// Package steiner builds Steiner trees over the network graph. Phase 2 of
// the paper's Algorithm 1 connects the chosen caching nodes (the ADMIN set)
// and the producer with a Steiner tree whose edges are charged the
// contention-scaled edge cost c_e.
//
// Two constructions are provided:
//
//   - MSTApprox: the classic metric-closure MST 2-approximation (polynomial,
//     used inside the approximation algorithm; the paper cites the 1.55-ratio
//     algorithm of Robins–Zelikovsky [25], which refines the same MST
//     skeleton — the skeleton is what matters for the evaluation's shape).
//   - ExactCost: the Dreyfus–Wagner dynamic program, exponential in the
//     number of terminals, used by the exact ("Brtf") baseline on small
//     instances.
package steiner

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/pool"
)

// ErrDisconnected reports terminals that cannot be connected in the graph.
var ErrDisconnected = errors.New("steiner: terminals not connected")

// Tree is a Steiner tree: the set of graph edges used and their total cost.
type Tree struct {
	Edges []graph.Edge
	Cost  float64
}

// Nodes returns the sorted set of nodes spanned by the tree.
func (t Tree) Nodes() []int {
	out := make([]int, 0, 2*len(t.Edges))
	for _, e := range t.Edges {
		out = append(out, e.U, e.V)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// closureEdge is one Prim-selected edge of the terminal metric closure,
// identified by terminal indices (positions in the sorted terminal slice).
type closureEdge struct{ from, to int32 }

// Scratch owns the reusable buffers of the metric-closure construction and
// the key-path improvement: per-terminal distance/predecessor rows, one
// Dijkstra arena per pool worker, Prim and Kruskal state, edge-set scan
// buffers and the dense union-find. A zero Scratch is ready for use; one
// Scratch serves any number of sequential constructions (the per-chunk
// solve loop reuses one across all chunks), growing to the largest
// (terminals × nodes, workers) shape seen. Concurrent constructions need
// one Scratch each.
type Scratch struct {
	ts     []int
	dist   []float64 // terminal i's distance row at dist[i*n : (i+1)*n]
	pred   []int32
	dj     []graph.DijkstraScratch // one per pool worker
	inTree []bool                  // per terminal index
	mst    []closureEdge
	edges  []graph.Edge
	kept   []graph.Edge
	uf     []int32 // union-find parent per graph node, -1 = isolated root
	deg    []int32
	isTerm bitset.Set
	// Key-path improvement (Improve) state.
	idist   []float64
	ipred   []int32
	visited []bool
	side    []int8
}

// uniqueTerminals fills scr.ts with the sorted, deduplicated terminals.
func (scr *Scratch) uniqueTerminals(terminals []int) []int {
	scr.ts = append(scr.ts[:0], terminals...)
	slices.Sort(scr.ts)
	scr.ts = slices.Compact(scr.ts)
	return scr.ts
}

// growPaths sizes the per-terminal path rows and per-worker Dijkstra arenas.
func (scr *Scratch) growPaths(k, n, workers int) {
	if cap(scr.dist) < k*n {
		scr.dist = make([]float64, k*n)
		scr.pred = make([]int32, k*n)
	}
	scr.dist = scr.dist[:k*n]
	scr.pred = scr.pred[:k*n]
	for len(scr.dj) < workers {
		scr.dj = append(scr.dj, graph.DijkstraScratch{})
	}
}

// resetUF returns the dense union-find parent array, reset to singletons.
func (scr *Scratch) resetUF(n int) []int32 {
	if cap(scr.uf) < n {
		scr.uf = make([]int32, n)
	}
	scr.uf = scr.uf[:n]
	for i := range scr.uf {
		scr.uf[i] = int32(i)
	}
	return scr.uf
}

func ufFind(parent []int32, x int32) int32 {
	for parent[x] != x {
		parent[x] = parent[parent[x]] // path halving
		x = parent[x]
	}
	return x
}

// ufUnion merges the sets of a and b, reporting whether they were distinct.
func ufUnion(parent []int32, a, b int32) bool {
	ra, rb := ufFind(parent, a), ufFind(parent, b)
	if ra == rb {
		return false
	}
	parent[ra] = rb
	return true
}

// MSTApprox returns a Steiner tree connecting terminals using the
// metric-closure MST 2-approximation:
//
//  1. compute shortest paths between terminals under w,
//  2. build the MST of the terminal metric closure,
//  3. expand MST edges into their underlying paths,
//  4. take the MST of the resulting subgraph and prune non-terminal leaves.
//
// Zero or one terminal yields an empty tree with cost 0.
func MSTApprox(g *graph.Graph, w graph.EdgeWeightFunc, terminals []int) (Tree, error) {
	return MSTApproxCtx(context.Background(), g, w, terminals, nil)
}

// MSTApproxCtx is MSTApprox with the per-terminal Dijkstra fan-out spread
// over p and cancellation via ctx. Each terminal's distance and predecessor
// vectors land in that terminal's own slot, so the tree is identical to the
// sequential construction.
func MSTApproxCtx(ctx context.Context, g *graph.Graph, w graph.EdgeWeightFunc, terminals []int, p *pool.Pool) (Tree, error) {
	return MSTApproxScratchCtx(ctx, g, w, terminals, p, nil)
}

// MSTApproxScratchCtx is MSTApproxCtx with every intermediate buffer carved
// out of scr (nil allocates a transient scratch): a warm scratch makes the
// construction allocate only the returned Tree.Edges. The tree is
// byte-identical to MSTApproxCtx at any pool width.
func MSTApproxScratchCtx(ctx context.Context, g *graph.Graph, w graph.EdgeWeightFunc, terminals []int, p *pool.Pool, scr *Scratch) (Tree, error) {
	if scr == nil {
		scr = &Scratch{}
	}
	ts := scr.uniqueTerminals(terminals)
	if len(ts) <= 1 {
		return Tree{}, ctx.Err()
	}
	n := g.NumNodes()
	for _, t := range ts {
		if t < 0 || t >= n {
			return Tree{}, fmt.Errorf("steiner: terminal %d out of range [0,%d)", t, n)
		}
	}

	// Shortest paths from every terminal; each worker relaxes over its own
	// heap arena, each terminal writes only its own rows.
	scr.growPaths(len(ts), n, p.Workers())
	err := p.ForEachW(ctx, len(ts), func(wk, i int) {
		g.DijkstraInto(ts[i], w, scr.dist[i*n:(i+1)*n], scr.pred[i*n:(i+1)*n], &scr.dj[wk])
	})
	if err != nil {
		return Tree{}, err
	}

	// Prim's MST over the terminal metric closure. Candidates scan in
	// ascending terminal order with a strict < so ties break toward the
	// smallest (from, to) pair — the construction must be deterministic
	// because placements are replayed byte-for-byte in WAL recovery and
	// compared against the sequential engine in determinism tests.
	inTree := growBools(scr.inTree, len(ts))
	scr.inTree = inTree
	inTree[0] = true
	mst := scr.mst[:0]
	for count := 1; count < len(ts); count++ {
		bestFrom, bestTo := -1, -1
		bestD := graph.Infinite
		for ai := range ts {
			if !inTree[ai] {
				continue
			}
			row := scr.dist[ai*n : (ai+1)*n]
			for bi := range ts {
				if inTree[bi] {
					continue
				}
				if d := row[ts[bi]]; d < bestD {
					bestD, bestFrom, bestTo = d, ai, bi
				}
			}
		}
		if bestTo == -1 {
			scr.mst = mst
			return Tree{}, fmt.Errorf("%w: %v", ErrDisconnected, ts)
		}
		mst = append(mst, closureEdge{from: int32(bestFrom), to: int32(bestTo)})
		inTree[bestTo] = true
	}
	scr.mst = mst

	// Expand closure edges into graph edges by walking the predecessor rows
	// backward; canonical sort + adjacent dedup replaces the old edge set
	// map and yields the identical sorted unique set.
	edges := scr.edges[:0]
	for _, ce := range mst {
		pred := scr.pred[int(ce.from)*n : (int(ce.from)+1)*n]
		src := ts[ce.from]
		for v := ts[ce.to]; v != src; {
			u := pred[v]
			if u < 0 {
				break
			}
			edges = append(edges, graph.Edge{U: int(u), V: v}.Canonical())
			v = int(u)
		}
	}
	slices.SortFunc(edges, func(a, b graph.Edge) int {
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
	edges = slices.Compact(edges)
	scr.edges = edges

	// MST of the expanded subgraph (drops any cycles from overlapping
	// paths), then prune non-terminal leaves. The (weight, U, V) Kruskal
	// order is total over the unique edge set, so the result does not
	// depend on the pre-sort permutation.
	edges = scr.subgraphMST(edges, w, n)
	edges = scr.pruneLeaves(edges, ts, n)

	cost := 0.0
	for _, e := range edges {
		cost += w(e.U, e.V)
	}
	return Tree{Edges: append([]graph.Edge(nil), edges...), Cost: cost}, nil
}

// subgraphMST returns the minimum spanning forest of the given edge set
// (Kruskal over the dense union-find), written into scr.kept. The input
// order is preserved in scr.edges; the result is ordered by ascending
// (weight, U, V) — the order Kruskal accepts edges in.
func (scr *Scratch) subgraphMST(edges []graph.Edge, w graph.EdgeWeightFunc, n int) []graph.Edge {
	sorted := append(scr.kept[:0], edges...)
	slices.SortFunc(sorted, func(a, b graph.Edge) int {
		wa, wb := w(a.U, a.V), w(b.U, b.V)
		if wa != wb {
			if wa < wb {
				return -1
			}
			return 1
		}
		if a.U != b.U {
			return a.U - b.U
		}
		return a.V - b.V
	})
	uf := scr.resetUF(n)
	out := sorted[:0] // accepted prefix compacts in place over the sorted buffer
	for _, e := range sorted {
		if ufUnion(uf, int32(e.U), int32(e.V)) {
			out = append(out, e)
		}
	}
	scr.kept = sorted[:0]
	return out
}

// pruneLeaves repeatedly removes degree-1 nodes that are not terminals,
// compacting the edge slice in place.
func (scr *Scratch) pruneLeaves(edges []graph.Edge, terminals []int, n int) []graph.Edge {
	scr.isTerm = scr.isTerm.Grow(n)
	for _, t := range terminals {
		scr.isTerm.Add(t)
	}
	if cap(scr.deg) < n {
		scr.deg = make([]int32, n)
	}
	deg := scr.deg[:n]
	for {
		for i := range deg {
			deg[i] = 0
		}
		for _, e := range edges {
			deg[e.U]++
			deg[e.V]++
		}
		kept := edges[:0]
		removed := false
		for _, e := range edges {
			if (deg[e.U] == 1 && !scr.isTerm.Has(e.U)) || (deg[e.V] == 1 && !scr.isTerm.Has(e.V)) {
				removed = true
				continue
			}
			kept = append(kept, e)
		}
		edges = kept
		if !removed {
			return edges
		}
	}
}

// growBools returns a cleared bool slice of length n, reusing b's storage
// when possible.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func uniqueSorted(xs []int) []int {
	out := append([]int(nil), xs...)
	slices.Sort(out)
	return slices.Compact(out)
}
