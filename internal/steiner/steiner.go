// Package steiner builds Steiner trees over the network graph. Phase 2 of
// the paper's Algorithm 1 connects the chosen caching nodes (the ADMIN set)
// and the producer with a Steiner tree whose edges are charged the
// contention-scaled edge cost c_e.
//
// Two constructions are provided:
//
//   - MSTApprox: the classic metric-closure MST 2-approximation (polynomial,
//     used inside the approximation algorithm; the paper cites the 1.55-ratio
//     algorithm of Robins–Zelikovsky [25], which refines the same MST
//     skeleton — the skeleton is what matters for the evaluation's shape).
//   - ExactCost: the Dreyfus–Wagner dynamic program, exponential in the
//     number of terminals, used by the exact ("Brtf") baseline on small
//     instances.
package steiner

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/pool"
)

// ErrDisconnected reports terminals that cannot be connected in the graph.
var ErrDisconnected = errors.New("steiner: terminals not connected")

// Tree is a Steiner tree: the set of graph edges used and their total cost.
type Tree struct {
	Edges []graph.Edge
	Cost  float64
}

// Nodes returns the sorted set of nodes spanned by the tree.
func (t Tree) Nodes() []int {
	set := make(map[int]struct{}, 2*len(t.Edges))
	for _, e := range t.Edges {
		set[e.U] = struct{}{}
		set[e.V] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// MSTApprox returns a Steiner tree connecting terminals using the
// metric-closure MST 2-approximation:
//
//  1. compute shortest paths between terminals under w,
//  2. build the MST of the terminal metric closure,
//  3. expand MST edges into their underlying paths,
//  4. take the MST of the resulting subgraph and prune non-terminal leaves.
//
// Zero or one terminal yields an empty tree with cost 0.
func MSTApprox(g *graph.Graph, w graph.EdgeWeightFunc, terminals []int) (Tree, error) {
	return MSTApproxCtx(context.Background(), g, w, terminals, nil)
}

// MSTApproxCtx is MSTApprox with the per-terminal Dijkstra fan-out spread
// over p and cancellation via ctx. Each terminal's distance and predecessor
// vectors land in that terminal's own slot, so the tree is identical to the
// sequential construction.
func MSTApproxCtx(ctx context.Context, g *graph.Graph, w graph.EdgeWeightFunc, terminals []int, p *pool.Pool) (Tree, error) {
	ts := uniqueSorted(terminals)
	if len(ts) <= 1 {
		return Tree{}, ctx.Err()
	}
	for _, t := range ts {
		if t < 0 || t >= g.NumNodes() {
			return Tree{}, fmt.Errorf("steiner: terminal %d out of range [0,%d)", t, g.NumNodes())
		}
	}

	// Shortest paths from every terminal.
	dists := make([][]float64, len(ts))
	preds := make([][]int, len(ts))
	if err := p.ForEach(ctx, len(ts), func(i int) {
		dists[i], preds[i] = g.Dijkstra(ts[i], w)
	}); err != nil {
		return Tree{}, err
	}
	dist := make(map[int][]float64, len(ts))
	pred := make(map[int][]int, len(ts))
	for i, t := range ts {
		dist[t], pred[t] = dists[i], preds[i]
	}

	// Prim's MST over the terminal metric closure. Candidates scan in
	// ascending terminal order with a strict < so ties break toward the
	// smallest (from, to) pair — the construction must be deterministic
	// because placements are replayed byte-for-byte in WAL recovery and
	// compared against the sequential engine in determinism tests.
	inTree := map[int]bool{ts[0]: true}
	type closureEdge struct{ from, to int }
	var mst []closureEdge
	for len(inTree) < len(ts) {
		bestFrom, bestTo := -1, -1
		bestD := graph.Infinite
		for _, from := range ts {
			if !inTree[from] {
				continue
			}
			for _, to := range ts {
				if inTree[to] {
					continue
				}
				if d := dist[from][to]; d < bestD {
					bestD, bestFrom, bestTo = d, from, to
				}
			}
		}
		if bestTo == -1 {
			return Tree{}, fmt.Errorf("%w: %v", ErrDisconnected, ts)
		}
		mst = append(mst, closureEdge{from: bestFrom, to: bestTo})
		inTree[bestTo] = true
	}

	// Expand closure edges into graph edges.
	edgeSet := make(map[graph.Edge]struct{})
	for _, ce := range mst {
		path := graph.PathTo(pred[ce.from], ce.from, ce.to)
		for i := 1; i < len(path); i++ {
			edgeSet[graph.Edge{U: path[i-1], V: path[i]}.Canonical()] = struct{}{}
		}
	}

	// MST of the expanded subgraph (drops any cycles from overlapping
	// paths), then prune non-terminal leaves. Canonical edge order before
	// Kruskal keeps the whole pipeline independent of map iteration order.
	edges := make([]graph.Edge, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	edges = subgraphMST(edges, w)
	edges = pruneLeaves(edges, ts)

	cost := 0.0
	for _, e := range edges {
		cost += w(e.U, e.V)
	}
	return Tree{Edges: edges, Cost: cost}, nil
}

// subgraphMST returns the minimum spanning forest of the given edge set
// (Kruskal with union-find).
func subgraphMST(edges []graph.Edge, w graph.EdgeWeightFunc) []graph.Edge {
	sorted := append([]graph.Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		wi, wj := w(sorted[i].U, sorted[i].V), w(sorted[j].U, sorted[j].V)
		if wi != wj {
			return wi < wj
		}
		if sorted[i].U != sorted[j].U {
			return sorted[i].U < sorted[j].U
		}
		return sorted[i].V < sorted[j].V
	})
	uf := newUnionFind()
	var out []graph.Edge
	for _, e := range sorted {
		if uf.union(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}

// pruneLeaves repeatedly removes degree-1 nodes that are not terminals.
func pruneLeaves(edges []graph.Edge, terminals []int) []graph.Edge {
	isTerminal := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		isTerminal[t] = true
	}
	for {
		deg := make(map[int]int)
		for _, e := range edges {
			deg[e.U]++
			deg[e.V]++
		}
		var kept []graph.Edge
		removed := false
		for _, e := range edges {
			if (deg[e.U] == 1 && !isTerminal[e.U]) || (deg[e.V] == 1 && !isTerminal[e.V]) {
				removed = true
				continue
			}
			kept = append(kept, e)
		}
		edges = kept
		if !removed {
			return edges
		}
	}
}

type unionFind struct {
	parent map[int]int
}

func newUnionFind() *unionFind {
	return &unionFind{parent: make(map[int]int)}
}

func (u *unionFind) find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p != x {
		r := u.find(p)
		u.parent[x] = r
		return r
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}

func uniqueSorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	j := 0
	for i, x := range out {
		if i == 0 || x != out[j-1] {
			out[j] = x
			j++
		}
	}
	return out[:j]
}
