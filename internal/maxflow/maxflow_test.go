package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	nw := New(3)
	if err := nw.AddArc(0, 5, 1); err == nil {
		t.Error("out-of-range arc: want error")
	}
	if err := nw.AddArc(0, 1, -1); err == nil {
		t.Error("negative capacity: want error")
	}
	if err := nw.AddEdge(-1, 0, 1); err == nil {
		t.Error("out-of-range edge: want error")
	}
	if err := nw.AddEdge(0, 1, -2); err == nil {
		t.Error("negative edge capacity: want error")
	}
	if _, _, err := nw.MaxFlow(0, 0); err == nil {
		t.Error("s == t: want error")
	}
	if _, _, err := nw.MaxFlow(0, 9); err == nil {
		t.Error("bad sink: want error")
	}
	if nw.NumNodes() != 3 {
		t.Errorf("NumNodes() = %d", nw.NumNodes())
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example: max flow 23.
	nw := New(6)
	arcs := []struct {
		u, v int
		c    float64
	}{
		{0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4},
		{1, 3, 12}, {3, 2, 9}, {2, 4, 14}, {4, 3, 7},
		{3, 5, 20}, {4, 5, 4},
	}
	for _, a := range arcs {
		if err := nw.AddArc(a.u, a.v, a.c); err != nil {
			t.Fatal(err)
		}
	}
	flow, side, err := nw.MaxFlow(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 23 {
		t.Errorf("flow = %g, want 23", flow)
	}
	inSide := map[int]bool{}
	for _, v := range side {
		inSide[v] = true
	}
	if !inSide[0] || inSide[5] {
		t.Errorf("cut side %v must contain source, not sink", side)
	}
}

func TestDisconnected(t *testing.T) {
	nw := New(4)
	if err := nw.AddArc(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	flow, side, err := nw.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 {
		t.Errorf("flow = %g, want 0", flow)
	}
	if len(side) != 2 { // 0 and 1 reachable
		t.Errorf("cut side = %v, want {0,1}", side)
	}
}

func TestUndirectedEdgeBothDirections(t *testing.T) {
	nw := New(3)
	if err := nw.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	flow, _, err := nw.MaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 {
		t.Errorf("flow = %g, want 2", flow)
	}
	// Reverse direction on a fresh network.
	nw2 := New(3)
	if err := nw2.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := nw2.AddEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	back, _, err := nw2.MaxFlow(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back != 2 {
		t.Errorf("reverse flow = %g, want 2", back)
	}
}

// Property: max flow equals the capacity across the returned min cut
// (strong duality), on random networks.
func TestFlowEqualsCutCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		type capArc struct {
			u, v int
			c    float64
		}
		var arcs []capArc
		nw := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := float64(rng.Intn(10))
			arcs = append(arcs, capArc{u, v, c})
			if err := nw.AddArc(u, v, c); err != nil {
				return false
			}
		}
		s, t := 0, n-1
		flow, side, err := nw.MaxFlow(s, t)
		if err != nil {
			return false
		}
		inSide := make([]bool, n)
		for _, v := range side {
			inSide[v] = true
		}
		if !inSide[s] || inSide[t] {
			return false
		}
		cut := 0.0
		for _, a := range arcs {
			if inSide[a.u] && !inSide[a.v] {
				cut += a.c
			}
		}
		return math.Abs(cut-flow) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
