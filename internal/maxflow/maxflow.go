// Package maxflow implements Edmonds–Karp maximum flow / minimum cut on
// capacitated directed networks. The ILP solver (package ilp) uses it as
// the separation oracle for the ConFL connectivity constraints: a
// fractional facility y_i must be supported by z-capacity y_i across every
// cut separating it from the producer, and a max-flow below y_i yields the
// violated cut.
package maxflow

import (
	"fmt"
	"math"
)

// Network is a directed flow network over nodes 0..n-1 built with AddArc.
type Network struct {
	n     int
	arcs  []arc
	first []int // head of adjacency list per node
	next  []int // next arc index in the list
}

type arc struct {
	to  int
	cap float64
}

// New returns an empty network with n nodes.
func New(n int) *Network {
	first := make([]int, n)
	for i := range first {
		first[i] = -1
	}
	return &Network{n: n, first: first}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.n }

// AddArc adds a directed arc u→v with the given capacity (and its residual
// reverse arc with capacity 0). Use AddEdge for undirected capacity.
func (nw *Network) AddArc(u, v int, capacity float64) error {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return fmt.Errorf("maxflow: arc {%d,%d} out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 {
		return fmt.Errorf("maxflow: negative capacity %g", capacity)
	}
	nw.push(u, v, capacity)
	nw.push(v, u, 0)
	return nil
}

// AddEdge adds an undirected edge {u, v}: capacity in both directions.
func (nw *Network) AddEdge(u, v int, capacity float64) error {
	if u < 0 || u >= nw.n || v < 0 || v >= nw.n {
		return fmt.Errorf("maxflow: edge {%d,%d} out of range [0,%d)", u, v, nw.n)
	}
	if capacity < 0 {
		return fmt.Errorf("maxflow: negative capacity %g", capacity)
	}
	nw.push(u, v, capacity)
	nw.push(v, u, capacity)
	return nil
}

func (nw *Network) push(u, v int, capacity float64) {
	nw.arcs = append(nw.arcs, arc{to: v, cap: capacity})
	nw.next = append(nw.next, nw.first[u])
	nw.first[u] = len(nw.arcs) - 1
}

// MaxFlow computes the maximum s→t flow (Edmonds–Karp) and the min-cut
// side containing s. It returns the flow value and the source-side node
// set. The network's residual capacities are consumed; build a fresh
// Network per computation.
func (nw *Network) MaxFlow(s, t int) (float64, []int, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n {
		return 0, nil, fmt.Errorf("maxflow: terminals {%d,%d} out of range", s, t)
	}
	if s == t {
		return 0, nil, fmt.Errorf("maxflow: source equals sink %d", s)
	}
	total := 0.0
	parentArc := make([]int, nw.n)
	for {
		// BFS in the residual graph.
		for i := range parentArc {
			parentArc[i] = -1
		}
		queue := []int{s}
		parentArc[s] = -2
		for len(queue) > 0 && parentArc[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for ai := nw.first[u]; ai != -1; ai = nw.next[ai] {
				a := nw.arcs[ai]
				if a.cap > 1e-12 && parentArc[a.to] == -1 {
					parentArc[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if parentArc[t] == -1 {
			break
		}
		// Bottleneck along the path.
		bottleneck := math.Inf(1)
		for v := t; v != s; {
			ai := parentArc[v]
			if c := nw.arcs[ai].cap; c < bottleneck {
				bottleneck = c
			}
			v = nw.arcs[ai^1].to
		}
		for v := t; v != s; {
			ai := parentArc[v]
			nw.arcs[ai].cap -= bottleneck
			nw.arcs[ai^1].cap += bottleneck
			v = nw.arcs[ai^1].to
		}
		total += bottleneck
	}
	// Source side of the min cut: nodes reachable in the residual graph.
	seen := make([]bool, nw.n)
	seen[s] = true
	queue := []int{s}
	var side []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		side = append(side, u)
		for ai := nw.first[u]; ai != -1; ai = nw.next[ai] {
			a := nw.arcs[ai]
			if a.cap > 1e-12 && !seen[a.to] {
				seen[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return total, side, nil
}
