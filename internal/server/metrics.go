package server

import (
	"net/http"
	"time"

	"repro/internal/metrics/prom"
)

// serverMetrics is the server's Prometheus instrument set, served on
// GET /metrics. It replaces expvar as the first-class observability
// surface (the expvar map stays as a shim for /debug/vars consumers).
// Registry callbacks read live server state at scrape time, so gauges
// like worker queue depth and WAL fsync lag never go stale.
type serverMetrics struct {
	registry *prom.Registry

	// Per-endpoint request accounting, recorded by instrument().
	requests *prom.CounterVec   // faircached_requests_total{endpoint}
	errors   *prom.CounterVec   // faircached_request_errors_total{endpoint}
	duration *prom.HistogramVec // faircached_request_duration_seconds{endpoint}

	// Solve-path instruments.
	solveDuration   *prom.Histogram  // underlying engine solves only
	coalesceFlights *prom.CounterVec // underlying computations started
	coalesceHits    *prom.CounterVec // callers served by a shared flight

	// Coalesce lifecycle instruments: callers that gave up on a running
	// flight, and flights aborted because every caller left.
	coalesceDetached *prom.CounterVec
	coalesceAborted  *prom.CounterVec

	// Trace-fed phase latency. Observations come from the span observer,
	// so only sampled (or explain) requests contribute — interpret as a
	// latency profile, not a request count.
	phaseDuration *prom.HistogramVec // faircached_solve_phase_seconds{phase}

	// Partition stitch counters, fed from every partitioned solve
	// response (always on, independent of trace sampling).
	stitchRebids  *prom.Counter
	stitchDropped *prom.Counter

	// Adaptation pass counters, fed from every committed adapt response.
	adaptPasses  *prom.Counter
	adaptActions *prom.CounterVec // faircached_adapt_actions_total{action}

	// Demand and durability instruments.
	demandEvents      *prom.Counter
	walAppendDuration *prom.Histogram
}

// solveBuckets widen the default latency buckets upward: partitioned
// solves on large topologies run for seconds.
var solveBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// newServerMetrics builds the instrument set and the scrape-time gauges
// over the server's live registry state.
func newServerMetrics(s *Server) *serverMetrics {
	reg := prom.NewRegistry()
	m := &serverMetrics{
		registry: reg,
		requests: reg.CounterVec("faircached_requests_total",
			"HTTP requests served, by endpoint.", "endpoint"),
		errors: reg.CounterVec("faircached_request_errors_total",
			"HTTP requests answered with status >= 400, by endpoint.", "endpoint"),
		duration: reg.HistogramVec("faircached_request_duration_seconds",
			"HTTP request latency, by endpoint.", nil, "endpoint"),
		solveDuration: reg.Histogram("faircached_solve_duration_seconds",
			"Latency of underlying engine solves (coalesced callers share one observation).", solveBuckets),
		coalesceFlights: reg.CounterVec("faircached_coalesce_flights_total",
			"Underlying computations started by coalescing endpoints.", "endpoint"),
		coalesceHits: reg.CounterVec("faircached_coalesced_requests_total",
			"Requests served by attaching to an in-progress identical flight.", "endpoint"),
		coalesceDetached: reg.CounterVec("faircached_coalesce_detached_total",
			"Callers that gave up (context done) while their coalesced flight was still running.", "endpoint"),
		coalesceAborted: reg.CounterVec("faircached_coalesce_aborted_total",
			"Coalesced flights cancelled because every attached caller detached.", "endpoint"),
		phaseDuration: reg.HistogramVec("faircached_solve_phase_seconds",
			"Latency of traced solve-pipeline phases (sampled and explain requests only).", nil, "phase"),
		stitchRebids: reg.Counter("faircached_partition_rebid_candidates_total",
			"Boundary-adjacent copies re-evaluated by partition stitch passes."),
		stitchDropped: reg.Counter("faircached_partition_dropped_copies_total",
			"Copies removed as cross-cut redundant by partition stitch passes."),
		adaptPasses: reg.Counter("faircached_adapt_passes_total",
			"Committed demand adaptation passes."),
		adaptActions: reg.CounterVec("faircached_adapt_actions_total",
			"Copies moved by adaptation passes, by action (evicted, placed, replaced).", "action"),
		demandEvents: reg.Counter("faircached_demand_events_total",
			"Demand request events ingested via POST requests batches."),
		walAppendDuration: reg.Histogram("faircached_wal_append_duration_seconds",
			"Latency of WAL record appends (includes fsync under the always policy).", nil),
	}
	reg.GaugeFunc("faircached_topologies",
		"Registered topologies.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.topos))
		})
	reg.GaugeFunc("faircached_worker_queue_depth",
		"Mutations queued on or running in topology workers.", func() float64 {
			var n int64
			s.mu.RLock()
			for _, tp := range s.topos {
				n += tp.queued.Load()
			}
			s.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("faircached_costmodel_cold_builds",
		"Cost-model cold builds summed over live topologies.",
		s.sumSolverStats(func(st solverStatTriple) int { return st.cold }))
	reg.GaugeFunc("faircached_costmodel_warm_solves",
		"Warm-fork solves summed over live topologies.",
		s.sumSolverStats(func(st solverStatTriple) int { return st.warm }))
	reg.GaugeFunc("faircached_costmodel_partitioned_solves",
		"Partitioned solves summed over live topologies.",
		s.sumSolverStats(func(st solverStatTriple) int { return st.partitioned }))
	reg.GaugeFunc("faircached_wal_fsync_lag_seconds",
		"Age of the oldest acknowledged-but-unsynced WAL append (0 when clean or in-memory).",
		func() float64 { return s.journal.syncLag().Seconds() })
	reg.GaugeFunc("faircached_wal_recovery_seconds",
		"Duration of the startup WAL recovery (0 for in-memory servers).",
		func() float64 { return s.walRecovery.Seconds() })
	reg.GaugeFunc("faircached_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(s.start).Seconds()
		})
	return m
}

// solverStatTriple is the subset of faircache.SolverStats the gauges
// aggregate.
type solverStatTriple struct{ cold, warm, partitioned int }

// sumSolverStats returns a scrape callback summing one solver counter
// over the live topology registry.
func (s *Server) sumSolverStats(pick func(solverStatTriple) int) func() float64 {
	return func() float64 {
		total := 0
		s.mu.RLock()
		for _, tp := range s.topos {
			st := tp.solver.Stats()
			total += pick(solverStatTriple{
				cold:        st.ColdBuilds,
				warm:        st.WarmSolves,
				partitioned: st.PartitionedSolves,
			})
		}
		s.mu.RUnlock()
		return float64(total)
	}
}

// statusRecorder captures the response status for error accounting.
// Handlers that never call WriteHeader implicitly answer 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
