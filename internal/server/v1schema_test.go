package server

import (
	"net/http"
	"reflect"
	"testing"
)

// TestSolveSchemaV1 is the table-driven contract test for the
// consolidated v1 solve schema: nested options are canonical, the
// deprecated flat fields still work but are flagged in the response
// envelope, nested values win over flat ones, and algorithm aliases
// echo their canonical names.
func TestSolveSchemaV1(t *testing.T) {
	cases := []struct {
		name           string
		req            SolveRequest
		wantAlgorithm  string
		wantDeprecated []string
		wantPartition  bool
	}{
		{
			name:          "canonical nested options",
			req:           SolveRequest{Chunks: 3, Options: &SolveOptions{Algorithm: "Dist", Workers: 1}},
			wantAlgorithm: "Dist",
		},
		{
			name:          "empty request defaults to Appx",
			req:           SolveRequest{Chunks: 3},
			wantAlgorithm: "Appx",
		},
		{
			name:          "legacy alias parses to canonical name",
			req:           SolveRequest{Chunks: 3, Options: &SolveOptions{Algorithm: "hopcount"}},
			wantAlgorithm: "Hopc",
		},
		{
			name:           "flat algorithm still accepted with note",
			req:            SolveRequest{Chunks: 3, Algorithm: "cont"},
			wantAlgorithm:  "Cont",
			wantDeprecated: []string{`flat "algorithm" is deprecated; use options.algorithm`},
		},
		{
			name:           "flat workers still accepted with note",
			req:            SolveRequest{Chunks: 3, Workers: 1},
			wantAlgorithm:  "Appx",
			wantDeprecated: []string{`flat "workers" is deprecated; use options.workers`},
		},
		{
			name:          "nested algorithm wins over flat",
			req:           SolveRequest{Chunks: 3, Algorithm: "dist", Options: &SolveOptions{Algorithm: "appx"}},
			wantAlgorithm: "Appx",
			wantDeprecated: []string{
				`flat "algorithm" is deprecated; use options.algorithm`,
			},
		},
		{
			name:           "flat partition fields fold into options.partition",
			req:            SolveRequest{Chunks: 3, PartitionRegions: 2},
			wantAlgorithm:  "Appx",
			wantDeprecated: []string{`flat "partitionRegions"/"partitionHalo" are deprecated; use options.partition`},
			wantPartition:  true,
		},
		{
			name:           "options.partitionRegions still accepted with note",
			req:            SolveRequest{Chunks: 3, Options: &SolveOptions{PartitionRegions: 2}},
			wantAlgorithm:  "Appx",
			wantDeprecated: []string{`options.partitionRegions/partitionHalo are deprecated; use options.partition`},
			wantPartition:  true,
		},
		{
			name:          "canonical options.partition carries no note",
			req:           SolveRequest{Chunks: 3, Options: &SolveOptions{Partition: &PartitionSpec{Regions: 2}}},
			wantAlgorithm: "Appx",
			wantPartition: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := newTestClient(t, Options{})
			reg := c.registerGrid(4, 4, 5)
			var resp SolveResponse
			c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", tc.req, &resp, http.StatusOK)
			if resp.Algorithm != tc.wantAlgorithm {
				t.Errorf("algorithm = %q, want %q", resp.Algorithm, tc.wantAlgorithm)
			}
			if !reflect.DeepEqual(resp.Deprecated, tc.wantDeprecated) {
				t.Errorf("deprecated notes = %#v, want %#v", resp.Deprecated, tc.wantDeprecated)
			}
			if (resp.Partition != nil) != tc.wantPartition {
				t.Errorf("partition report present = %v, want %v", resp.Partition != nil, tc.wantPartition)
			}
			if resp.Version != 2 || len(resp.Holders) != 3 {
				t.Errorf("response not a committed 3-chunk v2 placement: %+v", resp)
			}
		})
	}
}

// TestSolveSchemaErrors checks schema violations answer the typed error
// envelope.
func TestSolveSchemaErrors(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	cases := []struct {
		name string
		body any
		code string
	}{
		{"unknown algorithm", SolveRequest{Options: &SolveOptions{Algorithm: "lru"}}, CodeBadRequest},
		{"unknown flat algorithm", SolveRequest{Algorithm: "banana"}, CodeBadRequest},
		{"unknown field", map[string]any{"algorithmm": "appx"}, CodeBadRequest},
		{"negative chunks", SolveRequest{Chunks: -1}, CodeBadRequest},
		{"partition on non-appx", SolveRequest{
			Options: &SolveOptions{Algorithm: "dist", Partition: &PartitionSpec{Regions: 2}},
		}, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve", tc.body, http.StatusBadRequest, tc.code)
		})
	}
}
