package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// benchmarkSolveBurst hammers one topology with identical solve requests
// from parallel clients, with request coalescing on or off. The pair of
// wrappers below is the before/after comparison bench.sh records: with
// coalescing, concurrent identical requests attach to a shared flight
// and the "coalesced/op" metric approaches 1; without it every request
// pays for its own computation.
func benchmarkSolveBurst(b *testing.B, disable bool) {
	s, err := New(Options{DisableCoalescing: disable})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Close()
	}()

	producer := 7
	reg, err := json.Marshal(RegisterRequest{Kind: "grid", Rows: 6, Cols: 6, Producer: &producer})
	if err != nil {
		b.Fatalf("marshal register: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/topologies", "application/json", bytes.NewReader(reg))
	if err != nil {
		b.Fatalf("register: %v", err)
	}
	var regOut RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&regOut); err != nil {
		b.Fatalf("decode register: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("register: status %d", resp.StatusCode)
	}

	// One keep-alive connection per parallel client so redials don't
	// stagger the burst (mirrors loadgen.SolveBurstConfig).
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 64
	transport.MaxIdleConnsPerHost = 64
	cl := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	solveURL := ts.URL + "/v1/topologies/" + regOut.ID + "/solve"
	body := []byte(`{"chunks":6}`)
	var coalesced, failures atomic.Int64

	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := cl.Post(solveURL, "application/json", bytes.NewReader(body))
			if err != nil {
				failures.Add(1)
				continue
			}
			var out SolveResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				failures.Add(1)
				continue
			}
			if out.Coalesced {
				coalesced.Add(1)
			}
		}
	})
	b.StopTimer()
	if n := failures.Load(); n > 0 {
		b.Fatalf("%d of %d solve requests failed", n, b.N)
	}
	b.ReportMetric(float64(coalesced.Load())/float64(b.N), "coalesced/op")
}

func BenchmarkSolveCoalesced(b *testing.B)   { benchmarkSolveBurst(b, false) }
func BenchmarkSolveUncoalesced(b *testing.B) { benchmarkSolveBurst(b, true) }
