package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics/prom"
	"repro/internal/trace"
	"repro/internal/wal"
)

// WAL record types. Every mutation the service commits is appended to
// the write-ahead log as one JSON-encoded WALRecord *before* the
// in-memory snapshot swap, so a restart can rebuild an identical
// registry.
const (
	WALRegister = "register" // a topology was registered
	WALSolve    = "solve"    // a one-shot solve committed
	WALPublish  = "publish"  // a batch of online publications committed
	WALAdapt    = "adapt"    // a demand adaptation pass committed
	WALDelete   = "delete"   // a topology was unregistered
)

// WALRecord is the JSON payload of one WAL record. Register records
// carry the full generator spec so the graph is rebuilt
// deterministically; solve and publish records carry the complete
// committed snapshot (absolute state, not a delta), so recovery never
// depends on whether earlier records were themselves recorded.
type WALRecord struct {
	Type string `json:"type"`
	ID   string `json:"id"`
	// Register only: the generator spec plus the resolved producer and
	// capacity.
	Kind     string           `json:"kind,omitempty"`
	Spec     *RegisterRequest `json:"spec,omitempty"`
	Producer int              `json:"producer,omitempty"`
	Capacity int              `json:"capacity,omitempty"`
	// Solve and publish: the full snapshot as committed (including
	// Version, Source, Clock — the publish clock makes TTL expiry replay
	// exactly).
	Snap *Snapshot `json:"snap,omitempty"`
	// Publish only: publications in this batch.
	Count int `json:"count,omitempty"`
}

// WALTopology is one topology's durable state inside a WAL snapshot.
type WALTopology struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Spec     RegisterRequest `json:"spec"`
	Producer int             `json:"producer"`
	Capacity int             `json:"capacity"`
	// Clock is the online system's publication count; recovery replays
	// exactly this many publications through the deterministic engine.
	Clock int `json:"clock"`
	// Snap is the last committed snapshot, nil when only the
	// registration has committed.
	Snap *Snapshot `json:"snap,omitempty"`
}

// WALState is the payload of a WAL full-state snapshot: the whole
// registry, enough to rebuild every topology without older records.
type WALState struct {
	NextID     int           `json:"nextID"`
	Topologies []WALTopology `json:"topologies"`
}

// walShadow is the journal's in-memory mirror of WALState. It is
// updated on every append (under the journal lock), which makes writing
// a snapshot a pure serialization — no cross-lock scan of the live
// registry, and byte-identical to what replaying the log would yield.
type walShadow struct {
	nextID int
	topos  map[string]*WALTopology
}

func newWalShadow() *walShadow {
	return &walShadow{topos: make(map[string]*WALTopology)}
}

func shadowFromState(st *WALState) *walShadow {
	sh := newWalShadow()
	sh.nextID = st.NextID
	for i := range st.Topologies {
		ts := st.Topologies[i]
		sh.topos[ts.ID] = &ts
	}
	return sh
}

// apply advances the shadow state machine by one record. Recovery and
// live appends run the same transitions, so both agree byte for byte.
func (sh *walShadow) apply(rec *WALRecord) error {
	switch rec.Type {
	case WALRegister:
		if rec.Spec == nil {
			return fmt.Errorf("register record %s has no spec", rec.ID)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "t")); err == nil && n > sh.nextID {
			sh.nextID = n
		}
		sh.topos[rec.ID] = &WALTopology{
			ID:       rec.ID,
			Kind:     rec.Kind,
			Spec:     *rec.Spec,
			Producer: rec.Producer,
			Capacity: rec.Capacity,
		}
	case WALSolve, WALPublish, WALAdapt:
		ts, ok := sh.topos[rec.ID]
		if !ok {
			return fmt.Errorf("%s record for unknown topology %s", rec.Type, rec.ID)
		}
		if rec.Snap == nil {
			return fmt.Errorf("%s record for %s has no snapshot", rec.Type, rec.ID)
		}
		ts.Snap = rec.Snap
		if rec.Type == WALPublish {
			ts.Clock = rec.Snap.Clock
		}
	case WALDelete:
		delete(sh.topos, rec.ID)
	default:
		return fmt.Errorf("unknown WAL record type %q", rec.Type)
	}
	return nil
}

// state serializes the shadow into a WALState with deterministic
// (id-sorted) topology order.
func (sh *walShadow) state() *WALState {
	st := &WALState{NextID: sh.nextID}
	ids := make([]string, 0, len(sh.topos))
	for id := range sh.topos {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		st.Topologies = append(st.Topologies, *sh.topos[id])
	}
	return st
}

// foldWAL replays a recovered snapshot plus tail records into the final
// shadow state.
func foldWAL(rec *wal.Recovery) (*walShadow, error) {
	sh := newWalShadow()
	if rec.Snapshot != nil {
		var st WALState
		if err := json.Unmarshal(rec.Snapshot, &st); err != nil {
			return nil, fmt.Errorf("decoding WAL snapshot: %w", err)
		}
		sh = shadowFromState(&st)
	}
	for i, payload := range rec.Records {
		var r WALRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			return nil, fmt.Errorf("decoding WAL record %d: %w", i, err)
		}
		if err := sh.apply(&r); err != nil {
			return nil, fmt.Errorf("replaying WAL record %d: %w", i, err)
		}
	}
	return sh, nil
}

// LoadWALState reads a data directory without opening it for writing
// and returns the registry state a recovery of it would produce. The
// daemon's -inspect mode and the crash-recovery tests use it as an
// independent decode path.
func LoadWALState(dir string) (*WALState, error) {
	rec, err := wal.Scan(dir)
	if err != nil {
		return nil, err
	}
	sh, err := foldWAL(rec)
	if err != nil {
		return nil, err
	}
	return sh.state(), nil
}

// journal couples the WAL with its shadow state and the snapshot
// cadence. A nil *journal is valid and means "in-memory mode": append
// runs the commit callback and nothing else, byte-for-byte today's
// behavior.
type journal struct {
	vars *expvar.Map // the owning server's counters
	// appendDur observes WAL append latency (nil when metrics are not
	// wired, e.g. in journal-only tests).
	appendDur *prom.Histogram

	mu        sync.Mutex
	log       *wal.Log
	shadow    *walShadow
	sinceSnap int
	every     int // records per snapshot; <= 0 disables auto-snapshots
}

// append logs one record and then runs commit while still holding the
// journal lock, so the WAL write strictly precedes the snapshot swap
// and record order matches commit order across all topologies. When the
// snapshot cadence is reached it also writes a full-state snapshot and
// compacts. On a WAL write error the commit does NOT run: the mutation
// is aborted rather than committed un-durably. When ctx carries a live
// trace (a sampled or explain'd request), the append — lock wait, disk
// write, fsync — is recorded as a "wal.append" span.
func (j *journal) append(ctx context.Context, rec *WALRecord, commit func()) error {
	if j == nil {
		if commit != nil {
			commit()
		}
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding WAL record: %w", err)
	}
	sp := trace.FromContext(ctx).Start("wal.append")
	sp.SetInt("bytes", int64(len(payload)))
	defer sp.End()
	j.mu.Lock()
	defer j.mu.Unlock()
	start := time.Now()
	err = j.log.Append(payload)
	if j.appendDur != nil {
		j.appendDur.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		j.vars.Add("wal_errors", 1)
		return err
	}
	if err := j.shadow.apply(rec); err != nil {
		return err
	}
	if commit != nil {
		commit()
	}
	j.vars.Add("wal_records", 1)
	j.sinceSnap++
	if j.every > 0 && j.sinceSnap >= j.every {
		// The mutation is already durable and committed; a failed
		// snapshot only delays compaction, so it is not a client error.
		if err := j.snapshotLocked(); err != nil {
			j.vars.Add("wal_snapshot_errors", 1)
		}
	}
	return nil
}

func (j *journal) snapshotLocked() error {
	payload, err := json.Marshal(j.shadow.state())
	if err != nil {
		return err
	}
	if err := j.log.WriteSnapshot(payload); err != nil {
		return err
	}
	j.sinceSnap = 0
	j.vars.Add("wal_snapshots", 1)
	return nil
}

// syncLag reports how long the oldest acknowledged-but-unsynced WAL
// append has waited for an fsync; 0 for a clean log or in-memory mode.
func (j *journal) syncLag() time.Duration {
	if j == nil {
		return 0
	}
	return j.log.SyncLag()
}

// close flushes and closes the WAL. Safe on a nil journal.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
