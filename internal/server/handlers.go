package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	faircache "repro"

	"repro/internal/coalesce"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// maxBodyBytes bounds every request body read by the service.
const maxBodyBytes = 1 << 20

// decodeJSON strictly decodes a request body into v, returning a typed
// bad_request error on malformed input, unknown fields or trailing data.
func decodeJSON(r *http.Request, v any) *Error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("invalid JSON body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequestf("trailing data after JSON body")
	}
	return nil
}

// RegisterRequest is the body of POST /v1/topologies.
type RegisterRequest struct {
	// Kind selects the generator: grid, random, clustered, line, ring or
	// links.
	Kind string `json:"kind"`
	// Rows and Cols size a grid.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Nodes sizes random, line, ring and links topologies.
	Nodes int `json:"nodes,omitempty"`
	// Seed seeds random and clustered generation.
	Seed int64 `json:"seed,omitempty"`
	// Clusters and Size shape a clustered (crowd) topology.
	Clusters int `json:"clusters,omitempty"`
	Size     int `json:"size,omitempty"`
	// Links is the explicit edge list for kind "links".
	Links [][2]int `json:"links,omitempty"`
	// Producer is the producer node; omitted selects the central node.
	Producer *int `json:"producer,omitempty"`
	// Capacity is the per-node cache capacity (default 5).
	Capacity int `json:"capacity,omitempty"`
	// ChunkTTL is the online chunk lifetime with faircache.Options
	// semantics: 0 default, >0 publications, <0 never expire.
	ChunkTTL int `json:"chunkTTL,omitempty"`
	// FairnessWeight scales the Fairness Degree Cost of online
	// placements (0 = paper default).
	FairnessWeight float64 `json:"fairnessWeight,omitempty"`
}

// RegisterResponse is the body of a successful registration.
type RegisterResponse struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	Producer int    `json:"producer"`
	Capacity int    `json:"capacity"`
	Version  int    `json:"version"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	topo, kind, err := buildTopology(&req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if topo.NumNodes() > s.opts.MaxNodes {
		s.writeError(w, badRequestf("topology has %d nodes, limit is %d", topo.NumNodes(), s.opts.MaxNodes))
		return
	}
	producer := topo.CentralNode()
	if req.Producer != nil {
		producer = *req.Producer
	}
	if producer < 0 || producer >= topo.NumNodes() {
		s.writeError(w, badRequestf("producer %d out of range [0,%d)", producer, topo.NumNodes()))
		return
	}
	capacity := req.Capacity
	if capacity == 0 {
		capacity = 5
	}
	if capacity < 0 {
		s.writeError(w, badRequestf("negative capacity %d", capacity))
		return
	}
	online, oerr := faircache.NewOnline(topo, producer, &faircache.Options{
		Capacity:       capacity,
		ChunkTTL:       req.ChunkTTL,
		FairnessWeight: req.FairnessWeight,
	})
	if oerr != nil {
		s.writeError(w, oerr)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writeError(w, &Error{Status: http.StatusServiceUnavailable, Code: CodeShutdown, Message: "server is shutting down"})
		return
	}
	s.nextID++
	id := fmt.Sprintf("t%d", s.nextID)
	s.mu.Unlock()

	// Log the registration before the topology becomes visible: its
	// generator spec and resolved producer/capacity are everything a
	// restart needs to rebuild the graph deterministically.
	if jerr := s.journal.append(r.Context(), &WALRecord{
		Type: WALRegister, ID: id, Kind: kind, Spec: &req,
		Producer: producer, Capacity: capacity,
	}, nil); jerr != nil {
		s.writeError(w, jerr)
		return
	}

	tp := newTopology(id, kind, topo, producer, capacity, online, 0, nil)
	s.wireObservability(tp)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		tp.stop()
		// Undo the durable registration so a restart does not resurrect
		// a topology the client was told failed.
		_ = s.journal.append(r.Context(), &WALRecord{Type: WALDelete, ID: id}, nil)
		s.writeError(w, &Error{Status: http.StatusServiceUnavailable, Code: CodeShutdown, Message: "server is shutting down"})
		return
	}
	s.topos[id] = tp
	s.mu.Unlock()

	s.vars.Add("registrations", 1)
	s.log.Info("topology registered",
		"id", id, "kind", kind, "nodes", topo.NumNodes(), "links", topo.NumLinks(),
		"producer", producer, "capacity", capacity)
	writeJSON(w, http.StatusCreated, RegisterResponse{
		ID:       id,
		Kind:     kind,
		Nodes:    topo.NumNodes(),
		Links:    topo.NumLinks(),
		Producer: producer,
		Capacity: capacity,
		Version:  tp.snap.Load().Version,
	})
}

func buildTopology(req *RegisterRequest) (*faircache.Topology, string, error) {
	kind := strings.ToLower(strings.TrimSpace(req.Kind))
	switch kind {
	case "grid":
		t, err := faircache.Grid(req.Rows, req.Cols)
		return t, kind, err
	case "random":
		t, err := faircache.Random(req.Nodes, req.Seed)
		return t, kind, err
	case "clustered":
		t, err := faircache.Clustered(req.Clusters, req.Size, req.Seed)
		return t, kind, err
	case "line":
		t, err := faircache.Line(req.Nodes)
		return t, kind, err
	case "ring":
		t, err := faircache.Ring(req.Nodes)
		return t, kind, err
	case "links":
		t, err := faircache.FromLinks(req.Nodes, req.Links)
		return t, kind, err
	default:
		return nil, "", badRequestf("unknown topology kind %q (want grid, random, clustered, line, ring or links)", req.Kind)
	}
}

// TopologyInfo is one row of GET /v1/topologies.
type TopologyInfo struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	Producer int    `json:"producer"`
	Version  int    `json:"version"`
	Chunks   int    `json:"chunks"`
	// Demand is the demand subsystem's cumulative state, nil until the
	// first requests batch.
	Demand *DemandInfo `json:"demand,omitempty"`
}

// info builds the topology's list/get row from its committed snapshot.
func (tp *topology) info() TopologyInfo {
	snap := tp.snap.Load()
	return TopologyInfo{
		ID:       tp.id,
		Kind:     tp.kind,
		Nodes:    tp.topo.NumNodes(),
		Links:    tp.topo.NumLinks(),
		Producer: tp.producer,
		Version:  snap.Version,
		Chunks:   snap.Chunks,
		Demand:   tp.demand.Load(),
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	infos := []TopologyInfo{}
	for _, id := range s.ids() {
		tp, err := s.lookupTopology(id)
		if err != nil {
			continue // deleted between ids() and here
		}
		infos = append(infos, tp.info())
	}
	writeJSON(w, http.StatusOK, struct {
		Topologies []TopologyInfo `json:"topologies"`
	}{infos})
}

// handleGetTopology answers GET /v1/topologies/{id} with the same row
// the list endpoint would show for it.
func (s *Server) handleGetTopology(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	writeJSON(w, http.StatusOK, tp.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tp, ok := s.topos[id]
	if ok {
		delete(s.topos, id)
	}
	s.mu.Unlock()
	if !ok {
		s.writeError(w, notFoundf("unknown topology %q", id))
		return
	}
	// Drain the worker before logging the deletion so any mutation it
	// was mid-commit on lands in the WAL ahead of the delete record.
	tp.stop()
	tp.wg.Wait()
	if jerr := s.journal.append(r.Context(), &WALRecord{Type: WALDelete, ID: id}, nil); jerr != nil {
		s.writeError(w, jerr)
		return
	}
	s.log.Info("topology deleted", "id", id)
	writeJSON(w, http.StatusOK, struct {
		ID      string `json:"id"`
		Deleted bool   `json:"deleted"`
	}{id, true})
}

// PartitionSpec routes a solve through the geographic sharding path
// (appx only): Regions is the region count (0 solves globally), Halo the
// boundary re-bid radius (0 = default, negative = keep every region's
// copies).
type PartitionSpec struct {
	Regions int `json:"regions,omitempty"`
	Halo    int `json:"halo,omitempty"`
}

// SolveOptions is the JSON projection of faircache.Options accepted by
// solve requests. As of v1's consolidated schema it is the canonical
// home of every per-solve knob, including the algorithm selection.
type SolveOptions struct {
	// Algorithm is Appx, Dist, Hopc, Cont or Brtf (the paper's five);
	// legacy aliases such as "approximate" parse, and responses echo the
	// canonical name. Empty selects Appx.
	Algorithm      string  `json:"algorithm,omitempty"`
	Capacity       int     `json:"capacity,omitempty"`
	Capacities     []int   `json:"capacities,omitempty"`
	AlphaStep      float64 `json:"alphaStep,omitempty"`
	GammaStep      float64 `json:"gammaStep,omitempty"`
	SpanQuorum     int     `json:"spanQuorum,omitempty"`
	FairnessWeight float64 `json:"fairnessWeight,omitempty"`
	HopLimit       int     `json:"hopLimit,omitempty"`
	Lambda         float64 `json:"lambda,omitempty"`
	SearchBudget   int     `json:"searchBudget,omitempty"`
	SearchWidth    int     `json:"searchWidth,omitempty"`
	GreedyConFL    bool    `json:"greedyConFL,omitempty"`
	ImproveSteiner bool    `json:"improveSteiner,omitempty"`
	// Workers sizes the engine's worker pool for this solve (0 =
	// GOMAXPROCS, 1 = sequential).
	Workers int `json:"workers,omitempty"`
	// Partition routes the solve through the geographic sharding path.
	Partition *PartitionSpec `json:"partition,omitempty"`
	// Explain records the solve's phase spans regardless of the server's
	// sampling knob and returns the per-phase breakdown in the response's
	// trace field. Part of the coalescing identity (it changes the
	// response), unlike the trace id (which never splits a flight).
	Explain bool `json:"explain,omitempty"`

	// PartitionRegions and PartitionHalo are the pre-consolidation
	// spellings of Partition.Regions/Partition.Halo.
	//
	// Deprecated: use Partition. Still accepted; responses carry a
	// deprecation note.
	PartitionRegions int `json:"partitionRegions,omitempty"`
	PartitionHalo    int `json:"partitionHalo,omitempty"`
}

func (o *SolveOptions) toOptions(capacity int) *faircache.Options {
	out := &faircache.Options{Capacity: capacity}
	if o == nil {
		return out
	}
	if o.Capacity > 0 {
		out.Capacity = o.Capacity
	}
	out.Capacities = o.Capacities
	out.AlphaStep = o.AlphaStep
	out.GammaStep = o.GammaStep
	out.SpanQuorum = o.SpanQuorum
	out.FairnessWeight = o.FairnessWeight
	out.HopLimit = o.HopLimit
	out.Lambda = o.Lambda
	out.SearchBudget = o.SearchBudget
	out.SearchWidth = o.SearchWidth
	out.GreedyConFL = o.GreedyConFL
	out.ImproveSteiner = o.ImproveSteiner
	out.Workers = o.Workers
	out.Explain = o.Explain
	if o.Partition != nil && o.Partition.Regions != 0 {
		out.Partition = &faircache.PartitionOptions{
			Regions: o.Partition.Regions,
			Halo:    o.Partition.Halo,
		}
	}
	return out
}

// SolveRequest is the body of POST /v1/topologies/{id}/solve. The
// canonical v1 shape nests every per-solve knob under Options; the flat
// fields remain accepted for older clients and are folded into Options
// by normalize, with deprecation notes echoed in the response.
type SolveRequest struct {
	// Chunks is the number of distinct chunks to place (default 5).
	Chunks int `json:"chunks,omitempty"`
	// TimeoutMs shortens the server's solve timeout for this request.
	// It shapes only this caller's wait, never the shared flight, so it
	// is not part of the coalescing identity.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Options tunes the algorithm; zero values mean paper defaults.
	Options *SolveOptions `json:"options,omitempty"`

	// Algorithm, Workers, PartitionRegions and PartitionHalo are the
	// pre-consolidation flat spellings of the same-named Options fields.
	//
	// Deprecated: set them inside Options. Still accepted (nested values
	// win); responses carry a deprecation note.
	Algorithm        string `json:"algorithm,omitempty"`
	Workers          int    `json:"workers,omitempty"`
	PartitionRegions int    `json:"partitionRegions,omitempty"`
	PartitionHalo    int    `json:"partitionHalo,omitempty"`
}

// normalize folds the deprecated flat request fields into the canonical
// nested Options (nested values win over flat ones), resolves the
// algorithm to its canonical name, and returns the deprecation notes to
// echo in the response envelope. The returned SolveOptions is a
// normalized copy: its Algorithm holds the canonical name and legacy
// partition fields are folded into Partition, which makes its JSON
// encoding a canonical coalescing identity.
func (req *SolveRequest) normalize() (faircache.Algorithm, *SolveOptions, []string, *Error) {
	opts := &SolveOptions{}
	if req.Options != nil {
		o := *req.Options
		opts = &o
	}
	var notes []string
	if req.Algorithm != "" {
		if opts.Algorithm == "" {
			opts.Algorithm = req.Algorithm
		}
		notes = append(notes, `flat "algorithm" is deprecated; use options.algorithm`)
	}
	if req.Workers != 0 {
		if opts.Workers == 0 {
			opts.Workers = req.Workers
		}
		notes = append(notes, `flat "workers" is deprecated; use options.workers`)
	}
	if req.PartitionRegions != 0 || req.PartitionHalo != 0 {
		if opts.PartitionRegions == 0 && opts.PartitionHalo == 0 {
			opts.PartitionRegions = req.PartitionRegions
			opts.PartitionHalo = req.PartitionHalo
		}
		notes = append(notes, `flat "partitionRegions"/"partitionHalo" are deprecated; use options.partition`)
	}
	if opts.PartitionRegions != 0 || opts.PartitionHalo != 0 {
		if req.Options != nil && (req.Options.PartitionRegions != 0 || req.Options.PartitionHalo != 0) {
			notes = append(notes, `options.partitionRegions/partitionHalo are deprecated; use options.partition`)
		}
		if opts.Partition == nil {
			opts.Partition = &PartitionSpec{Regions: opts.PartitionRegions, Halo: opts.PartitionHalo}
		}
		opts.PartitionRegions, opts.PartitionHalo = 0, 0
	}
	alg, err := faircache.ParseAlgorithm(opts.Algorithm)
	if err != nil {
		return "", nil, nil, badRequestf("%v", err)
	}
	opts.Algorithm = alg.String()
	return alg, opts, notes, nil
}

// SolveResponse reports a committed one-shot placement. Algorithm
// always echoes the canonical name ("Appx", ...), whatever alias the
// request used.
type SolveResponse struct {
	Version           int            `json:"version"`
	Algorithm         string         `json:"algorithm"`
	Chunks            int            `json:"chunks"`
	Holders           [][]int        `json:"holders"`
	Counts            []int          `json:"counts"`
	Copies            int            `json:"copies"`
	DistinctCaches    int            `json:"distinctCaches"`
	Gini              float64        `json:"gini"`
	AccessCost        float64        `json:"accessCost"`
	DisseminationCost float64        `json:"disseminationCost"`
	TotalCost         float64        `json:"totalCost"`
	ElapsedMs         float64        `json:"elapsedMs"`
	ProvenOptimal     bool           `json:"provenOptimal,omitempty"`
	Messages          map[string]int `json:"messages,omitempty"`
	// Partition reports the decomposition of a sharded solve (nil for
	// global solves).
	Partition *faircache.PartitionReport `json:"partition,omitempty"`
	// Coalesced reports that this response was served by attaching to
	// another request's in-progress identical solve.
	Coalesced bool `json:"coalesced,omitempty"`
	// TraceID identifies the underlying computation's trace; coalesced
	// callers see the flight leader's id, not their own.
	TraceID string `json:"traceId,omitempty"`
	// Trace is the per-phase explain breakdown, present only when the
	// request set options.explain.
	Trace *faircache.ExplainReport `json:"trace,omitempty"`
	// Deprecated lists the deprecated request fields this call used.
	Deprecated []string `json:"deprecated,omitempty"`
}

// solveKey is the canonical coalescing identity of a solve: requests
// coalesce iff they place the same chunk count with byte-identical
// normalized options. TimeoutMs is deliberately excluded — it shapes a
// caller's wait, not the computation.
func solveKey(chunks int, opts *SolveOptions) string {
	payload, err := json.Marshal(opts)
	if err != nil {
		// Options are plain scalars and slices; Marshal cannot fail. Keep
		// a defensive unique key rather than coalescing wrongly.
		return fmt.Sprintf("nomarshal:%p", opts)
	}
	return fmt.Sprintf("%d:%s", chunks, payload)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Chunks == 0 {
		req.Chunks = 5
	}
	if req.Chunks < 1 {
		s.writeError(w, badRequestf("chunks must be >= 1, got %d", req.Chunks))
		return
	}
	alg, opts, notes, aerr := req.normalize()
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	timeout := s.opts.SolveTimeout
	if req.TimeoutMs > 0 && time.Duration(req.TimeoutMs)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Resolve the request's trace id (traceparent header or generated)
	// and thread it — plus the server-layer trace, live only for sampled
	// or explain'd requests — through the context. A coalesced flight
	// inherits the leader's values, so the whole flight shares one id.
	traceID := requestTraceID(r)
	ctx = withTraceID(ctx, traceID)
	str := s.tracer.StartTrace(traceID, opts.Explain)
	ctx = trace.NewContext(ctx, str)

	var (
		v      any
		shared bool
		err    error
	)
	if s.opts.DisableCoalescing {
		v, err = s.runSolve(ctx, tp, alg, req.Chunks, opts)
	} else {
		// Identical concurrent solves share one flight. The flight gets
		// the server's full solve budget regardless of any one caller's
		// timeoutMs: a short-deadline caller detaches on its own deadline
		// without starving the flight's other waiters.
		v, shared, err = tp.solveG.Do(ctx, solveKey(req.Chunks, opts), func(fctx context.Context) (any, error) {
			fsp := trace.FromContext(fctx).Start("coalesce.flight")
			defer fsp.End()
			fctx, fcancel := context.WithTimeout(fctx, s.opts.SolveTimeout)
			defer fcancel()
			return s.runSolve(fctx, tp, alg, req.Chunks, opts)
		})
		if shared {
			s.metrics.coalesceHits.WithLabelValues("solve").Inc()
			s.vars.Add("coalesced_solves", 1)
		} else {
			s.metrics.coalesceFlights.WithLabelValues("solve").Inc()
		}
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The flight's response is shared between callers: shallow-copy it so
	// the per-caller coalesced flag and deprecation notes never race.
	resp := *(v.(*SolveResponse))
	resp.Coalesced = shared
	resp.Deprecated = notes
	writeJSON(w, http.StatusOK, &resp)
}

// runSolve executes one underlying solve on the topology's worker and
// commits the placement: the computation a coalesced flight shares.
func (s *Server) runSolve(ctx context.Context, tp *topology, alg faircache.Algorithm, chunks int, opts *SolveOptions) (*SolveResponse, error) {
	// The id rode in on the context — for coalesced flights that is the
	// leader's id, which every attached caller's response then carries.
	traceID := traceIDFrom(ctx)
	v, err := tp.do(ctx, func(cctx context.Context) (any, error) {
		start := time.Now()
		eopts := opts.toOptions(tp.capacity)
		eopts.TraceID = traceID
		res, err := tp.solver.Solve(cctx, faircache.Request{
			Producer:  tp.producer,
			Chunks:    chunks,
			Algorithm: alg,
			Options:   eopts,
		})
		s.metrics.solveDuration.Observe(time.Since(start).Seconds())
		if err != nil {
			return nil, err
		}
		// A solve that finished right at the deadline must not commit:
		// the client has already been answered with a timeout.
		if cctx.Err() != nil {
			return nil, timeoutf("solve finished after the request deadline; result discarded")
		}
		cost, err := res.ContentionCost()
		if err != nil {
			return nil, err
		}
		prev := tp.snap.Load()
		holders := make(map[int][]int, len(res.Holders))
		for chunk, nodes := range res.Holders {
			holders[chunk] = append([]int(nil), nodes...)
		}
		snap := &Snapshot{
			Version:      tp.version + 1,
			Source:       "solve:" + res.Algorithm.String(),
			Producer:     tp.producer,
			Chunks:       chunks,
			Holders:      holders,
			Counts:       append([]int(nil), res.Counts...),
			Clock:        prev.Clock,
			Solves:       prev.Solves + 1,
			Publications: prev.Publications,
		}
		// WAL first, snapshot swap second: the record carries the full
		// committed snapshot, so recovery replays absolute state.
		if jerr := s.journal.append(cctx, &WALRecord{Type: WALSolve, ID: tp.id, Snap: snap},
			func() { tp.commit(snap) }); jerr != nil {
			return nil, jerr
		}
		s.vars.Add("solves", 1)
		if res.Partition != nil {
			s.metrics.stitchRebids.Add(float64(res.Partition.RebidCandidates))
			s.metrics.stitchDropped.Add(float64(res.Partition.DroppedCopies))
		}
		return &SolveResponse{
			Version:           snap.Version,
			Algorithm:         res.Algorithm.String(),
			Chunks:            chunks,
			Holders:           res.Holders,
			Counts:            res.Counts,
			Copies:            res.TotalCopies(),
			DistinctCaches:    res.DistinctCacheNodes(),
			Gini:              res.Gini(),
			AccessCost:        cost.Access,
			DisseminationCost: cost.Dissemination,
			TotalCost:         cost.Total(),
			ElapsedMs:         float64(time.Since(start).Microseconds()) / 1000,
			ProvenOptimal:     res.ProvenOptimal,
			Messages:          res.Messages,
			Partition:         res.Partition,
			TraceID:           traceID,
			Trace:             res.Trace,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*SolveResponse), nil
}

// PublishRequest is the body of POST /v1/topologies/{id}/publish. An
// empty body publishes one chunk.
type PublishRequest struct {
	// Count is the number of chunks to publish in one serialized batch
	// (default 1).
	Count int `json:"count,omitempty"`
}

// PublicationInfo reports one online arrival.
type PublicationInfo struct {
	Chunk      int   `json:"chunk"`
	Time       int   `json:"time"`
	CacheNodes []int `json:"cacheNodes"`
	Expired    []int `json:"expired,omitempty"`
}

// PublishResponse reports the committed state after the batch. Holders is
// the complete live-chunk map of the new snapshot, so clients can verify
// lookups against exactly this committed state.
type PublishResponse struct {
	Version      int               `json:"version"`
	Clock        int               `json:"clock"`
	Published    int               `json:"published"`
	Publications []PublicationInfo `json:"publications"`
	Holders      map[int][]int     `json:"holders"`
	Counts       []int             `json:"counts"`
	Gini         float64           `json:"gini"`
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	req := PublishRequest{Count: 1}
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		if req.Count == 0 {
			req.Count = 1
		}
	}
	if req.Count < 1 || req.Count > s.opts.MaxPublishBatch {
		s.writeError(w, badRequestf("count must be in [1,%d], got %d", s.opts.MaxPublishBatch, req.Count))
		return
	}

	v, err := tp.do(r.Context(), func(cctx context.Context) (any, error) {
		pubs := make([]PublicationInfo, 0, req.Count)
		for i := 0; i < req.Count; i++ {
			pub, err := tp.online.PublishCtx(cctx)
			if err != nil {
				return nil, err
			}
			s.vars.Add("publications", 1)
			s.vars.Add("evictions", int64(len(pub.Expired)))
			pubs = append(pubs, PublicationInfo{
				Chunk:      pub.Chunk,
				Time:       pub.Time,
				CacheNodes: pub.CacheNodes,
				Expired:    pub.Expired,
			})
		}
		os := tp.online.Snapshot()
		prev := tp.snap.Load()
		snap := &Snapshot{
			Version:      tp.version + 1,
			Source:       "publish",
			Producer:     tp.producer,
			Chunks:       os.Published,
			Holders:      os.Holders,
			Counts:       os.Counts,
			Clock:        os.Clock,
			Solves:       prev.Solves,
			Publications: prev.Publications + len(pubs),
		}
		// The record's Clock is the online system's absolute publication
		// count, so recovery replays exactly that many arrivals and TTL
		// expiry falls on the same ticks.
		if jerr := s.journal.append(cctx, &WALRecord{Type: WALPublish, ID: tp.id, Snap: snap, Count: len(pubs)},
			func() { tp.commit(snap) }); jerr != nil {
			return nil, jerr
		}
		return &PublishResponse{
			Version:      snap.Version,
			Clock:        snap.Clock,
			Published:    snap.Chunks,
			Publications: pubs,
			Holders:      snap.Holders,
			Counts:       snap.Counts,
			Gini:         metrics.Gini(snap.Counts),
		}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// LookupResponse answers "which node serves chunk n to requester j"
// against one committed snapshot.
type LookupResponse struct {
	Version      int   `json:"version"`
	Chunk        int   `json:"chunk"`
	Node         int   `json:"node"`
	ServedBy     int   `json:"servedBy"`
	Hops         int   `json:"hops"`
	FromProducer bool  `json:"fromProducer"`
	Holders      []int `json:"holders"`
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	chunk, err := queryInt(r, "chunk")
	if err != nil {
		s.writeError(w, err)
		return
	}
	node, err := queryInt(r, "node")
	if err != nil {
		s.writeError(w, err)
		return
	}
	if node < 0 || node >= tp.topo.NumNodes() {
		s.writeError(w, badRequestf("node %d out of range [0,%d)", node, tp.topo.NumNodes()))
		return
	}
	snap := tp.snap.Load()
	if chunk < 0 || chunk >= snap.Chunks {
		s.writeError(w, notFoundf("chunk %d unknown: snapshot v%d knows chunks [0,%d)", chunk, snap.Version, snap.Chunks))
		return
	}
	dist, derr := tp.topo.HopDistances(node)
	if derr != nil {
		s.writeError(w, derr)
		return
	}
	holders := snap.Holders[chunk]
	served, hops, fromProducer := nearestServer(dist, holders, snap.Producer)
	s.vars.Add("lookups", 1)
	writeJSON(w, http.StatusOK, LookupResponse{
		Version:      snap.Version,
		Chunk:        chunk,
		Node:         node,
		ServedBy:     served,
		Hops:         hops,
		FromProducer: fromProducer,
		Holders:      holders,
	})
}

// nearestServer picks the minimum-hop server for a requester with hop
// distances dist: the nearest holder, or the producer when it is
// strictly closer (ties favor offloading the producer; among holders the
// lowest node id wins so answers are deterministic).
func nearestServer(dist, holders []int, producer int) (served, hops int, fromProducer bool) {
	served, hops, fromProducer = producer, dist[producer], true
	for _, h := range holders {
		if dist[h] < hops || (dist[h] == hops && fromProducer) {
			served, hops, fromProducer = h, dist[h], false
		}
	}
	return served, hops, fromProducer
}

func queryInt(r *http.Request, key string) (int, *Error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, badRequestf("missing required query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, badRequestf("query parameter %q: %v", key, err)
	}
	return v, nil
}

// CoalesceInfo is one topology's cumulative request-dedup counters, per
// coalescing endpoint.
type CoalesceInfo struct {
	Solve  coalesce.Stats `json:"solve"`
	Report coalesce.Stats `json:"report"`
}

// ReportResponse is the body of GET /v1/topologies/{id}/report: the full
// committed snapshot plus the paper's fairness metrics.
type ReportResponse struct {
	ID             string    `json:"id"`
	Kind           string    `json:"kind"`
	Nodes          int       `json:"nodes"`
	Links          int       `json:"links"`
	Capacity       int       `json:"capacity"`
	Snapshot       *Snapshot `json:"snapshot"`
	LiveChunks     int       `json:"liveChunks"`
	Copies         int       `json:"copies"`
	DistinctCaches int       `json:"distinctCaches"`
	Gini           float64   `json:"gini"`
	Fairness75     float64   `json:"fairness75"`
	StorageCurve   []float64 `json:"storageCurve"`
	// Solver exposes the warm/cold cost-model counters: after the first
	// solve on a topology every later one should be warm.
	Solver faircache.SolverStats `json:"solver"`
	// Coalesce exposes this topology's request-dedup counters.
	Coalesce CoalesceInfo `json:"coalesce"`
	// Coalesced reports that this response was served by attaching to
	// another request's in-progress report computation.
	Coalesced bool `json:"coalesced,omitempty"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	build := func(context.Context) (any, error) { return s.buildReport(tp), nil }
	var (
		v      any
		shared bool
		err    error
	)
	if s.opts.DisableCoalescing {
		v, err = build(r.Context())
	} else {
		// Concurrent reports of the same committed version share one
		// metrics computation. The key is the snapshot version, so a
		// commit landing mid-flight starts a fresh flight for later
		// callers instead of serving them the pre-commit report.
		key := strconv.Itoa(tp.snap.Load().Version)
		v, shared, err = tp.reportG.Do(r.Context(), key, build)
		if shared {
			s.metrics.coalesceHits.WithLabelValues("report").Inc()
			s.vars.Add("coalesced_reports", 1)
		} else {
			s.metrics.coalesceFlights.WithLabelValues("report").Inc()
		}
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.vars.Add("reports", 1)
	resp := *(v.(*ReportResponse))
	resp.Coalesced = shared
	writeJSON(w, http.StatusOK, &resp)
}

// buildReport computes the full report from the current committed
// snapshot — the computation concurrent identical reports share.
func (s *Server) buildReport(tp *topology) *ReportResponse {
	snap := tp.snap.Load()
	copies, distinct := 0, 0
	for _, c := range snap.Counts {
		copies += c
		if c > 0 {
			distinct++
		}
	}
	fairness75 := 0.0
	if pf, err := metrics.PercentileFairness(snap.Counts, 75); err == nil {
		fairness75 = pf
	}
	return &ReportResponse{
		ID:             tp.id,
		Kind:           tp.kind,
		Nodes:          tp.topo.NumNodes(),
		Links:          tp.topo.NumLinks(),
		Capacity:       tp.capacity,
		Snapshot:       snap,
		LiveChunks:     len(snap.Holders),
		Copies:         copies,
		DistinctCaches: distinct,
		Gini:           metrics.Gini(snap.Counts),
		Fairness75:     fairness75,
		StorageCurve:   metrics.StorageCurve(snap.Counts),
		Solver:         tp.solver.Stats(),
		Coalesce: CoalesceInfo{
			Solve:  tp.solveG.Stats(),
			Report: tp.reportG.Stats(),
		},
	}
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status     string `json:"status"`
	Topologies int    `json:"topologies"`
	UptimeMs   int64  `json:"uptimeMs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := len(s.topos)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Topologies: n,
		UptimeMs:   time.Since(s.start).Milliseconds(),
	})
}
