package server

import (
	"context"
	"sync"
	"sync/atomic"

	faircache "repro"

	"repro/internal/coalesce"
)

// Snapshot is the immutable committed state of one registered topology.
// Workers build a fresh Snapshot after every mutation and swap it in
// atomically; readers load the pointer and never see a half-applied
// mutation. A Snapshot must never be modified after it is stored.
type Snapshot struct {
	// Version increases by one per committed mutation, starting at 1 for
	// the registration commit.
	Version int `json:"version"`
	// Source records what committed this snapshot: "register",
	// "solve:<algorithm>" or "publish".
	Source string `json:"source"`
	// Producer is the topology's producer node.
	Producer int `json:"producer"`
	// Chunks is the number of known chunk ids; ids in [0, Chunks) are
	// valid lookup targets even when their copies have expired (the
	// producer always serves them).
	Chunks int `json:"chunks"`
	// Holders maps each live chunk id to the nodes caching it.
	Holders map[int][]int `json:"holders"`
	// Counts is the per-node cached-chunk count.
	Counts []int `json:"counts"`
	// Clock is the online system's publication count.
	Clock int `json:"clock"`
	// Solves and Publications count committed mutations by kind.
	Solves       int `json:"solves"`
	Publications int `json:"publications"`
}

// command is one serialized mutation handed to a topology's worker. apply
// receives the request context so the engine underneath can abort
// mid-solve when the client disconnects or the deadline passes — not just
// have its finished result discarded.
type command struct {
	ctx   context.Context
	apply func(ctx context.Context) (any, error)
	reply chan cmdResult
}

type cmdResult struct {
	value any
	err   error
}

// topology is one registered topology: an immutable network, a
// single-writer worker goroutine that owns all mutable state, and an
// atomically swapped snapshot that read endpoints consume lock-free.
type topology struct {
	id       string
	kind     string
	topo     *faircache.Topology
	producer int
	capacity int

	cmds     chan *command
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup
	snap     atomic.Pointer[Snapshot]
	solver   *faircache.Solver

	// queued counts mutations submitted to the worker and not yet
	// answered — the worker queue depth the metrics gauge sums.
	queued atomic.Int64

	// solveG and reportG coalesce concurrent identical solve and report
	// requests onto shared flights; their per-topology dedup counters are
	// exposed in the report response.
	solveG  coalesce.Group
	reportG coalesce.Group

	// demand is the last demand-subsystem snapshot, stored by the worker
	// after each requests/adapt mutation and read lock-free by the list
	// and get handlers. Nil until the first requests batch.
	demand atomic.Pointer[DemandInfo]

	// Worker-owned state below: only the run() goroutine touches it.
	online *faircache.OnlineSystem
	// adaptive is the topology's demand subsystem, built lazily by the
	// first requests batch. In-memory only: restarts drop it.
	adaptive       *faircache.AdaptiveSystem
	demandCapacity int
	version        int
}

// newTopology builds a topology and starts its worker. version and snap
// restore recovered state; version <= 1 with a nil snap is a fresh
// registration (version 1, empty register snapshot).
func newTopology(id, kind string, topo *faircache.Topology, producer, capacity int, online *faircache.OnlineSystem, version int, snap *Snapshot) *topology {
	// NewSolver only fails on a nil topology, which every caller excludes.
	solver, _ := faircache.NewSolver(topo)
	tp := &topology{
		id:       id,
		kind:     kind,
		topo:     topo,
		producer: producer,
		capacity: capacity,
		cmds:     make(chan *command),
		quit:     make(chan struct{}),
		online:   online,
		solver:   solver,
	}
	if snap == nil {
		snap = &Snapshot{
			Version:  1,
			Source:   "register",
			Producer: producer,
			Holders:  map[int][]int{},
			Counts:   make([]int, topo.NumNodes()),
		}
	}
	if version < 1 {
		version = 1
	}
	tp.version = version
	tp.snap.Store(snap)
	tp.wg.Add(1)
	go tp.run()
	return tp
}

// run is the topology's single-writer loop: mutations are applied one at
// a time, each ending in an atomic snapshot swap. Requests whose context
// expired while queued are skipped without running.
func (tp *topology) run() {
	defer tp.wg.Done()
	for {
		select {
		case <-tp.quit:
			return
		case cmd := <-tp.cmds:
			// A request that expired while queued is skipped outright —
			// starting a solve whose client is already gone is pure waste.
			if err := cmd.ctx.Err(); err != nil {
				cmd.reply <- cmdResult{err: timeoutf("request expired before the %s worker ran it: %v", tp.id, err)}
				continue
			}
			v, err := cmd.apply(cmd.ctx)
			cmd.reply <- cmdResult{value: v, err: err}
		}
	}
}

// do submits a mutation to the worker and waits for its result, the
// request deadline, or topology shutdown — whichever comes first. The
// reply channel is buffered so an abandoned command never blocks the
// worker.
func (tp *topology) do(ctx context.Context, apply func(ctx context.Context) (any, error)) (any, error) {
	tp.queued.Add(1)
	defer tp.queued.Add(-1)
	cmd := &command{ctx: ctx, apply: apply, reply: make(chan cmdResult, 1)}
	select {
	case tp.cmds <- cmd:
	case <-tp.quit:
		return nil, gonef("topology %s is shut down", tp.id)
	case <-ctx.Done():
		return nil, timeoutf("request expired while waiting for the %s worker: %v", tp.id, ctx.Err())
	}
	select {
	case res := <-cmd.reply:
		return res.value, res.err
	case <-tp.quit:
		return nil, gonef("topology %s shut down mid-request", tp.id)
	case <-ctx.Done():
		return nil, timeoutf("request deadline passed while the %s worker was busy: %v", tp.id, ctx.Err())
	}
}

// commit assigns the next version and publishes the snapshot. The caller
// fills Source, Chunks, Holders, Counts, Clock and the Solves /
// Publications totals (usually carried forward from tp.snap.Load()).
// Worker goroutine only.
func (tp *topology) commit(snap *Snapshot) *Snapshot {
	tp.version++
	snap.Version = tp.version
	snap.Producer = tp.producer
	tp.snap.Store(snap)
	return snap
}

// stop signals the worker to exit after its current mutation. Safe to
// call more than once and from any goroutine.
func (tp *topology) stop() {
	tp.quitOnce.Do(func() { close(tp.quit) })
}
