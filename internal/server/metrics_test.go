package server

import (
	"cmp"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// parseScrape decodes a Prometheus text exposition into samples and
// family types, failing the test on any malformed line.
func parseScrape(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("sample %q has unparseable value: %v", line, err)
		}
		samples[line[:idx]] = v
	}
	return samples, types
}

// TestMetricsEndpoint drives traffic, scrapes /metrics and checks the
// exposition is well-formed Prometheus text: declared types, sorted
// families, and internally consistent histograms (cumulative buckets,
// +Inf == _count).
func TestMetricsEndpoint(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	var solve SolveResponse
	// An explain solve also feeds the trace-fed phase histogram.
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Chunks: 3, Options: &SolveOptions{Explain: true}}, &solve, http.StatusOK)
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, new(PublishResponse), http.StatusOK)
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	// One failing request moves the error counter.
	c.wantError("GET", "/v1/topologies/"+reg.ID+"/lookup?chunk=99&node=0", nil, http.StatusNotFound, CodeNotFound)

	resp, raw := c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	text := string(raw)
	samples, types := parseScrape(t, text)

	// The core families exist with their declared kinds.
	wantTypes := map[string]string{
		"faircached_requests_total":           "counter",
		"faircached_request_errors_total":     "counter",
		"faircached_request_duration_seconds": "histogram",
		"faircached_solve_duration_seconds":   "histogram",
		"faircached_coalesce_flights_total":   "counter",
		"faircached_coalesced_requests_total": "counter",
		"faircached_topologies":               "gauge",
		"faircached_worker_queue_depth":       "gauge",
		"faircached_costmodel_cold_builds":    "gauge",
		"faircached_wal_fsync_lag_seconds":    "gauge",
		"faircached_wal_recovery_seconds":     "gauge",
		"faircached_uptime_seconds":           "gauge",
		"faircached_demand_events_total":      "counter",
		"faircached_solve_phase_seconds":      "histogram",
		"faircached_coalesce_detached_total":  "counter",
		"faircached_coalesce_aborted_total":   "counter",
		"faircached_adapt_passes_total":       "counter",
		"faircached_adapt_actions_total":      "counter",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("family %s has type %q, want %q", name, types[name], kind)
		}
	}

	// Spot-check the counters this test moved.
	checks := map[string]float64{
		`faircached_requests_total{endpoint="solve"}`:         1,
		`faircached_requests_total{endpoint="report"}`:        1,
		`faircached_request_errors_total{endpoint="lookup"}`:  1,
		`faircached_coalesce_flights_total{endpoint="solve"}`: 1,
		"faircached_topologies":                               1,
		"faircached_solve_duration_seconds_count":             1,
	}
	for sample, want := range checks {
		if got := samples[sample]; got != want {
			t.Errorf("%s = %v, want %v", sample, got, want)
		}
	}

	// Histogram invariants: buckets are cumulative and non-decreasing,
	// the +Inf bucket equals _count, and an observed histogram has a
	// consistent _sum.
	for name, kind := range types {
		if kind != "histogram" {
			continue
		}
		checkServerHistogram(t, name, samples)
	}

	// Families are emitted in sorted order.
	var order []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			order = append(order, strings.Fields(line)[2])
		}
	}
	if !slices.IsSorted(order) {
		t.Errorf("metric families not sorted: %v", order)
	}
}

// checkServerHistogram asserts a histogram family's bucket/count/sum
// invariants from a parsed scrape, one series at a time (the le label
// always renders last, after any family labels).
func checkServerHistogram(t *testing.T, name string, samples map[string]float64) {
	t.Helper()
	type bucket struct {
		le string
		v  float64
	}
	series := map[string][]bucket{} // non-le label string -> buckets
	for sample, v := range samples {
		if !strings.HasPrefix(sample, name+"_bucket{") {
			continue
		}
		inside := strings.TrimSuffix(strings.TrimPrefix(sample, name+"_bucket{"), "}")
		idx := strings.Index(inside, `le="`)
		if idx < 0 {
			t.Errorf("bucket sample %q has no le label", sample)
			continue
		}
		labels := strings.TrimSuffix(inside[:idx], ",")
		le := strings.TrimSuffix(inside[idx+len(`le="`):], `"`)
		series[labels] = append(series[labels], bucket{le, v})
	}
	if len(series) == 0 {
		t.Errorf("histogram %s has no buckets", name)
		return
	}
	for labels, buckets := range series {
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		slices.SortFunc(buckets, func(a, b bucket) int {
			return cmp.Compare(leValue(t, a.le), leValue(t, b.le))
		})
		prev := -1.0
		for _, b := range buckets {
			if b.v < prev {
				t.Errorf("%s%s bucket le=%s = %v < previous %v: buckets must be cumulative", name, suffix, b.le, b.v, prev)
			}
			prev = b.v
		}
		count, sum := samples[name+"_count"+suffix], samples[name+"_sum"+suffix]
		if last := buckets[len(buckets)-1]; last.le != "+Inf" {
			t.Errorf("%s%s last bucket is le=%q, want +Inf", name, suffix, last.le)
		} else if last.v != count {
			t.Errorf("%s%s +Inf bucket %v != _count %v", name, suffix, last.v, count)
		}
		if count > 0 && sum < 0 {
			t.Errorf("%s%s has %v observations but negative sum %v", name, suffix, count, sum)
		}
		if count == 0 && sum != 0 {
			t.Errorf("%s%s has no observations but sum %v", name, suffix, sum)
		}
	}
}

func leValue(t *testing.T, le string) float64 {
	t.Helper()
	if le == "+Inf" {
		return float64(1 << 62)
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", le, err)
	}
	return v
}

// TestMetricsQueueDepthGauge checks the worker-queue gauge reflects a
// parked worker with queued mutations.
func TestMetricsQueueDepthGauge(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(3, 3, 4)
	release := blockWorker(t, s, reg.ID)
	defer release()

	resp, raw := c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	samples, _ := parseScrape(t, string(raw))
	if got := samples["faircached_worker_queue_depth"]; got < 1 {
		t.Errorf("worker queue depth = %v with a parked worker, want >= 1", got)
	}
}

// TestMetricsLabelEscaping checks a label value needing escaping
// round-trips; endpoint labels are static today, so this guards the
// exporter contract via a quoted error message in a scrape.
func TestMetricsLabelEscaping(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	// A request to an instrumented endpoint with an error keeps the
	// scrape parseable.
	c.wantError("GET", "/v1/topologies/nope", nil, http.StatusNotFound, CodeNotFound)
	resp, raw := c.do("GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	parseScrape(t, string(raw)) // fails the test on any malformed line
	if !strings.Contains(string(raw), fmt.Sprintf("faircached_request_errors_total{endpoint=%q} 1", "get")) {
		t.Errorf("scrape missing get-endpoint error count:\n%s", raw)
	}
}
