// Package server implements faircached, a concurrent placement service
// wrapping the faircache engine. It owns a registry of named topologies;
// each registered topology gets a single-writer worker goroutine that
// serializes mutations (one-shot solves, online publications with TTL
// expiry) while read endpoints — placement lookups, fairness reports,
// storage curves — are served concurrently from an atomically swapped
// immutable snapshot of the last committed state.
//
// Endpoints:
//
//	POST   /v1/topologies              register grid/random/clustered/line/ring/links
//	GET    /v1/topologies              list registered topologies
//	DELETE /v1/topologies/{id}         unregister and stop the worker
//	POST   /v1/topologies/{id}/solve   one-shot placement (appx/dist/hopc/cont/brtf)
//	POST   /v1/topologies/{id}/publish online chunk arrival(s)
//	GET    /v1/topologies/{id}/lookup  which node serves chunk n to requester j
//	GET    /v1/topologies/{id}/report  snapshot + fairness metrics + storage curve
//	GET    /healthz                    liveness
//	GET    /debug/vars                 expvar counters and latency sums
//
// Every error is a typed JSON object {"error":{"code","message"}} with a
// matching HTTP status.
package server

import (
	"expvar"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options configures a Server. The zero value is ready for production
// defaults.
type Options struct {
	// SolveTimeout caps the server-side duration of one solve request
	// (default 30s). A request's own timeoutMs can only shorten it.
	SolveTimeout time.Duration
	// MaxNodes caps registered topology sizes (default 4096).
	MaxNodes int
	// MaxPublishBatch caps the count of one publish request (default 64).
	MaxPublishBatch int
}

func (o Options) withDefaults() Options {
	if o.SolveTimeout <= 0 {
		o.SolveTimeout = 30 * time.Second
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4096
	}
	if o.MaxPublishBatch <= 0 {
		o.MaxPublishBatch = 64
	}
	return o
}

// Server is the placement service. It implements http.Handler; wrap it in
// an http.Server to expose it on a socket. Close stops every topology
// worker; call it after http.Server.Shutdown has drained in-flight
// requests.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	mu     sync.RWMutex
	topos  map[string]*topology
	nextID int
	closed bool
}

// New returns a ready-to-serve placement service.
func New(opts Options) *Server {
	s := &Server{
		opts:  opts.withDefaults(),
		mux:   http.NewServeMux(),
		start: time.Now(),
		topos: make(map[string]*topology),
	}
	s.mux.HandleFunc("GET /healthz", instrument("healthz", s.handleHealthz))
	s.mux.Handle("GET /debug/vars", instrument("debug_vars", expvar.Handler().ServeHTTP))
	s.mux.HandleFunc("POST /v1/topologies", instrument("register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/topologies", instrument("list", s.handleList))
	s.mux.HandleFunc("DELETE /v1/topologies/{id}", instrument("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/topologies/{id}/solve", instrument("solve", s.handleSolve))
	s.mux.HandleFunc("POST /v1/topologies/{id}/publish", instrument("publish", s.handlePublish))
	s.mux.HandleFunc("GET /v1/topologies/{id}/lookup", instrument("lookup", s.handleLookup))
	s.mux.HandleFunc("GET /v1/topologies/{id}/report", instrument("report", s.handleReport))
	return s
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close unregisters every topology and stops its worker. In-flight
// mutations finish; queued ones fail with a "gone" error. Safe to call
// more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	stopped := make([]*topology, 0, len(s.topos))
	for id, tp := range s.topos {
		delete(s.topos, id)
		stopped = append(stopped, tp)
	}
	s.mu.Unlock()
	for _, tp := range stopped {
		tp.stop()
		tp.wg.Wait()
	}
}

// lookupTopology resolves a topology id under the read lock.
func (s *Server) lookupTopology(id string) (*topology, *Error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tp, ok := s.topos[id]
	if !ok {
		return nil, notFoundf("unknown topology %q", id)
	}
	return tp, nil
}

// ids returns the registered topology ids, sorted.
func (s *Server) ids() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.topos))
	for id := range s.topos {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// stats returns the process-wide expvar map for the service, creating
// and registering it on first use. Counters are cumulative across every
// Server in the process (they back GET /debug/vars, which expvar serves
// process-wide anyway).
func stats() *expvar.Map {
	statsOnce.Do(func() { statsMap = expvar.NewMap("faircached") })
	return statsMap
}

var (
	statsOnce sync.Once
	statsMap  *expvar.Map
)

// instrument wraps a handler with the request counter and the
// per-endpoint request count and latency sum (microseconds).
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := stats()
		st.Add("requests", 1)
		st.Add("requests_"+name, 1)
		h(w, r)
		st.Add("latency_us_"+name, time.Since(start).Microseconds())
	}
}
