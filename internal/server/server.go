// Package server implements faircached, a concurrent placement service
// wrapping the faircache engine. It owns a registry of named topologies;
// each registered topology gets a single-writer worker goroutine that
// serializes mutations (one-shot solves, online publications with TTL
// expiry) while read endpoints — placement lookups, fairness reports,
// storage curves — are served concurrently from an atomically swapped
// immutable snapshot of the last committed state.
//
// With Options.DataDir set the service is durable: every committed
// mutation is appended to a write-ahead log (internal/wal) before the
// snapshot swap, periodic full-state snapshots bound replay time, and
// New recovers the registry — same topology ids, same versions, same
// holder sets — from the log on restart.
//
// Endpoints:
//
//	POST   /v1/topologies              register grid/random/clustered/line/ring/links
//	GET    /v1/topologies              list registered topologies
//	GET    /v1/topologies/{id}         one topology's info
//	DELETE /v1/topologies/{id}         unregister and stop the worker
//	POST   /v1/topologies/{id}/solve   one-shot placement (appx/dist/hopc/cont/brtf)
//	POST   /v1/topologies/{id}/publish online chunk arrival(s)
//	POST   /v1/topologies/{id}/requests ingest demand events (lazy-inits the
//	                                   adaptive demand subsystem)
//	POST   /v1/topologies/{id}/adapt   run one demand adaptation pass and
//	                                   commit its placement
//	GET    /v1/topologies/{id}/lookup  which node serves chunk n to requester j
//	GET    /v1/topologies/{id}/report  snapshot + fairness metrics + storage curve
//	GET    /healthz                    liveness
//	GET    /metrics                    Prometheus text-format metrics
//	GET    /debug/vars                 expvar globals + this server's counters (legacy shim)
//
// Every error is a typed JSON object {"error":{"code","message"}} with a
// matching HTTP status.
package server

import (
	"context"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"reflect"
	"slices"
	"sync"
	"time"

	faircache "repro"

	"repro/internal/trace"
	"repro/internal/wal"
)

// Options configures a Server. The zero value is ready for production
// defaults (in-memory, no durability).
type Options struct {
	// SolveTimeout caps the server-side duration of one solve request
	// (default 30s). A request's own timeoutMs can only shorten it.
	SolveTimeout time.Duration
	// MaxNodes caps registered topology sizes (default 4096).
	MaxNodes int
	// MaxPublishBatch caps the count of one publish request (default 64).
	MaxPublishBatch int
	// DisableCoalescing turns off singleflight coalescing of identical
	// solve and report requests. Coalescing is on by default; disabling
	// it makes every request run its own computation (the before/after
	// baseline for the loadgen comparison).
	DisableCoalescing bool

	// DataDir enables durability: the write-ahead log and full-state
	// snapshots live here and New recovers from them. Empty keeps the
	// service purely in-memory.
	DataDir string
	// Fsync is the WAL sync policy: "always" (default), "interval" or
	// "never".
	Fsync string
	// FsyncInterval is the background flush cadence for Fsync="interval"
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery writes a full-state snapshot and compacts the log
	// after this many records (default 256; negative disables automatic
	// snapshots).
	SnapshotEvery int
	// MaxSegmentBytes rotates WAL segments at this size (default 4MiB).
	MaxSegmentBytes int64

	// Logger receives the daemon's leveled operational records
	// (registrations, deletions, WAL recovery, abandoned flights),
	// tagged with trace ids where one is in scope. Nil discards them.
	Logger *slog.Logger
	// TraceSample records solve-phase spans for 1 in every N solve and
	// adapt requests into the per-topology and server span rings served
	// on GET /debug/trace (0 = off, the default; requests with
	// options.explain record regardless).
	TraceSample int
}

// logger returns the configured logger, or a discard logger when nil so
// call sites never guard.
func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record; the stdlib gains slog.DiscardHandler
// only in go1.24, which this module does not assume.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

func (o Options) withDefaults() Options {
	if o.SolveTimeout <= 0 {
		o.SolveTimeout = 30 * time.Second
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 4096
	}
	if o.MaxPublishBatch <= 0 {
		o.MaxPublishBatch = 64
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 256
	}
	return o
}

// Server is the placement service. It implements http.Handler; wrap it in
// an http.Server to expose it on a socket. Close stops every topology
// worker; call it after http.Server.Shutdown has drained in-flight
// requests.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	start   time.Time
	log     *slog.Logger
	vars    *expvar.Map    // per-Server counters (legacy shim; /metrics is canonical)
	metrics *serverMetrics // Prometheus instruments served on GET /metrics
	journal *journal       // nil in in-memory mode

	// tracer records server-layer spans (coalesce flights, WAL appends,
	// startup recovery); per-topology solve spans live in each solver's
	// own ring. GET /debug/trace merges both.
	tracer *trace.Tracer
	// walRecovery is the startup recovery duration, written once in New
	// before the server is shared and read by the metrics gauge.
	walRecovery time.Duration

	mu     sync.RWMutex
	topos  map[string]*topology
	nextID int
	closed bool
}

// New returns a ready-to-serve placement service. With Options.DataDir
// set it first recovers the registry from the directory's write-ahead
// log: the topology graphs are rebuilt from their recorded generator
// specs, online state is replayed publication by publication (the
// engine is deterministic, so TTL expiry and holder sets come back
// identical), and the recovered holder sets are verified against the
// logged committed snapshots.
func New(opts Options) (*Server, error) {
	s := &Server{
		opts:   opts.withDefaults(),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		vars:   new(expvar.Map).Init(),
		topos:  make(map[string]*topology),
		tracer: trace.New(0),
	}
	s.log = s.opts.logger()
	s.tracer.SetSampling(s.opts.TraceSample)
	s.metrics = newServerMetrics(s)
	// Server-layer spans feed the same phase histogram the per-solver
	// observers do; only sampled and explain requests reach here.
	s.tracer.Observe(func(r *trace.Record) {
		s.metrics.phaseDuration.WithLabelValues(r.Name).Observe(r.Duration().Seconds())
	})
	if s.opts.DataDir != "" {
		if err := s.openJournal(); err != nil {
			return nil, err
		}
	}
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.metrics.registry.ServeHTTP))
	s.mux.HandleFunc("GET /debug/vars", s.instrument("debug_vars", s.handleVars))
	s.mux.HandleFunc("GET /debug/trace", s.instrument("debug_trace", s.handleDebugTrace))
	s.mux.HandleFunc("POST /v1/topologies", s.instrument("register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/topologies", s.instrument("list", s.handleList))
	s.mux.HandleFunc("GET /v1/topologies/{id}", s.instrument("get", s.handleGetTopology))
	s.mux.HandleFunc("DELETE /v1/topologies/{id}", s.instrument("delete", s.handleDelete))
	s.mux.HandleFunc("POST /v1/topologies/{id}/solve", s.instrument("solve", s.handleSolve))
	s.mux.HandleFunc("POST /v1/topologies/{id}/publish", s.instrument("publish", s.handlePublish))
	s.mux.HandleFunc("POST /v1/topologies/{id}/requests", s.instrument("requests", s.handleRequests))
	s.mux.HandleFunc("POST /v1/topologies/{id}/adapt", s.instrument("adapt", s.handleAdapt))
	s.mux.HandleFunc("GET /v1/topologies/{id}/lookup", s.instrument("lookup", s.handleLookup))
	s.mux.HandleFunc("GET /v1/topologies/{id}/report", s.instrument("report", s.handleReport))
	return s, nil
}

// openJournal opens (and recovers from) the WAL in opts.DataDir. The
// recovery is timed (faircached_wal_recovery_seconds) and recorded as a
// "wal.recover" span in the server's trace ring.
func (s *Server) openJournal() error {
	begin := time.Now()
	rtr := s.tracer.StartTrace("startup", true)
	rsp := rtr.Start("wal.recover")
	policy, err := wal.ParseSyncPolicy(s.opts.Fsync)
	if err != nil {
		return err
	}
	log, recovered, err := wal.Open(wal.Options{
		Dir:             s.opts.DataDir,
		Policy:          policy,
		Interval:        s.opts.FsyncInterval,
		MaxSegmentBytes: s.opts.MaxSegmentBytes,
		Logger:          s.log,
	})
	if err != nil {
		return err
	}
	shadow, err := foldWAL(recovered)
	if err != nil {
		log.Close()
		return fmt.Errorf("server: WAL recovery: %w", err)
	}
	if err := s.restore(shadow); err != nil {
		log.Close()
		return fmt.Errorf("server: WAL recovery: %w", err)
	}
	s.journal = &journal{vars: s.vars, appendDur: s.metrics.walAppendDuration, log: log, shadow: shadow, every: s.opts.SnapshotEvery}
	s.walRecovery = time.Since(begin)
	rsp.SetInt("topologies", int64(len(s.topos)))
	rsp.SetInt("records", int64(len(recovered.Records)))
	rsp.End()
	s.log.Info("wal recovery complete",
		"dir", s.opts.DataDir,
		"topologies", len(s.topos),
		"records", len(recovered.Records),
		"durationMs", float64(s.walRecovery.Microseconds())/1000)
	return nil
}

// restore rebuilds the live registry from recovered WAL state. Replay is
// deterministic, so re-publishing Clock arrivals reproduces the online
// system (storage, expiry clocks, chunk ids) exactly; the recovered
// holder sets are checked against the last logged committed snapshot.
func (s *Server) restore(shadow *walShadow) error {
	st := shadow.state()
	for i := range st.Topologies {
		ts := &st.Topologies[i]
		topo, kind, err := buildTopology(&ts.Spec)
		if err != nil {
			return fmt.Errorf("topology %s: rebuilding %q graph: %w", ts.ID, ts.Kind, err)
		}
		online, err := faircache.NewOnline(topo, ts.Producer, &faircache.Options{
			Capacity:       ts.Capacity,
			ChunkTTL:       ts.Spec.ChunkTTL,
			FairnessWeight: ts.Spec.FairnessWeight,
		})
		if err != nil {
			return fmt.Errorf("topology %s: rebuilding online system: %w", ts.ID, err)
		}
		for c := 0; c < ts.Clock; c++ {
			if _, err := online.Publish(); err != nil {
				return fmt.Errorf("topology %s: replaying publication %d/%d: %w", ts.ID, c+1, ts.Clock, err)
			}
		}
		if ts.Snap != nil && ts.Snap.Source == "publish" {
			os := online.Snapshot()
			if os.Clock != ts.Snap.Clock || !reflect.DeepEqual(os.Holders, ts.Snap.Holders) ||
				!reflect.DeepEqual(os.Counts, ts.Snap.Counts) {
				return fmt.Errorf("topology %s: replayed online state diverges from the logged snapshot (clock %d vs %d)",
					ts.ID, os.Clock, ts.Snap.Clock)
			}
		}
		version := 1
		if ts.Snap != nil {
			version = ts.Snap.Version
		}
		tp := newTopology(ts.ID, kind, topo, ts.Producer, ts.Capacity, online, version, ts.Snap)
		s.wireObservability(tp)
		s.topos[ts.ID] = tp
		s.log.Debug("topology recovered",
			"id", ts.ID, "kind", kind, "nodes", topo.NumNodes(), "version", version, "clock", ts.Clock)
	}
	s.nextID = shadow.nextID
	s.vars.Add("recovered_topologies", int64(len(st.Topologies)))
	return nil
}

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close unregisters every topology and stops its worker, then closes the
// write-ahead log (when one is open). In-flight mutations finish; queued
// ones fail with a "gone" error. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	stopped := make([]*topology, 0, len(s.topos))
	for id, tp := range s.topos {
		delete(s.topos, id)
		stopped = append(stopped, tp)
	}
	s.mu.Unlock()
	for _, tp := range stopped {
		tp.stop()
		tp.wg.Wait()
	}
	_ = s.journal.close()
}

// lookupTopology resolves a topology id under the read lock.
func (s *Server) lookupTopology(id string) (*topology, *Error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tp, ok := s.topos[id]
	if !ok {
		return nil, notFoundf("unknown topology %q", id)
	}
	return tp, nil
}

// ids returns the registered topology ids, sorted.
func (s *Server) ids() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.topos))
	for id := range s.topos {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// instrument wraps a handler with per-endpoint request, error and
// latency accounting in both the Prometheus registry (the canonical
// surface) and this Server's own expvar map (the legacy shim). Both are
// per-instance, so embedded servers and tests never share counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.vars.Add("requests", 1)
		s.vars.Add("requests_"+name, 1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.vars.Add("latency_us_"+name, elapsed.Microseconds())
		s.metrics.requests.WithLabelValues(name).Inc()
		s.metrics.duration.WithLabelValues(name).Observe(elapsed.Seconds())
		if rec.status >= 400 {
			s.metrics.errors.WithLabelValues(name).Inc()
		}
	}
}

// wireObservability connects a fresh topology's solver tracing and
// coalesce hooks to the server's metrics and logger. Must run before the
// topology is published to the registry (observer and hook installation
// is not synchronized with traffic).
func (s *Server) wireObservability(tp *topology) {
	tp.solver.SetTraceSampling(s.opts.TraceSample)
	tp.solver.OnTraceSpan(func(sp faircache.TraceSpan) {
		s.metrics.phaseDuration.WithLabelValues(sp.Name).Observe(sp.DurationMs / 1e3)
	})
	tp.solveG.OnDetach = s.detachHook("solve", tp.id)
	tp.reportG.OnDetach = s.detachHook("report", tp.id)
}

// detachHook builds the coalesce-group detach callback for one endpoint:
// it counts the detach (and the flight abort when the caller was the
// last one) and logs a warning tagged with the caller's trace id.
func (s *Server) detachHook(endpoint, id string) func(ctx context.Context, key string, alone bool) {
	return func(ctx context.Context, key string, alone bool) {
		s.metrics.coalesceDetached.WithLabelValues(endpoint).Inc()
		if alone {
			s.metrics.coalesceAborted.WithLabelValues(endpoint).Inc()
		}
		s.log.Warn("caller detached from coalesced flight",
			"endpoint", endpoint, "topology", id, "key", key,
			"flightAborted", alone, "traceId", traceIDFrom(ctx))
	}
}

// handleVars serves the same shape expvar.Handler does — every published
// global variable — plus this server's "faircached" counter map, which
// is deliberately NOT registered in the process-global expvar namespace
// (registration there is permanent and would bleed counters across
// Server instances).
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "faircached" {
			return // never collide with the per-server map below
		}
		fmt.Fprintf(w, "%q: %s,\n", kv.Key, kv.Value.String())
	})
	fmt.Fprintf(w, "%q: %s\n}\n", "faircached", s.vars.String())
}
