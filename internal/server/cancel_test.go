package server

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestAsErrorContextMapping pins the typed-error mapping for the context
// sentinels the cancellable engine propagates: deadline expiry is a 504
// timeout, client cancellation the non-standard 499, and wrapping layers
// ("faircache: chunk 3: context canceled") must not defeat either.
func TestAsErrorContextMapping(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout, CodeTimeout},
		{fmt.Errorf("faircache: chunk 3: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, CodeTimeout},
		{context.Canceled, StatusClientClosedRequest, CodeCanceled},
		{fmt.Errorf("faircache: confl: dual growth interrupted: %w", context.Canceled), StatusClientClosedRequest, CodeCanceled},
	}
	for _, c := range cases {
		e := asError(c.err)
		if e.Status != c.wantStatus || e.Code != c.wantCode {
			t.Errorf("asError(%v) = %d/%s, want %d/%s", c.err, e.Status, e.Code, c.wantStatus, c.wantCode)
		}
	}
}

// TestSolveDeadlineAbortsEngine registers a topology where a full solve
// takes a measurable amount of work, then issues the same solve with a
// tiny per-request timeout. The request must come back as a typed 504
// well before the full solve duration — the deadline aborts the engine
// mid-solve rather than letting it run to completion and discarding the
// result — and the worker must be free for the next request immediately.
func TestSolveDeadlineAbortsEngine(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(15, 15, 9)
	solve := SolveRequest{Algorithm: "appx", Chunks: 64, Options: &SolveOptions{Capacity: 3}}

	// Reference: the full solve, untimed-out.
	start := time.Now()
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", solve, nil, http.StatusOK)
	full := time.Since(start)

	// The same solve with a 30ms deadline must abort early.
	solve.TimeoutMs = 30
	start = time.Now()
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve", solve, http.StatusGatewayTimeout, CodeTimeout)
	aborted := time.Since(start)
	if aborted >= full {
		t.Fatalf("timed-out solve took %v, full solve takes %v — engine was not aborted", aborted, full)
	}

	// The worker is free: a small solve right behind the aborted one
	// commits normally (it would queue behind a still-running engine).
	var out SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: "hopc", Chunks: 2}, &out, http.StatusOK)
	if out.Version < 2 {
		t.Fatalf("follow-up solve version = %d, want >= 2", out.Version)
	}
}

// TestSolveTimeoutDoesNotCommit asserts an aborted solve leaves no trace
// in the committed snapshot: the report still shows the prior state.
func TestSolveTimeoutDoesNotCommit(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(12, 12, 9)
	solve := SolveRequest{Algorithm: "appx", Chunks: 48, TimeoutMs: 20, Options: &SolveOptions{Capacity: 3}}
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve", solve, http.StatusGatewayTimeout, CodeTimeout)

	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Version != 1 || rep.Snapshot.Solves != 0 {
		t.Fatalf("aborted solve committed: version %d, solves %d", rep.Snapshot.Version, rep.Snapshot.Solves)
	}
}
