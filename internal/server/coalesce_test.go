package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockWorker parks tp's single-writer worker on a mutation that only
// returns when the returned release func is called. While parked, every
// solve flight queues behind it — which lets a test attach any number
// of concurrent callers to one flight deterministically.
func blockWorker(t *testing.T, s *Server, id string) (release func()) {
	t.Helper()
	tp, terr := s.lookupTopology(id)
	if terr != nil {
		t.Fatalf("lookupTopology(%s): %v", id, terr)
	}
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = tp.do(context.Background(), func(context.Context) (any, error) {
			close(started)
			<-gate
			return nil, nil
		})
	}()
	<-started
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(gate) }); <-done })
	return func() { once.Do(func() { close(gate) }); <-done }
}

// waitSolveFlights polls until the topology's solve group has seen the
// wanted flight and hit totals.
func waitSolveFlights(t *testing.T, s *Server, id string, flights, hits uint64) {
	t.Helper()
	tp, terr := s.lookupTopology(id)
	if terr != nil {
		t.Fatalf("lookupTopology(%s): %v", id, terr)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tp.solveG.Stats()
		if st.Flights == flights && st.Hits == hits {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("solve group never reached flights=%d hits=%d; stats %+v", flights, hits, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSolveCoalescing attaches 8 concurrent identical solves to one
// flight and checks exactly one underlying computation ran: one commit,
// one solver invocation, seven coalesced responses.
func TestSolveCoalescing(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)

	release := blockWorker(t, s, reg.ID)

	const callers = 8
	req := SolveRequest{Chunks: 3, Options: &SolveOptions{Algorithm: "appx"}}
	responses := make([]SolveResponse, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", req, &responses[i], http.StatusOK)
		}(i)
	}
	// With the worker parked, all 8 requests pile onto one flight before
	// any computation can start.
	waitSolveFlights(t, s, reg.ID, 1, callers-1)
	release()
	wg.Wait()

	coalesced := 0
	for i, resp := range responses {
		if resp.Version != 2 || resp.Algorithm != "Appx" || len(resp.Holders) != 3 {
			t.Fatalf("response %d = %+v, want committed v2 Appx placement", i, resp)
		}
		if resp.Coalesced {
			coalesced++
		}
	}
	if coalesced != callers-1 {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, callers-1)
	}

	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Solves != 1 {
		t.Errorf("committed solves = %d, want exactly 1 for %d coalesced requests", rep.Snapshot.Solves, callers)
	}
	if total := rep.Solver.ColdBuilds + rep.Solver.WarmSolves + rep.Solver.PartitionedSolves; total != 1 {
		t.Errorf("solver ran %d times (%+v), want exactly 1", total, rep.Solver)
	}
	if rep.Coalesce.Solve.Flights != 1 || rep.Coalesce.Solve.Hits != uint64(callers-1) {
		t.Errorf("report coalesce stats %+v, want 1 flight with %d hits", rep.Coalesce.Solve, callers-1)
	}
}

// TestSolveCoalesceCancelledCaller checks a caller hanging up detaches
// from the flight without aborting it: the surviving caller still gets
// the committed result.
func TestSolveCoalesceCancelledCaller(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)

	release := blockWorker(t, s, reg.ID)

	ctx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "POST", c.srv.URL+"/v1/topologies/"+reg.ID+"/solve",
			strings.NewReader(`{"chunks": 3}`))
		_, err := c.srv.Client().Do(req)
		leaderErr <- err
	}()
	// The leader's flight is up; attach a second caller, then hang the
	// leader up.
	waitSolveFlights(t, s, reg.ID, 1, 0)
	var follower SolveResponse
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Chunks: 3}, &follower, http.StatusOK)
	}()
	waitSolveFlights(t, s, reg.ID, 1, 1)
	cancel()
	if err := <-leaderErr; err == nil {
		t.Error("cancelled leader's request returned no error")
	}
	// The server notices the hangup asynchronously; wait for the detach
	// to land before letting the flight finish.
	tp, _ := s.lookupTopology(reg.ID)
	for deadline := time.Now().Add(5 * time.Second); tp.solveG.Stats().Detached == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("leader never detached; stats %+v", tp.solveG.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	release()
	<-followerDone

	if follower.Version != 2 || !follower.Coalesced {
		t.Fatalf("follower response %+v, want coalesced committed v2", follower)
	}
	st := tp.solveG.Stats()
	if st.Detached != 1 || st.Aborted != 0 {
		t.Errorf("stats %+v: cancelled leader should detach without aborting the flight", st)
	}
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Solves != 1 {
		t.Errorf("committed solves = %d, want 1", rep.Snapshot.Solves)
	}
}

// TestSolveCoalesceDistinctRequests checks requests that differ in any
// computation-shaping field never share a flight, while a differing
// timeoutMs (a caller-side knob) still coalesces.
func TestSolveCoalesceDistinctRequests(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)

	release := blockWorker(t, s, reg.ID)

	// Same chunks, one with a caller timeout: one flight. Different
	// chunks, algorithm or workers: three more flights.
	reqs := []SolveRequest{
		{Chunks: 3},
		{Chunks: 3, TimeoutMs: 60000},
		{Chunks: 4},
		{Chunks: 3, Options: &SolveOptions{Algorithm: "dist"}},
		{Chunks: 3, Options: &SolveOptions{Workers: 1}},
	}
	var wg sync.WaitGroup
	responses := make([]SolveResponse, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req SolveRequest) {
			defer wg.Done()
			c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", req, &responses[i], http.StatusOK)
		}(i, req)
	}
	waitSolveFlights(t, s, reg.ID, 4, 1)
	release()
	wg.Wait()

	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Solves != 4 {
		t.Errorf("committed solves = %d, want 4 distinct computations", rep.Snapshot.Solves)
	}
	coalesced := 0
	for _, resp := range responses {
		if resp.Coalesced {
			coalesced++
		}
	}
	if coalesced != 1 {
		t.Errorf("%d coalesced responses, want exactly 1 (the timeoutMs twin)", coalesced)
	}
}

// TestDisableCoalescing checks the opt-out: every request computes
// alone.
func TestDisableCoalescing(t *testing.T) {
	c, _ := newTestClient(t, Options{DisableCoalescing: true})
	reg := c.registerGrid(4, 4, 5)

	const callers = 4
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var out SolveResponse
			c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Chunks: 3}, &out, http.StatusOK)
			if out.Coalesced {
				t.Error("response marked coalesced with coalescing disabled")
			}
		}()
	}
	wg.Wait()
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Solves != callers {
		t.Errorf("committed solves = %d, want %d (no coalescing)", rep.Snapshot.Solves, callers)
	}
	if rep.Coalesce.Solve.Flights != 0 || rep.Coalesce.Solve.Hits != 0 {
		t.Errorf("coalesce stats %+v, want untouched group", rep.Coalesce.Solve)
	}
}

// TestReportCoalescing checks reports carry the dedup counters and that
// a lone report never claims to be coalesced.
func TestReportCoalescing(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(3, 3, 4)
	var solve SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Chunks: 2}, &solve, http.StatusOK)

	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Coalesced {
		t.Error("lone report marked coalesced")
	}
	if rep.Coalesce.Solve.Flights != 1 {
		t.Errorf("report solve-flight counter = %+v, want 1 flight", rep.Coalesce.Solve)
	}
	// The report flight that served this response is itself counted.
	if rep.Coalesce.Report.Flights != 1 {
		t.Errorf("report report-flight counter = %+v, want 1 flight", rep.Coalesce.Report)
	}
}
