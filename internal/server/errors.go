package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	faircache "repro"

	"repro/internal/demand"
)

// Error is the typed JSON error every endpoint returns on failure. The
// wire form is {"error": {"code": ..., "message": ...}} with the HTTP
// status matching Status.
type Error struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes used by the service.
const (
	CodeBadRequest = "bad_request" // malformed body, unknown field values, range errors
	CodeNotFound   = "not_found"   // unknown topology id, unknown chunk, bad route
	CodeGone       = "gone"        // topology deleted while the request was in flight
	CodeTimeout    = "timeout"     // request deadline expired; the engine aborted mid-solve
	CodeCanceled   = "canceled"    // client went away; the engine aborted mid-solve
	CodeShutdown   = "shutting_down"
	CodeInternal   = "internal"
)

// StatusClientClosedRequest is the non-standard HTTP status (nginx's 499)
// reported when a solve is abandoned because the client disconnected. No
// client reads it — the connection is gone — but it keeps access logs and
// metrics distinguishing "we were slow" (504) from "they left" (499).
const StatusClientClosedRequest = 499

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func badRequestf(format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) *Error {
	return &Error{Status: http.StatusNotFound, Code: CodeNotFound, Message: fmt.Sprintf(format, args...)}
}

func timeoutf(format string, args ...any) *Error {
	return &Error{Status: http.StatusGatewayTimeout, Code: CodeTimeout, Message: fmt.Sprintf(format, args...)}
}

func gonef(format string, args ...any) *Error {
	return &Error{Status: http.StatusGone, Code: CodeGone, Message: fmt.Sprintf(format, args...)}
}

// asError normalises any error into a typed *Error: the public library's
// argument errors map to bad_request, and the context sentinels the
// cancellable engine propagates map to timeout (504, deadline passed) or
// canceled (499, client went away) instead of internal.
func asError(err error) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	if errors.Is(err, faircache.ErrBadArgument) || errors.Is(err, faircache.ErrNotConnected) || errors.Is(err, demand.ErrBadInput) {
		return badRequestf("%v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return timeoutf("%v", err)
	}
	if errors.Is(err, context.Canceled) {
		return &Error{Status: StatusClientClosedRequest, Code: CodeCanceled, Message: err.Error()}
	}
	return &Error{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
}

// writeError records the failure in this server's counters and writes
// the typed JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	e := asError(err)
	s.vars.Add("errors", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(struct {
		Error *Error `json:"error"`
	}{e})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
