package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

func startService(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	srv, err := server.New(server.Options{})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	producer := 5
	body, _ := json.Marshal(server.RegisterRequest{
		Kind: "grid", Rows: 4, Cols: 4, Producer: &producer, Capacity: 4,
	})
	resp, err := http.Post(ts.URL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	var reg server.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	return ts, reg.ID
}

// readCounters samples the faircached expvar map from /debug/vars.
func readCounters(t *testing.T, baseURL string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/vars")
	if err != nil {
		t.Fatalf("debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var all struct {
		Faircached map[string]json.Number `json:"faircached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatalf("debug/vars decode: %v", err)
	}
	out := make(map[string]int64, len(all.Faircached))
	for k, v := range all.Faircached {
		if n, err := v.Int64(); err == nil {
			out[k] = n
		}
	}
	return out
}

// TestThroughputSmoke runs the load generator against a live service and
// asserts (a) the workload mostly succeeds with nonzero throughput and
// (b) the request/publication/lookup counters on /debug/vars increase
// monotonically across samples taken before, during and after the run.
func TestThroughputSmoke(t *testing.T) {
	ts, id := startService(t)

	keys := []string{"requests", "publications", "lookups"}
	samples := []map[string]int64{readCounters(t, ts.URL)}

	done := make(chan struct{})
	var stats *Stats
	var runErr error
	go func() {
		defer close(done)
		stats, runErr = Run(context.Background(), Config{
			BaseURL:    ts.URL,
			TopologyID: id,
			Workers:    4,
			Requests:   120,
		})
	}()
	// Sample counters while the generator is running.
	for i := 0; i < 3; i++ {
		time.Sleep(10 * time.Millisecond)
		samples = append(samples, readCounters(t, ts.URL))
	}
	<-done
	if runErr != nil {
		t.Fatalf("loadgen: %v", runErr)
	}
	samples = append(samples, readCounters(t, ts.URL))

	if stats.Total() == 0 || stats.Throughput() <= 0 {
		t.Fatalf("no successful operations: %+v", stats)
	}
	if stats.Publishes == 0 || stats.Lookups == 0 {
		t.Fatalf("workload mix degenerate: %+v", stats)
	}
	if stats.Errors > stats.Total()/10 {
		t.Fatalf("error rate too high: %+v", stats)
	}

	for _, key := range keys {
		for i := 1; i < len(samples); i++ {
			if samples[i][key] < samples[i-1][key] {
				t.Errorf("counter %s decreased between samples %d and %d: %d -> %d",
					key, i-1, i, samples[i-1][key], samples[i][key])
			}
		}
		first, last := samples[0][key], samples[len(samples)-1][key]
		if last <= first {
			t.Errorf("counter %s did not increase across the run: %d -> %d", key, first, last)
		}
	}
	t.Logf("loadgen: %d ops in %v (%.0f ops/s), %d publishes, %d lookups, %d errors",
		stats.Total(), stats.Elapsed.Round(time.Millisecond), stats.Throughput(),
		stats.Publishes, stats.Lookups, stats.Errors)
}

// TestRunValidation covers the generator's own input checks.
func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("Run with empty config should fail")
	}
	ts, _ := startService(t)
	if _, err := Run(context.Background(), Config{BaseURL: ts.URL, TopologyID: "nope"}); err == nil {
		t.Fatal("Run against unknown topology should fail on the initial report")
	}
}

// TestRunCancel stops the generator early without error.
func TestRunCancel(t *testing.T) {
	ts, id := startService(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := Run(ctx, Config{BaseURL: ts.URL, TopologyID: id, Requests: 1000})
	if err != nil {
		// The initial report may race the cancel; either outcome is fine
		// as long as a started run stops promptly.
		return
	}
	if stats.Total() > 1000 {
		t.Fatalf("cancelled run did too much work: %+v", stats)
	}
}
