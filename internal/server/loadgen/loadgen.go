// Package loadgen is a small in-repo load generator for the faircached
// placement service, built on the typed client package. It drives two
// workloads against one registered topology:
//
//   - Run: a mixed read/write workload — mostly placement lookups, with
//     periodic online publications and fairness reports — reporting
//     throughput. The daemon's -load mode and the throughput smoke
//     tests use it.
//   - RunSolveBurst: a skewed burst of identical solve requests, the
//     production-traffic shape request coalescing exists for. It
//     reports the coalescing hit rate (requests served by attaching to
//     a shared in-progress flight), the number of underlying solve
//     computations, and p50/p99 latency — so one run with coalescing
//     enabled and one with it disabled is a before/after comparison.
package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/server"
)

// Config tunes one mixed load run. BaseURL and TopologyID are required.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// TopologyID is the registered topology to drive.
	TopologyID string
	// Workers is the number of concurrent clients (default 4).
	Workers int
	// Requests is the total operation count across workers (default 200).
	Requests int
	// PublishEvery makes every n-th operation an online publication
	// (default 10); every 25th is a fairness report, the rest are
	// lookups.
	PublishEvery int
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 10
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return c
}

// Stats is the outcome of one mixed load run.
type Stats struct {
	Lookups   int64
	Publishes int64
	Reports   int64
	Errors    int64
	Elapsed   time.Duration
}

// Total returns the number of operations that completed successfully.
func (s *Stats) Total() int64 { return s.Lookups + s.Publishes + s.Reports }

// Throughput returns successful operations per second.
func (s *Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Total()) / s.Elapsed.Seconds()
}

// Run drives the mixed workload and returns aggregate stats. The first
// operation is always a publication so lookups have a known chunk to
// target. Run stops early (without error) when ctx is cancelled.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || cfg.TopologyID == "" {
		return nil, fmt.Errorf("loadgen: BaseURL and TopologyID are required")
	}
	cl := client.New(cfg.BaseURL, client.WithHTTPClient(cfg.Client))

	rep, err := cl.Report(ctx, cfg.TopologyID)
	if err != nil {
		return nil, fmt.Errorf("loadgen: initial report: %w", err)
	}
	nodes := rep.Nodes
	if nodes == 0 {
		return nil, fmt.Errorf("loadgen: topology %s has no nodes", cfg.TopologyID)
	}

	var (
		stats Stats
		known atomic.Int64 // published chunk ids, updated from publish responses
		next  atomic.Int64 // operation index dispenser
	)
	known.Store(int64(rep.Snapshot.Chunks))

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				switch {
				case i == 0 || i%cfg.PublishEvery == 0:
					pub, err := cl.Publish(ctx, cfg.TopologyID, 1)
					if err != nil {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					if int64(pub.Published) > known.Load() {
						known.Store(int64(pub.Published))
					}
					atomic.AddInt64(&stats.Publishes, 1)
				case i%25 == 0:
					if _, err := cl.Report(ctx, cfg.TopologyID); err != nil {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					atomic.AddInt64(&stats.Reports, 1)
				default:
					k := known.Load()
					if k == 0 {
						k = 1 // chunk 0 may 404 until the first publish lands; tolerated below
					}
					chunk := i % int(k)
					node := (i * 13) % nodes
					if _, err := cl.Lookup(ctx, cfg.TopologyID, chunk, node); err != nil && !client.IsNotFound(err) {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					atomic.AddInt64(&stats.Lookups, 1)
				}
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return &stats, nil
}

// SolveBurstConfig tunes one identical-solve burst. BaseURL and
// TopologyID are required.
type SolveBurstConfig struct {
	// BaseURL is the service root.
	BaseURL string
	// TopologyID is the registered topology to hammer.
	TopologyID string
	// Requests is the total solve-request count (default 200).
	Requests int
	// Workers is the number of concurrent clients (default 16) — the
	// burst's concurrency is what creates coalescing opportunities.
	Workers int
	// Chunks and Algorithm shape the identical request every worker
	// sends (defaults: 5 chunks, Appx).
	Chunks    int
	Algorithm string
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (c SolveBurstConfig) withDefaults() SolveBurstConfig {
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Chunks <= 0 {
		c.Chunks = 5
	}
	if c.Algorithm == "" {
		c.Algorithm = "Appx"
	}
	if c.Client == nil {
		// One keep-alive connection per worker: the default transport
		// keeps only 2 idle conns per host, and the resulting redials
		// stagger request arrivals enough to break up the very bursts
		// this workload exists to create.
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConns = c.Workers
		transport.MaxIdleConnsPerHost = c.Workers
		c.Client = &http.Client{Timeout: 30 * time.Second, Transport: transport}
	}
	return c
}

// SolveBurstStats is the outcome of one identical-solve burst.
type SolveBurstStats struct {
	// Requests and Errors count issued requests and failures.
	Requests int64
	Errors   int64
	// Coalesced counts responses served by attaching to another
	// request's in-progress flight (the response's coalesced flag).
	Coalesced int64
	// Solves is the number of underlying solve computations the burst
	// actually ran, measured as the committed-solve delta between the
	// before and after reports.
	Solves int64
	// P50 and P99 are request-latency percentiles over successful
	// requests.
	P50, P99 time.Duration
	Elapsed  time.Duration
}

// HitRate returns the fraction of successful requests served from a
// shared flight.
func (s *SolveBurstStats) HitRate() float64 {
	done := s.Requests - s.Errors
	if done <= 0 {
		return 0
	}
	return float64(s.Coalesced) / float64(done)
}

// Throughput returns successful requests per second.
func (s *SolveBurstStats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Requests-s.Errors) / s.Elapsed.Seconds()
}

// RunSolveBurst fires cfg.Requests identical solve requests from
// cfg.Workers concurrent clients and measures how many underlying
// computations they collapsed to. Stops early (without error) when ctx
// is cancelled.
func RunSolveBurst(ctx context.Context, cfg SolveBurstConfig) (*SolveBurstStats, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || cfg.TopologyID == "" {
		return nil, fmt.Errorf("loadgen: BaseURL and TopologyID are required")
	}
	cl := client.New(cfg.BaseURL, client.WithHTTPClient(cfg.Client))

	before, err := cl.Report(ctx, cfg.TopologyID)
	if err != nil {
		return nil, fmt.Errorf("loadgen: before report: %w", err)
	}

	solveReq := &server.SolveRequest{
		Chunks:  cfg.Chunks,
		Options: &server.SolveOptions{Algorithm: cfg.Algorithm},
	}
	var (
		stats SolveBurstStats
		next  atomic.Int64
		mu    sync.Mutex
		lats  []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			for {
				if ctx.Err() != nil {
					break
				}
				if int(next.Add(1)) > cfg.Requests {
					break
				}
				atomic.AddInt64(&stats.Requests, 1)
				t0 := time.Now()
				resp, err := cl.Solve(ctx, cfg.TopologyID, solveReq)
				if err != nil {
					atomic.AddInt64(&stats.Errors, 1)
					continue
				}
				local = append(local, time.Since(t0))
				if resp.Coalesced {
					atomic.AddInt64(&stats.Coalesced, 1)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)

	after, err := cl.Report(ctx, cfg.TopologyID)
	if err != nil {
		return nil, fmt.Errorf("loadgen: after report: %w", err)
	}
	stats.Solves = int64(after.Snapshot.Solves - before.Snapshot.Solves)

	slices.Sort(lats)
	stats.P50 = percentile(lats, 50)
	stats.P99 = percentile(lats, 99)
	return &stats, nil
}

// percentile picks the p-th percentile of an ascending-sorted latency
// slice (nearest-rank); 0 for an empty slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
