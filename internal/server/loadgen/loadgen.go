// Package loadgen is a small in-repo load generator for the faircached
// placement service. It drives a mixed read/write workload — mostly
// placement lookups, with periodic online publications and fairness
// reports — against one registered topology, and reports throughput.
// The daemon's -load mode and the throughput smoke tests use it.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes one load run. BaseURL and TopologyID are required.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// TopologyID is the registered topology to drive.
	TopologyID string
	// Workers is the number of concurrent clients (default 4).
	Workers int
	// Requests is the total operation count across workers (default 200).
	Requests int
	// PublishEvery makes every n-th operation an online publication
	// (default 10); every 25th is a fairness report, the rest are
	// lookups.
	PublishEvery int
	// Client overrides the HTTP client (default: 5s timeout).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 10
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return c
}

// Stats is the outcome of one load run.
type Stats struct {
	Lookups   int64
	Publishes int64
	Reports   int64
	Errors    int64
	Elapsed   time.Duration
}

// Total returns the number of operations that completed successfully.
func (s *Stats) Total() int64 { return s.Lookups + s.Publishes + s.Reports }

// Throughput returns successful operations per second.
func (s *Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Total()) / s.Elapsed.Seconds()
}

// report is the subset of the service's report response the generator
// needs to shape the workload.
type report struct {
	Nodes    int `json:"nodes"`
	Snapshot struct {
		Chunks int `json:"chunks"`
	} `json:"snapshot"`
}

// Run drives the workload and returns aggregate stats. The first
// operation is always a publication so lookups have a known chunk to
// target. Run stops early (without error) when ctx is cancelled.
func Run(ctx context.Context, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" || cfg.TopologyID == "" {
		return nil, fmt.Errorf("loadgen: BaseURL and TopologyID are required")
	}
	base := cfg.BaseURL + "/v1/topologies/" + cfg.TopologyID

	var rep report
	if err := getJSON(ctx, cfg.Client, base+"/report", &rep); err != nil {
		return nil, fmt.Errorf("loadgen: initial report: %w", err)
	}
	nodes := rep.Nodes
	if nodes == 0 {
		return nil, fmt.Errorf("loadgen: topology %s has no nodes", cfg.TopologyID)
	}

	var (
		stats Stats
		known atomic.Int64 // published chunk ids, updated from publish responses
		next  atomic.Int64 // operation index dispenser
	)
	known.Store(int64(rep.Snapshot.Chunks))

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				switch {
				case i == 0 || i%cfg.PublishEvery == 0:
					var pub struct {
						Published int `json:"published"`
					}
					if err := postJSON(ctx, cfg.Client, base+"/publish", nil, &pub); err != nil {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					if int64(pub.Published) > known.Load() {
						known.Store(int64(pub.Published))
					}
					atomic.AddInt64(&stats.Publishes, 1)
				case i%25 == 0:
					if err := getJSON(ctx, cfg.Client, base+"/report", &struct{}{}); err != nil {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					atomic.AddInt64(&stats.Reports, 1)
				default:
					k := known.Load()
					if k == 0 {
						k = 1 // chunk 0 may 404 until the first publish lands; tolerated below
					}
					chunk := i % int(k)
					node := (i * 13) % nodes
					url := fmt.Sprintf("%s/lookup?chunk=%d&node=%d", base, chunk, node)
					status, err := get(ctx, cfg.Client, url)
					if err != nil || (status != http.StatusOK && status != http.StatusNotFound) {
						atomic.AddInt64(&stats.Errors, 1)
						continue
					}
					atomic.AddInt64(&stats.Lookups, 1)
				}
			}
		}()
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return &stats, nil
}

func get(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func postJSON(ctx context.Context, client *http.Client, url string, in, out any) error {
	var rd io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, rd)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, body)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}
