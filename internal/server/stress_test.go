package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentLookupPublishStress interleaves >= 100 lookup requests
// with >= 10 online publications on one topology and verifies that every
// lookup observed a consistent snapshot: each answer names a node that
// actually cached the chunk in the committed state of the exact version
// the lookup reports (or the producer, which serves any known chunk).
// Run with -race to also exercise the memory model.
func TestConcurrentLookupPublishStress(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	producer := 5
	var reg RegisterResponse
	c.doJSON("POST", "/v1/topologies", RegisterRequest{
		Kind: "grid", Rows: 4, Cols: 4, Producer: &producer, Capacity: 3,
	}, &reg, http.StatusCreated)

	const (
		publications = 12
		readers      = 4
		lookupsEach  = 30
	)

	// committed[version] = holders map of that committed snapshot.
	committed := map[int]map[int][]int{
		1: {}, // the register commit holds nothing
	}
	var committedMu sync.Mutex
	var published atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single publisher
		defer wg.Done()
		for i := 0; i < publications; i++ {
			var pub PublishResponse
			c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &pub, http.StatusOK)
			committedMu.Lock()
			committed[pub.Version] = pub.Holders
			committedMu.Unlock()
			published.Store(int64(pub.Published))
		}
	}()

	type observation struct {
		lk  LookupResponse
		raw string
	}
	results := make(chan observation, readers*lookupsEach)
	var lookups atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < lookupsEach; i++ {
				known := int(published.Load())
				chunk := 0
				if known > 0 {
					chunk = (r*lookupsEach + i) % known
				}
				node := (r*7 + i*3) % 16
				resp, raw := c.do("GET",
					fmt.Sprintf("/v1/topologies/%s/lookup?chunk=%d&node=%d", reg.ID, chunk, node), nil)
				if resp.StatusCode == http.StatusNotFound {
					continue // raced ahead of the first publication
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("lookup status %d: %s", resp.StatusCode, raw)
					continue
				}
				var lk LookupResponse
				if err := json.Unmarshal(raw, &lk); err != nil {
					t.Errorf("lookup unmarshal: %v", err)
					continue
				}
				lookups.Add(1)
				results <- observation{lk, string(raw)}
			}
		}(r)
	}
	wg.Wait()
	close(results)

	if got := lookups.Load(); got < 100 {
		t.Fatalf("only %d successful lookups, want >= 100", got)
	}

	for obs := range results {
		lk := obs.lk
		if lk.FromProducer {
			if lk.ServedBy != producer {
				t.Fatalf("fromProducer lookup served by %d, want %d: %s", lk.ServedBy, producer, obs.raw)
			}
			continue
		}
		holders, ok := committed[lk.Version]
		if !ok {
			t.Fatalf("lookup observed version %d that was never committed: %s", lk.Version, obs.raw)
		}
		found := false
		for _, h := range holders[lk.Chunk] {
			if h == lk.ServedBy {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("lookup v%d chunk %d served by %d, but committed holders are %v: %s",
				lk.Version, lk.Chunk, lk.ServedBy, holders[lk.Chunk], obs.raw)
		}
	}
}

// TestConcurrentMixedWorkload hammers one topology with concurrent
// solves, publishes, lookups and reports to shake out data races in the
// registry / worker / snapshot machinery (meaningful under -race).
func TestConcurrentMixedWorkload(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 9)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (w + i) % 3 {
				case 0:
					c.do("POST", "/v1/topologies/"+reg.ID+"/solve",
						SolveRequest{Algorithm: "hopc", Chunks: 2})
				case 1:
					c.do("POST", "/v1/topologies/"+reg.ID+"/publish", nil)
				default:
					c.do("GET", "/v1/topologies/"+reg.ID+"/report", nil)
					c.do("GET", "/v1/topologies/"+reg.ID+"/lookup?chunk=0&node=3", nil)
				}
			}
		}(w)
	}
	wg.Wait()
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Version < 2 {
		t.Fatalf("no mutations committed: %+v", rep.Snapshot)
	}
}
