package server

import (
	"context"
	"net/http"

	faircache "repro"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// maxRequestBatch caps the event count of one requests batch; larger
// streams are reported in consecutive calls.
const maxRequestBatch = 8192

// DemandInit configures a topology's demand subsystem on first use. It
// may only accompany the first requests batch; later batches must omit
// it. The subsystem is in-memory only: a restart drops it, and the next
// requests batch re-initializes from a fresh static seed.
type DemandInit struct {
	// Chunks is the chunk-id space (default: the committed snapshot's
	// chunk count; required when no solve or publish has committed).
	Chunks int `json:"chunks,omitempty"`
	// Capacity is the subsystem's per-node capacity (default: the
	// topology's registered capacity).
	Capacity int `json:"capacity,omitempty"`
	// Eviction names the replacement strategy: cost (default), lru, lfu.
	Eviction string `json:"eviction,omitempty"`
	// HitRadius, TopDelta and CopyBudget tune serving and adaptation with
	// faircache.AdaptiveOptions semantics.
	HitRadius  int `json:"hitRadius,omitempty"`
	TopDelta   int `json:"topDelta,omitempty"`
	CopyBudget int `json:"copyBudget,omitempty"`
}

// DemandInfo reports a topology's demand subsystem state; nil in
// TopologyInfo means no request has been reported yet.
type DemandInfo struct {
	Chunks   int `json:"chunks"`
	Capacity int `json:"capacity"`
	faircache.AdaptiveStats
}

// RequestsRequest is the body of POST /v1/topologies/{id}/requests.
type RequestsRequest struct {
	// Events is the request batch, at most maxRequestBatch entries.
	Events []faircache.RequestEvent `json:"events"`
	// Init configures the demand subsystem when this is the first batch.
	Init *DemandInit `json:"init,omitempty"`
}

// RequestsResponse reports one ingested batch.
type RequestsResponse struct {
	// Batch is this call's hit/miss accounting; Demand the cumulative
	// subsystem state.
	Batch  faircache.BatchResult `json:"batch"`
	Demand *DemandInfo           `json:"demand"`
}

// initAdaptive builds the topology's demand subsystem. Worker goroutine
// only.
func (tp *topology) initAdaptive(ctx context.Context, init *DemandInit) error {
	cfg := DemandInit{}
	if init != nil {
		cfg = *init
	}
	if cfg.Chunks == 0 {
		cfg.Chunks = tp.snap.Load().Chunks
	}
	if cfg.Chunks < 1 {
		return badRequestf("no chunks known: solve or publish first, or set init.chunks")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = tp.capacity
	}
	adaptive, err := tp.solver.NewAdaptive(ctx, tp.producer, cfg.Chunks, &faircache.AdaptiveOptions{
		Capacity:   cfg.Capacity,
		Eviction:   cfg.Eviction,
		HitRadius:  cfg.HitRadius,
		TopDelta:   cfg.TopDelta,
		CopyBudget: cfg.CopyBudget,
	})
	if err != nil {
		return err
	}
	tp.adaptive = adaptive
	tp.demandCapacity = cfg.Capacity
	return nil
}

// demandInfo snapshots the subsystem's cumulative state for readers.
// Worker goroutine only; the result is stored atomically for the list
// and get handlers.
func (tp *topology) demandInfo() *DemandInfo {
	info := &DemandInfo{
		Chunks:        tp.adaptive.Chunks(),
		Capacity:      tp.demandCapacity,
		AdaptiveStats: tp.adaptive.Stats(),
	}
	tp.demand.Store(info)
	return info
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	var req RequestsRequest
	if err := decodeJSON(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Events) == 0 {
		s.writeError(w, badRequestf("empty events batch"))
		return
	}
	if len(req.Events) > maxRequestBatch {
		s.writeError(w, badRequestf("batch has %d events, limit is %d", len(req.Events), maxRequestBatch))
		return
	}
	v, err := tp.do(r.Context(), func(cctx context.Context) (any, error) {
		if tp.adaptive == nil {
			if err := tp.initAdaptive(cctx, req.Init); err != nil {
				return nil, err
			}
		} else if req.Init != nil {
			return nil, badRequestf("demand subsystem already initialized; omit init")
		}
		batch, err := tp.adaptive.Report(req.Events)
		if err != nil {
			return nil, err
		}
		s.vars.Add("demand_requests", batch.Requests)
		s.vars.Add("demand_hits", batch.LocalHits)
		s.vars.Add("demand_misses", batch.Requests-batch.CacheHits)
		s.metrics.demandEvents.Add(float64(batch.Requests))
		return &RequestsResponse{Batch: batch, Demand: tp.demandInfo()}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// AdaptRequest is the (optional) body of POST /v1/topologies/{id}/adapt.
// An empty body runs a plain pass.
type AdaptRequest struct {
	// Explain records the pass's phase spans and returns the breakdown
	// in adaptation.trace.
	Explain bool `json:"explain,omitempty"`
}

// AdaptResponse reports one committed adaptation pass.
type AdaptResponse struct {
	Version    int                         `json:"version"`
	Adaptation *faircache.AdaptationResult `json:"adaptation"`
	Holders    map[int][]int               `json:"holders"`
	Counts     []int                       `json:"counts"`
	Gini       float64                     `json:"gini"`
	Demand     *DemandInfo                 `json:"demand"`
	// TraceID identifies the pass's trace (from the caller's traceparent
	// header, or generated).
	TraceID string `json:"traceId,omitempty"`
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	tp, terr := s.lookupTopology(r.PathValue("id"))
	if terr != nil {
		s.writeError(w, terr)
		return
	}
	var req AdaptRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
	}
	traceID := requestTraceID(r)
	ctx := withTraceID(r.Context(), traceID)
	ctx = trace.NewContext(ctx, s.tracer.StartTrace(traceID, req.Explain))
	v, err := tp.do(ctx, func(cctx context.Context) (any, error) {
		if tp.adaptive == nil {
			return nil, badRequestf("no demand state: report requests before adapting")
		}
		res, err := tp.adaptive.AdaptWith(cctx, &faircache.AdaptRunOptions{
			Explain: req.Explain,
			TraceID: traceID,
		})
		if err != nil {
			return nil, err
		}
		holders := make(map[int][]int)
		for k, hs := range tp.adaptive.Placement() {
			if len(hs) > 0 {
				holders[k] = hs
			}
		}
		prev := tp.snap.Load()
		snap := &Snapshot{
			Version:      tp.version + 1,
			Source:       "adapt",
			Producer:     tp.producer,
			Chunks:       tp.adaptive.Chunks(),
			Holders:      holders,
			Counts:       tp.adaptive.Counts(),
			Clock:        prev.Clock,
			Solves:       prev.Solves,
			Publications: prev.Publications,
		}
		// Like solve records, the adapt record carries the absolute
		// committed snapshot; the demand stream that produced it is
		// deliberately not logged (it is ephemeral observation state).
		if jerr := s.journal.append(cctx, &WALRecord{Type: WALAdapt, ID: tp.id, Snap: snap},
			func() { tp.commit(snap) }); jerr != nil {
			return nil, jerr
		}
		s.vars.Add("adaptations", 1)
		s.vars.Add("demand_evictions", int64(res.Evicted))
		s.vars.Add("demand_copies_placed", int64(res.Placed))
		s.metrics.adaptPasses.Inc()
		s.metrics.adaptActions.WithLabelValues("evicted").Add(float64(res.Evicted))
		s.metrics.adaptActions.WithLabelValues("placed").Add(float64(res.Placed))
		s.metrics.adaptActions.WithLabelValues("replaced").Add(float64(len(res.Replaced)))
		return &AdaptResponse{
			Version:    snap.Version,
			Adaptation: res,
			Holders:    snap.Holders,
			Counts:     snap.Counts,
			Gini:       metrics.Gini(snap.Counts),
			Demand:     tp.demandInfo(),
			TraceID:    traceID,
		}, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}
