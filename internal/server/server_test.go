package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t   *testing.T
	srv *httptest.Server
}

func newTestClient(t *testing.T, opts Options) (*testClient, *Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &testClient{t: t, srv: ts}, s
}

func (c *testClient) do(method, path string, body any) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("read body: %v", err)
	}
	return resp, out
}

func (c *testClient) doJSON(method, path string, body, out any, wantStatus int) {
	c.t.Helper()
	resp, raw := c.do(method, path, body)
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d; body %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: unmarshal %q: %v", method, path, raw, err)
		}
	}
}

func (c *testClient) registerGrid(rows, cols, producer int) RegisterResponse {
	c.t.Helper()
	var out RegisterResponse
	c.doJSON("POST", "/v1/topologies", RegisterRequest{
		Kind: "grid", Rows: rows, Cols: cols, Producer: &producer,
	}, &out, http.StatusCreated)
	return out
}

type errorEnvelope struct {
	Error *Error `json:"error"`
}

func (c *testClient) wantError(method, path string, body any, wantStatus int, wantCode string) {
	c.t.Helper()
	resp, raw := c.do(method, path, body)
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d; body %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	var env errorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
		c.t.Fatalf("%s %s: not a typed error envelope: %s", method, path, raw)
	}
	if env.Error.Code != wantCode {
		c.t.Fatalf("%s %s: code %q, want %q (message %q)", method, path, env.Error.Code, wantCode, env.Error.Message)
	}
}

func TestHealthz(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	var out HealthResponse
	c.doJSON("GET", "/healthz", nil, &out, http.StatusOK)
	if out.Status != "ok" || out.Topologies != 0 {
		t.Fatalf("healthz = %+v, want ok with 0 topologies", out)
	}
	c.registerGrid(3, 3, 4)
	c.doJSON("GET", "/healthz", nil, &out, http.StatusOK)
	if out.Topologies != 1 {
		t.Fatalf("topologies = %d after register, want 1", out.Topologies)
	}
}

func TestRegisterKinds(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	cases := []struct {
		name string
		req  RegisterRequest
		n    int
	}{
		{"grid", RegisterRequest{Kind: "grid", Rows: 3, Cols: 4}, 12},
		{"random", RegisterRequest{Kind: "random", Nodes: 20, Seed: 7}, 20},
		{"clustered", RegisterRequest{Kind: "clustered", Clusters: 3, Size: 5, Seed: 1}, 15},
		{"line", RegisterRequest{Kind: "line", Nodes: 6}, 6},
		{"ring", RegisterRequest{Kind: "ring", Nodes: 8}, 8},
		{"links", RegisterRequest{Kind: "links", Nodes: 3, Links: [][2]int{{0, 1}, {1, 2}}}, 3},
	}
	for _, tc := range cases {
		var out RegisterResponse
		c.doJSON("POST", "/v1/topologies", tc.req, &out, http.StatusCreated)
		if out.Nodes != tc.n {
			t.Errorf("%s: nodes = %d, want %d", tc.name, out.Nodes, tc.n)
		}
		if out.Version != 1 {
			t.Errorf("%s: version = %d, want 1", tc.name, out.Version)
		}
	}
	var list struct {
		Topologies []TopologyInfo `json:"topologies"`
	}
	c.doJSON("GET", "/v1/topologies", nil, &list, http.StatusOK)
	if len(list.Topologies) != len(cases) {
		t.Fatalf("list has %d topologies, want %d", len(list.Topologies), len(cases))
	}
}

func TestRegisterValidation(t *testing.T) {
	c, _ := newTestClient(t, Options{MaxNodes: 50})
	c.wantError("POST", "/v1/topologies", RegisterRequest{Kind: "pyramid"}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies", RegisterRequest{Kind: "grid", Rows: 0, Cols: 5}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies", RegisterRequest{Kind: "grid", Rows: 10, Cols: 10}, http.StatusBadRequest, CodeBadRequest) // MaxNodes
	bad := 99
	c.wantError("POST", "/v1/topologies", RegisterRequest{Kind: "grid", Rows: 3, Cols: 3, Producer: &bad}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies", RegisterRequest{Kind: "links", Nodes: 4, Links: [][2]int{{0, 1}}}, http.StatusBadRequest, CodeBadRequest) // disconnected
	// Unknown JSON fields are rejected by the strict decoder.
	resp, _ := c.do("POST", "/v1/topologies", map[string]any{"kind": "grid", "rows": 3, "cols": 3, "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: status %d", resp.StatusCode)
	}
}

func TestSolveEveryAlgorithm(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 9)
	for _, alg := range []string{"appx", "dist", "hopc", "cont"} {
		var out SolveResponse
		c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve",
			SolveRequest{Algorithm: alg, Chunks: 3}, &out, http.StatusOK)
		if out.Algorithm == "" || len(out.Holders) != 3 {
			t.Fatalf("%s: bad solve response %+v", alg, out)
		}
		if out.TotalCost <= 0 {
			t.Errorf("%s: non-positive total cost %f", alg, out.TotalCost)
		}
		for chunk, holders := range out.Holders {
			if len(holders) == 0 {
				t.Errorf("%s: chunk %d has no holders", alg, chunk)
			}
		}
	}
	// Budgeted exact solve on a tiny topology.
	small := c.registerGrid(2, 2, 0)
	var out SolveResponse
	c.doJSON("POST", "/v1/topologies/"+small.ID+"/solve",
		SolveRequest{Algorithm: "brtf", Chunks: 1, Options: &SolveOptions{SearchBudget: 500}}, &out, http.StatusOK)
	if len(out.Holders) != 1 {
		t.Fatalf("brtf: holders %v", out.Holders)
	}
}

// TestSolvePartitioned drives the sharded solve path over HTTP: the
// options carry the region count, the response carries the decomposition
// report, and sharding any algorithm other than appx is a bad request.
func TestSolvePartitioned(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(8, 8, 9)
	var out SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "appx", Chunks: 3,
			Options: &SolveOptions{PartitionRegions: 4}}, &out, http.StatusOK)
	if out.Partition == nil {
		t.Fatal("partitioned solve response has no partition report")
	}
	if out.Partition.Regions != 4 {
		t.Fatalf("Regions = %d, want 4", out.Partition.Regions)
	}
	if out.Partition.MatrixCells >= out.Partition.FullMatrixCells {
		t.Fatalf("MatrixCells %d must be below FullMatrixCells %d",
			out.Partition.MatrixCells, out.Partition.FullMatrixCells)
	}
	for chunk, holders := range out.Holders {
		if len(holders) == 0 {
			t.Fatalf("chunk %d has no holders", chunk)
		}
	}
	// A global solve keeps the field empty.
	var global SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "appx", Chunks: 3}, &global, http.StatusOK)
	if global.Partition != nil {
		t.Fatalf("global solve reported a partition: %+v", global.Partition)
	}
	// The solver stats surface the sharded activity via the report.
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Solver.PartitionedSolves != 1 || rep.Solver.PartitionPlans != 1 {
		t.Fatalf("solver stats %+v: want 1 partitioned solve and 1 plan", rep.Solver)
	}
	// Sharding is appx-only and the region count is validated.
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "dist", Chunks: 3,
			Options: &SolveOptions{PartitionRegions: 4}}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "appx", Chunks: 3,
			Options: &SolveOptions{PartitionRegions: 1000}}, http.StatusBadRequest, CodeBadRequest)
}

func TestSolveValidation(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(3, 3, 4)
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "magic"}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "appx", Chunks: -2}, http.StatusBadRequest, CodeBadRequest)
	c.wantError("POST", "/v1/topologies/nope/solve",
		SolveRequest{Algorithm: "appx"}, http.StatusNotFound, CodeNotFound)
}

func TestSolveTimeout(t *testing.T) {
	c, _ := newTestClient(t, Options{SolveTimeout: time.Nanosecond})
	reg := c.registerGrid(4, 4, 9)
	// The solve cannot finish within a nanosecond; the worker either
	// skips it (queued past deadline) or discards the late result.
	c.wantError("POST", "/v1/topologies/"+reg.ID+"/solve",
		SolveRequest{Algorithm: "appx", Chunks: 2}, http.StatusGatewayTimeout, CodeTimeout)
	// A timed-out solve must not have committed a snapshot.
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Solves != 0 || rep.Snapshot.Chunks != 0 {
		t.Fatalf("timed-out solve committed: %+v", rep.Snapshot)
	}
}

func TestPublishAndLookup(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	var pub PublishResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", PublishRequest{Count: 3}, &pub, http.StatusOK)
	if pub.Clock != 3 || pub.Published != 3 || len(pub.Publications) != 3 {
		t.Fatalf("publish response %+v, want clock=published=3", pub)
	}
	if pub.Version != 2 {
		t.Fatalf("version = %d, want 2 (register + one publish batch)", pub.Version)
	}
	for _, p := range pub.Publications {
		if len(p.CacheNodes) == 0 {
			t.Fatalf("publication %d placed no copies", p.Chunk)
		}
	}

	var lk LookupResponse
	c.doJSON("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=0&node=15", reg.ID), nil, &lk, http.StatusOK)
	if lk.ServedBy < 0 || lk.ServedBy >= 16 {
		t.Fatalf("servedBy = %d out of range", lk.ServedBy)
	}
	if !lk.FromProducer {
		found := false
		for _, h := range pub.Holders[0] {
			if h == lk.ServedBy {
				found = true
			}
		}
		if !found {
			t.Fatalf("servedBy %d is neither producer nor a holder of chunk 0 (%v)", lk.ServedBy, pub.Holders[0])
		}
	}
	// The requester itself may hold the chunk, in which case hops is 0.
	if lk.Hops < 0 {
		t.Fatalf("negative hops %d", lk.Hops)
	}

	// Lookup validation: unknown chunk, bad node, missing params.
	c.wantError("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=99&node=0", reg.ID), nil, http.StatusNotFound, CodeNotFound)
	c.wantError("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=0&node=99", reg.ID), nil, http.StatusBadRequest, CodeBadRequest)
	c.wantError("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=0", reg.ID), nil, http.StatusBadRequest, CodeBadRequest)
	c.wantError("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=x&node=0", reg.ID), nil, http.StatusBadRequest, CodeBadRequest)
}

func TestLookupAfterExpiryServedByProducer(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	producer := 0
	var reg RegisterResponse
	c.doJSON("POST", "/v1/topologies", RegisterRequest{
		Kind: "grid", Rows: 3, Cols: 3, Producer: &producer, ChunkTTL: 1,
	}, &reg, http.StatusCreated)
	var pub PublishResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", PublishRequest{Count: 2}, &pub, http.StatusOK)
	// TTL=1: chunk 0 expired when chunk 1 was published, but it is still
	// a known id — the producer serves it.
	var lk LookupResponse
	c.doJSON("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=0&node=8", reg.ID), nil, &lk, http.StatusOK)
	if !lk.FromProducer || lk.ServedBy != producer {
		t.Fatalf("expired chunk served by %d (fromProducer=%v), want producer %d", lk.ServedBy, lk.FromProducer, producer)
	}
	if len(pub.Holders[0]) != 0 {
		t.Fatalf("chunk 0 should have expired, holders %v", pub.Holders[0])
	}
}

func TestReport(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 9)
	var solve SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: "appx", Chunks: 4}, &solve, http.StatusOK)
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Version != solve.Version {
		t.Fatalf("report version %d != solve version %d", rep.Snapshot.Version, solve.Version)
	}
	if rep.Snapshot.Source != "solve:Appx" {
		t.Fatalf("source = %q", rep.Snapshot.Source)
	}
	if rep.Copies != solve.Copies || rep.DistinctCaches != solve.DistinctCaches {
		t.Fatalf("report copies/distinct %d/%d != solve %d/%d", rep.Copies, rep.DistinctCaches, solve.Copies, solve.DistinctCaches)
	}
	if rep.Gini != solve.Gini {
		t.Fatalf("report gini %f != solve gini %f", rep.Gini, solve.Gini)
	}
	if len(rep.StorageCurve) != 16 {
		t.Fatalf("storage curve has %d points, want 16", len(rep.StorageCurve))
	}
	if rep.LiveChunks != 4 {
		t.Fatalf("liveChunks = %d, want 4", rep.LiveChunks)
	}
}

func TestSolveThenPublishKeepsOnlineState(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	var p1 PublishResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &p1, http.StatusOK)
	var solve SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: "hopc", Chunks: 2}, &solve, http.StatusOK)
	// The solve replaced the committed snapshot...
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Source != "solve:Hopc" {
		t.Fatalf("source = %q", rep.Snapshot.Source)
	}
	// ...but the online clock carries on from where it was.
	var p2 PublishResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &p2, http.StatusOK)
	if p2.Clock != 2 || p2.Published != 2 {
		t.Fatalf("online clock = %d published = %d after solve, want 2/2", p2.Clock, p2.Published)
	}
	if p2.Version != solve.Version+1 {
		t.Fatalf("version %d, want %d", p2.Version, solve.Version+1)
	}
}

func TestDeleteTopology(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(3, 3, 4)
	c.doJSON("DELETE", "/v1/topologies/"+reg.ID, nil, nil, http.StatusOK)
	c.wantError("DELETE", "/v1/topologies/"+reg.ID, nil, http.StatusNotFound, CodeNotFound)
	c.wantError("GET", "/v1/topologies/"+reg.ID+"/report", nil, http.StatusNotFound, CodeNotFound)
	var out HealthResponse
	c.doJSON("GET", "/healthz", nil, &out, http.StatusOK)
	if out.Topologies != 0 {
		t.Fatalf("topologies = %d after delete, want 0", out.Topologies)
	}
}

func TestDebugVarsCounters(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	read := func() map[string]json.RawMessage {
		var all map[string]json.RawMessage
		c.doJSON("GET", "/debug/vars", nil, &all, http.StatusOK)
		var fc map[string]json.RawMessage
		if raw, ok := all["faircached"]; ok {
			if err := json.Unmarshal(raw, &fc); err != nil {
				t.Fatalf("faircached vars: %v", err)
			}
		}
		return fc
	}
	counter := func(m map[string]json.RawMessage, key string) int64 {
		raw, ok := m[key]
		if !ok {
			return 0
		}
		var v int64
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("counter %s = %s: %v", key, raw, err)
		}
		return v
	}
	before := read()
	reg := c.registerGrid(3, 3, 4)
	var solve SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: "appx", Chunks: 2}, &solve, http.StatusOK)
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, nil, http.StatusOK)
	var lk LookupResponse
	c.doJSON("GET", fmt.Sprintf("/v1/topologies/%s/lookup?chunk=0&node=0", reg.ID), nil, &lk, http.StatusOK)
	after := read()

	for _, key := range []string{"requests", "solves", "publications", "lookups", "registrations"} {
		b, a := counter(before, key), counter(after, key)
		if a <= b {
			t.Errorf("counter %s did not increase: %d -> %d", key, b, a)
		}
	}
	if counter(after, "latency_us_solve") <= counter(before, "latency_us_solve") {
		t.Errorf("latency_us_solve did not grow")
	}
}

func TestServerCloseRejectsNewWork(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(3, 3, 4)
	s.Close()
	resp, _ := c.do("POST", "/v1/topologies", RegisterRequest{Kind: "grid", Rows: 3, Cols: 3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register after close: status %d, want 503", resp.StatusCode)
	}
	// The old topology is gone from the registry.
	resp, _ = c.do("GET", "/v1/topologies/"+reg.ID+"/report", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report after close: status %d, want 404", resp.StatusCode)
	}
}

// TestReportSolverStats checks the warm-model plumbing end to end: the
// first solve on a topology pays the one cold cost-matrix build, every
// repeat solve is served from the warm base model, and the report exposes
// the counters.
func TestReportSolverStats(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 9)
	for _, alg := range []string{"appx", "appx", "hopc", "cont"} {
		var solve SolveResponse
		c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: alg, Chunks: 3}, &solve, http.StatusOK)
	}
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Solver.ColdBuilds != 1 {
		t.Fatalf("coldBuilds = %d, want exactly 1 across 4 solves", rep.Solver.ColdBuilds)
	}
	if rep.Solver.WarmSolves < 3 {
		t.Fatalf("warmSolves = %d, want >= 3", rep.Solver.WarmSolves)
	}
}
