package server

import (
	"encoding/json"
	"net/http"
	"testing"

	faircache "repro"

	"repro/internal/sim"
)

// demandEvents generates n deterministic request events for a topology.
func demandEvents(t *testing.T, nodes, chunks, n int, producer int) []faircache.RequestEvent {
	t.Helper()
	tr, err := sim.NewTrace(sim.TraceSpec{Nodes: nodes, Chunks: chunks, Seed: 3, ZipfS: 1.1, Exclude: producer})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]faircache.RequestEvent, n)
	for i := range events {
		r := tr.Next()
		events[i] = faircache.RequestEvent{Node: r.Node, Chunk: r.Chunk}
	}
	return events
}

func TestRequestsLazyInitAndAccounting(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(5, 5, 12)

	// No chunks known and no init: the first batch must be rejected.
	var e struct {
		Error *Error `json:"error"`
	}
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: []faircache.RequestEvent{{Node: 1, Chunk: 0}},
	}, &e, http.StatusBadRequest)

	// With init the subsystem seeds and serves.
	var out RequestsResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: demandEvents(t, 25, 8, 500, 12),
		Init:   &DemandInit{Chunks: 8, Capacity: 3},
	}, &out, http.StatusOK)
	if out.Batch.Requests != 500 {
		t.Fatalf("batch.Requests = %d, want 500", out.Batch.Requests)
	}
	if out.Batch.LocalHits > out.Batch.CacheHits || out.Batch.CacheHits > out.Batch.Requests {
		t.Fatalf("batch accounting inconsistent: %+v", out.Batch)
	}
	if out.Demand == nil || out.Demand.Chunks != 8 || out.Demand.Capacity != 3 {
		t.Fatalf("demand info = %+v", out.Demand)
	}

	// A second init must be rejected; a plain second batch accumulates.
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: []faircache.RequestEvent{{Node: 1, Chunk: 0}},
		Init:   &DemandInit{Chunks: 8},
	}, &e, http.StatusBadRequest)
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: []faircache.RequestEvent{{Node: 1, Chunk: 0}},
	}, &out, http.StatusOK)
	if out.Demand.Requests != 501 {
		t.Fatalf("cumulative requests = %d, want 501", out.Demand.Requests)
	}

	// The demand state shows up in GET /v1/topologies/{id}.
	var info TopologyInfo
	c.doJSON("GET", "/v1/topologies/"+reg.ID, nil, &info, http.StatusOK)
	if info.Demand == nil || info.Demand.Requests != 501 {
		t.Fatalf("topology info demand = %+v", info.Demand)
	}

	// Out-of-range events are a bad request, not an internal error.
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: []faircache.RequestEvent{{Node: 999, Chunk: 0}},
	}, &e, http.StatusBadRequest)
	if e.Error == nil || e.Error.Code != CodeBadRequest {
		t.Fatalf("error = %+v, want bad_request", e.Error)
	}
}

func TestAdaptCommitsSnapshot(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(6, 6, 14)

	var e struct {
		Error *Error `json:"error"`
	}
	// Adapt before any requests is a bad request.
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/adapt", nil, &e, http.StatusBadRequest)

	var rr RequestsResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: demandEvents(t, 36, 12, 3000, 14),
		Init:   &DemandInit{Chunks: 12, Capacity: 3},
	}, &rr, http.StatusOK)

	var ar AdaptResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/adapt", nil, &ar, http.StatusOK)
	if ar.Version != reg.Version+1 {
		t.Fatalf("version = %d, want %d", ar.Version, reg.Version+1)
	}
	if ar.Adaptation == nil || len(ar.Adaptation.TopChunks) == 0 {
		t.Fatalf("adaptation = %+v", ar.Adaptation)
	}
	if ar.Demand.Adaptations != 1 {
		t.Fatalf("Adaptations = %d, want 1", ar.Demand.Adaptations)
	}
	if len(ar.Holders) == 0 {
		t.Fatal("adapt committed no holders")
	}
	for k, hs := range ar.Holders {
		if k < 0 || k >= 12 || len(hs) == 0 {
			t.Fatalf("holders[%d] = %v", k, hs)
		}
	}

	// The committed snapshot is what report and lookup now serve.
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Source != "adapt" {
		t.Fatalf("snapshot source = %q, want adapt", rep.Snapshot.Source)
	}
	if rep.Snapshot.Version != ar.Version || rep.Snapshot.Chunks != 12 {
		t.Fatalf("snapshot = %+v", rep.Snapshot)
	}
	var lk LookupResponse
	c.doJSON("GET", "/v1/topologies/"+reg.ID+"/lookup?chunk=0&node=0", nil, &lk, http.StatusOK)
	if lk.Version != ar.Version {
		t.Fatalf("lookup version = %d, want %d", lk.Version, ar.Version)
	}
}

func TestDemandExpvarCounters(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(5, 5, 12)
	var rr RequestsResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: demandEvents(t, 25, 8, 1000, 12),
		Init:   &DemandInit{Chunks: 8},
	}, &rr, http.StatusOK)
	var ar AdaptResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/adapt", nil, &ar, http.StatusOK)

	_, raw := c.do("GET", "/debug/vars", nil)
	var vars struct {
		Faircached map[string]json.Number `json:"faircached"`
	}
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("unmarshal vars: %v; body %s", err, raw)
	}
	counter := func(name string) int64 {
		v, _ := vars.Faircached[name].Int64()
		return v
	}
	if got := counter("demand_requests"); got != 1000 {
		t.Errorf("demand_requests = %d, want 1000", got)
	}
	hits, misses := counter("demand_hits"), counter("demand_misses")
	if hits != rr.Demand.LocalHits {
		t.Errorf("demand_hits = %d, want %d", hits, rr.Demand.LocalHits)
	}
	if misses != 1000-rr.Demand.CacheHits {
		t.Errorf("demand_misses = %d, want %d", misses, 1000-rr.Demand.CacheHits)
	}
	if got := counter("adaptations"); got != 1 {
		t.Errorf("adaptations = %d, want 1", got)
	}
	if counter("demand_copies_placed") != int64(ar.Adaptation.Placed) {
		t.Errorf("demand_copies_placed = %d, want %d", counter("demand_copies_placed"), ar.Adaptation.Placed)
	}
}

func TestAdaptSnapshotSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c, s := newTestClient(t, Options{DataDir: dir})
	reg := c.registerGrid(5, 5, 12)
	var rr RequestsResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: demandEvents(t, 25, 8, 1000, 12),
		Init:   &DemandInit{Chunks: 8},
	}, &rr, http.StatusOK)
	var ar AdaptResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/adapt", nil, &ar, http.StatusOK)
	s.Close()

	c2, _ := newTestClient(t, Options{DataDir: dir})
	// The adapt-sourced snapshot (version, holders) is durable; the demand
	// observation stream is not, so a fresh batch re-initializes.
	var info TopologyInfo
	c2.doJSON("GET", "/v1/topologies/"+reg.ID, nil, &info, http.StatusOK)
	if info.Version != ar.Version {
		t.Fatalf("recovered version = %d, want %d", info.Version, ar.Version)
	}
	if info.Demand != nil {
		t.Fatalf("demand state should not survive restart: %+v", info.Demand)
	}
	var rep ReportResponse
	c2.doJSON("GET", "/v1/topologies/"+reg.ID+"/report", nil, &rep, http.StatusOK)
	if rep.Snapshot.Source != "adapt" || rep.Snapshot.Chunks != 8 {
		t.Fatalf("recovered snapshot = %+v", rep.Snapshot)
	}
	var out RequestsResponse
	c2.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests", RequestsRequest{
		Events: []faircache.RequestEvent{{Node: 1, Chunk: 0}},
	}, &out, http.StatusOK)
	if out.Demand.Requests != 1 {
		t.Fatalf("post-restart demand should start fresh: %+v", out.Demand)
	}
}
