package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name, header, want string
	}{
		{"valid", valid, "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"empty", "", ""},
		{"short", "00-abc-def-01", ""},
		{"long", valid + "x", ""},
		{"wrong version", "01" + valid[2:], ""},
		{"uppercase hex", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", ""},
		{"non-hex", "00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01", ""},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", ""},
		{"missing dash", "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ""},
		{"bad span hex", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bZ-01", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseTraceparent(tc.header); got != tc.want {
				t.Errorf("parseTraceparent(%q) = %q, want %q", tc.header, got, tc.want)
			}
		})
	}
}

func TestGenTraceID(t *testing.T) {
	a, b := genTraceID(), genTraceID()
	if len(a) != 32 || !isLowerHex(a) {
		t.Errorf("genTraceID() = %q, want 32 lowercase hex digits", a)
	}
	if a == b {
		t.Errorf("two generated trace ids collide: %q", a)
	}
}

// doTraced issues a request with a traceparent header and decodes the
// JSON response.
func (c *testClient) doTraced(method, path, traceparent string, body, out any, wantStatus int) {
	c.t.Helper()
	var rd *strings.Reader
	buf, err := json.Marshal(body)
	if err != nil {
		c.t.Fatalf("marshal body: %v", err)
	}
	rd = strings.NewReader(string(buf))
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatalf("new request: %v", err)
	}
	req.Header.Set("traceparent", traceparent)
	resp, err := c.srv.Client().Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
}

// TestSolveTraceparentPropagation checks a caller-sent W3C traceparent
// becomes the solve's trace id, the explain response carries the phase
// report under that id, and an absent header still yields a generated id.
func TestSolveTraceparentPropagation(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)

	const header = "00-deadbeefdeadbeefdeadbeefdeadbeef-00f067aa0ba902b7-01"
	var resp SolveResponse
	c.doTraced("POST", "/v1/topologies/"+reg.ID+"/solve", header,
		SolveRequest{Chunks: 3, Options: &SolveOptions{Explain: true}}, &resp, http.StatusOK)
	if resp.TraceID != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Errorf("TraceID = %q, want the traceparent's trace id", resp.TraceID)
	}
	if resp.Trace == nil {
		t.Fatal("explain solve returned no trace report")
	}
	if resp.Trace.TraceID != resp.TraceID {
		t.Errorf("report trace id %q != response trace id %q", resp.Trace.TraceID, resp.TraceID)
	}
	if resp.Trace.Spans == 0 || len(resp.Trace.Phases) == 0 {
		t.Errorf("explain report is empty: %+v", resp.Trace)
	}

	// No header: the server generates an id; no explain: no report.
	var plain SolveResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Chunks: 4}, &plain, http.StatusOK)
	if len(plain.TraceID) != 32 || !isLowerHex(plain.TraceID) {
		t.Errorf("generated TraceID = %q, want 32 lowercase hex digits", plain.TraceID)
	}
	if plain.Trace != nil {
		t.Error("non-explain solve returned a trace report")
	}
}

// TestDebugTraceEndpoint checks GET /debug/trace returns the spans of an
// explain'd solve — the solver-layer phases and the server-layer flight
// span — and that the slowerThanMs filter and input validation work.
func TestDebugTraceEndpoint(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)

	// Before any traced request the rings are empty.
	var empty TraceDump
	c.doJSON("GET", "/debug/trace", nil, &empty, http.StatusOK)
	if empty.Count != 0 || len(empty.Spans) != 0 {
		t.Fatalf("fresh server dump = %+v, want empty", empty)
	}

	const header = "00-feedfacefeedfacefeedfacefeedface-00f067aa0ba902b7-01"
	var solve SolveResponse
	c.doTraced("POST", "/v1/topologies/"+reg.ID+"/solve", header,
		SolveRequest{Chunks: 3, Options: &SolveOptions{Explain: true}}, &solve, http.StatusOK)

	var dump TraceDump
	c.doJSON("GET", "/debug/trace", nil, &dump, http.StatusOK)
	if dump.Count != len(dump.Spans) || dump.Count == 0 {
		t.Fatalf("dump count %d / %d spans, want a consistent non-empty dump", dump.Count, len(dump.Spans))
	}
	names := map[string]bool{}
	for _, sp := range dump.Spans {
		if sp.TraceID != "feedfacefeedfacefeedfacefeedface" {
			t.Errorf("span %s has trace id %q, want the request's", sp.Name, sp.TraceID)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"coalesce.flight", "solve", "confl"} {
		if !names[want] {
			t.Errorf("dump missing span %q (have %v)", want, names)
		}
	}
	// Spans are oldest-first.
	for i := 1; i < len(dump.Spans); i++ {
		if dump.Spans[i].Start.Before(dump.Spans[i-1].Start) {
			t.Errorf("spans not sorted by start: %v after %v", dump.Spans[i].Start, dump.Spans[i-1].Start)
		}
	}

	// An absurd filter excludes everything and is echoed back.
	var filtered TraceDump
	c.doJSON("GET", "/debug/trace?slowerThanMs=3600000", nil, &filtered, http.StatusOK)
	if filtered.Count != 0 {
		t.Errorf("slowerThanMs=1h kept %d spans, want 0", filtered.Count)
	}
	if filtered.SlowerThanMs != 3600000 {
		t.Errorf("SlowerThanMs echo = %v, want 3600000", filtered.SlowerThanMs)
	}

	c.wantError("GET", "/debug/trace?slowerThanMs=nope", nil, http.StatusBadRequest, CodeBadRequest)
	c.wantError("GET", "/debug/trace?slowerThanMs=-1", nil, http.StatusBadRequest, CodeBadRequest)
}

// TestCoalescedFlightSharesTraceID attaches several callers, each with
// its own traceparent, to one coalesced flight and checks every response
// reports the same trace id — the flight leader's — so logs and spans of
// the one underlying computation resolve to one id.
func TestCoalescedFlightSharesTraceID(t *testing.T) {
	c, s := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	release := blockWorker(t, s, reg.ID)

	const callers = 4
	headers := []string{
		"00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-00f067aa0ba902b7-01",
		"00-bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb-00f067aa0ba902b7-01",
		"00-cccccccccccccccccccccccccccccccc-00f067aa0ba902b7-01",
		"00-dddddddddddddddddddddddddddddddd-00f067aa0ba902b7-01",
	}
	responses := make([]SolveResponse, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.doTraced("POST", "/v1/topologies/"+reg.ID+"/solve", headers[i],
				SolveRequest{Chunks: 3}, &responses[i], http.StatusOK)
		}(i)
	}
	waitSolveFlights(t, s, reg.ID, 1, callers-1)
	release()
	wg.Wait()

	leader := responses[0].TraceID
	if leader == "" {
		t.Fatal("response carries no trace id")
	}
	sent := map[string]bool{}
	for _, h := range headers {
		sent[parseTraceparent(h)] = true
	}
	if !sent[leader] {
		t.Errorf("flight trace id %q is none of the callers' ids", leader)
	}
	coalesced := 0
	for i, resp := range responses {
		if resp.TraceID != leader {
			t.Errorf("response %d trace id %q, want the flight leader's %q", i, resp.TraceID, leader)
		}
		if resp.Coalesced {
			coalesced++
		}
	}
	if coalesced != callers-1 {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, callers-1)
	}
}

// TestAdaptExplain drives a demand batch, runs an explain'd adaptation
// pass, and checks the response carries the pass's trace id and phase
// report.
func TestAdaptExplain(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(4, 4, 5)
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Chunks: 4}, new(SolveResponse), http.StatusOK)

	var events []map[string]int
	for n := 0; n < 8; n++ {
		events = append(events, map[string]int{"node": n, "chunk": n % 4})
	}
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/requests",
		map[string]any{"events": events}, new(RequestsResponse), http.StatusOK)

	const header = "00-cafebabecafebabecafebabecafebabe-00f067aa0ba902b7-01"
	var resp AdaptResponse
	c.doTraced("POST", "/v1/topologies/"+reg.ID+"/adapt", header,
		AdaptRequest{Explain: true}, &resp, http.StatusOK)
	if resp.TraceID != "cafebabecafebabecafebabecafebabe" {
		t.Errorf("TraceID = %q, want the traceparent's trace id", resp.TraceID)
	}
	if resp.Adaptation == nil || resp.Adaptation.Trace == nil {
		t.Fatalf("explain adapt returned no trace report: %+v", resp.Adaptation)
	}
	if got := resp.Adaptation.Trace.TraceID; got != resp.TraceID {
		t.Errorf("report trace id %q != response trace id %q", got, resp.TraceID)
	}

	// A plain pass (no body at all) still works and carries a generated id.
	var plain AdaptResponse
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/adapt", nil, &plain, http.StatusOK)
	if len(plain.TraceID) != 32 || !isLowerHex(plain.TraceID) {
		t.Errorf("generated TraceID = %q, want 32 lowercase hex digits", plain.TraceID)
	}
	if plain.Adaptation != nil && plain.Adaptation.Trace != nil {
		t.Error("non-explain adapt returned a trace report")
	}
}
