package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	faircache "repro"

	"repro/internal/trace"
)

// traceIDKey carries the request's resolved trace id string through
// contexts — including into coalesced flights, whose context inherits the
// leader's values, so every caller's logs and the shared response agree
// on one id per underlying computation.
type traceIDKey struct{}

func withTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// traceIDFrom returns the trace id carried by ctx, "" when none.
func traceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// requestTraceID resolves a request's trace id: a valid W3C traceparent
// header wins, otherwise a fresh random id is generated — every request
// has an id, whether or not its spans are recorded.
func requestTraceID(r *http.Request) string {
	if id := parseTraceparent(r.Header.Get("traceparent")); id != "" {
		return id
	}
	return genTraceID()
}

// parseTraceparent extracts the trace-id field from a W3C traceparent
// header ("00-<32 hex>-<16 hex>-<2 hex>"), returning "" on anything
// malformed or the all-zero id.
func parseTraceparent(h string) string {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return ""
	}
	id := h[3:35]
	if !isLowerHex(id) || !isLowerHex(h[36:52]) || !isLowerHex(h[53:55]) {
		return ""
	}
	if id == "00000000000000000000000000000000" {
		return ""
	}
	return id
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceIDCtr backs genTraceID's fallback when the system randomness
// source fails (vanishingly rare; ids must still be unique-ish).
var traceIDCtr atomic.Uint64

// genTraceID returns a fresh 32-hex-digit trace id.
func genTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000000000" + strconv.FormatUint(0x1000_0000_0000|traceIDCtr.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// TraceDump is the body of GET /debug/trace: the merged recent-span rings
// of the server layer and every registered topology's solver, oldest
// span first.
type TraceDump struct {
	// Count is len(Spans); SlowerThanMs echoes the filter applied.
	Count        int                   `json:"count"`
	SlowerThanMs float64               `json:"slowerThanMs,omitempty"`
	Spans        []faircache.TraceSpan `json:"spans"`
}

// handleDebugTrace serves GET /debug/trace?slowerThanMs=N. Spans appear
// only for sampled (Options.TraceSample) or explain'd requests — the
// rings are empty on a server that has never traced.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	slower := time.Duration(0)
	if raw := r.URL.Query().Get("slowerThanMs"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			s.writeError(w, badRequestf("slowerThanMs must be a non-negative number, got %q", raw))
			return
		}
		slower = time.Duration(ms * float64(time.Millisecond))
	}
	spans := []faircache.TraceSpan{}
	recs := s.tracer.Snapshot()
	epoch := s.tracer.Epoch()
	for i := range recs {
		if recs[i].Duration() < slower {
			continue
		}
		spans = append(spans, serverSpan(&recs[i], epoch))
	}
	for _, id := range s.ids() {
		tp, err := s.lookupTopology(id)
		if err != nil {
			continue // deleted between ids() and here
		}
		spans = append(spans, tp.solver.TraceSpans(slower)...)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	writeJSON(w, http.StatusOK, TraceDump{
		Count:        len(spans),
		SlowerThanMs: float64(slower) / float64(time.Millisecond),
		Spans:        spans,
	})
}

// serverSpan projects a server-layer trace record into the same public
// span shape the solver rings use, so the dump is one homogeneous list.
func serverSpan(r *trace.Record, epoch time.Time) faircache.TraceSpan {
	return faircache.TraceSpan{
		TraceID:    r.TraceID,
		SpanID:     r.SpanID,
		ParentID:   r.Parent,
		Name:       r.Name,
		Start:      epoch.Add(r.Start),
		DurationMs: float64(r.Duration()) / float64(time.Millisecond),
		Attrs:      r.AttrMap(),
	}
}
