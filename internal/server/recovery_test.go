package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	faircache "repro"
)

// durableOpts returns Options pointing at a fresh temp data dir.
func durableOpts(t *testing.T, fsync string) Options {
	t.Helper()
	return Options{DataDir: t.TempDir(), Fsync: fsync}
}

// reportOf fetches the decoded report for one topology.
func reportOf(c *testClient, id string) ReportResponse {
	c.t.Helper()
	var rep ReportResponse
	c.doJSON("GET", "/v1/topologies/"+id+"/report", nil, &rep, http.StatusOK)
	return rep
}

// TestRecoveryRoundTrip drives registrations, solves and publications
// against a durable server, restarts it on the same data dir, and
// demands the recovered registry answer every read endpoint exactly as
// the original did: same ids, versions, clocks, holder sets and lookups.
func TestRecoveryRoundTrip(t *testing.T) {
	opts := durableOpts(t, "always")

	c1, s1 := newTestClient(t, opts)
	reg := c1.registerGrid(4, 4, 5)
	c1.doJSON("POST", "/v1/topologies/"+reg.ID+"/solve", SolveRequest{Algorithm: "appx", Chunks: 4}, nil, http.StatusOK)
	for i := 0; i < 7; i++ {
		c1.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, nil, http.StatusOK)
	}
	// A second topology with non-default knobs exercises spec replay.
	var reg2 RegisterResponse
	c1.doJSON("POST", "/v1/topologies", RegisterRequest{
		Kind: "ring", Nodes: 9, Capacity: 3, ChunkTTL: 4, FairnessWeight: 0.5,
	}, &reg2, http.StatusCreated)
	c1.doJSON("POST", "/v1/topologies/"+reg2.ID+"/publish", PublishRequest{Count: 6}, nil, http.StatusOK)

	before1, before2 := reportOf(c1, reg.ID), reportOf(c1, reg2.ID)
	// Warm/cold solver counters and coalescing dedup counters are runtime
	// state, not journaled — they reset on restart by design, so exclude
	// them from the round trip.
	before1.Solver, before2.Solver = faircache.SolverStats{}, faircache.SolverStats{}
	before1.Coalesce, before2.Coalesce = CoalesceInfo{}, CoalesceInfo{}
	var beforeLookup LookupResponse
	c1.doJSON("GET", "/v1/topologies/"+reg.ID+"/lookup?chunk=2&node=0", nil, &beforeLookup, http.StatusOK)
	c1.srv.Close()
	s1.Close()

	c2, s2 := newTestClient(t, opts)
	after1, after2 := reportOf(c2, reg.ID), reportOf(c2, reg2.ID)
	after1.Coalesce, after2.Coalesce = CoalesceInfo{}, CoalesceInfo{}
	if !reflect.DeepEqual(before1, after1) {
		t.Errorf("recovered report for %s diverges:\n before %+v\n after  %+v", reg.ID, before1, after1)
	}
	if !reflect.DeepEqual(before2, after2) {
		t.Errorf("recovered report for %s diverges:\n before %+v\n after  %+v", reg2.ID, before2, after2)
	}
	var afterLookup LookupResponse
	c2.doJSON("GET", "/v1/topologies/"+reg.ID+"/lookup?chunk=2&node=0", nil, &afterLookup, http.StatusOK)
	if !reflect.DeepEqual(beforeLookup, afterLookup) {
		t.Errorf("recovered lookup diverges: before %+v after %+v", beforeLookup, afterLookup)
	}

	// New mutations continue the version/clock sequences seamlessly.
	var pub PublishResponse
	c2.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &pub, http.StatusOK)
	if pub.Version != before1.Snapshot.Version+1 {
		t.Errorf("post-recovery publish version = %d, want %d", pub.Version, before1.Snapshot.Version+1)
	}
	if pub.Clock != before1.Snapshot.Clock+1 {
		t.Errorf("post-recovery publish clock = %d, want %d", pub.Clock, before1.Snapshot.Clock+1)
	}
	// The id counter must not reuse recovered ids.
	reg3 := c2.registerGrid(2, 2, 0)
	if reg3.ID == reg.ID || reg3.ID == reg2.ID {
		t.Errorf("post-recovery registration reused id %s", reg3.ID)
	}
	_ = s2
}

// TestRecoveryReplaysDeletes restarts after a delete and expects the
// deleted topology to stay gone while its sibling survives.
func TestRecoveryReplaysDeletes(t *testing.T) {
	opts := durableOpts(t, "always")
	c1, s1 := newTestClient(t, opts)
	doomed := c1.registerGrid(3, 3, 4)
	kept := c1.registerGrid(2, 3, 0)
	c1.doJSON("POST", "/v1/topologies/"+doomed.ID+"/publish", nil, nil, http.StatusOK)
	c1.doJSON("DELETE", "/v1/topologies/"+doomed.ID, nil, nil, http.StatusOK)
	c1.srv.Close()
	s1.Close()

	c2, _ := newTestClient(t, opts)
	c2.wantError("GET", "/v1/topologies/"+doomed.ID, nil, http.StatusNotFound, CodeNotFound)
	c2.doJSON("GET", "/v1/topologies/"+kept.ID, nil, nil, http.StatusOK)
	if reg := c2.registerGrid(2, 2, 0); reg.ID == doomed.ID || reg.ID == kept.ID {
		t.Errorf("post-recovery registration reused id %s", reg.ID)
	}
}

// TestRecoveryTornFinalRecord simulates a crash mid-append: the final
// WAL record loses its tail, recovery truncates it instead of failing,
// and the server comes back at the previous committed state with the
// log open for business.
func TestRecoveryTornFinalRecord(t *testing.T) {
	opts := durableOpts(t, "always")
	opts.SnapshotEvery = -1 // keep every record in segments

	c1, s1 := newTestClient(t, opts)
	reg := c1.registerGrid(4, 4, 5)
	var prev, last PublishResponse
	for i := 0; i < 5; i++ {
		prev = last
		c1.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &last, http.StatusOK)
	}
	c1.srv.Close()
	s1.Close()

	// Tear bytes off the end of the newest segment, truncating the
	// final publish record mid-frame.
	segs, err := filepath.Glob(filepath.Join(opts.DataDir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", opts.DataDir, err)
	}
	newest := segs[len(segs)-1]
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	c2, _ := newTestClient(t, opts)
	rep := reportOf(c2, reg.ID)
	if rep.Snapshot.Version != prev.Version || rep.Snapshot.Clock != prev.Clock {
		t.Fatalf("recovered at v%d clock %d, want the pre-torn commit v%d clock %d",
			rep.Snapshot.Version, rep.Snapshot.Clock, prev.Version, prev.Clock)
	}
	// The truncated log accepts appends again and the deterministic
	// engine re-derives the publication the torn record had recorded.
	var redo PublishResponse
	c2.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, &redo, http.StatusOK)
	if redo.Version != last.Version || redo.Clock != last.Clock {
		t.Errorf("replayed publish got v%d clock %d, want v%d clock %d", redo.Version, redo.Clock, last.Version, last.Clock)
	}
	if !reflect.DeepEqual(redo.Holders, last.Holders) {
		t.Errorf("replayed publish holders diverge: %v vs %v", redo.Holders, last.Holders)
	}
}

// TestRecoveryWithSnapshotsAndCompaction forces frequent snapshots and
// tiny segments, checks the log actually compacts, and verifies the
// snapshot+tail recovery path (not just pure record replay).
func TestRecoveryWithSnapshotsAndCompaction(t *testing.T) {
	opts := durableOpts(t, "never")
	opts.SnapshotEvery = 5
	opts.MaxSegmentBytes = 2048

	c1, s1 := newTestClient(t, opts)
	reg := c1.registerGrid(4, 4, 5)
	for i := 0; i < 23; i++ {
		c1.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, nil, http.StatusOK)
	}
	before := reportOf(c1, reg.ID)
	c1.srv.Close()
	s1.Close()

	snaps, _ := filepath.Glob(filepath.Join(opts.DataDir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot written despite SnapshotEvery=5 and 24 records")
	}
	segs, _ := filepath.Glob(filepath.Join(opts.DataDir, "seg-*.wal"))
	if len(segs) > 3 {
		t.Errorf("compaction left %d segments: %v", len(segs), segs)
	}

	c2, _ := newTestClient(t, opts)
	after := reportOf(c2, reg.ID)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("snapshot+tail recovery diverges:\n before %+v\n after  %+v", before, after)
	}
}

// TestEmptyDataDirStaysInMemory double-checks the default mode writes
// nothing anywhere: no journal, no files, mutations still commit.
func TestEmptyDataDirStaysInMemory(t *testing.T) {
	c, s := newTestClient(t, Options{})
	if s.journal != nil {
		t.Fatal("in-memory server grew a journal")
	}
	reg := c.registerGrid(3, 3, 4)
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, nil, http.StatusOK)
	if rep := reportOf(c, reg.ID); rep.Snapshot.Clock != 1 {
		t.Fatalf("publish did not commit: %+v", rep.Snapshot)
	}
}

// TestExpvarIsolationBetweenServers asserts the satellite fix: two
// Servers in one process keep independent counter maps, so driving one
// leaves the other's /debug/vars untouched.
func TestExpvarIsolationBetweenServers(t *testing.T) {
	busy, busySrv := newTestClient(t, Options{})
	idle, idleSrv := newTestClient(t, Options{})
	reg := busy.registerGrid(3, 3, 4)
	for i := 0; i < 5; i++ {
		busy.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", nil, nil, http.StatusOK)
	}

	counters := func(c *testClient) map[string]float64 {
		var all map[string]any
		c.doJSON("GET", "/debug/vars", nil, &all, http.StatusOK)
		fc, ok := all["faircached"].(map[string]any)
		if !ok {
			t.Fatalf("/debug/vars has no faircached map: %v", all)
		}
		out := make(map[string]float64, len(fc))
		for k, v := range fc {
			if f, ok := v.(float64); ok {
				out[k] = f
			}
		}
		return out
	}
	busyVars, idleVars := counters(busy), counters(idle)
	if busyVars["registrations"] != 1 || busyVars["publications"] != 5 {
		t.Errorf("busy server counters wrong: %v", busyVars)
	}
	for _, key := range []string{"registrations", "publications", "solves", "errors", "lookups"} {
		if idleVars[key] != 0 {
			t.Errorf("idle server leaked counter %s=%v from its sibling", key, idleVars[key])
		}
	}
	if busySrv.vars == idleSrv.vars {
		t.Error("two Servers share one expvar map")
	}
}

// TestGetTopologyByID covers the new GET /v1/topologies/{id} endpoint.
func TestGetTopologyByID(t *testing.T) {
	c, _ := newTestClient(t, Options{})
	reg := c.registerGrid(3, 4, 2)
	var info TopologyInfo
	c.doJSON("GET", "/v1/topologies/"+reg.ID, nil, &info, http.StatusOK)
	want := TopologyInfo{ID: reg.ID, Kind: "grid", Nodes: 12, Links: reg.Links, Producer: 2, Version: 1, Chunks: 0}
	if info != want {
		t.Errorf("GET %s = %+v, want %+v", reg.ID, info, want)
	}
	c.doJSON("POST", "/v1/topologies/"+reg.ID+"/publish", PublishRequest{Count: 2}, nil, http.StatusOK)
	c.doJSON("GET", "/v1/topologies/"+reg.ID, nil, &info, http.StatusOK)
	if info.Version != 2 || info.Chunks != 2 {
		t.Errorf("after one publish batch of two: %+v, want version 2 chunks 2", info)
	}
	c.wantError("GET", "/v1/topologies/nope", nil, http.StatusNotFound, CodeNotFound)
}

// TestNoWorkerGoroutineLeaks registers and deletes topologies in cycles
// and closes servers, then demands the process goroutine count settle
// back to its baseline: every topology worker must exit on DELETE and
// on Server.Close.
func TestNoWorkerGoroutineLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for cycle := 0; cycle < 3; cycle++ {
		s, err := New(Options{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ids := make([]string, 0, 4)
		for i := 0; i < 4; i++ {
			w := httptest.NewRecorder()
			body := strings.NewReader(`{"kind":"grid","rows":3,"cols":3}`)
			s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/topologies", body))
			if w.Code != http.StatusCreated {
				t.Fatalf("register: status %d: %s", w.Code, w.Body)
			}
			ids = append(ids, fmt.Sprintf("t%d", s.nextID))
		}
		// Delete half explicitly; Close must reap the rest.
		for _, id := range ids[:2] {
			w := httptest.NewRecorder()
			s.ServeHTTP(w, httptest.NewRequest("DELETE", "/v1/topologies/"+id, nil))
			if w.Code != http.StatusOK {
				t.Fatalf("delete %s: status %d: %s", id, w.Code, w.Body)
			}
		}
		s.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
