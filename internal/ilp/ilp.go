// Package ilp solves the per-chunk ConFL integer program with LP-based
// branch and bound: the relaxation is solved by the pure-Go simplex
// (package lp), the exponential family of connectivity constraints (Eq. 6)
// is separated lazily with a max-flow min-cut oracle (package maxflow),
// and the search branches on fractional facility variables. Once a
// facility set is integral and cut-feasible, its true objective uses the
// exact Steiner cost, so incumbents are genuine ConFL solutions.
//
// Together with the enumeration solver (package exact) this fills the role
// of the paper's PuLP/CBC brute-force baseline without wrapping C code,
// and additionally produces proven lower bounds on instances where
// exhaustive search is out of reach.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/steiner"
)

// Options tunes the branch-and-bound solver.
type Options struct {
	// MaxNodes caps branch-and-bound nodes; 0 means 256.
	MaxNodes int
	// MaxCutRounds caps separation rounds per LP solve; 0 means 32.
	MaxCutRounds int
	// FairnessWeight scales the fairness term (1 in the paper).
	FairnessWeight float64
	// LP tunes the underlying simplex.
	LP lp.Options
}

// DefaultOptions matches the paper's objective.
func DefaultOptions() Options {
	return Options{FairnessWeight: 1}
}

// Solution is the outcome of SolveChunk.
type Solution struct {
	// Facilities is the best caching set found, sorted.
	Facilities []int
	// Objective is the true cost of Facilities (exact Steiner).
	Objective float64
	// LowerBound is the proven LP bound on the optimum.
	LowerBound float64
	// Optimal reports whether Objective is proven optimal
	// (gap closed within tolerance and no budget exhausted).
	Optimal bool
	// Nodes counts branch-and-bound nodes processed.
	Nodes int
	// Cuts counts connectivity cuts added.
	Cuts int
}

// Errors returned by the solver.
var ErrBadInput = errors.New("ilp: invalid input")

const tol = 1e-6

// SolveChunk finds the optimal caching set for one chunk under the
// current cache state by branch and bound on the ConFL ILP.
func SolveChunk(g *graph.Graph, st *cache.State, producer int, opts Options) (*Solution, error) {
	if g == nil || st == nil || g.NumNodes() != st.NumNodes() {
		return nil, fmt.Errorf("%w: graph/state mismatch", ErrBadInput)
	}
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("%w: producer %d", ErrBadInput, producer)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: graph not connected", ErrBadInput)
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 256
	}
	if opts.MaxCutRounds <= 0 {
		opts.MaxCutRounds = 32
	}

	m := newModel(g, st, producer, opts)
	return m.solve()
}

// model carries the per-instance ILP data.
type model struct {
	g        *graph.Graph
	producer int
	opts     Options

	candidates []int // facility candidates (node ids)
	demands    []int // all nodes except the producer
	edges      []graph.Edge

	fair     []float64   // weighted opening cost per candidate
	conn     [][]float64 // c_ij
	edgeCost []float64   // c_e per edge index
	edgeFunc graph.EdgeWeightFunc

	// Variable layout: y (candidates) | x (sources × demands) | z (edges).
	numY, numX, numZ int
	sources          []int // candidates + producer

	base []lp.Constraint // assignment, coupling, bounds
	cuts []lp.Constraint // accumulated connectivity cuts

	best      *Solution
	bestCost  float64
	nodesUsed int
	exhausted bool
}

func newModel(g *graph.Graph, st *cache.State, producer int, opts Options) *model {
	m := &model{
		g:        g,
		producer: producer,
		opts:     opts,
		conn:     contention.ComputeCosts(g, st).Rows(),
		edges:    g.Edges(),
		edgeFunc: contention.EdgeCostFunc(g, st),
		bestCost: math.Inf(1),
	}
	for i := 0; i < g.NumNodes(); i++ {
		if i != producer {
			m.demands = append(m.demands, i)
			if st.Free(i) > 0 {
				m.candidates = append(m.candidates, i)
				fc := st.FairnessCost(i)
				if !math.IsInf(fc, 1) {
					fc *= opts.FairnessWeight
				}
				m.fair = append(m.fair, fc)
			}
		}
	}
	m.sources = append(append([]int(nil), m.candidates...), producer)
	m.numY = len(m.candidates)
	m.numX = len(m.sources) * len(m.demands)
	m.numZ = len(m.edges)
	m.edgeCost = make([]float64, m.numZ)
	for e, edge := range m.edges {
		m.edgeCost[e] = m.edgeFunc(edge.U, edge.V)
	}
	m.buildBase()
	return m
}

// Variable index helpers.
func (m *model) yVar(k int) int        { return k }
func (m *model) xVar(src, dem int) int { return m.numY + src*len(m.demands) + dem }
func (m *model) zVar(e int) int        { return m.numY + m.numX + e }
func (m *model) numVars() int          { return m.numY + m.numX + m.numZ }

func (m *model) buildBase() {
	// Assignment: Σ_src x_{src,j} = 1 for every demand j.
	for dem := range m.demands {
		coeffs := make(map[int]float64, len(m.sources))
		for src := range m.sources {
			coeffs[m.xVar(src, dem)] = 1
		}
		m.base = append(m.base, lp.Constraint{Coeffs: coeffs, Sense: lp.EQ, RHS: 1})
	}
	// Coupling: x_{i,j} ≤ y_i for candidate sources.
	for src := range m.candidates {
		for dem := range m.demands {
			m.base = append(m.base, lp.Constraint{
				Coeffs: map[int]float64{m.xVar(src, dem): 1, m.yVar(src): -1},
				Sense:  lp.LE,
			})
		}
	}
	// Bounds y ≤ 1, z ≤ 1.
	for k := range m.candidates {
		m.base = append(m.base, lp.Constraint{Coeffs: map[int]float64{m.yVar(k): 1}, Sense: lp.LE, RHS: 1})
	}
	for e := range m.edges {
		m.base = append(m.base, lp.Constraint{Coeffs: map[int]float64{m.zVar(e): 1}, Sense: lp.LE, RHS: 1})
	}
}

func (m *model) objective() []float64 {
	obj := make([]float64, m.numVars())
	for k := range m.candidates {
		obj[m.yVar(k)] = m.fair[k]
	}
	for src, node := range m.sources {
		for dem, j := range m.demands {
			obj[m.xVar(src, dem)] = m.conn[node][j]
		}
	}
	for e := range m.edges {
		obj[m.zVar(e)] = m.edgeCost[e]
	}
	return obj
}

// branchNode is one node of the search tree: variables forced to 0 or 1
// (facility y variables first; dissemination z variables when the cut LP
// leaves them fractional — the undirected cut relaxation of the Steiner
// part has an integrality gap, so proving optimality requires z branching
// as well).
type branchNode struct {
	fixed map[int]float64 // variable index -> 0 or 1
}

func (m *model) solve() (*Solution, error) {
	root := &branchNode{fixed: map[int]float64{}}

	// Seed the incumbent with the empty facility set.
	m.updateIncumbent(nil)

	rootBound := math.Inf(1)
	stack := []*branchNode{root}
	first := true
	for len(stack) > 0 {
		if m.nodesUsed >= m.opts.MaxNodes {
			m.exhausted = true
			break
		}
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.nodesUsed++

		sol, err := m.solveRelaxation(node)
		if err != nil {
			return nil, err
		}
		if sol == nil { // infeasible subproblem
			continue
		}
		if first {
			rootBound = sol.Objective
			first = false
		}
		if sol.Objective >= m.bestCost-tol {
			continue // pruned by bound
		}
		fracVar := m.mostFractionalY(sol.X)
		if fracVar < 0 {
			// Integral facility set: record the true-cost incumbent.
			var set []int
			for k := range m.candidates {
				if sol.X[m.yVar(k)] > 0.5 {
					set = append(set, m.candidates[k])
				}
			}
			m.updateIncumbent(set)
			// If the LP value is already (near) the incumbent's true
			// cost, the subtree is solved; otherwise the z part is
			// fractional below the true Steiner cost and must be
			// branched to close the bound.
			if sol.Objective >= m.bestCost-tol {
				continue
			}
			fracVar = m.mostFractionalZ(sol.X)
			if fracVar < 0 {
				continue // fully integral: bound closed by this node
			}
		}
		// Branch: variable = 1 first (tends to find incumbents early).
		up := &branchNode{fixed: cloneFixed(node.fixed)}
		up.fixed[fracVar] = 1
		down := &branchNode{fixed: cloneFixed(node.fixed)}
		down.fixed[fracVar] = 0
		stack = append(stack, down, up)
	}

	out := &Solution{
		Facilities: append([]int(nil), m.best.Facilities...),
		Objective:  m.bestCost,
		LowerBound: math.Min(rootBound, m.bestCost),
		Optimal:    !m.exhausted,
		Nodes:      m.nodesUsed,
		Cuts:       len(m.cuts),
	}
	slices.Sort(out.Facilities)
	return out, nil
}

// solveRelaxation solves the LP with lazy cut separation for one node.
// It returns nil when the subproblem is infeasible.
func (m *model) solveRelaxation(node *branchNode) (*lp.Solution, error) {
	for round := 0; ; round++ {
		p := &lp.Problem{
			NumVars:   m.numVars(),
			Objective: m.objective(),
		}
		p.Constraints = append(p.Constraints, m.base...)
		p.Constraints = append(p.Constraints, m.cuts...)
		for varIdx, v := range node.fixed {
			p.Constraints = append(p.Constraints, lp.Constraint{
				Coeffs: map[int]float64{varIdx: 1}, Sense: lp.EQ, RHS: v,
			})
		}
		sol, err := lp.Solve(p, m.opts.LP)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			return nil, nil
		case lp.Unbounded, lp.IterLimit:
			return nil, fmt.Errorf("ilp: relaxation %v", sol.Status)
		}
		if sol.Objective >= m.bestCost-tol {
			return sol, nil // will be pruned; no point cutting further
		}
		added, err := m.separate(sol.X)
		if err != nil {
			return nil, err
		}
		if added == 0 || round >= m.opts.MaxCutRounds {
			return sol, nil
		}
	}
}

// separate finds violated connectivity cuts: every fractional facility
// y_i must be supported by z-capacity ≥ y_i across each producer cut.
func (m *model) separate(x []float64) (int, error) {
	added := 0
	for k, node := range m.candidates {
		yv := x[m.yVar(k)]
		if yv < tol {
			continue
		}
		nw := maxflow.New(m.g.NumNodes())
		for e, edge := range m.edges {
			if err := nw.AddEdge(edge.U, edge.V, x[m.zVar(e)]); err != nil {
				return added, err
			}
		}
		flow, sourceSide, err := nw.MaxFlow(m.producer, node)
		if err != nil {
			return added, err
		}
		if flow >= yv-1e-6 {
			continue
		}
		inSource := make([]bool, m.g.NumNodes())
		for _, v := range sourceSide {
			inSource[v] = true
		}
		coeffs := map[int]float64{m.yVar(k): -1}
		for e, edge := range m.edges {
			if inSource[edge.U] != inSource[edge.V] {
				coeffs[m.zVar(e)] = 1
			}
		}
		// Σ_{δ(S)} z_e − y_i ≥ 0.
		m.cuts = append(m.cuts, lp.Constraint{Coeffs: coeffs, Sense: lp.GE})
		added++
	}
	return added, nil
}

// mostFractionalY returns the variable index of the facility variable
// farthest from integral, or -1 if all are integral.
func (m *model) mostFractionalY(x []float64) int {
	best, bestDist := -1, tol
	for k := range m.candidates {
		v := x[m.yVar(k)]
		if d := math.Min(v, 1-v); d > bestDist {
			best, bestDist = m.yVar(k), d
		}
	}
	return best
}

// mostFractionalZ returns the variable index of the dissemination edge
// variable farthest from integral, or -1 if all are integral.
func (m *model) mostFractionalZ(x []float64) int {
	best, bestDist := -1, tol
	for e := range m.edges {
		v := x[m.zVar(e)]
		if d := math.Min(v, 1-v); d > bestDist {
			best, bestDist = m.zVar(e), d
		}
	}
	return best
}

// updateIncumbent evaluates the true ConFL cost of a facility set (exact
// Steiner; falls back to the MST 2-approximation above the exact terminal
// limit, marking the search as non-exhaustive) and stores it if better.
func (m *model) updateIncumbent(set []int) {
	cost := 0.0
	index := make(map[int]int, len(m.candidates))
	for k, node := range m.candidates {
		index[node] = k
	}
	for _, node := range set {
		cost += m.fair[index[node]]
	}
	for _, j := range m.demands {
		best := m.conn[m.producer][j]
		for _, i := range set {
			if c := m.conn[i][j]; c < best {
				best = c
			}
		}
		cost += best
	}
	if len(set) > 0 {
		terminals := append([]int{m.producer}, set...)
		stCost, err := steiner.ExactCost(m.g, m.edgeFunc, terminals)
		if err != nil {
			tree, terr := steiner.MSTApprox(m.g, m.edgeFunc, terminals)
			if terr != nil {
				return
			}
			stCost = tree.Cost
			m.exhausted = true // incumbent cost may be off-optimal
		}
		cost += stCost
	}
	if cost < m.bestCost {
		m.bestCost = cost
		m.best = &Solution{Facilities: append([]int(nil), set...)}
	}
}

func cloneFixed(in map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}
