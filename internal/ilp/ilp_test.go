package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/exact"
	"repro/internal/graph"
)

func TestSolveChunkValidation(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 5)
	if _, err := SolveChunk(nil, st, 0, DefaultOptions()); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := SolveChunk(g, cache.NewState(3, 5), 0, DefaultOptions()); err == nil {
		t.Error("state mismatch: want error")
	}
	if _, err := SolveChunk(g, st, 7, DefaultOptions()); err == nil {
		t.Error("bad producer: want error")
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := disc.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveChunk(disc, st, 0, DefaultOptions()); err == nil {
		t.Error("disconnected: want error")
	}
}

func TestSolveChunkLine(t *testing.T) {
	// 3-node line, producer at one end, empty caches: fairness is 0 so
	// the optimum caches at node 2 (or not at all) depending on cost
	// trade-offs; verify against the enumeration solver.
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(3, 5)
	got, err := SolveChunk(g, st, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.SolveChunk(g, cache.NewState(3, 5), 0, exact.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Optimal {
		t.Error("tiny instance should be proven optimal")
	}
	if math.Abs(got.Objective-want.Total()) > 1e-6 {
		t.Errorf("ILP = %g, enumeration = %g", got.Objective, want.Total())
	}
	if got.LowerBound > got.Objective+1e-6 {
		t.Errorf("lower bound %g exceeds objective %g", got.LowerBound, got.Objective)
	}
}

func TestSolveChunkMatchesEnumerationOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(4)
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 3)
		for k := 0; k < n/2; k++ {
			_ = st.Store(rng.Intn(n), rng.Intn(3))
		}
		producer := rng.Intn(n)

		ilpSol, err := SolveChunk(g, st.Clone(), producer, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d ilp: %v", trial, err)
		}
		enum, err := exact.SolveChunk(g, st.Clone(), producer, exact.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d enum: %v", trial, err)
		}
		if !enum.Optimal {
			t.Fatalf("trial %d: enumeration incomplete", trial)
		}
		if !ilpSol.Optimal {
			t.Errorf("trial %d: ILP not proven optimal (nodes %d, cuts %d)", trial, ilpSol.Nodes, ilpSol.Cuts)
			continue
		}
		if math.Abs(ilpSol.Objective-enum.Total()) > 1e-5 {
			t.Errorf("trial %d: ILP = %g (set %v), enumeration = %g (set %v)",
				trial, ilpSol.Objective, ilpSol.Facilities, enum.Total(), enum.Facilities)
		}
		if ilpSol.LowerBound > enum.Total()+1e-5 {
			t.Errorf("trial %d: lower bound %g exceeds optimum %g", trial, ilpSol.LowerBound, enum.Total())
		}
	}
}

func TestSolveChunkBudgetReportsNonOptimal(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	opts := DefaultOptions()
	opts.MaxNodes = 1
	sol, err := SolveChunk(g, st, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal && sol.Nodes >= 1 {
		// A single node can close the gap only if the root LP was
		// integral; verify the claim is consistent with the bound.
		if math.Abs(sol.Objective-sol.LowerBound) > 1e-5 {
			t.Errorf("claimed optimal with open gap: obj %g, bound %g", sol.Objective, sol.LowerBound)
		}
	}
	if sol.Objective <= 0 || math.IsInf(sol.Objective, 1) {
		t.Errorf("budget run must still return a finite incumbent, got %g", sol.Objective)
	}
}

func TestSolveChunkProducerNeverInSet(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	// A small node budget keeps this fast; the producer exclusion must
	// hold for budget-limited incumbents too.
	opts := DefaultOptions()
	opts.MaxNodes = 20
	sol, err := SolveChunk(g, st, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f == 4 {
			t.Error("producer in facility set")
		}
	}
}

func TestSolveChunkFullNodesExcluded(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 1)
	for _, v := range []int{1, 2} {
		if err := st.Store(v, 7); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := SolveChunk(g, st, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f != 3 {
			t.Errorf("full or producer node %d selected", f)
		}
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestSolveChunkGeneratesConnectivityCuts(t *testing.T) {
	// On a line with the producer at one end, any opened facility needs
	// dissemination support across every separating cut, so the lazy
	// separation must fire at least once whenever a facility opens.
	g := graph.New(6)
	for i := 1; i < 6; i++ {
		if err := g.AddEdge(i-1, i); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.NewState(6, 5)
	sol, err := SolveChunk(g, st, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Facilities) > 0 && sol.Cuts == 0 {
		t.Errorf("facilities %v opened without any connectivity cut", sol.Facilities)
	}
	if sol.Nodes == 0 {
		t.Error("no branch-and-bound nodes processed")
	}
}

func TestSolutionObjectiveNeverBelowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(4)
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 3)
		sol, err := SolveChunk(g, st, rng.Intn(n), DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Objective < sol.LowerBound-1e-6 {
			t.Errorf("trial %d: objective %g below lower bound %g", trial, sol.Objective, sol.LowerBound)
		}
	}
}
