package core

import (
	"sync"

	"repro/internal/confl"
	"repro/internal/steiner"
)

// SolveScratch is the reusable arena of one solve worker: every per-chunk
// buffer of Algorithm 1's inner loop — the ConFL dual-growth state, the
// Steiner construction's path rows and scan buffers, the facility-cost and
// terminal staging slices — lives here and recycles across chunks and
// solves. A zero SolveScratch is ready for use; it grows to the largest
// topology seen and must not be shared between concurrent solves (route
// concurrent solves through a ScratchPool).
type SolveScratch struct {
	confl     confl.Scratch
	steiner   steiner.Scratch
	fc        []float64
	terminals []int
}

// ScratchPool hands out SolveScratch arenas to concurrent solves and
// recycles them afterwards. The root solver owns one pool for its whole
// lifetime, so steady-state request traffic stops paying per-chunk arena
// construction entirely. The zero value is ready for use.
type ScratchPool struct {
	p sync.Pool
}

// NewScratchPool returns an empty arena pool.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// defaultScratchPool serves callers that do not wire their own pool
// (Options.Scratch == nil), so one-shot Solvers still recycle arenas
// across the chunks of a single solve and across solves.
var defaultScratchPool ScratchPool

func (sp *ScratchPool) get() *SolveScratch {
	if sp == nil {
		sp = &defaultScratchPool
	}
	if s, ok := sp.p.Get().(*SolveScratch); ok {
		return s
	}
	return &SolveScratch{}
}

func (sp *ScratchPool) put(s *SolveScratch) {
	if sp == nil {
		sp = &defaultScratchPool
	}
	sp.p.Put(s)
}
