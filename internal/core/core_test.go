package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultOptions()); !errors.Is(err, ErrBadTopology) {
		t.Errorf("nil graph: err = %v, want ErrBadTopology", err)
	}
	if _, err := New(graph.New(1), DefaultOptions()); !errors.Is(err, ErrBadTopology) {
		t.Errorf("1 node: err = %v, want ErrBadTopology", err)
	}
	disc := graph.New(4)
	mustEdge(t, disc, 0, 1)
	if _, err := New(disc, DefaultOptions()); !errors.Is(err, ErrBadTopology) {
		t.Errorf("disconnected: err = %v, want ErrBadTopology", err)
	}
	opts := DefaultOptions()
	opts.FairnessWeight = -1
	if _, err := New(graph.NewGrid(2, 2), opts); err == nil {
		t.Error("negative fairness weight: want error")
	}
	if _, err := New(graph.NewGrid(2, 2), DefaultOptions()); err != nil {
		t.Errorf("valid topology: %v", err)
	}
}

func TestPlaceValidation(t *testing.T) {
	g := graph.NewGrid(3, 3)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(9, 5)
	if _, err := s.Place(-1, 1, st); !errors.Is(err, ErrBadProducer) {
		t.Errorf("bad producer: err = %v", err)
	}
	if _, err := s.Place(0, 0, st); !errors.Is(err, ErrBadChunks) {
		t.Errorf("zero chunks: err = %v", err)
	}
	if _, err := s.Place(0, 1, cache.NewState(4, 5)); !errors.Is(err, ErrBadState) {
		t.Errorf("state size mismatch: err = %v", err)
	}
	if _, err := s.Place(0, 1, nil); !errors.Is(err, ErrBadState) {
		t.Errorf("nil state: err = %v", err)
	}
}

func TestPlaceSingleChunkGrid(t *testing.T) {
	g := graph.NewGrid(6, 6)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(36, 5)
	p, err := s.Place(9, 1, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks) != 1 {
		t.Fatalf("len(Chunks) = %d, want 1", len(p.Chunks))
	}
	c := p.Chunks[0]
	if len(c.CacheNodes) == 0 {
		t.Fatal("no cache nodes selected on a 6x6 grid")
	}
	for _, i := range c.CacheNodes {
		if i == 9 {
			t.Error("producer selected as cache node")
		}
		if !st.Has(i, 0) {
			t.Errorf("node %d in CacheNodes but state lacks the chunk", i)
		}
	}
	if c.Access <= 0 {
		t.Errorf("Access = %g, want > 0", c.Access)
	}
	if c.Dissemination <= 0 {
		t.Errorf("Dissemination = %g, want > 0", c.Dissemination)
	}
	if c.Fairness != 0 {
		t.Errorf("Fairness = %g, want 0 on first chunk (empty caches)", c.Fairness)
	}
	// Dissemination tree must span cache nodes and producer.
	spanned := map[int]bool{}
	for _, v := range c.Tree.Nodes() {
		spanned[v] = true
	}
	for _, i := range c.CacheNodes {
		if !spanned[i] {
			t.Errorf("cache node %d not on dissemination tree", i)
		}
	}
	if !spanned[9] {
		t.Error("producer not on dissemination tree")
	}
}

func TestPlaceMultiChunkSpreadsLoad(t *testing.T) {
	g := graph.NewGrid(6, 6)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(36, 5)
	p, err := s.Place(9, 5, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks) != 5 {
		t.Fatalf("len(Chunks) = %d, want 5", len(p.Chunks))
	}
	// Fairness must engage after the first chunk: the union of caching
	// nodes should exceed a single chunk's set (load is spread).
	distinct := map[int]bool{}
	maxPerChunk := 0
	for _, c := range p.Chunks {
		if len(c.CacheNodes) > maxPerChunk {
			maxPerChunk = len(c.CacheNodes)
		}
		for _, i := range c.CacheNodes {
			distinct[i] = true
		}
	}
	if len(distinct) <= maxPerChunk {
		t.Errorf("distinct caching nodes %d <= max per-chunk set %d; fairness feedback not spreading load", len(distinct), maxPerChunk)
	}
	// Capacity respected.
	for i := 0; i < 36; i++ {
		if st.Stored(i) > st.Capacity(i) {
			t.Errorf("node %d over capacity: %d > %d", i, st.Stored(i), st.Capacity(i))
		}
	}
	if st.Stored(9) != 0 {
		t.Errorf("producer cached %d chunks, want 0", st.Stored(9))
	}
}

func TestPlaceNeverExceedsCapacityUnderPressure(t *testing.T) {
	// Tiny caches force heavy reuse pressure; fairness must steer away
	// from full nodes rather than erroring.
	g := graph.NewGrid(4, 4)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(16, 2)
	p, err := s.Place(5, 6, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if st.Stored(i) > 2 {
			t.Errorf("node %d stored %d > capacity 2", i, st.Stored(i))
		}
	}
	if got := len(p.Chunks); got != 6 {
		t.Errorf("placed %d chunks, want 6", got)
	}
}

func TestPlaceObjectiveAccounting(t *testing.T) {
	g := graph.NewGrid(4, 4)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(16, 5)
	p, err := s.Place(0, 3, st)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range p.Chunks {
		if c.Total() != c.Fairness+c.Access+c.Dissemination {
			t.Errorf("chunk %d Total() inconsistent", c.Chunk)
		}
		sum += c.Total()
	}
	if p.Objective() != sum {
		t.Errorf("Objective() = %g, want %g", p.Objective(), sum)
	}
	cn := p.CacheNodes()
	if len(cn) != 3 {
		t.Fatalf("CacheNodes() length = %d, want 3", len(cn))
	}
	// Returned sets are copies.
	if len(cn[0]) > 0 {
		cn[0][0] = -99
		if p.Chunks[0].CacheNodes[0] == -99 {
			t.Error("CacheNodes() aliases internal storage")
		}
	}
}

func TestPlaceZeroFairnessWeightStillRespectsCapacity(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	opts.FairnessWeight = 0 // ablation: contention-only objective
	s, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(16, 1)
	if _, err := s.Place(0, 3, st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if st.Stored(i) > 1 {
			t.Errorf("node %d over capacity with zero fairness weight", i)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	g := graph.NewGrid(5, 5)
	run := func() *Placement {
		s, err := New(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.Place(12, 4, cache.NewState(25, 5))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	for n := range a.Chunks {
		ca, cb := a.Chunks[n].CacheNodes, b.Chunks[n].CacheNodes
		if len(ca) != len(cb) {
			t.Fatalf("chunk %d: nondeterministic cache sets %v vs %v", n, ca, cb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("chunk %d: nondeterministic cache sets %v vs %v", n, ca, cb)
			}
		}
	}
}

// Property: on random connected topologies, placements are feasible —
// capacity respected, producer never caches, every chunk's holders are
// real nodes, dissemination trees span holders + producer.
func TestPlaceFeasibilityProperty(t *testing.T) {
	f := func(seed int64, nRaw, qRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%12
		q := 1 + int(qRaw)%4
		g := randomConnectedGraph(rng, n)
		producer := rng.Intn(n)
		s, err := New(g, DefaultOptions())
		if err != nil {
			return false
		}
		st := cache.NewState(n, 3)
		p, err := s.Place(producer, q, st)
		if err != nil {
			return false
		}
		for _, c := range p.Chunks {
			for _, i := range c.CacheNodes {
				if i < 0 || i >= n || i == producer {
					return false
				}
			}
			if len(c.CacheNodes) > 0 {
				onTree := map[int]bool{}
				for _, v := range c.Tree.Nodes() {
					onTree[v] = true
				}
				if !onTree[producer] {
					return false
				}
				for _, i := range c.CacheNodes {
					if !onTree[i] {
						return false
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			if st.Stored(i) > st.Capacity(i) {
				return false
			}
		}
		return st.Stored(producer) == 0
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestPlaceOneArbitraryChunkID(t *testing.T) {
	g := graph.NewGrid(4, 4)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(16, 5)
	res, err := s.PlaceOne(5, 42, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunk != 42 {
		t.Errorf("Chunk = %d, want 42", res.Chunk)
	}
	for _, v := range res.CacheNodes {
		if !st.Has(v, 42) {
			t.Errorf("node %d missing chunk 42", v)
		}
	}
	if _, err := s.PlaceOne(-1, 0, st); err == nil {
		t.Error("bad producer: want error")
	}
	if _, err := s.PlaceOne(5, 0, nil); err == nil {
		t.Error("nil state: want error")
	}
}

func TestGreedyStrategyInCore(t *testing.T) {
	g := graph.NewGrid(5, 5)
	opts := DefaultOptions()
	opts.Strategy = Greedy
	s, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Place(12, 3, cache.NewState(25, 5))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range p.Chunks {
		total += len(c.CacheNodes)
	}
	if total == 0 {
		t.Error("greedy strategy cached nothing")
	}
}

func TestImproveSteinerNeverRaisesDissemination(t *testing.T) {
	g := graph.NewGrid(6, 6)
	plain, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	optsI := DefaultOptions()
	optsI.ImproveSteiner = true
	improved, err := New(g, optsI)
	if err != nil {
		t.Fatal(err)
	}
	pPlain, err := plain.Place(9, 5, cache.NewState(36, 5))
	if err != nil {
		t.Fatal(err)
	}
	pImproved, err := improved.Place(9, 5, cache.NewState(36, 5))
	if err != nil {
		t.Fatal(err)
	}
	for n := range pPlain.Chunks {
		if pImproved.Chunks[n].Dissemination > pPlain.Chunks[n].Dissemination+1e-9 {
			t.Errorf("chunk %d: improvement raised dissemination %g -> %g",
				n, pPlain.Chunks[n].Dissemination, pImproved.Chunks[n].Dissemination)
		}
	}
}
