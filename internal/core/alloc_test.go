package core

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/costmodel"
	"repro/internal/graph"
)

// placeOneAllocs measures the steady-state allocation rate of
// PlaceOneModelCtx under a given strategy: one warm-up call pays the cold
// model build, then each measured call places a fresh chunk against the
// same long-lived model (the online-system shape).
func placeOneAllocs(t *testing.T, strategy Strategy, runs int) float64 {
	t.Helper()
	g := graph.NewGrid(6, 6)
	opts := DefaultOptions()
	opts.Strategy = strategy
	opts.Workers = -1 // sequential reference path; pool overhead measured separately
	s, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity far above what the runs commit, so every placement succeeds.
	st := cache.NewState(36, 4*(runs+2))
	m, err := costmodel.New(g, s.PathCache(), st, costmodel.Options{FairnessWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	chunk := 0
	place := func() {
		if _, err := s.PlaceOneModelCtx(context.Background(), 9, chunk, m); err != nil {
			t.Fatal(err)
		}
		chunk++
	}
	place() // cold call: full cost build + scratch growth
	return testing.AllocsPerRun(runs, place)
}

// TestPlaceOneModelCtxAllocBudget pins the per-chunk allocation ceiling of
// the warm Algorithm-1 iteration for both ConFL strategies. Before the
// scratch-arena refactor one iteration cost thousands of allocations; the
// ceilings hold the steady state to the low dozens (ChunkResult, the
// Solution copy-out, the committed tree) so per-tick or per-node garbage
// cannot silently return.
func TestPlaceOneModelCtxAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy Strategy
		ceiling  float64
	}{
		// PrimalDual is the paper path: everything transient lives in the
		// arena, so only result construction and pool setup remain.
		{"primal-dual", PrimalDual, 30},
		// Greedy re-derives facility sets per call and keeps its own
		// small working maps; it is off the hot path but still bounded.
		{"greedy", Greedy, 80},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := placeOneAllocs(t, tc.strategy, 20)
			t.Logf("PlaceOneModelCtx(%s): %.1f allocs/run", tc.name, got)
			if got > tc.ceiling {
				t.Errorf("PlaceOneModelCtx allocates %.1f times per run, want <= %g", got, tc.ceiling)
			}
		})
	}
}
