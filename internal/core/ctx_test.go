package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

func placeOn(t *testing.T, g *graph.Graph, opts Options, producer, chunks int) *Placement {
	t.Helper()
	s, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(g.NumNodes(), chunks)
	p, err := s.Place(producer, chunks, st)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParallelPlacementIsByteIdentical is the engine-level determinism
// check: the full placement — holder sets, assignments and all float cost
// terms — must match the sequential path bit for bit at any pool width.
func TestParallelPlacementIsByteIdentical(t *testing.T) {
	g := graph.NewGrid(8, 8)
	const chunks = 6
	seqOpts := DefaultOptions()
	seqOpts.Workers = 1
	want := placeOn(t, g, seqOpts, 0, chunks)

	for _, workers := range []int{0, 2, 4, 8} {
		for _, strategy := range []Strategy{PrimalDual, Greedy} {
			opts := DefaultOptions()
			opts.Workers = workers
			opts.Strategy = strategy
			ref := seqOpts
			ref.Strategy = strategy
			wantS := want
			if strategy != PrimalDual {
				wantS = placeOn(t, g, ref, 0, chunks)
			}
			got := placeOn(t, g, opts, 0, chunks)
			if len(got.Chunks) != len(wantS.Chunks) {
				t.Fatalf("workers=%d strategy=%d: %d chunks, want %d", workers, strategy, len(got.Chunks), len(wantS.Chunks))
			}
			for n := range wantS.Chunks {
				w, gc := wantS.Chunks[n], got.Chunks[n]
				if len(w.CacheNodes) != len(gc.CacheNodes) {
					t.Fatalf("workers=%d strategy=%d chunk %d: holders %v != %v", workers, strategy, n, gc.CacheNodes, w.CacheNodes)
				}
				for k := range w.CacheNodes {
					if w.CacheNodes[k] != gc.CacheNodes[k] {
						t.Fatalf("workers=%d strategy=%d chunk %d: holders %v != %v", workers, strategy, n, gc.CacheNodes, w.CacheNodes)
					}
				}
				for j := range w.Assign {
					if w.Assign[j] != gc.Assign[j] {
						t.Fatalf("workers=%d strategy=%d chunk %d: assign[%d] %d != %d", workers, strategy, n, j, gc.Assign[j], w.Assign[j])
					}
				}
				for _, pair := range [][2]float64{
					{w.Fairness, gc.Fairness},
					{w.Access, gc.Access},
					{w.Dissemination, gc.Dissemination},
				} {
					if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
						t.Fatalf("workers=%d strategy=%d chunk %d: cost %v != %v", workers, strategy, n, pair[1], pair[0])
					}
				}
				if w.Iterations != gc.Iterations {
					t.Fatalf("workers=%d strategy=%d chunk %d: iterations %d != %d", workers, strategy, n, gc.Iterations, w.Iterations)
				}
			}
		}
	}
}

// TestCancelStopsMidSolve cancels the context from inside the engine's
// per-chunk hook and asserts the solve stops there instead of running the
// remaining chunks.
func TestCancelStopsMidSolve(t *testing.T) {
	g := graph.NewGrid(6, 6)
	const chunks = 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := 0
	opts := DefaultOptions()
	opts.ChunkStarted = func(chunk int) {
		started++
		if chunk == 2 {
			cancel()
		}
	}
	s, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(g.NumNodes(), chunks)
	_, err = s.PlaceCtx(ctx, 0, chunks, st)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceCtx: err = %v, want context.Canceled", err)
	}
	if started >= chunks {
		t.Fatalf("engine started all %d chunks despite mid-solve cancel", started)
	}
	if started < 3 {
		t.Fatalf("hook ran %d times, expected to reach chunk 2", started)
	}
}

func TestPlaceCtxPreCancelled(t *testing.T) {
	g := graph.NewGrid(4, 4)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := cache.NewState(g.NumNodes(), 2)
	if _, err := s.PlaceCtx(ctx, 0, 2, st); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceCtx: err = %v, want context.Canceled", err)
	}
	if _, err := s.PlaceOneCtx(ctx, 0, 0, st); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceOneCtx: err = %v, want context.Canceled", err)
	}
}

// TestPathCacheReuseAcrossSolves runs the same solve twice on one Solver
// (warm cache the second time) and expects identical results.
func TestPathCacheReuseAcrossSolves(t *testing.T) {
	g := graph.NewGrid(5, 5)
	s, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Placement {
		st := cache.NewState(g.NumNodes(), 4)
		p, err := s.Place(3, 4, st)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	first, second := run(), run()
	for n := range first.Chunks {
		a, b := first.Chunks[n], second.Chunks[n]
		if math.Float64bits(a.Total()) != math.Float64bits(b.Total()) {
			t.Fatalf("chunk %d: warm-cache total %v != cold %v", n, b.Total(), a.Total())
		}
		for k := range a.CacheNodes {
			if a.CacheNodes[k] != b.CacheNodes[k] {
				t.Fatalf("chunk %d: holders differ between runs: %v vs %v", n, a.CacheNodes, b.CacheNodes)
			}
		}
	}
}
