// Package core implements the paper's primary contribution: the fair
// caching approximation algorithm (Algorithm 1). Chunks are placed one at a
// time; before each chunk the Fairness Degree Costs (Eq. 1) and the Path
// Contention Costs (Eq. 2) are refreshed from the current cache state, a
// ConFL primal-dual phase selects the caching (ADMIN) set, and a Steiner
// tree connects it to the producer for dissemination. Because placements
// raise both the fairness cost and the relay contention of loaded nodes,
// subsequent chunks avoid them — this feedback is what makes the caching
// load fair.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/confl"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/steiner"
	"repro/internal/trace"
)

// Strategy selects the per-chunk ConFL solver.
type Strategy int

const (
	// PrimalDual is the paper's dual-growth algorithm with the 6.55
	// approximation guarantee (the default).
	PrimalDual Strategy = iota
	// Greedy is the guarantee-free greedy heuristic (related work [23]),
	// kept as an ablation point.
	Greedy
)

// Options configures the approximation algorithm.
type Options struct {
	// ConFL tunes the per-chunk primal-dual phase.
	ConFL confl.Options
	// Strategy selects the per-chunk solver (default PrimalDual).
	Strategy Strategy
	// ImproveSteiner applies key-path local search to each dissemination
	// tree after the MST 2-approximation (toward the stronger ratios the
	// paper cites for phase 2).
	ImproveSteiner bool
	// FairnessWeight scales the Fairness Degree Cost term against the
	// contention terms. The paper's formulation uses equal weights (1,
	// the DefaultOptions value); 0 disables the fairness term entirely,
	// which the ablation benchmarks use to isolate the contention terms.
	FairnessWeight float64
	// BatteryWeight scales the battery Fairness Degree Cost (the
	// weighted-summation extension of the paper's footnote 1); 0 (the
	// default) ignores battery levels.
	BatteryWeight float64
	// Workers sizes the worker pool the engine fans independent inner work
	// out over (contention matrix rows, per-demand and per-candidate tick
	// phases, per-terminal Dijkstra). 0 uses GOMAXPROCS; 1 or less runs the
	// sequential reference path. Results are byte-identical at any width.
	Workers int
	// ChunkStarted, when non-nil, is invoked at the start of each per-chunk
	// iteration with the chunk id, before any work for that chunk runs. It
	// exists so callers (and cancellation tests) can observe solve progress.
	ChunkStarted func(chunk int)
	// PathCache, when non-nil, supplies a shared shortest-path memo for the
	// solver's topology (it MUST have been built over the same graph).
	// Callers that create many Solvers on one topology — the placement
	// service does, one per request — pass a shared cache so the BFS layer
	// structure is computed once. nil creates a private cache.
	PathCache *graph.PathCache
	// Scratch, when non-nil, supplies the arena pool the solve borrows its
	// per-chunk scratch buffers from (ConFL dual-growth state, Steiner path
	// rows, staging slices). The root solver passes its own long-lived pool
	// so arenas recycle across requests; nil falls back to a process-wide
	// default pool. Either way a steady-state chunk placement performs
	// near-zero heap allocations.
	Scratch *ScratchPool
	// Parent is the trace span per-chunk placement spans attach under
	// (cost refresh, ConFL dual growth, Steiner connect/improve). The
	// zero Span disables tracing at zero cost.
	Parent trace.Span
}

// DefaultOptions returns the configuration used in the paper's evaluation.
func DefaultOptions() Options {
	return Options{
		ConFL:          confl.DefaultOptions(),
		FairnessWeight: 1,
	}
}

// ChunkResult records the decisions and decision-time costs for one chunk.
type ChunkResult struct {
	// Chunk is the chunk id.
	Chunk int
	// CacheNodes is L(n): the nodes selected to cache the chunk (the
	// ADMIN set), sorted; it never contains the producer.
	CacheNodes []int
	// Assign maps every node to the node it obtains the chunk from under
	// the solver's dual-growth assignment.
	Assign []int
	// Tree is the dissemination Steiner tree over CacheNodes ∪ producer.
	Tree steiner.Tree
	// Fairness, Access and Dissemination are the decision-time cost terms
	// of objective (8) for this chunk.
	Fairness      float64
	Access        float64
	Dissemination float64
	// Iterations is the dual-growth tick count (the paper's C).
	Iterations int
}

// Total returns the chunk's decision-time objective value.
func (c ChunkResult) Total() float64 {
	return c.Fairness + c.Access + c.Dissemination
}

// Placement is the outcome of placing all chunks.
type Placement struct {
	// Producer is the data producer node.
	Producer int
	// Chunks holds one result per chunk, in placement order.
	Chunks []ChunkResult
	// State is the final cache state after all placements.
	State *cache.State
}

// CacheNodes returns the per-chunk caching sets (the holders of each
// chunk), for handing to the uniform evaluation in package metrics.
func (p *Placement) CacheNodes() [][]int {
	out := make([][]int, len(p.Chunks))
	for i, c := range p.Chunks {
		out[i] = append([]int(nil), c.CacheNodes...)
	}
	return out
}

// Objective returns the summed decision-time objective across chunks.
func (p *Placement) Objective() float64 {
	total := 0.0
	for _, c := range p.Chunks {
		total += c.Total()
	}
	return total
}

// Solver runs the fair caching approximation algorithm on one topology.
// It memoises the topology-dependent shortest-path structure (BFS layers
// per source), so repeated solves on the same topology — per-chunk
// iterations, online publications, server requests — skip that work. A
// Solver is safe for concurrent use.
type Solver struct {
	g    *graph.Graph
	opts Options
	pc   *graph.PathCache
}

// Errors returned by the solver.
var (
	ErrBadTopology = errors.New("core: topology must be connected with at least 2 nodes")
	ErrBadProducer = errors.New("core: producer out of range")
	ErrBadChunks   = errors.New("core: chunk count must be positive")
	ErrBadState    = errors.New("core: cache state size mismatch")
)

// New returns a Solver for the given connected topology.
func New(g *graph.Graph, opts Options) (*Solver, error) {
	if g == nil || g.NumNodes() < 2 || !g.Connected() {
		return nil, ErrBadTopology
	}
	if opts.FairnessWeight < 0 {
		return nil, fmt.Errorf("core: fairness weight %g must be >= 0", opts.FairnessWeight)
	}
	if opts.BatteryWeight < 0 {
		return nil, fmt.Errorf("core: battery weight %g must be >= 0", opts.BatteryWeight)
	}
	pc := opts.PathCache
	if pc == nil {
		pc = graph.NewPathCache(g)
	}
	return &Solver{g: g, opts: opts, pc: pc}, nil
}

// PathCache returns the solver's shared shortest-path memo, so callers
// building caller-owned cost models (warm solves, region solves) reuse the
// BFS layer structure instead of recomputing it.
func (s *Solver) PathCache() *graph.PathCache { return s.pc }

// Reconfigure returns a Solver over the same topology and path cache with
// different options. The graph was validated when this solver was built,
// so the O(N+E) connectivity check is skipped — the hook the sharded solve
// path uses to derive per-request region solvers from a plan's canonical
// ones. Options.PathCache is ignored; the receiver's cache is kept.
func (s *Solver) Reconfigure(opts Options) (*Solver, error) {
	if opts.FairnessWeight < 0 {
		return nil, fmt.Errorf("core: fairness weight %g must be >= 0", opts.FairnessWeight)
	}
	if opts.BatteryWeight < 0 {
		return nil, fmt.Errorf("core: battery weight %g must be >= 0", opts.BatteryWeight)
	}
	opts.PathCache = s.pc
	return &Solver{g: s.g, opts: opts, pc: s.pc}, nil
}

// Place runs Algorithm 1: it places chunk ids 0..chunks-1 sequentially,
// mutating st (which must cover the same node set as the topology).
func (s *Solver) Place(producer, chunks int, st *cache.State) (*Placement, error) {
	return s.PlaceCtx(context.Background(), producer, chunks, st)
}

// PlaceCtx is Place with cancellation and parallel inner work: ctx is
// checked before every chunk and throughout each per-chunk iteration
// (contention matrix build, dual-growth ticks, Steiner fan-out), and the
// independent inner loops spread over Options.Workers. Cancellation
// surfaces as an error satisfying errors.Is with ctx.Err(); st may have
// been mutated by already-committed chunks.
func (s *Solver) PlaceCtx(ctx context.Context, producer, chunks int, st *cache.State) (*Placement, error) {
	if producer < 0 || producer >= s.g.NumNodes() {
		return nil, fmt.Errorf("%w: %d", ErrBadProducer, producer)
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadChunks, chunks)
	}
	if st == nil || st.NumNodes() != s.g.NumNodes() {
		return nil, ErrBadState
	}
	m, err := costmodel.New(s.g, s.pc, st, s.modelOptions())
	if err != nil {
		return nil, ErrBadState
	}
	return s.PlaceModelCtx(ctx, producer, chunks, m)
}

// PlaceModelCtx is PlaceCtx against a caller-owned cost model, the hook
// for warm solves: the placement service forks a pre-built topology model
// instead of paying the cold matrix build, and the online system keeps one
// model alive across publications. The model must be bound to this
// solver's graph and carry the same fairness/battery weights; the cache
// state placed into is the model's own.
func (s *Solver) PlaceModelCtx(ctx context.Context, producer, chunks int, m *costmodel.Model) (*Placement, error) {
	if producer < 0 || producer >= s.g.NumNodes() {
		return nil, fmt.Errorf("%w: %d", ErrBadProducer, producer)
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadChunks, chunks)
	}
	if err := s.checkModel(m); err != nil {
		return nil, err
	}

	pl := pool.New(s.effectiveWorkers())
	defer pl.Close()
	scr := s.opts.Scratch.get()
	defer s.opts.Scratch.put(scr)

	placement := &Placement{
		Producer: producer,
		State:    m.State(),
	}
	for n := 0; n < chunks; n++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", n, err)
		}
		res, err := s.placeChunk(ctx, producer, n, m, pl, scr)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", n, err)
		}
		placement.Chunks = append(placement.Chunks, *res)
	}
	return placement, nil
}

// modelOptions maps the solver's options onto the cost model's.
func (s *Solver) modelOptions() costmodel.Options {
	return costmodel.Options{
		FairnessWeight: s.opts.FairnessWeight,
		BatteryWeight:  s.opts.BatteryWeight,
	}
}

// checkModel rejects models bound to another topology or weighted
// differently than this solver — either would silently change placements.
func (s *Solver) checkModel(m *costmodel.Model) error {
	if m == nil || m.Graph() != s.g || m.State() == nil || m.State().NumNodes() != s.g.NumNodes() {
		return ErrBadState
	}
	if mo := m.Options(); mo.FairnessWeight != s.opts.FairnessWeight || mo.BatteryWeight != s.opts.BatteryWeight {
		return fmt.Errorf("%w: model weights (%g, %g) differ from solver options (%g, %g)",
			ErrBadState, mo.FairnessWeight, mo.BatteryWeight, s.opts.FairnessWeight, s.opts.BatteryWeight)
	}
	return nil
}

// PlaceOne runs a single iteration of Algorithm 1 for an arbitrary chunk
// id against the current state — the building block of the online variant
// (package online), where chunks arrive over time rather than as a batch.
func (s *Solver) PlaceOne(producer, chunkID int, st *cache.State) (*ChunkResult, error) {
	return s.PlaceOneCtx(context.Background(), producer, chunkID, st)
}

// PlaceOneCtx is PlaceOne with cancellation and parallel inner work (see
// PlaceCtx).
func (s *Solver) PlaceOneCtx(ctx context.Context, producer, chunkID int, st *cache.State) (*ChunkResult, error) {
	if st == nil || st.NumNodes() != s.g.NumNodes() {
		return nil, ErrBadState
	}
	m, err := costmodel.New(s.g, s.pc, st, s.modelOptions())
	if err != nil {
		return nil, ErrBadState
	}
	return s.PlaceOneModelCtx(ctx, producer, chunkID, m)
}

// PlaceOneModelCtx is PlaceOneCtx against a caller-owned cost model (see
// PlaceModelCtx). The online system keeps one model alive across
// publications and TTL evictions, so each arrival pays only the delta
// repair instead of a full cost rebuild.
func (s *Solver) PlaceOneModelCtx(ctx context.Context, producer, chunkID int, m *costmodel.Model) (*ChunkResult, error) {
	if producer < 0 || producer >= s.g.NumNodes() {
		return nil, fmt.Errorf("%w: %d", ErrBadProducer, producer)
	}
	if err := s.checkModel(m); err != nil {
		return nil, err
	}
	pl := pool.New(s.effectiveWorkers())
	defer pl.Close()
	scr := s.opts.Scratch.get()
	defer s.opts.Scratch.put(scr)
	return s.placeChunk(ctx, producer, chunkID, m, pl, scr)
}

// effectiveWorkers maps Options.Workers onto a pool width: 0 means
// GOMAXPROCS, anything below 1 means the sequential path.
func (s *Solver) effectiveWorkers() int { return pool.Normalize(s.opts.Workers) }

// placeChunk runs one iteration of Algorithm 1 for chunk n, borrowing
// every transient buffer from scr so a steady-state iteration allocates
// only its ChunkResult.
func (s *Solver) placeChunk(ctx context.Context, producer, n int, m *costmodel.Model, pl *pool.Pool, scr *SolveScratch) (*ChunkResult, error) {
	if hook := s.opts.ChunkStarted; hook != nil {
		hook(n)
	}
	csp := s.opts.Parent.Child("chunk")
	csp.SetInt("chunk", int64(n))
	defer csp.End()

	// Lines 5-16: refresh fairness and contention costs from the state.
	// The model repairs only the entries the previous chunk's commits
	// dirtied; the first call on a cold model pays the one full build.
	rsp := csp.Child("costmodel.refresh")
	var st0 costmodel.Stats
	if rsp.Live() {
		st0 = m.Stats()
	}
	scr.fc = m.FacilityCostsInto(producer, scr.fc)
	fc := scr.fc
	costs, err := m.CostsCtx(ctx, pl)
	if err != nil {
		return nil, err
	}
	if rsp.Live() {
		st1 := m.Stats()
		rsp.SetInt("fullBuilds", int64(st1.FullBuilds-st0.FullBuilds))
		rsp.SetInt("repairs", int64(st1.Repairs-st0.Repairs))
		rsp.SetInt("cellsRepaired", int64(st1.CellsRecomputed-st0.CellsRecomputed))
	}
	rsp.End()

	// Phase 1 (lines 17-46): per-chunk ConFL. The instance borrows the
	// model's flat cost views read-only for the duration of the solve.
	inst := confl.Instance{
		N:            s.g.NumNodes(),
		Producer:     producer,
		FacilityCost: fc,
		ConnCost:     costs.C,
	}
	copts := s.opts.ConFL
	copts.Pool = pl
	fsp := csp.Child("confl")
	var sol *confl.Solution
	if s.opts.Strategy == Greedy {
		sol, err = confl.SolveGreedyCtx(ctx, inst, copts)
	} else {
		sol, err = confl.SolveScratchCtx(ctx, inst, copts, &scr.confl)
	}
	if err != nil {
		return nil, err
	}
	if fsp.Live() {
		fsp.SetInt("ticks", int64(sol.Iterations))
		fsp.SetInt("admitted", int64(len(sol.Facilities)))
		frozen := 0
		for j, to := range sol.Assign {
			if j != producer && to != j {
				frozen++
			}
		}
		fsp.SetInt("frozenRemote", int64(frozen))
	}
	fsp.End()

	res := &ChunkResult{
		Chunk:      n,
		CacheNodes: sol.Facilities,
		Assign:     sol.Assign,
		Iterations: sol.Iterations,
	}

	// Decision-time cost terms of objective (8), before committing.
	for _, i := range sol.Facilities {
		res.Fairness += fc[i]
	}
	for j := 0; j < s.g.NumNodes(); j++ {
		if j != producer {
			res.Access += costs.At(sol.Assign[j], j)
		}
	}

	// Phase 2 (line 47): Steiner tree connecting ADMIN set and producer.
	if len(sol.Facilities) > 0 {
		scr.terminals = append(append(scr.terminals[:0], sol.Facilities...), producer)
		terminals := scr.terminals
		edgeCost := m.EdgeCostFunc()
		ssp := csp.Child("steiner.connect")
		tree, err := steiner.MSTApproxScratchCtx(ctx, s.g, edgeCost, terminals, pl, &scr.steiner)
		if err != nil {
			return nil, err
		}
		ssp.SetInt("terminals", int64(len(terminals)))
		ssp.SetInt("edges", int64(len(tree.Edges)))
		ssp.End()
		if s.opts.ImproveSteiner {
			isp := csp.Child("steiner.improve")
			before := len(tree.Edges)
			tree = steiner.ImproveScratch(s.g, edgeCost, tree, terminals, &scr.steiner)
			isp.SetInt("edgesBefore", int64(before))
			isp.SetInt("edges", int64(len(tree.Edges)))
			isp.End()
		}
		res.Tree = tree
		res.Dissemination = tree.Cost
	}

	// Commit: L(n) ← A (line 48) — through the model, so the next chunk's
	// refresh is a delta repair, not a rebuild.
	for _, i := range sol.Facilities {
		if err := m.Commit(i, n); err != nil {
			return nil, fmt.Errorf("store on node %d: %w", i, err)
		}
	}
	return res, nil
}
