package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/steiner"
)

func TestSolveChunkValidation(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 5)
	if _, err := SolveChunk(nil, st, 0, DefaultOptions()); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := SolveChunk(g, cache.NewState(3, 5), 0, DefaultOptions()); err == nil {
		t.Error("state mismatch: want error")
	}
	if _, err := SolveChunk(g, st, 9, DefaultOptions()); err == nil {
		t.Error("bad producer: want error")
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := disc.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveChunk(disc, st, 0, DefaultOptions()); err == nil {
		t.Error("disconnected graph: want error")
	}
	if _, err := PlaceChunks(g, 0, 0, st, DefaultOptions()); err == nil {
		t.Error("zero chunks: want error")
	}
}

// naiveOptimal enumerates every subset of eligible nodes and returns the
// true optimum, as an oracle for the branch-and-bound.
func naiveOptimal(t *testing.T, g *graph.Graph, st *cache.State, producer int, weight float64) float64 {
	t.Helper()
	n := g.NumNodes()
	conn := contention.ComputeCosts(g, st).Rows()
	edge := contention.EdgeCostFunc(g, st)
	var eligible []int
	for i := 0; i < n; i++ {
		if i != producer && st.Free(i) > 0 {
			eligible = append(eligible, i)
		}
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(eligible); mask++ {
		var set []int
		for b, v := range eligible {
			if mask&(1<<b) != 0 {
				set = append(set, v)
			}
		}
		fair := 0.0
		for _, i := range set {
			fc := st.FairnessCost(i)
			if math.IsInf(fc, 1) {
				fair = math.Inf(1)
				break
			}
			fair += weight * fc
		}
		if math.IsInf(fair, 1) {
			continue
		}
		access := 0.0
		for j := 0; j < n; j++ {
			if j == producer {
				continue
			}
			bestC := conn[producer][j]
			for _, i := range set {
				if c := conn[i][j]; c < bestC {
					bestC = c
				}
			}
			access += bestC
		}
		stCost := 0.0
		if len(set) > 0 {
			var err error
			stCost, err = steiner.ExactCost(g, edge, append([]int{producer}, set...))
			if err != nil {
				t.Fatalf("oracle steiner: %v", err)
			}
		}
		if cost := fair + access + stCost; cost < best {
			best = cost
		}
	}
	return best
}

func TestSolveChunkMatchesNaiveEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(5) // up to 8 nodes: 2^7 subsets for the oracle
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 3)
		for k := 0; k < n/2; k++ {
			_ = st.Store(rng.Intn(n), rng.Intn(3))
		}
		producer := rng.Intn(n)

		want := naiveOptimal(t, g, st, producer, 1)
		sol, err := SolveChunk(g, st, producer, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !sol.Optimal {
			t.Fatalf("trial %d: search did not complete", trial)
		}
		if math.Abs(sol.Total()-want) > 1e-6 {
			t.Errorf("trial %d: SolveChunk = %g, oracle = %g (set %v)", trial, sol.Total(), want, sol.Facilities)
		}
	}
}

func TestSolveChunkProducerNeverSelected(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	sol, err := SolveChunk(g, st, 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f == 4 {
			t.Error("producer in optimal caching set")
		}
	}
}

func TestSolveChunkRespectsBudget(t *testing.T) {
	g := graph.NewGrid(4, 4)
	st := cache.NewState(16, 5)
	opts := DefaultOptions()
	opts.NodeBudget = 3
	sol, err := SolveChunk(g, st, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Error("budget 3 on 4x4 grid reported Optimal = true")
	}
	if sol.Total() <= 0 || math.IsInf(sol.Total(), 1) {
		t.Errorf("budget-limited Total = %g, want finite positive incumbent", sol.Total())
	}
}

func TestSolveChunkFullNodesExcluded(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 1)
	for _, v := range []int{0, 1, 2, 3, 5, 6, 7} {
		if err := st.Store(v, 9); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := SolveChunk(g, st, 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f != 8 {
			t.Errorf("full node %d selected", f)
		}
	}
}

func TestPlaceChunksCommitsAndRespectsCapacity(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 2)
	p, err := PlaceChunks(g, 4, 3, st, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(p.Chunks))
	}
	for i := 0; i < 9; i++ {
		if st.Stored(i) > 2 {
			t.Errorf("node %d over capacity", i)
		}
	}
	if st.Stored(4) != 0 {
		t.Error("producer cached data")
	}
	if !p.Optimal() {
		t.Error("small instance should be solved to optimality")
	}
	if p.Objective() <= 0 {
		t.Errorf("Objective = %g, want > 0", p.Objective())
	}
	cn := p.CacheNodes()
	for n, hs := range cn {
		for _, v := range hs {
			if !st.Has(v, n) {
				t.Errorf("chunk %d holder %d missing from state", n, v)
			}
		}
	}
}

// TestApproximationRatioBound is the empirical check of Theorem 1: the
// approximation algorithm's per-chunk objective stays within the 6.55
// ratio of the exact optimum on small random instances (the paper observes
// at most 5.6).
func TestApproximationRatioBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	worst := 0.0
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(6)
		g := randomConnectedGraph(rng, n)
		producer := rng.Intn(n)

		solver, err := core.New(g, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		appx, err := solver.Place(producer, 1, cache.NewState(n, 5))
		if err != nil {
			t.Fatalf("trial %d approx: %v", trial, err)
		}
		opt, err := SolveChunk(g, cache.NewState(n, 5), producer, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if !opt.Optimal {
			t.Fatalf("trial %d: exact search incomplete", trial)
		}
		if opt.Total() == 0 {
			continue
		}
		ratio := appx.Chunks[0].Total() / opt.Total()
		if ratio > worst {
			worst = ratio
		}
		if ratio < 1-1e-9 {
			t.Errorf("trial %d: approximation beat the optimum (%g < %g)", trial, appx.Chunks[0].Total(), opt.Total())
		}
	}
	if worst > 6.55 {
		t.Errorf("worst observed approximation ratio %g exceeds 6.55", worst)
	}
	t.Logf("worst observed approximation ratio: %.3f", worst)
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestSolveChunkWidthCapReportsNotProven(t *testing.T) {
	// 4x4 grid has 15 candidates; a width cap of 2 cannot be exhaustive.
	g := graph.NewGrid(4, 4)
	st := cache.NewState(16, 5)
	opts := DefaultOptions()
	opts.MaxSubsetSize = 2
	sol, err := SolveChunk(g, st, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Optimal {
		t.Error("width-capped search claimed proven optimality")
	}
	if len(sol.Facilities) > 2 {
		t.Errorf("facilities %v exceed the width cap", sol.Facilities)
	}
}

func TestSolveChunkZeroFairnessWeight(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	if err := st.Store(8, 7); err != nil { // pre-load a node
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.FairnessWeight = 0
	sol, err := SolveChunk(g, st, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Fairness != 0 {
		t.Errorf("fairness term = %g with weight 0", sol.Fairness)
	}
}
