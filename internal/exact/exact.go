// Package exact computes optimal per-chunk ConFL solutions — the role the
// paper's "Brtf" brute-force (PuLP) baseline plays. Go has no native LP
// ecosystem, so instead of wrapping a C solver this package performs a
// branch-and-bound search over caching sets with admissible lower bounds
// and the exact Dreyfus–Wagner Steiner cost, which returns the true optimum
// of objective (8) on small instances (and a best-found solution with an
// explicit optimality flag when a search budget is exceeded).
package exact

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/cache"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/pool"
	"repro/internal/steiner"
)

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxSubsetSize caps the caching-set size. 0 means the largest the
	// exact Steiner routine supports (steiner.MaxExactTerminals − 1,
	// leaving room for the producer terminal).
	MaxSubsetSize int
	// NodeBudget caps the number of branch-and-bound nodes explored; 0
	// means unlimited. When exceeded the search returns the best solution
	// found with Optimal = false.
	NodeBudget int
	// FairnessWeight scales the fairness term, mirroring core.Options.
	// Zero disables the term (the default used by DefaultOptions is 1).
	FairnessWeight float64
	// Workers sizes the pool the search's precomputation (contention
	// matrix, all-pairs Dijkstra) fans out over. 0 means GOMAXPROCS, 1 or
	// less the sequential path. The branch-and-bound itself is sequential,
	// so results are identical at any width.
	Workers int
	// PathCache, when non-nil, supplies a shared shortest-path memo for
	// the topology (it must have been built over the same graph). nil
	// creates a private cache.
	PathCache *graph.PathCache
}

// DefaultOptions returns the configuration matching the paper's objective.
func DefaultOptions() Options {
	return Options{
		FairnessWeight: 1,
	}
}

// Solution is the optimal (or budget-limited best) single-chunk placement.
type Solution struct {
	// Facilities is the optimal caching set, sorted.
	Facilities []int
	// Fairness, Access and Dissemination are the objective terms.
	Fairness      float64
	Access        float64
	Dissemination float64
	// Optimal reports whether the search completed exhaustively; false
	// means the node budget was hit and the result is a best-found bound.
	Optimal bool
	// Explored counts branch-and-bound nodes visited.
	Explored int
}

// Total returns the objective value Fairness + Access + Dissemination.
func (s *Solution) Total() float64 {
	return s.Fairness + s.Access + s.Dissemination
}

// Errors returned by the solver.
var (
	ErrBadInput = errors.New("exact: invalid input")
)

// SolveChunk finds the optimal caching set for one chunk under the current
// cache state: min over A of Σ_{i∈A} f_i + Σ_j min_{i∈A∪{v}} c_ij +
// SteinerOpt(A ∪ {v}).
func SolveChunk(g *graph.Graph, st *cache.State, producer int, opts Options) (*Solution, error) {
	return SolveChunkCtx(context.Background(), g, st, producer, opts)
}

// SolveChunkCtx is SolveChunk with cancellation: ctx is checked inside the
// branch-and-bound every few hundred explored nodes (and throughout the
// parallel precomputation), so a cancelled context aborts the search
// instead of letting it run to completion.
func SolveChunkCtx(ctx context.Context, g *graph.Graph, st *cache.State, producer int, opts Options) (*Solution, error) {
	m, err := validateModel(g, st, producer, opts)
	if err != nil {
		return nil, err
	}
	pl := pool.New(pool.Normalize(opts.Workers))
	defer pl.Close()
	return solveChunkModel(ctx, m, producer, opts, pl)
}

// validateModel checks the instance and builds a throwaway cost model over
// it for a single-chunk solve.
func validateModel(g *graph.Graph, st *cache.State, producer int, opts Options) (*costmodel.Model, error) {
	if g == nil || st == nil || g.NumNodes() != st.NumNodes() {
		return nil, fmt.Errorf("%w: graph/state mismatch", ErrBadInput)
	}
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("%w: producer %d", ErrBadInput, producer)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: graph not connected", ErrBadInput)
	}
	m, err := costmodel.New(g, opts.PathCache, st, costmodel.Options{FairnessWeight: opts.FairnessWeight})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return m, nil
}

// solveChunkModel runs the branch-and-bound for one chunk against the
// model's current state. The model supplies the (incrementally maintained)
// fairness and contention costs; the caller commits the result back
// through it.
func solveChunkModel(ctx context.Context, m *costmodel.Model, producer int, opts Options, pl *pool.Pool) (*Solution, error) {
	maxSize := opts.MaxSubsetSize
	if maxSize <= 0 || maxSize > steiner.MaxExactTerminals-1 {
		maxSize = steiner.MaxExactTerminals - 1
	}

	s, err := newSearch(ctx, m, producer, opts, maxSize, pl)
	if err != nil {
		return nil, fmt.Errorf("exact: search setup interrupted: %w", err)
	}
	s.ctx = ctx
	s.run()
	if s.ctxErr != nil {
		return nil, fmt.Errorf("exact: search interrupted: %w", s.ctxErr)
	}

	// Optimality is proven only when neither the node budget nor the
	// subset-size cap could have hidden a better solution.
	proven := !s.budgetHit && maxSize >= len(s.candidates)
	sol := &Solution{
		Facilities:    append([]int(nil), s.bestSet...),
		Fairness:      s.bestFair,
		Access:        s.bestAccess,
		Dissemination: s.bestSteiner,
		Optimal:       proven,
		Explored:      s.explored,
	}
	slices.Sort(sol.Facilities)
	return sol, nil
}

// search carries the branch-and-bound state.
type search struct {
	g        *graph.Graph
	producer int
	opts     Options
	maxSize  int

	candidates []int       // eligible caching nodes, in branching order
	fair       []float64   // weighted fairness cost per node
	conn       [][]float64 // c_ij under the current state
	edgeCost   graph.EdgeWeightFunc
	spDist     [][]float64 // all-pairs shortest path dist under edgeCost
	// suffixMin[k][j]: min connection cost from candidates[k:] to j.
	suffixMin [][]float64

	demands []int // all nodes except the producer

	bestCost    float64
	bestSet     []int
	bestFair    float64
	bestAccess  float64
	bestSteiner float64

	explored  int
	budgetHit bool

	ctx    context.Context
	ctxErr error

	cur []int // current subset (candidate indices -> node ids)
}

func newSearch(ctx context.Context, m *costmodel.Model, producer int, opts Options, maxSize int, pl *pool.Pool) (*search, error) {
	g, st := m.Graph(), m.State()
	n := g.NumNodes()
	costs, err := m.CostsCtx(ctx, pl)
	if err != nil {
		return nil, err
	}
	s := &search{
		g:        g,
		producer: producer,
		opts:     opts,
		maxSize:  maxSize,
		conn:     costs.Rows(),
		edgeCost: m.EdgeCostFunc(),
		bestCost: math.Inf(1),
	}
	s.fair = m.FairnessCosts()
	for j := 0; j < n; j++ {
		if j != producer {
			s.demands = append(s.demands, j)
		}
	}
	for i := 0; i < n; i++ {
		if i != producer && st.Free(i) > 0 {
			s.candidates = append(s.candidates, i)
		}
	}
	// Branch on high-savings candidates first for stronger pruning.
	savings := make(map[int]float64, len(s.candidates))
	for _, i := range s.candidates {
		total := 0.0
		for _, j := range s.demands {
			if d := s.conn[producer][j] - s.conn[i][j]; d > 0 {
				total += d
			}
		}
		savings[i] = total
	}
	// Stable: equal-savings candidates keep their ascending-id order,
	// which the branch-and-bound's deterministic search order relies on.
	slices.SortStableFunc(s.candidates, func(a, b int) int {
		return cmp.Compare(savings[b], savings[a])
	})

	// Suffix minima of connection costs over the branching order.
	nc := len(s.candidates)
	s.suffixMin = make([][]float64, nc+1)
	s.suffixMin[nc] = make([]float64, n)
	for j := range s.suffixMin[nc] {
		s.suffixMin[nc][j] = math.Inf(1)
	}
	for k := nc - 1; k >= 0; k-- {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = math.Min(s.suffixMin[k+1][j], s.conn[s.candidates[k]][j])
		}
		s.suffixMin[k] = row
	}

	// All-pairs shortest-path distances under the edge costs (for the
	// metric-closure MST Steiner lower bound), one Dijkstra per source
	// fanned out over the pool.
	s.spDist = make([][]float64, n)
	if err := pl.ForEach(ctx, n, func(v int) {
		s.spDist[v], _ = g.Dijkstra(v, s.edgeCost)
	}); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *search) run() {
	// Baseline: cache nowhere, everyone fetches from the producer.
	s.evaluate(nil)
	s.dfs(0)
}

// dfs explores subsets of candidates[k:] added to s.cur.
func (s *search) dfs(k int) {
	if s.ctxErr != nil || s.budgetHit || k == len(s.candidates) || len(s.cur) == s.maxSize {
		return
	}
	// Poll for cancellation every 128 explored nodes: cheap enough to keep
	// the search CPU-bound, frequent enough to abort promptly.
	if s.ctx != nil && s.explored&127 == 0 {
		if err := s.ctx.Err(); err != nil {
			s.ctxErr = err
			return
		}
	}
	if s.opts.NodeBudget > 0 && s.explored >= s.opts.NodeBudget {
		s.budgetHit = true
		return
	}
	if s.lowerBound(k) >= s.bestCost-1e-9 {
		return
	}

	// Branch 1: include candidates[k].
	v := s.candidates[k]
	if !math.IsInf(s.fair[v], 1) {
		s.cur = append(s.cur, v)
		s.evaluate(s.cur)
		s.dfs(k + 1)
		s.cur = s.cur[:len(s.cur)-1]
	}
	// Branch 2: exclude candidates[k].
	s.dfs(k + 1)
}

// lowerBound gives an admissible bound for any extension of s.cur with
// nodes from candidates[k:]: fairness can only grow, access is bounded by
// the best conceivable assignment, and the Steiner cost of a superset is
// at least the metric-closure MST of the current terminals halved.
func (s *search) lowerBound(k int) float64 {
	fairness := 0.0
	for _, i := range s.cur {
		fairness += s.fair[i]
	}
	access := 0.0
	for _, j := range s.demands {
		best := s.conn[s.producer][j]
		for _, i := range s.cur {
			if c := s.conn[i][j]; c < best {
				best = c
			}
		}
		if c := s.suffixMin[k][j]; c < best {
			best = c
		}
		access += best
	}
	steinerLB := 0.0
	if len(s.cur) > 0 {
		steinerLB = s.closureMST(append([]int{s.producer}, s.cur...)) / 2
	}
	return fairness + access + steinerLB
}

// evaluate computes the exact objective of caching set A and updates the
// incumbent.
func (s *search) evaluate(set []int) {
	s.explored++
	fairness := 0.0
	for _, i := range set {
		fairness += s.fair[i]
	}
	access := 0.0
	for _, j := range s.demands {
		best := s.conn[s.producer][j]
		for _, i := range set {
			if c := s.conn[i][j]; c < best {
				best = c
			}
		}
		access += best
	}
	if len(set) == 0 {
		if cost := fairness + access; cost < s.bestCost {
			s.bestCost, s.bestSet = cost, nil
			s.bestFair, s.bestAccess, s.bestSteiner = fairness, access, 0
		}
		return
	}

	terminals := append([]int{s.producer}, set...)
	// Cheap admissible screen before the exponential exact Steiner.
	if fairness+access+s.closureMST(terminals)/2 >= s.bestCost-1e-9 {
		return
	}
	stCost, err := steiner.ExactCost(s.g, s.edgeCost, terminals)
	if err != nil {
		return // oversized terminal set; subset-size cap prevents this
	}
	if cost := fairness + access + stCost; cost < s.bestCost {
		s.bestCost = cost
		s.bestSet = append([]int(nil), set...)
		s.bestFair, s.bestAccess, s.bestSteiner = fairness, access, stCost
	}
}

// closureMST returns the MST weight of the metric closure of the terminal
// set under shortest-path distances (a 2-approximation upper bound on the
// Steiner optimum, hence /2 is a lower bound).
func (s *search) closureMST(terminals []int) float64 {
	k := len(terminals)
	if k <= 1 {
		return 0
	}
	inTree := make([]bool, k)
	dist := make([]float64, k)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	inTree[0] = true
	for i := 1; i < k; i++ {
		dist[i] = s.spDist[terminals[0]][terminals[i]]
	}
	total := 0.0
	for added := 1; added < k; added++ {
		best := -1
		for i := range dist {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		total += dist[best]
		inTree[best] = true
		for i := range dist {
			if !inTree[i] {
				if d := s.spDist[terminals[best]][terminals[i]]; d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

// Placement is the outcome of the iterative exact solver across chunks.
type Placement struct {
	Producer int
	Chunks   []Solution
	State    *cache.State
}

// CacheNodes returns per-chunk holder sets for the metrics evaluation.
func (p *Placement) CacheNodes() [][]int {
	out := make([][]int, len(p.Chunks))
	for i, c := range p.Chunks {
		out[i] = append([]int(nil), c.Facilities...)
	}
	return out
}

// Objective returns the summed per-chunk objective values.
func (p *Placement) Objective() float64 {
	total := 0.0
	for i := range p.Chunks {
		total += p.Chunks[i].Total()
	}
	return total
}

// Optimal reports whether every chunk's search completed exhaustively.
func (p *Placement) Optimal() bool {
	for i := range p.Chunks {
		if !p.Chunks[i].Optimal {
			return false
		}
	}
	return true
}

// PlaceChunks runs the iterative exact solver: for each chunk the optimal
// ConFL solution under the current state is computed and committed, just
// like the paper's brute-force baseline solves Eq. (8) chunk by chunk.
func PlaceChunks(g *graph.Graph, producer, chunks int, st *cache.State, opts Options) (*Placement, error) {
	return PlaceChunksCtx(context.Background(), g, producer, chunks, st, opts)
}

// PlaceChunksCtx is PlaceChunks with cancellation checked before and
// during every per-chunk search. One cost model spans all chunks, so each
// chunk after the first pays a delta repair for the previous commits
// instead of a fresh contention matrix build.
func PlaceChunksCtx(ctx context.Context, g *graph.Graph, producer, chunks int, st *cache.State, opts Options) (*Placement, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("%w: chunks %d", ErrBadInput, chunks)
	}
	m, err := validateModel(g, st, producer, opts)
	if err != nil {
		return nil, err
	}
	pl := pool.New(pool.Normalize(opts.Workers))
	defer pl.Close()
	p := &Placement{Producer: producer, State: st}
	for n := 0; n < chunks; n++ {
		sol, err := solveChunkModel(ctx, m, producer, opts, pl)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", n, err)
		}
		for _, i := range sol.Facilities {
			if err := m.Commit(i, n); err != nil {
				return nil, fmt.Errorf("chunk %d store on %d: %w", n, i, err)
			}
		}
		p.Chunks = append(p.Chunks, *sol)
	}
	return p, nil
}
