package exact

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestSolveChunkCtxCancelled(t *testing.T) {
	g := graph.NewGrid(4, 4)
	st := cache.NewState(g.NumNodes(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveChunkCtx(ctx, g, st, 0, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveChunkCtx: err = %v, want context.Canceled", err)
	}
	if _, err := PlaceChunksCtx(ctx, g, 0, 2, st, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceChunksCtx: err = %v, want context.Canceled", err)
	}
}

// TestSolveChunkWorkersIdentical checks the pooled precomputation does not
// change the search outcome.
func TestSolveChunkWorkersIdentical(t *testing.T) {
	g := graph.NewGrid(3, 3)
	solve := func(workers int) *Solution {
		st := cache.NewState(g.NumNodes(), 2)
		opts := DefaultOptions()
		opts.Workers = workers
		opts.MaxSubsetSize = 3
		sol, err := SolveChunk(g, st, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	want := solve(1)
	got := solve(4)
	if got.Total() != want.Total() || len(got.Facilities) != len(want.Facilities) {
		t.Fatalf("parallel: %v (%v) != %v (%v)", got.Facilities, got.Total(), want.Facilities, want.Total())
	}
	for i := range want.Facilities {
		if got.Facilities[i] != want.Facilities[i] {
			t.Fatalf("facilities %v != %v", got.Facilities, want.Facilities)
		}
	}
}
