package online

import (
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

// TestTTLOneEvictsAtNextPublication pins the TTL clock semantics: a chunk
// published at time t with TTL=1 is gone before the publication at t+1.
func TestTTLOneEvictsAtNextPublication(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	opts.TTL = 1
	sys, err := New(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sys.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.CacheNodes) == 0 {
		t.Fatal("first publication placed nothing")
	}
	second, err := sys.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Expired) != 1 || second.Expired[0] != first.Chunk {
		t.Fatalf("second publication expired %v, want [%d]", second.Expired, first.Chunk)
	}
	if hs := sys.Holders(first.Chunk); len(hs) != 0 {
		t.Fatalf("chunk %d still held by %v after TTL=1 expiry", first.Chunk, hs)
	}
}

// TestTTLNeverExpires pins the TTL<=0 encoding ("never expire", the
// public ChunkTTL=-1 mapping): no chunk is ever evicted, storage only
// grows until the network is full.
func TestTTLNeverExpires(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	opts.TTL = 0
	opts.Capacity = 2
	sys, err := New(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	prev, placed := 0, 0
	for i := 0; i < 12; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatal(err)
		}
		if len(pub.Expired) != 0 || len(pub.Evicted) != 0 {
			t.Fatalf("publication %d evicted %v/%v under TTL<=0", i, pub.Expired, pub.Evicted)
		}
		if len(pub.CacheNodes) > 0 {
			placed++
		}
		total := 0
		for _, c := range sys.Counts() {
			total += c
		}
		if total < prev {
			t.Fatalf("publication %d: stored copies shrank %d -> %d without eviction", i, prev, total)
		}
		prev = total
	}
	// Every chunk that got a copy keeps it forever; chunks arriving after
	// the network filled were never placed at all — the deadlock the
	// eviction strategy exists to break.
	if len(sys.Live()) != placed {
		t.Fatalf("live %d != placed %d under never-expire", len(sys.Live()), placed)
	}
}

// TestEvictionStrategyConflictsWithTTL pins the typed error: a positive
// TTL and an eviction strategy cannot be combined.
func TestEvictionStrategyConflictsWithTTL(t *testing.T) {
	g := graph.NewGrid(3, 3)
	opts := DefaultOptions() // TTL = 5
	opts.Eviction = cache.NewLRU()
	_, err := New(g, 0, opts)
	if !errors.Is(err, ErrEvictionConflict) {
		t.Fatalf("err = %v, want ErrEvictionConflict", err)
	}
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("ErrEvictionConflict should satisfy ErrBadInput, got %v", err)
	}
}

// TestEvictionStrategyRecyclesStorage runs a strategy system (TTL
// disabled) long past the point where TTL-free storage would deadlock and
// asserts pressure eviction keeps placements flowing and capacity holds.
func TestEvictionStrategyRecyclesStorage(t *testing.T) {
	for _, strat := range []cache.EvictionStrategy{cache.NewLRU(), cache.NewLFU()} {
		g := graph.NewGrid(4, 4)
		opts := DefaultOptions()
		opts.TTL = 0
		opts.Capacity = 2
		opts.Eviction = strat
		sys, err := New(g, 0, opts)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		sawEviction := false
		for i := 0; i < 40; i++ {
			pub, err := sys.Publish()
			if err != nil {
				t.Fatalf("%s: publication %d: %v", strat.Name(), i, err)
			}
			if len(pub.Evicted) > 0 {
				sawEviction = true
				for _, c := range pub.Evicted {
					if sys.st.Has(c.Node, c.Chunk) {
						t.Fatalf("%s: evicted copy %v still present", strat.Name(), c)
					}
				}
			}
			if len(pub.CacheNodes) == 0 {
				t.Fatalf("%s: publication %d placed nothing — storage deadlocked", strat.Name(), i)
			}
			for v := 0; v < g.NumNodes(); v++ {
				if sys.st.Free(v) < 0 {
					t.Fatalf("%s: node %d over capacity", strat.Name(), v)
				}
			}
		}
		if !sawEviction {
			t.Fatalf("%s: 40 publications on a 32-slot network never evicted", strat.Name())
		}
	}
}
