package online

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	g := graph.NewGrid(3, 3)
	opts := DefaultOptions()
	opts.Capacity = 0
	if _, err := New(g, 0, opts); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := New(g, 99, DefaultOptions()); err == nil {
		t.Error("bad producer: want error")
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(disc, 0, DefaultOptions()); err == nil {
		t.Error("disconnected: want error")
	}
}

func TestPublishPlacesAndTracks(t *testing.T) {
	g := graph.NewGrid(6, 6)
	sys, err := New(g, 9, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if pub.Chunk != 0 || pub.Time != 1 {
		t.Errorf("first publication = %+v", pub)
	}
	if len(pub.CacheNodes) == 0 {
		t.Error("first chunk not cached anywhere")
	}
	if got := sys.Holders(0); len(got) != len(pub.CacheNodes) {
		t.Errorf("Holders(0) = %v, placement said %v", got, pub.CacheNodes)
	}
	if live := sys.Live(); len(live) != 1 || live[0] != 0 {
		t.Errorf("Live() = %v, want [0]", live)
	}
	if sys.Clock() != 1 {
		t.Errorf("Clock() = %d", sys.Clock())
	}
}

func TestPublishExpiresOldChunks(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	opts.TTL = 2
	sys, err := New(g, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(); err != nil { // chunk 0, expires before t=3
		t.Fatal(err)
	}
	if _, err := sys.Publish(); err != nil { // chunk 1
		t.Fatal(err)
	}
	pub3, err := sys.Publish() // t=3: chunk 0 must be gone
	if err != nil {
		t.Fatal(err)
	}
	if len(pub3.Expired) != 1 || pub3.Expired[0] != 0 {
		t.Errorf("Expired = %v, want [0]", pub3.Expired)
	}
	if got := sys.Holders(0); len(got) != 0 {
		t.Errorf("expired chunk still held by %v", got)
	}
}

func TestOnlineSustainsLongHorizon(t *testing.T) {
	// With TTL = capacity, an endless publication stream must never
	// deadlock: eviction recycles storage and the fairness feedback
	// keeps the long-run load spread.
	g := graph.NewGrid(6, 6)
	opts := DefaultOptions()
	opts.Capacity = 3
	opts.TTL = 3
	sys, err := New(g, 9, opts)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for i := 0; i < 40; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatalf("publication %d: %v", i, err)
		}
		cached += len(pub.CacheNodes)
	}
	if cached == 0 {
		t.Fatal("nothing was ever cached over the horizon")
	}
	// No node may exceed capacity, and the producer stays empty.
	for i, c := range sys.Counts() {
		if c > opts.Capacity {
			t.Errorf("node %d holds %d > capacity", i, c)
		}
		if i == 9 && c != 0 {
			t.Error("producer cached data")
		}
	}
	// Only chunks within the TTL window can be live.
	if live := sys.Live(); len(live) > opts.TTL {
		t.Errorf("%d live chunks exceed the TTL window %d", len(live), opts.TTL)
	}
	if got := len(sys.Log()); got != 40 {
		t.Errorf("log length = %d", got)
	}
}

func TestOnlineLongRunLoadIsFair(t *testing.T) {
	// Cumulative caching assignments over a long run should be spread:
	// account how often each node was chosen across all publications.
	g := graph.NewGrid(6, 6)
	sys, err := New(g, 9, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tally := make([]int, 36)
	for i := 0; i < 30; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range pub.CacheNodes {
			tally[v]++
		}
	}
	if g := metrics.Gini(tally); g >= 0.5 {
		t.Errorf("long-run assignment gini = %.3f, want the fair regime (< 0.5)", g)
	}
}

func TestTTLZeroNeverExpires(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	opts.TTL = 0
	opts.Capacity = 2
	sys, err := New(g, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatalf("publication %d: %v", i, err)
		}
		if len(pub.Expired) != 0 {
			t.Errorf("publication %d expired %v despite TTL 0", i, pub.Expired)
		}
	}
}

func TestSetTopologyMobility(t *testing.T) {
	g := graph.NewGrid(4, 4)
	sys, err := New(g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(); err != nil {
		t.Fatal(err)
	}
	// Devices move: the mesh becomes a ring of the same 16 nodes.
	if err := sys.SetTopology(graph.NewRing(16)); err != nil {
		t.Fatalf("SetTopology: %v", err)
	}
	pub, err := sys.Publish()
	if err != nil {
		t.Fatalf("publish after move: %v", err)
	}
	if len(pub.CacheNodes) == 0 {
		t.Error("nothing cached after the topology change")
	}
	// Existing chunks carried over.
	if len(sys.Holders(0)) == 0 {
		t.Error("pre-move chunk lost")
	}
	// Node-count mismatch rejected.
	if err := sys.SetTopology(graph.NewGrid(3, 3)); err == nil {
		t.Error("mismatched topology accepted")
	}
	// Disconnected topology rejected by the solver.
	disc := graph.New(16)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetTopology(disc); err == nil {
		t.Error("disconnected topology accepted")
	}
}

// TestSetTopologyDropsPathCache is the PathCache growth audit: the memoised
// per-source entries built for one topology must be dropped on a swap, not
// accumulated epoch over epoch. Without the reset a long-running mobile
// system would both leak one cache per movement epoch and serve stale paths.
func TestSetTopologyDropsPathCache(t *testing.T) {
	g := graph.NewGrid(4, 4)
	sys, err := New(g, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(); err != nil {
		t.Fatal(err)
	}
	if got := sys.pc.Cached(); got == 0 {
		t.Fatal("publication built no path-cache entries")
	}
	for epoch := 0; epoch < 3; epoch++ {
		if err := sys.SetTopology(graph.NewRing(16)); err != nil {
			t.Fatalf("epoch %d: SetTopology: %v", epoch, err)
		}
		if got := sys.pc.Cached(); got != 0 {
			t.Fatalf("epoch %d: %d path-cache entries survived the swap", epoch, got)
		}
		if _, err := sys.Publish(); err != nil {
			t.Fatalf("epoch %d: publish: %v", epoch, err)
		}
		// Entries rebuilt lazily for the new topology stay bounded by the
		// node count — the cache cannot grow across swaps.
		if got := sys.pc.Cached(); got == 0 || got > 16 {
			t.Fatalf("epoch %d: Cached() = %d, want within (0,16]", epoch, got)
		}
	}
}
