// Package online implements the paper's future-work direction (Sec. VI):
// an online fair-caching system in which chunks are published over time,
// stale chunks expire and are evicted (cache replacement), and each
// arrival is placed by one iteration of the fair-caching approximation
// algorithm against the *current* storage state. Because eviction lowers
// the fairness degree cost of previously loaded nodes, storage is recycled
// fairly over long horizons instead of filling up once and deadlocking.
package online

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
)

// Options configures the online system.
type Options struct {
	// Capacity is the per-node cache capacity in chunks.
	Capacity int
	// TTL is a chunk's lifetime measured in subsequent publications; a
	// chunk published at time t expires before the publication at
	// t + TTL. TTL <= 0 means chunks never expire.
	TTL int
	// Eviction replaces TTL expiry with demand-driven cache replacement:
	// before each placement, every full node evicts its lowest-scoring
	// copy so storage keeps recycling. Setting both Eviction and a
	// positive TTL is rejected with ErrEvictionConflict — the two answer
	// the same question ("which copy goes?") with different clocks, and
	// silently combining them made replacement order unpredictable.
	Eviction cache.EvictionStrategy
	// Core tunes the per-arrival placement.
	Core core.Options
}

// DefaultOptions matches the paper's evaluation parameters with a TTL of
// one capacity-worth of publications.
func DefaultOptions() Options {
	return Options{
		Capacity: 5,
		TTL:      5,
		Core:     core.DefaultOptions(),
	}
}

// Publication records one online placement.
type Publication struct {
	// Chunk is the published chunk's id.
	Chunk int
	// Time is the publication index (1-based).
	Time int
	// CacheNodes lists the nodes now caching the chunk.
	CacheNodes []int
	// Expired lists chunk ids evicted before this placement.
	Expired []int
	// Evicted lists the copies the eviction strategy removed before this
	// placement (empty under TTL expiry, which reports whole chunks via
	// Expired instead).
	Evicted []cache.Copy
}

// System is an online fair-caching instance over one topology. It keeps a
// live cost model across publications: arrivals and TTL evictions mutate
// the model (delta updates) instead of rebuilding fairness and contention
// costs from scratch on every publication.
type System struct {
	g        *graph.Graph
	solver   *core.Solver
	st       *cache.State
	pc       *graph.PathCache
	model    *costmodel.Model
	producer int
	opts     Options

	clock  int
	nextID int
	expiry map[int]int      // chunk id -> expiry time
	live   map[int]struct{} // chunk ids placed and not yet expired
	log    []Publication
}

// Errors returned by the online system.
var (
	ErrBadInput = errors.New("online: invalid input")
	// ErrEvictionConflict reports Options combining a positive TTL with an
	// eviction strategy; exactly one replacement policy may govern a
	// system. It satisfies errors.Is(err, ErrBadInput).
	ErrEvictionConflict = fmt.Errorf("%w: TTL and eviction strategy are mutually exclusive", ErrBadInput)
)

// New builds an online system. The producer never caches.
func New(g *graph.Graph, producer int, opts Options) (*System, error) {
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity %d", ErrBadInput, opts.Capacity)
	}
	if opts.Eviction != nil && opts.TTL > 0 {
		return nil, ErrEvictionConflict
	}
	// The system owns the shortest-path memo so topology swaps can drop
	// its entries (SetTopology) instead of leaking one cache per epoch.
	pc := graph.NewPathCache(g)
	coreOpts := opts.Core
	coreOpts.PathCache = pc
	solver, err := core.New(g, coreOpts)
	if err != nil {
		return nil, err
	}
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("%w: producer %d", ErrBadInput, producer)
	}
	st := cache.NewState(g.NumNodes(), opts.Capacity)
	model, err := costmodel.New(g, pc, st, costmodel.Options{
		FairnessWeight: opts.Core.FairnessWeight,
		BatteryWeight:  opts.Core.BatteryWeight,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &System{
		g:        g,
		solver:   solver,
		st:       st,
		pc:       pc,
		model:    model,
		producer: producer,
		opts:     opts,
		expiry:   make(map[int]int),
		live:     make(map[int]struct{}),
	}, nil
}

// SetTopology swaps the network topology (device mobility): subsequent
// publications place against the new connectivity while cached chunks and
// their expiry clocks carry over. The node set must stay the same size.
// The shortest-path memo is reset — entries for the old connectivity are
// dropped rather than accumulated across swaps — and the cost model
// rebuilds on the next publication (a connectivity change invalidates
// every cached path, so there is nothing to repair incrementally).
func (s *System) SetTopology(g *graph.Graph) error {
	if g.NumNodes() != s.g.NumNodes() {
		return fmt.Errorf("%w: topology has %d nodes, system has %d", ErrBadInput, g.NumNodes(), s.g.NumNodes())
	}
	coreOpts := s.opts.Core
	coreOpts.PathCache = s.pc
	// Validate the new topology before touching any state: core.New
	// rejects disconnected graphs without reading the path cache.
	solver, err := core.New(g, coreOpts)
	if err != nil {
		return err
	}
	if err := s.model.SwapTopology(g); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s.g = g
	s.solver = solver
	return nil
}

// Publish places the next chunk: expired chunks are evicted first, then
// one fair-caching iteration runs against the refreshed state.
func (s *System) Publish() (*Publication, error) {
	return s.PublishCtx(context.Background())
}

// PublishCtx is Publish with cancellation: ctx is checked before the clock
// advances (a pre-cancelled context leaves the system untouched) and
// throughout the placement iteration. A cancelled placement returns an
// error satisfying errors.Is with ctx.Err(); the publication is not
// committed, but the clock tick and any TTL evictions it triggered stand —
// they reflect time passing, not the abandoned placement.
func (s *System) PublishCtx(ctx context.Context) (*Publication, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("online: publish: %w", err)
	}
	s.clock++
	pub := &Publication{
		Chunk: s.nextID,
		Time:  s.clock,
	}
	s.nextID++

	// Cache replacement: evict chunks whose lifetime has passed.
	if s.opts.TTL > 0 {
		var stale []int
		for id, exp := range s.expiry {
			if exp <= s.clock {
				stale = append(stale, id)
			}
		}
		slices.Sort(stale)
		for _, id := range stale {
			for _, holder := range s.st.Holders(id) {
				s.model.Evict(holder, id)
			}
			delete(s.expiry, id)
			delete(s.live, id)
		}
		pub.Expired = stale
	}

	// Cache replacement, strategy form: every full node sheds its
	// lowest-scoring copy so the arriving chunk always has somewhere to
	// go — without this, a strategy system (which never TTL-expires)
	// fills up once and deadlocks exactly as the package doc warns.
	if s.opts.Eviction != nil {
		for v := 0; v < s.st.NumNodes(); v++ {
			if s.st.Free(v) > 0 {
				continue
			}
			held := s.st.Chunks(v)
			cands := make([]cache.Copy, len(held))
			for i, id := range held {
				cands[i] = cache.Copy{Node: v, Chunk: id}
			}
			victim, ok := cache.SelectVictim(s.opts.Eviction, cands)
			if !ok {
				continue
			}
			s.model.Evict(victim.Node, victim.Chunk)
			s.opts.Eviction.OnEvict(victim.Node, victim.Chunk)
			pub.Evicted = append(pub.Evicted, victim)
		}
	}

	res, err := s.solver.PlaceOneModelCtx(ctx, s.producer, pub.Chunk, s.model)
	if err != nil {
		return nil, fmt.Errorf("online: publish chunk %d: %w", pub.Chunk, err)
	}
	pub.CacheNodes = append([]int(nil), res.CacheNodes...)
	if s.opts.Eviction != nil {
		for _, v := range res.CacheNodes {
			s.opts.Eviction.OnStore(v, pub.Chunk, int64(s.clock))
		}
	}
	s.live[pub.Chunk] = struct{}{}
	if s.opts.TTL > 0 {
		s.expiry[pub.Chunk] = s.clock + s.opts.TTL
	}
	s.log = append(s.log, *pub)
	return pub, nil
}

// Holders returns the nodes currently caching the given chunk (empty once
// it has expired).
func (s *System) Holders(chunk int) []int { return s.st.Holders(chunk) }

// Live returns the ids of chunks currently cached somewhere, sorted.
// Unlike the expiry bookkeeping, this works for TTL <= 0 (never expire)
// as well: liveness is tracked per placement, not derived from timers.
func (s *System) Live() []int {
	var out []int
	for id := range s.live {
		if len(s.st.Holders(id)) > 0 {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// Counts returns the current per-node cached-chunk counts.
func (s *System) Counts() []int { return s.st.Counts() }

// Clock returns the number of publications so far.
func (s *System) Clock() int { return s.clock }

// Published returns the total number of chunk ids ever assigned; ids in
// [0, Published()) are known even when their copies have since expired.
func (s *System) Published() int { return s.nextID }

// Log returns a copy of the publication history.
func (s *System) Log() []Publication {
	return append([]Publication(nil), s.log...)
}
