// Package bitset provides the dense bit sets the solve hot path uses for
// its ADMIN/TIGHT/SPAN-style node sets. The engine previously tracked these
// as map[int]struct{} / []bool structures allocated per chunk; a bitset over
// dense node ids packs the same membership into n/64 words, clears in a
// handful of memclr instructions (so one set recycles across chunks), and
// never allocates after the first Grow.
package bitset

import "math/bits"

// Set is a dense bit set over non-negative integers. The zero value is an
// empty set; Grow before use (or let the helpers on the owning scratch do
// it). Methods do not bounds-check: callers index only ids < the grown
// capacity, matching the dense node-id contract of the solver layers.
type Set []uint64

// New returns a set with capacity for ids in [0, n).
func New(n int) Set { return make(Set, (n+63)/64) }

// Grow returns a set with capacity for ids in [0, n), reusing s's storage
// when it is already large enough. The returned set is cleared.
func (s Set) Grow(n int) Set {
	words := (n + 63) / 64
	if cap(s) < words {
		return make(Set, words)
	}
	s = s[:words]
	s.Clear()
	return s
}

// Clear removes every member.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Has reports whether i is a member.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add inserts i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Count returns the number of members.
func (s Set) Count() int {
	c := 0
	for _, w := range s {
		c += bits.OnesCount64(w)
	}
	return c
}
