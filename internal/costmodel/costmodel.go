// Package costmodel is the stateful cost oracle behind every solver: it
// owns the fairness degree costs of Eq. (1), the node contention weights
// w_k·(1+S(k)) and the memoised all-pairs path contention cost matrix of
// Eq. (2), and keeps them consistent under an explicit mutation API
// (Commit, Evict, SwapTopology) with *delta updates*. Committing one chunk
// changes S(k) at a handful of nodes; instead of the O(N·(N+E)) full
// refresh Algorithm 1 used to pay before every chunk, the model recomputes
// f_i for the touched nodes only and repairs just the c_ij entries whose
// cached shortest paths run through nodes with changed weights
// (graph.PathCache.RepairNodeCostPaths does the dirty-cone tracking).
//
// Invariants:
//
//   - Incremental results are byte-identical to a from-scratch recompute.
//     This holds because the contention weights are integer-valued
//     (deg·(1+S)), so float64 path sums are exact and analytic ±Δ endpoint
//     shifts equal fresh additions bit for bit. The equivalence tests
//     assert it across grid/random/clustered topologies.
//   - A correctness fallback to full recompute always exists: repairs
//     revert to full row sweeps when too many nodes changed at once (the
//     repair would not be cheaper) or when Options.DisableIncremental is
//     set (the oracle the equivalence tests compare against).
//   - All state mutations must flow through the model. Mutating the
//     underlying cache.State (or battery levels) directly leaves the
//     matrices stale.
//
// A Model is not safe for concurrent mutation. A fully refreshed model
// that is no longer mutated (the placement service's per-topology base
// model) is safe for concurrent reads; HopMatrixCtx is internally
// synchronised for that use.
package costmodel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
	"repro/internal/pool"
)

// Options fixes how the model weighs the fairness terms and whether the
// delta-update machinery is active.
type Options struct {
	// FairnessWeight scales the storage Fairness Degree Cost (Eq. 1).
	FairnessWeight float64
	// BatteryWeight scales the battery fairness term (footnote 1); 0
	// ignores battery levels.
	BatteryWeight float64
	// DisableIncremental forces every refresh through the full-recompute
	// fallback. It exists as the correctness oracle for the equivalence
	// tests and as an escape hatch; the delta path is the default.
	DisableIncremental bool
}

// Stats counts the work the model has done, for benchmarks and the
// service's warm/cold accounting.
type Stats struct {
	// FullBuilds counts complete matrix builds (cold refreshes and
	// fallback refreshes).
	FullBuilds int
	// Repairs counts incremental refresh passes.
	Repairs int
	// CellsRecomputed totals the matrix cells revisited by repairs — the
	// number a full build would count as N² per refresh.
	CellsRecomputed int
	// WarmForks counts forks that reused this model's matrices.
	WarmForks int
	// ColdForks counts forks that had to fall back to a cold model.
	ColdForks int
}

// Errors returned by the model.
var (
	ErrMismatch = errors.New("costmodel: graph/state size mismatch")
)

// Model is the incremental cost oracle for one (topology, cache state)
// pair. Zero-value is not usable; construct with New.
type Model struct {
	g    *graph.Graph
	pc   *graph.PathCache
	st   *cache.State
	opts Options

	w    []float64 // current node weights w_k·(1+S(k))
	fair []float64 // weighted combined fairness cost; +Inf when full

	// Matrix state: flat row-major matrices (stride N) valid for the
	// weights at the last refresh, plus the per-node weight deltas
	// accumulated since then. Flat storage keeps a warm fork to two copy
	// calls and row views stride-indexed borrows.
	c       []float64
	pred    []int32
	built   bool
	pending []int // nodes with accumulated deltas, in first-touch order
	queued  []bool
	delta   []float64

	scratch sync.Pool // *graph.RepairScratch per repair worker

	hopMu   sync.Mutex
	hopDist [][]float64

	// statsMu guards stats: counters are the one thing concurrent readers
	// of a fully-built model still write (ForkCtx on a shared base model).
	statsMu sync.Mutex
	stats   Stats
}

// New returns a model over the given topology, shared path cache (nil for
// a private one) and cache state. The matrices build lazily on the first
// refresh; construction is cheap.
func New(g *graph.Graph, pc *graph.PathCache, st *cache.State, opts Options) (*Model, error) {
	if g == nil || st == nil || g.NumNodes() != st.NumNodes() {
		return nil, ErrMismatch
	}
	if pc == nil {
		pc = graph.NewPathCache(g)
	}
	n := g.NumNodes()
	m := &Model{
		g:      g,
		pc:     pc,
		st:     st,
		opts:   opts,
		w:      make([]float64, n),
		fair:   make([]float64, n),
		queued: make([]bool, n),
		delta:  make([]float64, n),
	}
	m.scratch.New = func() any { return graph.NewRepairScratch(n) }
	for k := 0; k < n; k++ {
		m.w[k] = contention.NodeCost(g, k) * float64(1+st.Stored(k))
		m.fair[k] = m.fairnessAt(k)
	}
	return m, nil
}

// Graph returns the topology the model is bound to.
func (m *Model) Graph() *graph.Graph { return m.g }

// State returns the cache state the model maintains costs for.
func (m *Model) State() *cache.State { return m.st }

// PathCache returns the shared shortest-path memo.
func (m *Model) PathCache() *graph.PathCache { return m.pc }

// Options returns the weighting the model was built with.
func (m *Model) Options() Options { return m.opts }

// MatrixCells returns the size of the model's contention matrices in
// cells: N² once they are built, 0 before the first refresh. It is the
// peak-memory accounting hook of the sharded solve path, which reports
// Σ nᵢ² over region models against the N² a global model would hold.
func (m *Model) MatrixCells() int {
	if !m.built {
		return 0
	}
	return m.g.NumNodes() * m.g.NumNodes()
}

// Stats returns the work counters accumulated so far.
func (m *Model) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return m.stats
}

func (m *Model) bumpStats(f func(*Stats)) {
	m.statsMu.Lock()
	f(&m.stats)
	m.statsMu.Unlock()
}

// fairnessAt evaluates the weighted combined fairness cost of node i,
// matching Algorithm 1's facility costs: full nodes stay excluded (+Inf)
// even at weight 0.
func (m *Model) fairnessAt(i int) float64 {
	if m.st.Free(i) <= 0 {
		return math.Inf(1)
	}
	return m.st.CombinedFairnessCost(i, m.opts.FairnessWeight, m.opts.BatteryWeight)
}

// touch records that node k's stored count changed: its weight and
// fairness cost refresh immediately (O(1)), the matrix repair is deferred
// and batched until the next refresh.
func (m *Model) touch(k int) {
	w := contention.NodeCost(m.g, k) * float64(1+m.st.Stored(k))
	if w != m.w[k] {
		if m.built {
			if !m.queued[k] {
				m.queued[k] = true
				m.pending = append(m.pending, k)
			}
			m.delta[k] += w - m.w[k]
		}
		m.w[k] = w
	}
	m.fair[k] = m.fairnessAt(k)
}

// Commit stores chunk on node and applies the delta update: node's
// fairness degree and contention weight refresh immediately, the affected
// c_ij entries are repaired lazily on the next cost read. Store errors
// (full, duplicate, out of range) pass through untouched.
func (m *Model) Commit(node, chunk int) error {
	if err := m.st.Store(node, chunk); err != nil {
		return err
	}
	m.touch(node)
	return nil
}

// Evict removes chunk from node, reporting whether anything was evicted
// (evicting an absent chunk is a no-op, mirroring cache.State.Evict, and
// leaves the model untouched).
func (m *Model) Evict(node, chunk int) bool {
	if node < 0 || node >= m.st.NumNodes() || !m.st.Has(node, chunk) {
		return false
	}
	m.st.Evict(node, chunk)
	m.touch(node)
	return true
}

// SwapTopology rebinds the model to a new graph over the same node set
// (device mobility): the shared PathCache is reset to the new graph, node
// weights pick up the new degrees, and the matrices rebuild from scratch
// on the next refresh — connectivity changes invalidate every cached
// path, so there is nothing to repair incrementally. Any other holder of
// the same PathCache must be rebound by the caller too (the online system
// rebuilds its core solver).
func (m *Model) SwapTopology(g *graph.Graph) error {
	if g == nil || g.NumNodes() != m.st.NumNodes() {
		return ErrMismatch
	}
	m.g = g
	m.pc.Reset(g)
	m.built = false
	m.pending = m.pending[:0]
	for k := range m.delta {
		m.queued[k] = false
		m.delta[k] = 0
		m.w[k] = contention.NodeCost(g, k) * float64(1+m.st.Stored(k))
	}
	m.hopMu.Lock()
	m.hopDist = nil
	m.hopMu.Unlock()
	return nil
}

// RefreshCtx brings the matrices up to date: a cold build when none exist
// (or after SwapTopology), a batched repair of the pending deltas
// otherwise. Independent rows fan out over p; rows land in their own
// slots, so the result is byte-identical at any pool width. A repair
// cancelled mid-flight leaves some rows shifted and some not, so it
// invalidates the matrices; the next refresh recovers through the full
// rebuild path.
func (m *Model) RefreshCtx(ctx context.Context, p *pool.Pool) error {
	if !m.built || m.opts.DisableIncremental {
		return m.rebuild(ctx, p)
	}
	if len(m.pending) == 0 {
		return nil
	}
	changed := m.pending[:0]
	for _, k := range m.pending {
		if m.delta[k] != 0 {
			changed = append(changed, k)
		} else {
			m.queued[k] = false
		}
	}
	m.pending = changed
	if len(changed) == 0 {
		return nil
	}
	// Fallback: when a large fraction of the nodes moved at once, the
	// repair cones cover most of the matrix anyway — the full sweep is
	// the cheaper (and trivially correct) path.
	if len(changed) > m.g.NumNodes()/4 {
		return m.rebuild(ctx, p)
	}
	n := m.g.NumNodes()
	touched := make([]int, n)
	err := p.ForEach(ctx, n, func(i int) {
		s := m.scratch.Get().(*graph.RepairScratch)
		touched[i] = m.pc.RepairNodeCostPaths(i, m.w, changed, m.delta, m.c[i*n:(i+1)*n], m.pred[i*n:(i+1)*n], s)
		m.scratch.Put(s)
	})
	if err != nil {
		// Rows repaired before the cancellation have already shifted
		// their cells in place; repairing again with the still-queued
		// deltas would double-apply them. Invalidate the matrices so the
		// next refresh takes the full rebuild, which only reads the
		// (already current) weights.
		m.built = false
		return err
	}
	m.clearPending()
	m.bumpStats(func(st *Stats) {
		st.Repairs++
		for _, t := range touched {
			st.CellsRecomputed += t
		}
	})
	return nil
}

// rebuild is the full-recompute path: one weighted sweep per source over
// the cached BFS layer structure, identical to contention.ComputeCostsCtx.
func (m *Model) rebuild(ctx context.Context, p *pool.Pool) error {
	n := m.g.NumNodes()
	if m.c == nil {
		m.c = make([]float64, n*n)
		m.pred = make([]int32, n*n)
	}
	err := p.ForEach(ctx, n, func(i int) {
		m.pc.NodeCostPathsInto(i, m.w, m.c[i*n:(i+1)*n], m.pred[i*n:(i+1)*n])
	})
	if err != nil {
		return err
	}
	m.built = true
	m.clearPending()
	m.bumpStats(func(st *Stats) { st.FullBuilds++ })
	return nil
}

func (m *Model) clearPending() {
	for _, k := range m.pending {
		m.queued[k] = false
		m.delta[k] = 0
	}
	m.pending = m.pending[:0]
}

// CostsCtx refreshes and returns the Path Contention Cost matrix. The
// returned view is owned by the model and borrowed by the caller: it must
// be treated as read-only and becomes stale after the next mutation —
// exactly the lifetime of one per-chunk ConFL phase.
func (m *Model) CostsCtx(ctx context.Context, p *pool.Pool) (*contention.Costs, error) {
	if err := m.RefreshCtx(ctx, p); err != nil {
		return nil, err
	}
	return &contention.Costs{N: m.g.NumNodes(), C: m.c, Pred: m.pred}, nil
}

// FacilityCosts returns a fresh slice of the weighted fairness costs with
// the producer excluded (+Inf), the facility-cost vector of Algorithm 1's
// per-chunk ConFL instance.
func (m *Model) FacilityCosts(producer int) []float64 {
	return m.FacilityCostsInto(producer, nil)
}

// FacilityCostsInto is FacilityCosts writing into dst when it has the right
// length (allocating otherwise), so the per-chunk loop reuses one scratch
// vector instead of allocating per chunk. It returns the filled slice.
func (m *Model) FacilityCostsInto(producer int, dst []float64) []float64 {
	if len(dst) != len(m.fair) {
		dst = make([]float64, len(m.fair))
	}
	copy(dst, m.fair)
	if producer >= 0 && producer < len(dst) {
		dst[producer] = math.Inf(1)
	}
	return dst
}

// FairnessCosts returns a fresh copy of the weighted fairness costs with
// no producer mask (the exact solver filters candidates itself).
func (m *Model) FairnessCosts() []float64 {
	return append([]float64(nil), m.fair...)
}

// EdgeCost returns the contention cost of the one-hop path {u, v} under
// the current state: w_u(1+S(u)) + w_v(1+S(v)).
func (m *Model) EdgeCost(u, v int) float64 { return m.w[u] + m.w[v] }

// EdgeCostFunc adapts EdgeCost to the graph.EdgeWeightFunc signature for
// Dijkstra and Steiner construction. The returned function reads the live
// weights, so it always reflects the latest mutations.
func (m *Model) EdgeCostFunc() graph.EdgeWeightFunc {
	return func(u, v int) float64 { return m.EdgeCost(u, v) }
}

// HopMatrixCtx returns the all-pairs hop-distance matrix as float64s
// (+Inf for unreachable pairs), built from the cached per-source BFS and
// memoised — the hop-count baseline's metric is topology-only, so one
// build serves every solve. Safe for concurrent use.
func (m *Model) HopMatrixCtx(ctx context.Context, p *pool.Pool) ([][]float64, error) {
	m.hopMu.Lock()
	defer m.hopMu.Unlock()
	if m.hopDist != nil {
		return m.hopDist, nil
	}
	n := m.g.NumNodes()
	dist := make([][]float64, n)
	err := p.ForEach(ctx, n, func(i int) {
		hops := m.pc.HopDistances(i)
		row := make([]float64, n)
		for j, h := range hops {
			if h == graph.Unreachable {
				row[j] = math.Inf(1)
			} else {
				row[j] = float64(h)
			}
		}
		dist[i] = row
	})
	if err != nil {
		return nil, err
	}
	m.hopDist = dist
	return dist, nil
}

// ForkCtx returns a model over st (sharing the receiver's graph and path
// cache) primed for a new solve. When st induces the same node weights as
// the receiver's state — every empty state does, regardless of capacities
// or battery levels, since weights depend only on degrees and stored
// counts — the fork copies the receiver's repaired matrices instead of
// rebuilding them, turning a warm-topology solve's cold start into an
// O(N²) copy. Otherwise it falls back to a cold model. The fork mutates
// independently of the receiver.
func (m *Model) ForkCtx(ctx context.Context, p *pool.Pool, st *cache.State, opts Options) (*Model, error) {
	child, err := New(m.g, m.pc, st, opts)
	if err != nil {
		return nil, err
	}
	if err := m.RefreshCtx(ctx, p); err != nil {
		return nil, err
	}
	for i := range m.w {
		if child.w[i] != m.w[i] {
			m.bumpStats(func(st *Stats) { st.ColdForks++ })
			return child, nil
		}
	}
	// Flat matrices make the warm fork two bulk copies — a pair of
	// allocations and memmoves instead of 2N row builds.
	child.c = append([]float64(nil), m.c...)
	child.pred = append([]int32(nil), m.pred...)
	child.built = true
	m.bumpStats(func(st *Stats) { st.WarmForks++ })
	return child, nil
}

// Verify recomputes every cost from scratch and compares it against the
// incremental state, returning an error naming the first divergence. It is
// the debugging hook behind the fallback contract; tests use it after
// randomized mutation sequences.
func (m *Model) Verify(ctx context.Context, p *pool.Pool) error {
	if err := m.RefreshCtx(ctx, p); err != nil {
		return err
	}
	fresh := contention.ComputeCosts(m.g, m.st)
	n := m.g.NumNodes()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.c[i*n+j] != fresh.At(i, j) {
				return fmt.Errorf("costmodel: C[%d][%d] drifted: incremental %v, fresh %v", i, j, m.c[i*n+j], fresh.At(i, j))
			}
			if m.pred[i*n+j] != fresh.Pred[i*n+j] {
				return fmt.Errorf("costmodel: Pred[%d][%d] drifted: incremental %d, fresh %d", i, j, m.pred[i*n+j], fresh.Pred[i*n+j])
			}
		}
	}
	for k := range m.w {
		want := contention.NodeCost(m.g, k) * float64(1+m.st.Stored(k))
		if m.w[k] != want {
			return fmt.Errorf("costmodel: weight[%d] drifted: %v != %v", k, m.w[k], want)
		}
		if got, want := m.fair[k], m.fairnessAt(k); got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			return fmt.Errorf("costmodel: fairness[%d] drifted: %v != %v", k, got, want)
		}
	}
	return nil
}
