package costmodel

import (
	"context"
	"testing"

	"repro/internal/cache"
)

// refreshCycle replays Algorithm 1's hot loop against m: for each of
// chunks iterations it commits a small ADMIN-like set of nodes and then
// reads the refreshed cost matrix, exactly the refresh the per-chunk loop
// pays. The node choice is deterministic so the incremental and full
// variants do identical logical work.
func refreshCycle(b *testing.B, m *Model, chunks, perChunk, n int) {
	b.Helper()
	ctx := context.Background()
	for c := 0; c < chunks; c++ {
		committed := 0
		for j := 0; committed < perChunk; j++ {
			node := (c*37 + j*13) % n
			if m.State().Free(node) <= 0 || m.State().Has(node, c) {
				continue
			}
			if err := m.Commit(node, c); err != nil {
				b.Fatalf("commit(%d,%d): %v", node, c, err)
			}
			committed++
		}
		if _, err := m.CostsCtx(ctx, nil); err != nil {
			b.Fatalf("refresh: %v", err)
		}
	}
}

// benchCostRefresh measures the per-chunk cost refresh on a 15×15 grid
// (225 nodes) over 8 chunks with 5 commits each — the ≥200-node, Q≥8
// scenario the acceptance criteria name. The cold build runs outside the
// timer; what is measured is exactly the per-chunk refresh work.
func benchCostRefresh(b *testing.B, disableIncremental bool) {
	const (
		rows, cols = 15, 15
		chunks     = 8
		perChunk   = 5
	)
	g := gridGraph(b, rows, cols)
	n := g.NumNodes()
	ctx := context.Background()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := cache.NewState(n, chunks)
		m, err := New(g, nil, st, Options{FairnessWeight: 1, DisableIncremental: disableIncremental})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		if err := m.RefreshCtx(ctx, nil); err != nil {
			b.Fatalf("cold build: %v", err)
		}
		b.StartTimer()
		refreshCycle(b, m, chunks, perChunk, n)
	}
}

// BenchmarkCostRefreshIncremental is the delta-update path: each chunk's
// refresh repairs only the cost entries whose cached shortest paths cross
// the handful of freshly committed nodes.
func BenchmarkCostRefreshIncremental(b *testing.B) {
	benchCostRefresh(b, false)
}

// BenchmarkCostRefreshFull is the correctness-fallback path and the
// pre-refactor behavior: every refresh recomputes all N sweeps.
func BenchmarkCostRefreshFull(b *testing.B) {
	benchCostRefresh(b, true)
}

// BenchmarkTopologyModelCold measures the from-scratch model build a cold
// solve pays (BFS layers plus the all-pairs sweep).
func BenchmarkTopologyModelCold(b *testing.B) {
	g := gridGraph(b, 15, 15)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := New(g, nil, cache.NewState(g.NumNodes(), 1), Options{FairnessWeight: 1})
		if err != nil {
			b.Fatalf("New: %v", err)
		}
		if err := m.RefreshCtx(ctx, nil); err != nil {
			b.Fatalf("refresh: %v", err)
		}
	}
}

// BenchmarkTopologyModelFork measures the warm-start alternative: forking
// a pre-built base model, which is what repeated solves on a registered
// topology pay instead of the cold build.
func BenchmarkTopologyModelFork(b *testing.B) {
	g := gridGraph(b, 15, 15)
	ctx := context.Background()
	base, err := New(g, nil, cache.NewState(g.NumNodes(), 1), Options{FairnessWeight: 1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	if err := base.RefreshCtx(ctx, nil); err != nil {
		b.Fatalf("refresh: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.ForkCtx(ctx, nil, cache.NewState(g.NumNodes(), 5), Options{FairnessWeight: 1}); err != nil {
			b.Fatalf("fork: %v", err)
		}
	}
}
