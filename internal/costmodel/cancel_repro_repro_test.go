package costmodel

import (
	"context"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
)

// countingCtx returns nil from Err for the first `allow` calls, then
// context.Canceled — deterministic mid-ForEach cancellation.
type countingCtx struct {
	calls, allow int
}

func (c *countingCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *countingCtx) Done() <-chan struct{}             { return nil }
func (c *countingCtx) Value(key interface{}) interface{} { return nil }
func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.allow {
		return context.Canceled
	}
	return nil
}

func TestReproCancelMidRepairThenRetry(t *testing.T) {
	g := gridGraph(t, 5, 5) // helper from the package's own tests
	st := cache.NewState(g.NumNodes(), 4)
	m, err := New(g, graph.NewPathCache(g), st, Options{FairnessWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(0, 7); err != nil {
		t.Fatal(err)
	}
	// Cancel after 3 rows of the repair have run.
	cc := &countingCtx{allow: 3}
	if err := m.RefreshCtx(cc, nil); err == nil {
		t.Fatal("expected cancellation error")
	}
	// Retry with a live context, as the online system does on the next publish.
	if err := m.RefreshCtx(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(context.Background(), nil); err != nil {
		t.Fatalf("model corrupt after cancelled repair + retry: %v", err)
	}
}
