package costmodel

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// gridGraph returns a rows×cols 4-neighbor grid.
func gridGraph(t testing.TB, rows, cols int) *graph.Graph {
	t.Helper()
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					t.Fatalf("grid edge: %v", err)
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					t.Fatalf("grid edge: %v", err)
				}
			}
		}
	}
	return g
}

// randomGraph returns a connected random graph: a random spanning tree
// (guaranteeing connectivity) plus extra random edges.
func randomGraph(t testing.TB, n, extraEdges int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(perm[i], perm[rng.Intn(i)]); err != nil {
			t.Fatalf("tree edge: %v", err)
		}
	}
	for added := 0; added < extraEdges; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatalf("extra edge: %v", err)
		}
		added++
	}
	return g
}

// clusteredGraph returns k dense clusters of size m chained together by
// single bridge edges — the paper's clustered evaluation shape.
func clusteredGraph(t testing.TB, k, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(k * m)
	for c := 0; c < k; c++ {
		base := c * m
		// Ring inside the cluster plus random chords: connected but not
		// complete, so path structure stays interesting.
		for i := 0; i < m; i++ {
			if err := g.AddEdge(base+i, base+(i+1)%m); err != nil {
				t.Fatalf("cluster ring: %v", err)
			}
		}
		for extra := 0; extra < m/2; {
			u, v := base+rng.Intn(m), base+rng.Intn(m)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				t.Fatalf("cluster chord: %v", err)
			}
			extra++
		}
		if c > 0 {
			if err := g.AddEdge(base-m+rng.Intn(m), base+rng.Intn(m)); err != nil {
				t.Fatalf("bridge: %v", err)
			}
		}
	}
	return g
}
