package costmodel

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
	"repro/internal/pool"
)

// topologies returns the three regression shapes the equivalence criteria
// name: grid, random and clustered.
func topologies(t testing.TB) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":      gridGraph(t, 6, 6),
		"random":    randomGraph(t, 40, 30, 7),
		"clustered": clusteredGraph(t, 4, 9, 11),
	}
}

// TestIncrementalMatchesFullRecompute drives randomized commit/evict
// batches through the model and verifies after every refresh that the
// delta-updated costs are byte-identical to a from-scratch recompute —
// the tentpole invariant.
func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for name, g := range topologies(t) {
		for _, workers := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				n := g.NumNodes()
				st := cache.NewState(n, 4)
				m, err := New(g, nil, st, Options{FairnessWeight: 1})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				pl := pool.New(workers)
				defer pl.Close()
				ctx := context.Background()
				rng := rand.New(rand.NewSource(int64(n)))

				chunk := 0
				var placed [][2]int // (node, chunk) pairs available for eviction
				for round := 0; round < 60; round++ {
					// A small batch of commits, like one chunk's ADMIN set…
					batch := 1 + rng.Intn(5)
					for b := 0; b < batch; b++ {
						node := rng.Intn(n)
						if st.Free(node) <= 0 || st.Has(node, chunk) {
							continue
						}
						if err := m.Commit(node, chunk); err != nil {
							t.Fatalf("round %d: commit(%d,%d): %v", round, node, chunk, err)
						}
						placed = append(placed, [2]int{node, chunk})
					}
					chunk++
					// …and occasional TTL-style evictions (capped so a batch
					// stays under the full-rebuild fallback threshold and the
					// incremental path is what gets tested).
					for e := 0; e < 3 && len(placed) > 0 && rng.Intn(3) == 0; e++ {
						i := rng.Intn(len(placed))
						p := placed[i]
						placed = append(placed[:i], placed[i+1:]...)
						if !m.Evict(p[0], p[1]) {
							t.Fatalf("round %d: evict(%d,%d) found nothing", round, p[0], p[1])
						}
					}
					if err := m.Verify(ctx, pl); err != nil {
						t.Fatalf("round %d (workers=%d): %v", round, workers, err)
					}
				}
				stats := m.Stats()
				if stats.FullBuilds != 1 {
					t.Errorf("expected exactly the cold build, got %d full builds (repairs %d)", stats.FullBuilds, stats.Repairs)
				}
				if stats.Repairs == 0 {
					t.Error("incremental repair path never exercised")
				}
				nn := n * n
				if stats.CellsRecomputed >= stats.Repairs*nn {
					t.Errorf("repairs recomputed %d cells over %d passes — no cheaper than full sweeps (%d)",
						stats.CellsRecomputed, stats.Repairs, stats.Repairs*nn)
				}
			})
		}
	}
}

// TestFallbackRecompute checks the two full-recompute fallbacks: the
// DisableIncremental oracle and the too-many-changes heuristic.
func TestFallbackRecompute(t *testing.T) {
	g := gridGraph(t, 5, 5)
	st := cache.NewState(25, 8)
	m, err := New(g, nil, st, Options{FairnessWeight: 1, DisableIncremental: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < 25; i += 2 {
		if err := m.Commit(i, 0); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if err := m.Verify(ctx, nil); err != nil {
		t.Fatalf("disabled-incremental verify: %v", err)
	}
	if s := m.Stats(); s.Repairs != 0 {
		t.Errorf("DisableIncremental still repaired incrementally: %+v", s)
	}

	// Touching more than a quarter of the nodes in one batch must route
	// through the full rebuild.
	m2, err := New(g, nil, st.Clone(), Options{FairnessWeight: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := m2.RefreshCtx(ctx, nil); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	for i := 0; i < 25; i++ {
		if err := m2.Commit(i, 1); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	if err := m2.Verify(ctx, nil); err != nil {
		t.Fatalf("fallback verify: %v", err)
	}
	if s := m2.Stats(); s.FullBuilds != 2 || s.Repairs != 0 {
		t.Errorf("batch touching every node should fall back to a full build, got %+v", s)
	}
}

// TestCostsMatchContentionPackage pins the borrowed view against the
// original one-shot implementation on a fresh state.
func TestCostsMatchContentionPackage(t *testing.T) {
	for name, g := range topologies(t) {
		st := cache.NewState(g.NumNodes(), 3)
		m, err := New(g, nil, st, Options{FairnessWeight: 1})
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		got, err := m.CostsCtx(context.Background(), nil)
		if err != nil {
			t.Fatalf("%s: CostsCtx: %v", name, err)
		}
		want := contention.ComputeCosts(g, st)
		for i := 0; i < want.N; i++ {
			for j := 0; j < want.N; j++ {
				if got.At(i, j) != want.At(i, j) || got.PredRow(i)[j] != want.PredRow(i)[j] {
					t.Fatalf("%s: cell (%d,%d) differs: C %v vs %v, Pred %d vs %d",
						name, i, j, got.At(i, j), want.At(i, j), got.PredRow(i)[j], want.PredRow(i)[j])
				}
			}
		}
	}
}

// TestForkWarm checks that a fork from an empty-state base model is a warm
// copy: identical to a cold model over the new state, and independent of
// the parent afterwards.
func TestForkWarm(t *testing.T) {
	g := clusteredGraph(t, 3, 8, 3)
	n := g.NumNodes()
	ctx := context.Background()
	base, err := New(g, nil, cache.NewState(n, 1), Options{FairnessWeight: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := base.RefreshCtx(ctx, nil); err != nil {
		t.Fatalf("refresh: %v", err)
	}

	st := cache.NewState(n, 5)
	st.SetBattery(2, 0.5)
	fork, err := base.ForkCtx(ctx, nil, st, Options{FairnessWeight: 2, BatteryWeight: 1})
	if err != nil {
		t.Fatalf("ForkCtx: %v", err)
	}
	if s := base.Stats(); s.WarmForks != 1 || s.ColdForks != 0 {
		t.Fatalf("empty-state fork should be warm: %+v", s)
	}
	if err := fork.Verify(ctx, nil); err != nil {
		t.Fatalf("fork verify: %v", err)
	}
	if s := fork.Stats(); s.FullBuilds != 0 {
		t.Errorf("warm fork rebuilt from scratch: %+v", s)
	}

	// Mutating the fork must leave the parent untouched.
	if err := fork.Commit(1, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := fork.Verify(ctx, nil); err != nil {
		t.Fatalf("fork verify after commit: %v", err)
	}
	if err := base.Verify(ctx, nil); err != nil {
		t.Fatalf("parent drifted after fork mutation: %v", err)
	}

	// A fork onto a non-empty state (different weights) must fall back to
	// a cold model rather than serve stale matrices.
	loaded := cache.NewState(n, 5)
	if err := loaded.Store(4, 9); err != nil {
		t.Fatalf("store: %v", err)
	}
	cold, err := base.ForkCtx(ctx, nil, loaded, Options{FairnessWeight: 1})
	if err != nil {
		t.Fatalf("ForkCtx: %v", err)
	}
	if s := base.Stats(); s.ColdForks != 1 {
		t.Fatalf("loaded-state fork should be cold: %+v", s)
	}
	if err := cold.Verify(ctx, nil); err != nil {
		t.Fatalf("cold fork verify: %v", err)
	}
}

// TestSwapTopology checks that a swap drops the old connectivity entirely:
// costs rebuild against the new graph and the shared path cache holds only
// entries for it.
func TestSwapTopology(t *testing.T) {
	g1 := gridGraph(t, 5, 5)
	pc := graph.NewPathCache(g1)
	st := cache.NewState(25, 4)
	m, err := New(g1, pc, st, Options{FairnessWeight: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if err := m.Commit(3, 0); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if err := m.Verify(ctx, nil); err != nil {
		t.Fatalf("pre-swap verify: %v", err)
	}
	if got := pc.Cached(); got != 25 {
		t.Fatalf("expected 25 cached entries pre-swap, got %d", got)
	}

	g2 := randomGraph(t, 25, 20, 99)
	if err := m.SwapTopology(g2); err != nil {
		t.Fatalf("SwapTopology: %v", err)
	}
	if got := pc.Cached(); got != 0 {
		t.Fatalf("path cache kept %d entries across the swap", got)
	}
	if err := m.Verify(ctx, nil); err != nil {
		t.Fatalf("post-swap verify: %v", err)
	}
	// Cached chunks carry over: node 3 still holds chunk 0, and further
	// deltas on the new topology stay exact.
	if !m.State().Has(3, 0) {
		t.Fatal("swap lost cached chunk")
	}
	if err := m.Commit(7, 1); err != nil {
		t.Fatalf("commit after swap: %v", err)
	}
	if err := m.Verify(ctx, nil); err != nil {
		t.Fatalf("post-swap incremental verify: %v", err)
	}

	if err := m.SwapTopology(graph.New(3)); err == nil {
		t.Fatal("SwapTopology accepted a graph with a different node count")
	}
}

// TestHopMatrix pins the memoised hop matrix against AllPairsHops.
func TestHopMatrix(t *testing.T) {
	g := randomGraph(t, 30, 25, 5)
	m, err := New(g, nil, cache.NewState(30, 1), Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := m.HopMatrixCtx(context.Background(), nil)
	if err != nil {
		t.Fatalf("HopMatrixCtx: %v", err)
	}
	want := g.AllPairsHops()
	for i := range want {
		for j := range want[i] {
			if int(got[i][j]) != want[i][j] {
				t.Fatalf("hop (%d,%d): got %v want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	again, err := m.HopMatrixCtx(context.Background(), nil)
	if err != nil {
		t.Fatalf("HopMatrixCtx: %v", err)
	}
	if &again[0] != &got[0] {
		t.Error("hop matrix not memoised")
	}
}
