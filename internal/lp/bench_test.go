package lp

import (
	"math/rand"
	"testing"
)

// benchProblem builds a random feasible LP with n vars and m LE rows.
func benchProblem(n, m int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	for i := range p.Objective {
		p.Objective[i] = rng.Float64()*2 - 0.5
	}
	for k := 0; k < m; k++ {
		coeffs := map[int]float64{}
		for i := 0; i < n; i++ {
			coeffs[i] = rng.Float64() * 3
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Sense: LE, RHS: 10 + rng.Float64()*10})
	}
	return p
}

func BenchmarkSolve20x10(b *testing.B) {
	p := benchProblem(20, 10, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{})
		if err != nil || sol.Status == Infeasible {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

func BenchmarkSolve100x50(b *testing.B) {
	p := benchProblem(100, 50, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{})
		if err != nil || sol.Status == Infeasible {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}
