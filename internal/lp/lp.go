// Package lp is a self-contained dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A·x (≤ | = | ≥) b,   x ≥ 0.
//
// Go has no native LP ecosystem (the usual route is wrapping a C solver);
// this package provides the substrate the ILP branch-and-bound solver
// (package ilp) builds on, replacing the paper's use of PuLP/CBC for the
// brute-force optimal baseline. It favours clarity and numerical
// robustness (Bland's rule fallback against cycling) over raw speed, which
// is adequate for the per-chunk ConFL relaxations of the evaluation.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota + 1
	// EQ is an = constraint.
	EQ
	// GE is a ≥ constraint.
	GE
)

// Constraint is one row: Σ Coeffs[i]·x_i (Sense) RHS.
type Constraint struct {
	// Coeffs maps variable index to coefficient; absent entries are 0.
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
}

// Problem is a minimisation LP over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal: an optimal solution was found.
	Optimal Status = iota + 1
	// Infeasible: no feasible point exists.
	Infeasible
	// Unbounded: the objective is unbounded below.
	Unbounded
	// IterLimit: the iteration cap was reached before convergence.
	IterLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Objective float64
	// X holds the optimal variable values (length NumVars).
	X []float64
}

// Options tunes the solver.
type Options struct {
	// MaxIterations caps total pivots; 0 means 50·(rows+cols)+1000.
	MaxIterations int
	// Tolerance is the numeric feasibility/optimality tolerance.
	Tolerance float64
}

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("lp: invalid problem")

const defaultTolerance = 1e-9

// Solve runs two-phase primal simplex on p.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = defaultTolerance
	}

	t := newTableau(p, opts)
	if t.needPhase1 {
		status := t.run(true)
		if status != Optimal {
			if status == IterLimit {
				return &Solution{Status: IterLimit}, nil
			}
			return &Solution{Status: Infeasible}, nil
		}
		if t.phase1Objective() > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		t.dropArtificials()
	}
	status := t.run(false)
	sol := &Solution{Status: status}
	if status == Optimal {
		sol.X = t.extract()
		obj := 0.0
		for i, c := range p.Objective {
			obj += c * sol.X[i]
		}
		sol.Objective = obj
	}
	return sol, nil
}

func validate(p *Problem) error {
	if p == nil || p.NumVars <= 0 {
		return fmt.Errorf("%w: no variables", ErrBadProblem)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective length %d != %d vars", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for k, c := range p.Constraints {
		if c.Sense != LE && c.Sense != EQ && c.Sense != GE {
			return fmt.Errorf("%w: constraint %d has bad sense", ErrBadProblem, k)
		}
		for i := range c.Coeffs {
			if i < 0 || i >= p.NumVars {
				return fmt.Errorf("%w: constraint %d references variable %d", ErrBadProblem, k, i)
			}
		}
	}
	return nil
}

// tableau is a dense simplex tableau. Columns: structural vars, then slack
// /surplus vars, then artificial vars; final column is the RHS.
type tableau struct {
	rows, cols     int // constraint rows, total variable columns
	numStruct      int
	numArtificial  int
	firstArt       int
	a              [][]float64 // rows x (cols+1); last column is RHS
	costPhase2     []float64   // length cols
	costPhase1     []float64
	basis          []int
	opts           Options
	needPhase1     bool
	phase1ObjValue float64
}

func newTableau(p *Problem, opts Options) *tableau {
	m := len(p.Constraints)
	// Count slack and artificial columns.
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		rhs, sense := c.RHS, c.Sense
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	cols := p.NumVars + numSlack + numArt
	t := &tableau{
		rows:          m,
		cols:          cols,
		numStruct:     p.NumVars,
		numArtificial: numArt,
		firstArt:      p.NumVars + numSlack,
		a:             make([][]float64, m),
		costPhase2:    make([]float64, cols),
		costPhase1:    make([]float64, cols),
		basis:         make([]int, m),
		opts:          opts,
		needPhase1:    numArt > 0,
	}
	copy(t.costPhase2, p.Objective)
	for j := t.firstArt; j < cols; j++ {
		t.costPhase1[j] = 1
	}

	slackCol := p.NumVars
	artCol := t.firstArt
	for r, c := range p.Constraints {
		row := make([]float64, cols+1)
		sign := 1.0
		rhs, sense := c.RHS, c.Sense
		if rhs < 0 {
			sign, rhs, sense = -1, -rhs, flip(sense)
		}
		for i, v := range c.Coeffs {
			row[i] += sign * v
		}
		row[cols] = rhs
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[r] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
		}
		t.a[r] = row
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// run performs simplex pivots until optimality for the selected phase.
func (t *tableau) run(phase1 bool) Status {
	cost := t.costPhase2
	if phase1 {
		cost = t.costPhase1
	}
	maxIter := t.opts.MaxIterations
	if maxIter == 0 {
		maxIter = 50*(t.rows+t.cols) + 1000
	}
	// Reduced costs are computed directly: r_j = c_j − c_B·B⁻¹A_j, using
	// the tableau rows (which already hold B⁻¹A).
	for iter := 0; iter < maxIter; iter++ {
		col := t.chooseColumn(cost, iter > maxIter/2)
		if col < 0 {
			if phase1 {
				t.phase1ObjValue = t.objective(cost)
			}
			return Optimal
		}
		row := t.chooseRow(col)
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
	return IterLimit
}

// chooseColumn returns the entering column with the most negative reduced
// cost (Dantzig), or the lowest-indexed negative one under Bland's rule,
// or -1 at optimality.
func (t *tableau) chooseColumn(cost []float64, bland bool) int {
	tol := t.opts.Tolerance
	best, bestVal := -1, -tol
	for j := 0; j < t.cols; j++ {
		r := cost[j]
		for i, b := range t.basis {
			if cb := cost[b]; cb != 0 {
				r -= cb * t.a[i][j]
			}
		}
		if r < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, r
		}
	}
	return best
}

// chooseRow runs the ratio test for the entering column, or -1 if the
// column is unbounded.
func (t *tableau) chooseRow(col int) int {
	tol := t.opts.Tolerance
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.rows; i++ {
		aij := t.a[i][col]
		if aij <= tol {
			continue
		}
		ratio := t.a[i][t.cols] / aij
		if ratio < bestRatio-tol || (ratio < bestRatio+tol && (best < 0 || t.basis[i] < t.basis[best])) {
			best, bestRatio = i, ratio
		}
	}
	return best
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	arow := t.a[row]
	inv := 1 / p
	for j := range arow {
		arow[j] *= inv
	}
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		factor := t.a[i][col]
		if factor == 0 {
			continue
		}
		ai := t.a[i]
		for j := range ai {
			ai[j] -= factor * arow[j]
		}
	}
	t.basis[row] = col
}

func (t *tableau) objective(cost []float64) float64 {
	obj := 0.0
	for i, b := range t.basis {
		obj += cost[b] * t.a[i][t.cols]
	}
	return obj
}

func (t *tableau) phase1Objective() float64 { return t.phase1ObjValue }

// dropArtificials pivots basic artificial variables out where possible and
// zeroes artificial columns so phase 2 cannot re-enter them.
func (t *tableau) dropArtificials() {
	for i, b := range t.basis {
		if b < t.firstArt {
			continue
		}
		// Degenerate basic artificial: pivot in any usable column.
		for j := 0; j < t.firstArt; j++ {
			if math.Abs(t.a[i][j]) > t.opts.Tolerance {
				t.pivot(i, j)
				break
			}
		}
	}
	// Zero artificial columns: a zero column with zero cost has zero
	// reduced cost and can never strictly improve, so phase 2 cannot
	// bring artificials back.
	for j := t.firstArt; j < t.cols; j++ {
		t.costPhase2[j] = 0
		for i := 0; i < t.rows; i++ {
			t.a[i][j] = 0
		}
	}
}

func (t *tableau) extract() []float64 {
	x := make([]float64, t.numStruct)
	for i, b := range t.basis {
		if b < t.numStruct {
			x[b] = t.a[i][t.cols]
			if x[b] < 0 && x[b] > -t.opts.Tolerance {
				x[b] = 0
			}
		}
	}
	return x
}
