package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestValidate(t *testing.T) {
	if _, err := Solve(nil, Options{}); err == nil {
		t.Error("nil problem: want error")
	}
	if _, err := Solve(&Problem{NumVars: 0}, Options{}); err == nil {
		t.Error("zero vars: want error")
	}
	if _, err := Solve(&Problem{NumVars: 2, Objective: []float64{1}}, Options{}); err == nil {
		t.Error("objective length mismatch: want error")
	}
	bad := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{5: 1}, Sense: LE, RHS: 1},
		},
	}
	if _, err := Solve(bad, Options{}); err == nil {
		t.Error("out-of-range variable: want error")
	}
	badSense := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Sense: Sense(9), RHS: 1},
		},
	}
	if _, err := Solve(badSense, Options{}); err == nil {
		t.Error("bad sense: want error")
	}
}

func TestSolveSimpleMaximisationAsMin(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig):
	// optimum (2, 6) value 36. Minimise the negation.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Sense: LE, RHS: 4},
			{Coeffs: map[int]float64{1: 2}, Sense: LE, RHS: 12},
			{Coeffs: map[int]float64{0: 3, 1: 2}, Sense: LE, RHS: 18},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -36) {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 6) {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

func TestSolveEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> x=8, y=2, obj 12.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: EQ, RHS: 10},
			{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 3},
			{Coeffs: map[int]float64{1: 1}, Sense: GE, RHS: 2},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 12) {
		t.Errorf("objective = %g, want 12", sol.Objective)
	}
	if !approx(sol.X[0], 8) || !approx(sol.X[1], 2) {
		t.Errorf("X = %v, want [8 2]", sol.X)
	}
}

func TestSolveNegativeRHSNormalised(t *testing.T) {
	// -x - y <= -4 is x + y >= 4; min x + y -> 4.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: -1, 1: -1}, Sense: LE, RHS: -4},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 4) {
		t.Errorf("got (%v, %g), want (optimal, 4)", sol.Status, sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1}, Sense: LE, RHS: 1},
			{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 5},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with x unconstrained above.
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{-1},
		Constraints: []Constraint{{Coeffs: map[int]float64{0: 1}, Sense: GE, RHS: 1}},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under pure Dantzig without
	// anti-cycling); must terminate optimally at -1/20.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 0.25, 1: -60, 2: -1.0 / 25, 3: 9}, Sense: LE, RHS: 0},
			{Coeffs: map[int]float64{0: 0.5, 1: -90, 2: -1.0 / 50, 3: 3}, Sense: LE, RHS: 0},
			{Coeffs: map[int]float64{2: 1}, Sense: LE, RHS: 1},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if !approx(sol.Objective, -0.05) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestSolveStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal:    "optimal",
		Infeasible: "infeasible",
		Unbounded:  "unbounded",
		IterLimit:  "iteration-limit",
		Status(42): "Status(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestSolveMatchesBruteForceOnAssignment cross-checks the simplex against
// exhaustive search on random small transportation problems, whose LP
// optimum is integral at a vertex.
func TestSolveMatchesBruteForceOnAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3) // n x n assignment
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(1 + rng.Intn(9))
			}
		}
		p := &Problem{NumVars: n * n, Objective: make([]float64, n*n)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.Objective[i*n+j] = cost[i][j]
			}
		}
		for i := 0; i < n; i++ {
			rowC := map[int]float64{}
			colC := map[int]float64{}
			for j := 0; j < n; j++ {
				rowC[i*n+j] = 1
				colC[j*n+i] = 1
			}
			p.Constraints = append(p.Constraints,
				Constraint{Coeffs: rowC, Sense: EQ, RHS: 1},
				Constraint{Coeffs: colC, Sense: EQ, RHS: 1},
			)
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		want := bruteAssignment(cost)
		if !approx(sol.Objective, want) {
			t.Errorf("trial %d: LP = %g, brute force = %g", trial, sol.Objective, want)
		}
	}
}

func bruteAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Property: for random feasible LPs with a known feasible point, the
// simplex objective is never worse than that point's objective.
func TestSolveNeverWorseThanFeasiblePoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		// Random feasible point and constraints satisfied by it.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
		}
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for i := range p.Objective {
			p.Objective[i] = rng.Float64()*4 - 1
		}
		for k := 0; k < m; k++ {
			coeffs := map[int]float64{}
			lhs := 0.0
			for i := 0; i < n; i++ {
				c := rng.Float64() * 3
				coeffs[i] = c
				lhs += c * x0[i]
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: coeffs,
				Sense:  LE,
				RHS:    lhs + rng.Float64(),
			})
		}
		sol, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		if sol.Status == Unbounded {
			return true // objective had negative entries; fine
		}
		if sol.Status != Optimal {
			return false
		}
		obj0 := 0.0
		for i, c := range p.Objective {
			obj0 += c * x0[i]
		}
		return sol.Objective <= obj0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

func TestSolveIterationLimit(t *testing.T) {
	// A problem that needs several pivots with MaxIterations 1 must report
	// IterLimit rather than looping or mis-reporting optimality.
	p := &Problem{
		NumVars:   3,
		Objective: []float64{-1, -2, -3},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1, 2: 1}, Sense: LE, RHS: 10},
			{Coeffs: map[int]float64{0: 2, 1: 1}, Sense: LE, RHS: 8},
			{Coeffs: map[int]float64{1: 1, 2: 3}, Sense: LE, RHS: 15},
		},
	}
	sol, err := Solve(p, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Errorf("status = %v, want iteration-limit", sol.Status)
	}
}

func TestSolveAllSensesTogether(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x - y <= 2, y = 1 -> x = 3, obj 9.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: 1}, Sense: GE, RHS: 4},
			{Coeffs: map[int]float64{0: 1, 1: -1}, Sense: LE, RHS: 2},
			{Coeffs: map[int]float64{1: 1}, Sense: EQ, RHS: 1},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 9) {
		t.Errorf("got (%v, %g), want (optimal, 9)", sol.Status, sol.Objective)
	}
	if !approx(sol.X[0], 3) || !approx(sol.X[1], 1) {
		t.Errorf("X = %v, want [3 1]", sol.X)
	}
}

func TestSolveZeroRHSDegenerate(t *testing.T) {
	// Degenerate vertex at the origin: min x + y s.t. x - y <= 0, y <= 0
	// -> optimum 0 at (0, 0).
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: map[int]float64{0: 1, 1: -1}, Sense: LE},
			{Coeffs: map[int]float64{1: 1}, Sense: LE},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 0) {
		t.Errorf("got (%v, %g), want (optimal, 0)", sol.Status, sol.Objective)
	}
}
