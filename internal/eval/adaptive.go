package eval

import (
	"context"
	"fmt"

	faircache "repro"
	"repro/internal/sim"
)

// AdaptiveScenario configures the trace-replay comparison of caching
// policies under a live Zipf request stream. Zero values select the
// defaults noted per field.
type AdaptiveScenario struct {
	// Rows and Cols size the grid topology (default 15×15, the sharded
	// evaluation's mid-size network).
	Rows, Cols int
	// Chunks is the chunk-id space (default 64); Capacity the per-node
	// cache capacity (default 3) — deliberately tight, so policies must
	// choose what to keep.
	Chunks   int
	Capacity int
	// Requests is the replay length (default 1,000,000).
	Requests int
	// Seed seeds the trace; identical scenarios replay identically.
	Seed int64
	// ZipfS is the trace's popularity exponent (default 0.9); DriftEvery
	// rotates the popularity ranking every so many requests (default
	// Requests/4, 0 < 0 disables).
	ZipfS      float64
	DriftEvery int
	// AdaptEvery is the adaptive policy's adaptation period in requests
	// (default 20,000).
	AdaptEvery int
	// HitRadius is the local-hit hop bound (default 2).
	HitRadius int
	// TopDelta and CopyBudget tune the adaptation pass (defaults 24 and
	// 150 — wide enough that each pass can rework the neighborhood
	// coverage, which is what lets adaptive overtake the LRU baseline).
	TopDelta   int
	CopyBudget int
	// SampleEvery is the Gini sampling period in requests (default
	// AdaptEvery).
	SampleEvery int
	// Workers sizes the solver pool.
	Workers int
}

func (sc AdaptiveScenario) withDefaults() AdaptiveScenario {
	if sc.Rows == 0 {
		sc.Rows = 15
	}
	if sc.Cols == 0 {
		sc.Cols = 15
	}
	if sc.Chunks == 0 {
		sc.Chunks = 64
	}
	if sc.Capacity == 0 {
		sc.Capacity = 3
	}
	if sc.Requests == 0 {
		sc.Requests = 1_000_000
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	if sc.ZipfS == 0 {
		sc.ZipfS = 0.9
	}
	if sc.DriftEvery == 0 {
		sc.DriftEvery = sc.Requests / 4
	} else if sc.DriftEvery < 0 {
		sc.DriftEvery = 0
	}
	if sc.AdaptEvery == 0 {
		sc.AdaptEvery = 20_000
	}
	if sc.HitRadius == 0 {
		sc.HitRadius = 2
	}
	if sc.TopDelta == 0 {
		sc.TopDelta = 24
	}
	if sc.CopyBudget == 0 {
		sc.CopyBudget = 150
	}
	if sc.SampleEvery == 0 {
		sc.SampleEvery = sc.AdaptEvery
	}
	return sc
}

// AdaptiveRow reports one policy's replay outcome.
type AdaptiveRow struct {
	// Policy names the caching policy ("static", "lru", "adaptive").
	Policy string
	// HitRate is the fraction of requests served by a cache copy within
	// HitRadius hops; CacheRate the fraction served by any cache copy.
	HitRate   float64
	CacheRate float64
	// MeanCost and P99Cost summarize the hop-distance retrieval cost.
	MeanCost float64
	P99Cost  float64
	// GiniMean, GiniFinal and GiniMax summarize the storage-fairness Gini
	// coefficient sampled every SampleEvery requests.
	GiniMean  float64
	GiniFinal float64
	GiniMax   float64
	// Evictions, Adaptations and CopiesPlaced count the policy's work.
	Evictions    int64
	Adaptations  int64
	CopiesPlaced int64
	// Ms is the replay wall time.
	Ms float64
}

// traceSpec builds the scenario's request generator; every policy replays
// the identical stream.
func (sc AdaptiveScenario) traceSpec(producer int) sim.TraceSpec {
	return sim.TraceSpec{
		Nodes:      sc.Rows * sc.Cols,
		Chunks:     sc.Chunks,
		Seed:       sc.Seed,
		ZipfS:      sc.ZipfS,
		DriftEvery: sc.DriftEvery,
		Exclude:    producer,
	}
}

// giniTrack accumulates the over-time fairness summary.
type giniTrack struct {
	sum   float64
	max   float64
	last  float64
	count int
}

func (g *giniTrack) add(v float64) {
	g.sum += v
	if v > g.max {
		g.max = v
	}
	g.last = v
	g.count++
}

func (g *giniTrack) fill(row *AdaptiveRow) {
	if g.count > 0 {
		row.GiniMean = g.sum / float64(g.count)
	}
	row.GiniFinal = g.last
	row.GiniMax = g.max
}

// RunAdaptive replays the scenario's request trace under three policies —
// the static fair placement (seeded once, never adapted), a naive
// cooperative LRU (insert-on-miss at the requester, per-node LRU
// replacement, no placement intelligence), and the adaptive system
// (static seed + periodic demand-driven adaptation) — and reports
// hit-rate, retrieval cost and fairness-over-time per policy. All three
// policies serve requests by the same rule (nearest copy network-wide,
// local hit within HitRadius hops), so the rows differ only by placement
// policy.
func RunAdaptive(sc AdaptiveScenario) ([]AdaptiveRow, error) {
	sc = sc.withDefaults()
	topo, err := faircache.Grid(sc.Rows, sc.Cols)
	if err != nil {
		return nil, err
	}
	producer := topo.CentralNode()

	rows := make([]AdaptiveRow, 0, 3)
	for _, policy := range []string{"static", "lru", "adaptive"} {
		var row AdaptiveRow
		ms, err := timeIt(func() error {
			r, err := sc.runPolicy(topo, producer, policy)
			row = r
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("adaptive replay %q: %w", policy, err)
		}
		row.Ms = float64(ms.Microseconds()) / 1000
		rows = append(rows, row)
	}
	return rows, nil
}

func (sc AdaptiveScenario) runPolicy(topo *faircache.Topology, producer int, policy string) (AdaptiveRow, error) {
	if policy == "lru" {
		return sc.runNaiveLRU(topo, producer)
	}
	trace, err := sim.NewTrace(sc.traceSpec(producer))
	if err != nil {
		return AdaptiveRow{}, err
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		return AdaptiveRow{}, err
	}
	sys, err := solver.NewAdaptive(context.Background(), producer, sc.Chunks, &faircache.AdaptiveOptions{
		Capacity:   sc.Capacity,
		Workers:    sc.Workers,
		HitRadius:  sc.HitRadius,
		TopDelta:   sc.TopDelta,
		CopyBudget: sc.CopyBudget,
	})
	if err != nil {
		return AdaptiveRow{}, err
	}

	var gini giniTrack
	batch := make([]faircache.RequestEvent, 0, sc.SampleEvery)
	for done := 0; done < sc.Requests; {
		n := sc.SampleEvery
		if rem := sc.Requests - done; n > rem {
			n = rem
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			r := trace.Next()
			batch = append(batch, faircache.RequestEvent{Node: r.Node, Chunk: r.Chunk})
		}
		if _, err := sys.Report(batch); err != nil {
			return AdaptiveRow{}, err
		}
		done += n
		gini.add(sys.Gini())
		if policy == "adaptive" && done%sc.AdaptEvery == 0 && done < sc.Requests {
			if _, err := sys.Adapt(context.Background()); err != nil {
				return AdaptiveRow{}, err
			}
		}
	}
	st := sys.Stats()
	row := AdaptiveRow{
		Policy:       policy,
		HitRate:      st.HitRate,
		CacheRate:    st.CacheRate,
		MeanCost:     st.MeanCost,
		P99Cost:      st.P99Cost,
		Evictions:    st.Evictions,
		Adaptations:  st.Adaptations,
		CopiesPlaced: st.CopiesPlaced,
	}
	gini.fill(&row)
	return row, nil
}
