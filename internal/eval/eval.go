// Package eval is the experiment harness: one runner per table/figure of
// the paper's evaluation section (Sec. V), each driving the public
// faircache API exactly as a downstream user would. The cmd/experiments
// binary renders runner output as the tables recorded in EXPERIMENTS.md;
// the root bench_test.go wraps the same runners as benchmarks.
package eval

import (
	"context"
	"time"

	faircache "repro"
)

// Algorithms in the canonical presentation order of the paper's figures.
var Algorithms = []faircache.Algorithm{
	faircache.AlgorithmApprox,
	faircache.AlgorithmDistributed,
	faircache.AlgorithmHopCount,
	faircache.AlgorithmContention,
}

// Run executes one algorithm on a topology and returns its placement. It
// drives the Solver API with a background context; unknown algorithms
// fail with faircache.ErrBadArgument.
func Run(alg faircache.Algorithm, topo *faircache.Topology, producer, chunks int, opts *faircache.Options) (*faircache.Result, error) {
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		return nil, err
	}
	return solver.Solve(context.Background(), faircache.Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: alg,
		Options:   opts,
	})
}

// Cost runs an algorithm and evaluates its total contention cost.
func Cost(alg faircache.Algorithm, topo *faircache.Topology, producer, chunks int, opts *faircache.Options) (float64, error) {
	res, err := Run(alg, topo, producer, chunks, opts)
	if err != nil {
		return 0, err
	}
	report, err := res.ContentionCost()
	if err != nil {
		return 0, err
	}
	return report.Total(), nil
}

// Scenario is the shared experimental setup of Sec. V-A.
type Scenario struct {
	// Chunks is the number of distinct data chunks (paper default 5).
	Chunks int
	// Capacity is the per-node cache capacity (paper default 5).
	Capacity int
	// Producer overrides the producer node; -1 picks the paper's node 9
	// on grids and the central node on random networks.
	Producer int
	// OptimalBudget bounds the exact solver's per-chunk search nodes
	// (0 = exhaustive).
	OptimalBudget int
	// OptimalWidth caps the exact solver's caching-set size (0 = the
	// exact Steiner limit); smaller widths keep budgeted searches fast.
	OptimalWidth int
	// Seeds are the random-network seeds to average over (paper: 5 runs).
	Seeds []int64
}

// DefaultScenario returns the paper's simulation defaults.
func DefaultScenario() Scenario {
	return Scenario{
		Chunks:   5,
		Capacity: 5,
		Producer: -1,
		Seeds:    []int64{1, 2, 3, 4, 5},
	}
}

func (s Scenario) options() *faircache.Options {
	return &faircache.Options{
		Capacity:     s.Capacity,
		SearchBudget: s.OptimalBudget,
		SearchWidth:  s.OptimalWidth,
	}
}

// producerOn resolves the producer for a topology: the paper fixes node 9
// unless the topology is too small or a producer was set explicitly.
func (s Scenario) producerOn(topo *faircache.Topology) int {
	if s.Producer >= 0 && s.Producer < topo.NumNodes() {
		return s.Producer
	}
	if topo.NumNodes() > 9 {
		return 9
	}
	return topo.NumNodes() / 2
}

// timeIt measures the wall-clock time of fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}
