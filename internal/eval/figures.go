package eval

import (
	"fmt"
	"time"

	faircache "repro"

	"repro/internal/metrics"
)

// Fig1 reproduces Fig. 1: the per-node difference in stored-chunk counts
// between each algorithm and the optimal reference on a grid network.
type Fig1 struct {
	// Rows and Cols describe the grid (paper: 6×6).
	Rows, Cols int
	// Producer is the data producer (paper: node 9).
	Producer int
	// Reference holds the optimal (Brtf) per-node chunk counts.
	Reference []int
	// ReferenceOptimal reports whether the reference search completed
	// exhaustively (false when a budget truncated it).
	ReferenceOptimal bool
	// Diff[alg][i] = counts(alg)[i] − Reference[i].
	Diff map[faircache.Algorithm][]int
}

// RunFig1 executes the Fig. 1 experiment on a rows×cols grid.
func RunFig1(rows, cols int, sc Scenario) (*Fig1, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	ref, err := Run(faircache.AlgorithmOptimal, topo, producer, sc.Chunks, sc.options())
	if err != nil {
		return nil, fmt.Errorf("fig1 reference: %w", err)
	}
	out := &Fig1{
		Rows: rows, Cols: cols,
		Producer:         producer,
		Reference:        ref.Counts,
		ReferenceOptimal: ref.ProvenOptimal,
		Diff:             make(map[faircache.Algorithm][]int, len(Algorithms)),
	}
	for _, alg := range Algorithms {
		res, err := Run(alg, topo, producer, sc.Chunks, sc.options())
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", alg, err)
		}
		diff, err := metrics.DistributionDiff(res.Counts, ref.Counts)
		if err != nil {
			return nil, err
		}
		out.Diff[alg] = diff
	}
	return out, nil
}

// CostRow is one network size's total contention cost per algorithm
// (Figs. 2 and 4).
type CostRow struct {
	// Nodes is the network size.
	Nodes int
	// Total[alg] is the evaluated contention cost (access +
	// dissemination).
	Total map[faircache.Algorithm]float64
	// Optimal is the Brtf cost when computed (small networks only; 0
	// otherwise).
	Optimal float64
	// OptimalProven reports exhaustive completion of the Brtf search.
	OptimalProven bool
}

// RunFig2Small reproduces the small-network half of Fig. 2: total
// contention cost on square grids including the optimal reference.
func RunFig2Small(sides []int, sc Scenario) ([]CostRow, error) {
	var rows []CostRow
	for _, side := range sides {
		topo, err := faircache.Grid(side, side)
		if err != nil {
			return nil, err
		}
		producer := sc.producerOn(topo)
		row := CostRow{Nodes: side * side, Total: map[faircache.Algorithm]float64{}}
		for _, alg := range Algorithms {
			cost, err := Cost(alg, topo, producer, sc.Chunks, sc.options())
			if err != nil {
				return nil, fmt.Errorf("fig2 %s on %dx%d: %w", alg, side, side, err)
			}
			row.Total[alg] = cost
		}
		ref, err := Run(faircache.AlgorithmOptimal, topo, producer, sc.Chunks, sc.options())
		if err != nil {
			return nil, fmt.Errorf("fig2 optimal on %dx%d: %w", side, side, err)
		}
		refCost, err := ref.ContentionCost()
		if err != nil {
			return nil, err
		}
		row.Optimal = refCost.Total()
		row.OptimalProven = ref.ProvenOptimal
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFig2Large reproduces the large-network half of Fig. 2 (100–255
// nodes), where brute force is infeasible.
func RunFig2Large(sides []int, sc Scenario) ([]CostRow, error) {
	var rows []CostRow
	for _, side := range sides {
		topo, err := faircache.Grid(side, side)
		if err != nil {
			return nil, err
		}
		producer := sc.producerOn(topo)
		row := CostRow{Nodes: side * side, Total: map[faircache.Algorithm]float64{}}
		for _, alg := range Algorithms {
			cost, err := Cost(alg, topo, producer, sc.Chunks, sc.options())
			if err != nil {
				return nil, fmt.Errorf("fig2 %s on %dx%d: %w", alg, side, side, err)
			}
			row.Total[alg] = cost
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig3Row is the distributed algorithm's cost under one hop limit.
type Fig3Row struct {
	HopLimit      int
	Access        float64
	Dissemination float64
}

// Total returns the row's total contention cost.
func (r Fig3Row) Total() float64 { return r.Access + r.Dissemination }

// RunFig3 reproduces Fig. 3: the distributed algorithm's contention cost
// under hop limits 1..maxK on a rows×cols grid.
func RunFig3(rows, cols, maxK int, sc Scenario) ([]Fig3Row, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	var out []Fig3Row
	for k := 1; k <= maxK; k++ {
		opts := sc.options()
		opts.HopLimit = k
		res, err := Run(faircache.AlgorithmDistributed, topo, producer, sc.Chunks, opts)
		if err != nil {
			return nil, fmt.Errorf("fig3 k=%d: %w", k, err)
		}
		report, err := res.ContentionCost()
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Row{HopLimit: k, Access: report.Access, Dissemination: report.Dissemination})
	}
	return out, nil
}

// RunFig4 reproduces Fig. 4: contention cost on random networks of
// growing size, averaged over the scenario's seeds.
func RunFig4(sizes []int, sc Scenario) ([]CostRow, error) {
	if len(sc.Seeds) == 0 {
		return nil, fmt.Errorf("fig4: no seeds")
	}
	var rows []CostRow
	for _, n := range sizes {
		perSeed := make([]map[faircache.Algorithm]float64, len(sc.Seeds))
		err := forEachSeed(sc.Seeds, func(idx int, seed int64) error {
			topo, err := faircache.Random(n, seed)
			if err != nil {
				return err
			}
			producer := topo.CentralNode()
			totals := map[faircache.Algorithm]float64{}
			for _, alg := range Algorithms {
				cost, err := Cost(alg, topo, producer, sc.Chunks, sc.options())
				if err != nil {
					return fmt.Errorf("fig4 %s n=%d seed=%d: %w", alg, n, seed, err)
				}
				totals[alg] = cost
			}
			perSeed[idx] = totals
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := CostRow{Nodes: n, Total: map[faircache.Algorithm]float64{}}
		for _, totals := range perSeed {
			for alg, cost := range totals {
				row.Total[alg] += cost
			}
		}
		for alg := range row.Total {
			row.Total[alg] /= float64(len(sc.Seeds))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig5Row is the single-chunk placement time per algorithm at one size.
type Fig5Row struct {
	Nodes int
	// Elapsed[alg] is the wall-clock placement time for one chunk.
	Elapsed map[faircache.Algorithm]time.Duration
}

// RunFig5 reproduces Fig. 5: running time to place one chunk on growing
// grids. Absolute values differ from the paper's Python timings; the
// claim under test is the relative ordering and growth.
func RunFig5(sides []int, sc Scenario) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, side := range sides {
		topo, err := faircache.Grid(side, side)
		if err != nil {
			return nil, err
		}
		producer := sc.producerOn(topo)
		row := Fig5Row{Nodes: side * side, Elapsed: map[faircache.Algorithm]time.Duration{}}
		for _, alg := range Algorithms {
			if alg == faircache.AlgorithmDistributed {
				continue // the paper excludes Dist from timing (message-based)
			}
			elapsed, err := timeIt(func() error {
				_, err := Run(alg, topo, producer, 1, sc.options())
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig5 %s on %dx%d: %w", alg, side, side, err)
			}
			row.Elapsed[alg] = elapsed
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6 reproduces Fig. 6: the storage concentration curve (fraction of
// all data held by the k most-loaded nodes) and the 75-percentile
// fairness per algorithm.
type Fig6 struct {
	// Curve[alg][k-1] is the cumulative data fraction on the top-k nodes.
	Curve map[faircache.Algorithm][]float64
	// Percentile75[alg] is the paper's 75-percentile fairness.
	Percentile75 map[faircache.Algorithm]float64
}

// RunFig6 executes the Fig. 6 experiment on a rows×cols grid.
func RunFig6(rows, cols int, sc Scenario) (*Fig6, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	out := &Fig6{
		Curve:        map[faircache.Algorithm][]float64{},
		Percentile75: map[faircache.Algorithm]float64{},
	}
	for _, alg := range Algorithms {
		res, err := Run(alg, topo, producer, sc.Chunks, sc.options())
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", alg, err)
		}
		out.Curve[alg] = res.StorageCurve()
		pf, err := res.PercentileFairness(75)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s percentile: %w", alg, err)
		}
		out.Percentile75[alg] = pf
	}
	return out, nil
}

// GiniRow is one network size's Gini coefficient per algorithm (Fig. 7).
type GiniRow struct {
	Nodes int
	Gini  map[faircache.Algorithm]float64
}

// RunFig7Grid reproduces Fig. 7(a): Gini coefficient on growing grids.
func RunFig7Grid(sides []int, sc Scenario) ([]GiniRow, error) {
	var rows []GiniRow
	for _, side := range sides {
		topo, err := faircache.Grid(side, side)
		if err != nil {
			return nil, err
		}
		producer := sc.producerOn(topo)
		row := GiniRow{Nodes: side * side, Gini: map[faircache.Algorithm]float64{}}
		for _, alg := range Algorithms {
			res, err := Run(alg, topo, producer, sc.Chunks, sc.options())
			if err != nil {
				return nil, fmt.Errorf("fig7 %s on %dx%d: %w", alg, side, side, err)
			}
			row.Gini[alg] = res.Gini()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunFig7Random reproduces Fig. 7(b): Gini coefficient on random
// networks, averaged over the scenario's seeds.
func RunFig7Random(sizes []int, sc Scenario) ([]GiniRow, error) {
	if len(sc.Seeds) == 0 {
		return nil, fmt.Errorf("fig7: no seeds")
	}
	var rows []GiniRow
	for _, n := range sizes {
		perSeed := make([]map[faircache.Algorithm]float64, len(sc.Seeds))
		err := forEachSeed(sc.Seeds, func(idx int, seed int64) error {
			topo, err := faircache.Random(n, seed)
			if err != nil {
				return err
			}
			producer := topo.CentralNode()
			ginis := map[faircache.Algorithm]float64{}
			for _, alg := range Algorithms {
				res, err := Run(alg, topo, producer, sc.Chunks, sc.options())
				if err != nil {
					return fmt.Errorf("fig7 %s n=%d seed=%d: %w", alg, n, seed, err)
				}
				ginis[alg] = res.Gini()
			}
			perSeed[idx] = ginis
			return nil
		})
		if err != nil {
			return nil, err
		}
		row := GiniRow{Nodes: n, Gini: map[faircache.Algorithm]float64{}}
		for _, ginis := range perSeed {
			for alg, g := range ginis {
				row.Gini[alg] += g
			}
		}
		for alg := range row.Gini {
			row.Gini[alg] /= float64(len(sc.Seeds))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row is the accumulated contention cost with a growing number of
// distinct chunks (Fig. 8).
type Fig8Row struct {
	Chunks int
	Total  map[faircache.Algorithm]float64
}

// RunFig8 reproduces Fig. 8 on a rows×cols grid: total contention cost as
// the number of distinct chunks grows 1..maxChunks (capacity stays at the
// scenario's value, so baselines overflow to a second node set past
// capacity — the discontinuity the paper highlights).
func RunFig8(rows, cols, maxChunks int, sc Scenario) ([]Fig8Row, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	var out []Fig8Row
	for q := 1; q <= maxChunks; q++ {
		row := Fig8Row{Chunks: q, Total: map[faircache.Algorithm]float64{}}
		for _, alg := range Algorithms {
			cost, err := Cost(alg, topo, producer, q, sc.options())
			if err != nil {
				return nil, fmt.Errorf("fig8 %s q=%d: %w", alg, q, err)
			}
			row.Total[alg] = cost
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig9 reproduces Fig. 9: the per-chunk contention cost of a 10-chunk
// placement (per-chunk fairness — chunks of one data item should cost
// about the same or retrieval completion is delayed by the worst chunk).
type Fig9 struct {
	// PerChunk[alg][n] is chunk n's access + dissemination cost.
	PerChunk map[faircache.Algorithm][]float64
}

// RunFig9 executes the Fig. 9 experiment on a rows×cols grid.
func RunFig9(rows, cols, chunks int, sc Scenario) (*Fig9, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	out := &Fig9{PerChunk: map[faircache.Algorithm][]float64{}}
	for _, alg := range Algorithms {
		res, err := Run(alg, topo, producer, chunks, sc.options())
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", alg, err)
		}
		report, err := res.ContentionCost()
		if err != nil {
			return nil, err
		}
		out.PerChunk[alg] = report.PerChunk
	}
	return out, nil
}

// Table2 reproduces TABLE II / Sec. IV-D: distributed protocol message
// counts per type, with the O(QN + N²) bound check.
type Table2 struct {
	Nodes, Chunks int
	// Counts per message kind.
	Counts map[string]int
	// Total message count.
	Total int
	// Bound is the concrete O(QN + N²) budget used for the check.
	Bound int
	// WithinBound reports Total <= Bound.
	WithinBound bool
}

// RunTable2 executes the message-accounting experiment on a grid.
func RunTable2(rows, cols int, sc Scenario) (*Table2, error) {
	topo, err := faircache.Grid(rows, cols)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	res, err := Run(faircache.AlgorithmDistributed, topo, producer, sc.Chunks, sc.options())
	if err != nil {
		return nil, err
	}
	n := topo.NumNodes()
	total := 0
	for _, v := range res.Messages {
		total += v
	}
	// The constant folds per-flood fan-out on bounded-degree topologies.
	bound := 40 * (sc.Chunks*n + n*n)
	return &Table2{
		Nodes:       n,
		Chunks:      sc.Chunks,
		Counts:      res.Messages,
		Total:       total,
		Bound:       bound,
		WithinBound: total <= bound,
	}, nil
}
