package eval

import (
	"context"
	"fmt"

	faircache "repro"
)

// PartitionedRow compares one topology's global solve against its sharded
// solve: cost, wall time and peak cost-matrix footprint.
type PartitionedRow struct {
	// Label names the topology ("grid 15x15", "random 120", ...).
	Label string
	// Nodes is the topology size; Regions the sharded region count.
	Nodes   int
	Regions int
	// GlobalCost and ShardedCost are the replayed contention costs of the
	// two solves; Ratio is Sharded/Global (the cost-error factor).
	GlobalCost  float64
	ShardedCost float64
	Ratio       float64
	// GlobalMs and ShardedMs are the solve wall times.
	GlobalMs  float64
	ShardedMs float64
	// DroppedCopies counts the copies the stitch pass removed; MatrixCells
	// and FullMatrixCells compare the sharded path's summed per-region
	// matrices against the global N².
	DroppedCopies   int
	MatrixCells     int
	FullMatrixCells int
}

// PartitionedCase is one topology of the sharded-vs-global comparison.
type PartitionedCase struct {
	Label   string
	Topo    *faircache.Topology
	Regions int
}

// DefaultPartitionedCases returns the comparison's standard topologies:
// the paper's three network models at sizes where the global solve is
// still comfortable, so both paths can be measured.
func DefaultPartitionedCases() ([]PartitionedCase, error) {
	grid, err := faircache.Grid(12, 12)
	if err != nil {
		return nil, err
	}
	random, err := faircache.Random(120, 3)
	if err != nil {
		return nil, err
	}
	clustered, err := faircache.Clustered(6, 12, 11)
	if err != nil {
		return nil, err
	}
	return []PartitionedCase{
		{Label: "grid 12x12", Topo: grid, Regions: 4},
		{Label: "random 120", Topo: random, Regions: 4},
		{Label: "clustered 6x12", Topo: clustered, Regions: 3},
	}, nil
}

// RunPartitioned runs the sharded-vs-global comparison: each case is
// solved globally and with Options.Partition, both placements are
// evaluated under the uniform replay metric, and the row reports the
// cost-error factor alongside the memory and time deltas.
func RunPartitioned(cases []PartitionedCase, sc Scenario) ([]PartitionedRow, error) {
	rows := make([]PartitionedRow, 0, len(cases))
	for _, c := range cases {
		solver, err := faircache.NewSolver(c.Topo)
		if err != nil {
			return nil, err
		}
		producer := sc.producerOn(c.Topo)
		base := faircache.Request{Producer: producer, Chunks: sc.Chunks, Options: sc.options()}

		var global *faircache.Result
		globalTime, err := timeIt(func() error {
			global, err = solver.Solve(context.Background(), base)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s global: %w", c.Label, err)
		}

		shardedReq := base
		opts := *sc.options()
		opts.Partition = &faircache.PartitionOptions{Regions: c.Regions}
		shardedReq.Options = &opts
		var sharded *faircache.Result
		shardedTime, err := timeIt(func() error {
			sharded, err = solver.Solve(context.Background(), shardedReq)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("%s sharded: %w", c.Label, err)
		}

		globalCost, err := global.ContentionCost()
		if err != nil {
			return nil, err
		}
		shardedCost, err := sharded.ContentionCost()
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionedRow{
			Label:           c.Label,
			Nodes:           c.Topo.NumNodes(),
			Regions:         sharded.Partition.Regions,
			GlobalCost:      globalCost.Total(),
			ShardedCost:     shardedCost.Total(),
			Ratio:           shardedCost.Total() / globalCost.Total(),
			GlobalMs:        float64(globalTime.Microseconds()) / 1000,
			ShardedMs:       float64(shardedTime.Microseconds()) / 1000,
			DroppedCopies:   sharded.Partition.DroppedCopies,
			MatrixCells:     sharded.Partition.MatrixCells,
			FullMatrixCells: sharded.Partition.FullMatrixCells,
		})
	}
	return rows, nil
}
