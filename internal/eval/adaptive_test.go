package eval

import (
	"testing"
)

// smokeScenario shrinks the replay to CI scale: a 100k-request trace on
// a smaller grid, adapting often enough to converge inside the budget.
func smokeScenario() AdaptiveScenario {
	return AdaptiveScenario{
		Rows: 9, Cols: 9,
		Chunks:     48,
		Requests:   100_000,
		AdaptEvery: 5_000,
		DriftEvery: -1, // stationary popularity: the smoke asserts convergence
	}
}

func TestAdaptReplaySmoke(t *testing.T) {
	rows, err := RunAdaptive(smokeScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byPolicy := map[string]AdaptiveRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.HitRate < 0 || r.HitRate > 1 || r.CacheRate < r.HitRate {
			t.Errorf("%s: inconsistent rates: %+v", r.Policy, r)
		}
		if r.MeanCost < 0 || r.P99Cost < r.MeanCost {
			t.Errorf("%s: inconsistent costs: %+v", r.Policy, r)
		}
	}
	static, lru, adaptive := byPolicy["static"], byPolicy["lru"], byPolicy["adaptive"]
	if adaptive.HitRate <= static.HitRate {
		t.Errorf("adaptive hit-rate %.4f does not beat static %.4f", adaptive.HitRate, static.HitRate)
	}
	if adaptive.GiniFinal > static.GiniFinal {
		t.Errorf("adaptive GiniFinal %.4f worse than static %.4f", adaptive.GiniFinal, static.GiniFinal)
	}
	if adaptive.Adaptations == 0 || adaptive.CopiesPlaced == 0 {
		t.Errorf("adaptive did no work: %+v", adaptive)
	}
	if lru.Evictions == 0 {
		t.Errorf("lru baseline did not churn: %+v", lru)
	}
}

func TestAdaptReplayDeterministic(t *testing.T) {
	sc := smokeScenario()
	sc.Requests = 30_000
	run := func() []AdaptiveRow {
		rows, err := RunAdaptive(sc)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	for i := range a {
		// Ms is wall time; everything else must replay identically.
		a[i].Ms, b[i].Ms = 0, 0
		if a[i] != b[i] {
			t.Errorf("row %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
