package eval

import (
	"testing"

	faircache "repro"
)

// fastScenario keeps test instances small: 3 chunks, tight search budget,
// 2 seeds.
func fastScenario() Scenario {
	sc := DefaultScenario()
	sc.Chunks = 3
	sc.OptimalBudget = 500
	sc.Seeds = []int64{1, 2}
	return sc
}

func TestRunUnknownAlgorithm(t *testing.T) {
	topo, err := faircache.Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nope", topo, 0, 1, nil); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestRunFig1Small(t *testing.T) {
	sc := fastScenario()
	fig, err := RunFig1(4, 4, sc)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Producer != 9 {
		t.Errorf("producer = %d, want 9", fig.Producer)
	}
	if len(fig.Reference) != 16 {
		t.Fatalf("reference length = %d", len(fig.Reference))
	}
	for _, alg := range Algorithms {
		diff, ok := fig.Diff[alg]
		if !ok || len(diff) != 16 {
			t.Errorf("%s: diff missing or wrong length", alg)
		}
	}
	// The diff of the optimal against itself is not included; the
	// approximation should differ somewhere but sum to a small offset.
	if fig.Diff[faircache.AlgorithmHopCount][fig.Producer] != -fig.Reference[fig.Producer] {
		t.Errorf("producer diff inconsistent: %d vs reference %d",
			fig.Diff[faircache.AlgorithmHopCount][fig.Producer], fig.Reference[fig.Producer])
	}
}

func TestRunFig2SmallShape(t *testing.T) {
	sc := fastScenario()
	rows, err := RunFig2Small([]int{3}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Nodes != 9 {
		t.Fatalf("rows = %+v", rows)
	}
	row := rows[0]
	if row.Optimal <= 0 {
		t.Error("optimal cost not computed")
	}
	for _, alg := range Algorithms {
		if row.Total[alg] <= 0 {
			t.Errorf("%s cost = %g", alg, row.Total[alg])
		}
	}
	// Approximation guarantee on the evaluation metric: within 6.55x of
	// the (budgeted) optimum reference.
	if row.Total[faircache.AlgorithmApprox] > 6.55*row.Optimal {
		t.Errorf("Appx %g exceeds 6.55x optimal %g", row.Total[faircache.AlgorithmApprox], row.Optimal)
	}
}

func TestRunFig2LargeOrdering(t *testing.T) {
	sc := fastScenario()
	rows, err := RunFig2Large([]int{8}, sc)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	appx := row.Total[faircache.AlgorithmApprox]
	hopc := row.Total[faircache.AlgorithmHopCount]
	if hopc <= appx {
		t.Errorf("Hopc %g not worse than Appx %g on a large grid", hopc, appx)
	}
}

func TestRunFig3HopSweep(t *testing.T) {
	sc := fastScenario()
	rows, err := RunFig3(6, 6, 3, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].HopLimit != 1 || rows[2].HopLimit != 3 {
		t.Errorf("hop limits = %d..%d", rows[0].HopLimit, rows[2].HopLimit)
	}
	// Fig. 3's claim: 1 hop is no better than 2 hops.
	if rows[0].Total() < rows[1].Total()-1e-9 {
		t.Errorf("1-hop %g beats 2-hop %g", rows[0].Total(), rows[1].Total())
	}
}

func TestRunFig4Averaging(t *testing.T) {
	sc := fastScenario()
	rows, err := RunFig4([]int{20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms {
		if rows[0].Total[alg] <= 0 {
			t.Errorf("%s average cost = %g", alg, rows[0].Total[alg])
		}
	}
	if _, err := RunFig4([]int{20}, Scenario{Chunks: 1, Capacity: 5}); err == nil {
		t.Error("no seeds: want error")
	}
}

func TestRunFig5Timing(t *testing.T) {
	sc := fastScenario()
	rows, err := RunFig5([]int{4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]
	if _, hasDist := row.Elapsed[faircache.AlgorithmDistributed]; hasDist {
		t.Error("Fig 5 must exclude the distributed algorithm (paper does)")
	}
	for _, alg := range []faircache.Algorithm{faircache.AlgorithmApprox, faircache.AlgorithmHopCount, faircache.AlgorithmContention} {
		if row.Elapsed[alg] <= 0 {
			t.Errorf("%s elapsed = %v", alg, row.Elapsed[alg])
		}
	}
}

func TestRunFig6FairnessOrdering(t *testing.T) {
	sc := DefaultScenario() // full 5-chunk scenario for the headline claim
	fig, err := RunFig6(6, 6, sc)
	if err != nil {
		t.Fatal(err)
	}
	appx := fig.Percentile75[faircache.AlgorithmApprox]
	cont := fig.Percentile75[faircache.AlgorithmContention]
	hopc := fig.Percentile75[faircache.AlgorithmHopCount]
	if !(appx > cont && cont > hopc) {
		t.Errorf("75-percentile fairness ordering violated: appx %g, cont %g, hopc %g", appx, cont, hopc)
	}
	for _, alg := range Algorithms {
		curve := fig.Curve[alg]
		if len(curve) != 36 {
			t.Fatalf("%s: curve length %d", alg, len(curve))
		}
		if curve[35] != 1 {
			t.Errorf("%s: curve does not reach 1", alg)
		}
	}
}

func TestRunFig7GiniShapes(t *testing.T) {
	sc := fastScenario()
	grid, err := RunFig7Grid([]int{6}, DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	g := grid[0].Gini
	if g[faircache.AlgorithmApprox] >= 0.4 {
		t.Errorf("Appx gini = %g, want < 0.4 (paper headline)", g[faircache.AlgorithmApprox])
	}
	if g[faircache.AlgorithmHopCount] <= g[faircache.AlgorithmApprox] {
		t.Error("Hopc not less fair than Appx")
	}
	random, err := RunFig7Random([]int{20}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if random[0].Gini[faircache.AlgorithmApprox] <= 0 {
		t.Error("random-network gini not computed")
	}
}

func TestRunFig8BaselineJumpAtCapacity(t *testing.T) {
	sc := DefaultScenario()
	rows, err := RunFig8(4, 4, 6, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fig. 8's discontinuity: the Contention baseline's increment jumps
	// when chunk 6 forces a second node set (capacity 5), while the fair
	// algorithm keeps growing smoothly.
	inc := func(alg faircache.Algorithm, q int) float64 {
		return rows[q-1].Total[alg] - rows[q-2].Total[alg]
	}
	if inc(faircache.AlgorithmContention, 6) <= inc(faircache.AlgorithmContention, 5) {
		t.Errorf("Cont: no capacity jump (inc5 %g, inc6 %g)",
			inc(faircache.AlgorithmContention, 5), inc(faircache.AlgorithmContention, 6))
	}
	if inc(faircache.AlgorithmApprox, 6) > 1.5*inc(faircache.AlgorithmApprox, 5) {
		t.Errorf("Appx: unexpected jump at chunk 6 (inc5 %g, inc6 %g)",
			inc(faircache.AlgorithmApprox, 5), inc(faircache.AlgorithmApprox, 6))
	}
}

func TestRunFig9PerChunkEvenness(t *testing.T) {
	sc := DefaultScenario()
	fig, err := RunFig9(4, 4, 10, sc)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(xs []float64) float64 {
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return hi - lo
	}
	appx := fig.PerChunk[faircache.AlgorithmApprox]
	dist := fig.PerChunk[faircache.AlgorithmDistributed]
	hopc := fig.PerChunk[faircache.AlgorithmHopCount]
	cont := fig.PerChunk[faircache.AlgorithmContention]
	if len(appx) != 10 || len(hopc) != 10 {
		t.Fatalf("per-chunk lengths: %d, %d", len(appx), len(hopc))
	}
	// Evenness on the 4×4: the distributed algorithm's spread must beat
	// the Contention baseline's (whose chunk-group switch steps the
	// cost).
	if spread(dist) >= spread(cont) {
		t.Errorf("Dist per-chunk spread %g not tighter than Cont %g", spread(dist), spread(cont))
	}
	_ = appx

	// Paper: "the Contention Cost is ... lower than other two algorithms
	// for most chunks" — on the 6×6 grid of Fig. 9(b).
	fig6x6, err := RunFig9(6, 6, 10, sc)
	if err != nil {
		t.Fatal(err)
	}
	appx6 := fig6x6.PerChunk[faircache.AlgorithmApprox]
	hopc6 := fig6x6.PerChunk[faircache.AlgorithmHopCount]
	cont6 := fig6x6.PerChunk[faircache.AlgorithmContention]
	lowerCount := 0
	for n := range appx6 {
		if appx6[n] < hopc6[n] && appx6[n] < cont6[n] {
			lowerCount++
		}
	}
	if lowerCount < 7 {
		t.Errorf("Appx cheaper than both baselines on only %d/10 chunks (6x6)", lowerCount)
	}
	_ = hopc
}

func TestRunTable2MessageAccounting(t *testing.T) {
	sc := fastScenario()
	tab, err := RunTable2(6, 6, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.WithinBound {
		t.Errorf("message total %d exceeds bound %d", tab.Total, tab.Bound)
	}
	for _, kind := range []string{"NPI", "CC", "TIGHT"} {
		if tab.Counts[kind] == 0 {
			t.Errorf("no %s messages", kind)
		}
	}
	if tab.Total <= 0 {
		t.Error("no messages recorded")
	}
}

func TestRunAblations(t *testing.T) {
	rows, err := RunAblations(DefaultScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Total <= 0 {
			t.Errorf("%s: non-positive cost", r.Name)
		}
	}
	// Quorum knob monotonicity: larger M, fewer caches.
	if byName["quorum M=1"].DistinctCaches < byName["quorum M=4"].DistinctCaches {
		t.Error("quorum sweep not monotone in cache count")
	}
	// Steiner local search never raises dissemination vs default.
	if byName["steiner local search"].Dissemination > byName["default (M=2, Uγ=2.5, w=1)"].Dissemination+1e-9 {
		t.Error("local search raised dissemination")
	}
}
