package eval

import (
	"runtime"
	"sync"
)

// forEachSeed runs fn once per seed concurrently (bounded by GOMAXPROCS)
// and returns the first error. Each fn call works on its own topology and
// state, so runs are independent and the aggregation stays deterministic:
// results are merged by seed index, not completion order.
func forEachSeed(seeds []int64, fn func(idx int, seed int64) error) error {
	limit := runtime.GOMAXPROCS(0)
	if limit > len(seeds) {
		limit = len(seeds)
	}
	if limit < 1 {
		limit = 1
	}
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, limit)
		mu   sync.Mutex
		err1 error
	)
	for i, seed := range seeds {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int, s int64) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(idx, s); err != nil {
				mu.Lock()
				if err1 == nil {
					err1 = err
				}
				mu.Unlock()
			}
		}(i, seed)
	}
	wg.Wait()
	return err1
}
