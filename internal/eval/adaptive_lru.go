package eval

import (
	"slices"

	faircache "repro"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// naiveLRU is the classical non-cooperative baseline: every node inserts
// whatever it requested and missed, evicting its own least-recently-used
// chunk when full. No placement intelligence, no demand estimation —
// exactly the policy the adaptive system must beat. Serving and
// accounting follow the same rules as the adaptive replay (nearest copy
// network-wide, local hit within the radius), so rows are comparable.
type naiveLRU struct {
	n, chunks, capacity, radius, producer int

	hop     [][]int
	holds   []map[int]int64 // node -> chunk -> last-used tick
	holders [][]int         // chunk -> sorted holder list
	clock   int64

	requests, localHits, cacheHits int64
	evictions                      int64
	costSum                        float64
	hist                           []int64
}

func newNaiveLRU(topo *faircache.Topology, producer, chunks, capacity, radius int) (*naiveLRU, error) {
	n := topo.NumNodes()
	hop := make([][]int, n)
	maxHop := 0
	for j := 0; j < n; j++ {
		d, err := topo.HopDistances(j)
		if err != nil {
			return nil, err
		}
		hop[j] = d
		for _, h := range d {
			if h > maxHop {
				maxHop = h
			}
		}
	}
	l := &naiveLRU{
		n: n, chunks: chunks, capacity: capacity, radius: radius, producer: producer,
		hop:     hop,
		holds:   make([]map[int]int64, n),
		holders: make([][]int, chunks),
		hist:    make([]int64, maxHop+2),
	}
	for j := range l.holds {
		l.holds[j] = make(map[int]int64, capacity)
	}
	return l, nil
}

func (l *naiveLRU) holdersAdd(k, v int) {
	h := l.holders[k]
	i, _ := slices.BinarySearch(h, v)
	if i < len(h) && h[i] == v {
		return
	}
	h = append(h, 0)
	copy(h[i+1:], h[i:])
	h[i] = v
	l.holders[k] = h
}

func (l *naiveLRU) holdersRemove(k, v int) {
	h := l.holders[k]
	i, _ := slices.BinarySearch(h, v)
	if i < len(h) && h[i] == v {
		l.holders[k] = append(h[:i], h[i+1:]...)
	}
}

// serve accounts one request under the shared serving rule.
func (l *naiveLRU) serve(j, k int) {
	bestD := l.hop[j][l.producer]
	fromCache := false
	for _, v := range l.holders[k] {
		if d := l.hop[j][v]; d < bestD || (d == bestD && !fromCache) {
			bestD, fromCache = d, true
		}
	}
	l.requests++
	l.costSum += float64(bestD)
	if bestD < len(l.hist) {
		l.hist[bestD]++
	} else {
		l.hist[len(l.hist)-1]++
	}
	if fromCache {
		l.cacheHits++
		if bestD <= l.radius {
			l.localHits++
		}
	}
}

// observe serves the request, then applies insert-on-miss with per-node
// LRU replacement at the requester.
func (l *naiveLRU) observe(j, k int) {
	l.serve(j, k)
	l.clock++
	if j == l.producer {
		return
	}
	if _, ok := l.holds[j][k]; ok {
		l.holds[j][k] = l.clock
		return
	}
	if len(l.holds[j]) >= l.capacity {
		victim, oldest := -1, int64(0)
		for c, ts := range l.holds[j] {
			if victim < 0 || ts < oldest || (ts == oldest && c < victim) {
				victim, oldest = c, ts
			}
		}
		delete(l.holds[j], victim)
		l.holdersRemove(victim, j)
		l.evictions++
	}
	l.holds[j][k] = l.clock
	l.holdersAdd(k, j)
}

func (l *naiveLRU) counts() []int {
	out := make([]int, l.n)
	for j := range l.holds {
		out[j] = len(l.holds[j])
	}
	return out
}

func (l *naiveLRU) percentile(q float64) float64 {
	if l.requests == 0 {
		return 0
	}
	need := int64(q * float64(l.requests))
	if need < 1 {
		need = 1
	}
	var cum int64
	for h, c := range l.hist {
		cum += c
		if cum >= need {
			return float64(h)
		}
	}
	return float64(len(l.hist) - 1)
}

// runNaiveLRU replays the scenario's trace under the naive LRU baseline.
func (sc AdaptiveScenario) runNaiveLRU(topo *faircache.Topology, producer int) (AdaptiveRow, error) {
	trace, err := sim.NewTrace(sc.traceSpec(producer))
	if err != nil {
		return AdaptiveRow{}, err
	}
	l, err := newNaiveLRU(topo, producer, sc.Chunks, sc.Capacity, sc.HitRadius)
	if err != nil {
		return AdaptiveRow{}, err
	}
	var gini giniTrack
	for i := 1; i <= sc.Requests; i++ {
		r := trace.Next()
		l.observe(r.Node, r.Chunk)
		if i%sc.SampleEvery == 0 || i == sc.Requests {
			gini.add(metrics.Gini(l.counts()))
		}
	}
	row := AdaptiveRow{
		Policy:    "lru",
		HitRate:   float64(l.localHits) / float64(l.requests),
		CacheRate: float64(l.cacheHits) / float64(l.requests),
		MeanCost:  l.costSum / float64(l.requests),
		P99Cost:   l.percentile(0.99),
		Evictions: l.evictions,
	}
	gini.fill(&row)
	return row, nil
}
