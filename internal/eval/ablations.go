package eval

import (
	faircache "repro"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	// Name identifies the configuration.
	Name string
	// Gini is the placement's fairness.
	Gini float64
	// DistinctCaches counts nodes holding at least one chunk.
	DistinctCaches int
	// Total is the evaluated contention cost.
	Total float64
	// Dissemination is the dissemination share of Total.
	Dissemination float64
}

// RunAblations sweeps the design knobs called out in DESIGN.md §5 on the
// paper's 6×6 grid with a 10-chunk load (twice the capacity-5 default, so
// the fairness terms actually bite): SPAN quorum M, dual step U_α,
// fairness weight, greedy vs primal-dual ConFL, and Steiner local search.
func RunAblations(sc Scenario) ([]AblationRow, error) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		return nil, err
	}
	producer := sc.producerOn(topo)
	const chunks = 10

	type cfg struct {
		name string
		opts faircache.Options
	}
	configs := []cfg{
		{name: "default (M=2, Uγ=2.5, w=1)", opts: faircache.Options{}},
		{name: "quorum M=1", opts: faircache.Options{SpanQuorum: 1}},
		{name: "quorum M=3", opts: faircache.Options{SpanQuorum: 3}},
		{name: "quorum M=4", opts: faircache.Options{SpanQuorum: 4}},
		{name: "coarse step Uα=4", opts: faircache.Options{AlphaStep: 4, GammaStep: 10}},
		{name: "fine step Uα=0.25", opts: faircache.Options{AlphaStep: 0.25, GammaStep: 0.625}},
		{name: "fairness off (w=0)", opts: faircache.Options{FairnessWeight: -1}},
		{name: "fairness heavy (w=4)", opts: faircache.Options{FairnessWeight: 4}},
		{name: "greedy ConFL", opts: faircache.Options{GreedyConFL: true}},
		{name: "steiner local search", opts: faircache.Options{ImproveSteiner: true}},
	}

	var rows []AblationRow
	for _, c := range configs {
		opts := c.opts
		opts.Capacity = sc.Capacity
		res, err := Run(faircache.AlgorithmApprox, topo, producer, chunks, &opts)
		if err != nil {
			return nil, err
		}
		report, err := res.ContentionCost()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:           c.name,
			Gini:           res.Gini(),
			DistinctCaches: res.DistinctCacheNodes(),
			Total:          report.Total(),
			Dissemination:  report.Dissemination,
		})
	}

	// Battery extension: drain half the grid and show placement shifts.
	levels := make([]float64, topo.NumNodes())
	for i := range levels {
		levels[i] = 1
		if i%6 < 3 {
			levels[i] = 0.05 // nearly dead left half
		}
	}
	res, err := Run(faircache.AlgorithmApprox, topo, producer, chunks, &faircache.Options{
		Capacity:      sc.Capacity,
		BatteryLevels: levels,
		BatteryWeight: 1,
	})
	if err != nil {
		return nil, err
	}
	report, err := res.ContentionCost()
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:           "battery fairness (left half drained)",
		Gini:           res.Gini(),
		DistinctCaches: res.DistinctCacheNodes(),
		Total:          report.Total(),
		Dissemination:  report.Dissemination,
	})
	return rows, nil
}
