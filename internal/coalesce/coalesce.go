// Package coalesce implements singleflight-style request coalescing for
// the faircached serving layer: concurrent calls that present the same
// canonical key share one underlying computation (one "flight") instead
// of executing it N times.
//
// Unlike the classic singleflight, flights here are context-aware in
// both directions:
//
//   - A caller whose context is cancelled DETACHES from the flight and
//     returns its own context error; the flight keeps running for the
//     remaining callers. Cancellation of one client must never abort
//     work another client is waiting on.
//   - When the LAST caller detaches, the flight's own context is
//     cancelled, so the underlying computation (a cancellable solve)
//     stops instead of burning a worker for a result nobody wants.
//
// The function itself always runs on a dedicated goroutine with a
// context derived from the first caller's context values but not its
// cancellation, so a leader hanging up is indistinguishable from a
// follower hanging up.
package coalesce

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stats are a Group's cumulative dedup counters, all monotonic.
type Stats struct {
	// Flights counts underlying executions (coalescing "misses").
	Flights uint64 `json:"flights"`
	// Hits counts callers that attached to an already-running flight
	// instead of starting their own.
	Hits uint64 `json:"hits"`
	// Detached counts callers that gave up (context done) while their
	// flight was still running.
	Detached uint64 `json:"detached"`
	// Aborted counts flights cancelled because every caller detached.
	Aborted uint64 `json:"aborted"`
}

// flight is one in-progress shared computation.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	val    any
	err    error
	// callers is the number of attached waiters; guarded by the Group
	// mutex. When it reaches zero before done, the flight is cancelled.
	callers int
}

// Group coalesces calls by key. The zero value is ready to use. A Group
// is safe for concurrent use.
type Group struct {
	// OnDetach, when non-nil, is invoked every time a caller gives up on
	// a still-running flight, with the detaching caller's context (whose
	// values identify it — trace id, peer), the flight key, and whether
	// this caller was the last one attached (alone=true means the flight
	// itself is being aborted). Set it before the Group sees traffic; it
	// runs on the detaching caller's goroutine, keep it fast.
	OnDetach func(ctx context.Context, key string, alone bool)

	mu      sync.Mutex
	flights map[string]*flight

	nflights atomic.Uint64
	hits     atomic.Uint64
	detached atomic.Uint64
	aborted  atomic.Uint64
}

// Stats returns the group's cumulative counters.
func (g *Group) Stats() Stats {
	return Stats{
		Flights:  g.nflights.Load(),
		Hits:     g.hits.Load(),
		Detached: g.detached.Load(),
		Aborted:  g.aborted.Load(),
	}
}

// Do executes fn under the given key, coalescing with any in-progress
// flight for the same key. The first caller starts the flight on its own
// goroutine with a context that inherits ctx's values but NOT its
// cancellation; later callers attach to it. shared reports whether the
// result came from a flight this caller did not start.
//
// If ctx ends before the flight does, Do detaches and returns ctx.Err()
// — the flight is only cancelled when no caller remains. A flight's
// result is delivered to every caller still attached; once it completes
// the key is free and the next Do runs a fresh flight.
func (g *Group) Do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if ok {
		f.callers++
		g.hits.Add(1)
		g.mu.Unlock()
		return g.wait(ctx, key, f, true)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f = &flight{done: make(chan struct{}), cancel: cancel, callers: 1}
	g.flights[key] = f
	g.nflights.Add(1)
	g.mu.Unlock()

	go func() {
		v, err := fn(fctx)
		g.mu.Lock()
		f.val, f.err = v, err
		// The flight is finished: free the key so the next identical
		// request computes anew rather than reading a stale result. An
		// abandoned flight may already have been displaced by a fresh one
		// under the same key — never delete that successor.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or the caller's context ends,
// detaching in the latter case.
func (g *Group) wait(ctx context.Context, key string, f *flight, shared bool) (any, bool, error) {
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
	}
	// Detach: if the flight already closed done in the race, prefer the
	// result — it is complete and paid for.
	select {
	case <-f.done:
		return f.val, shared, f.err
	default:
	}
	g.mu.Lock()
	f.callers--
	abandoned := f.callers == 0
	if abandoned {
		// No caller remains; a result would be discarded anyway. Drop the
		// key immediately so a fresh caller is not chained to a flight
		// that is already tearing itself down.
		if g.flights[key] == f {
			delete(g.flights, key)
		}
	}
	g.mu.Unlock()
	g.detached.Add(1)
	if abandoned {
		g.aborted.Add(1)
		f.cancel()
	}
	if g.OnDetach != nil {
		g.OnDetach(ctx, key, abandoned)
	}
	return nil, shared, ctx.Err()
}
