package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescesConcurrentCallers pins the core contract: N concurrent
// Do calls on one key execute fn exactly once and all receive its result.
func TestCoalescesConcurrentCallers(t *testing.T) {
	var g Group
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	shareds := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				execs.Add(1)
				<-release
				return "result", nil
			})
			results[i], shareds[i], errs[i] = v, shared, err
		}(i)
	}
	// Wait until every caller has attached (1 flight + n-1 hits), then
	// let the flight finish.
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Hits < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("callers never attached: stats %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i] != "result" {
			t.Fatalf("caller %d: (%v, %v)", i, results[i], errs[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", leaders)
	}
	st := g.Stats()
	if st.Flights != 1 || st.Hits != n-1 || st.Detached != 0 || st.Aborted != 0 {
		t.Fatalf("stats %+v, want 1 flight, %d hits", st, n-1)
	}
}

// TestCancelledCallerDetachesWithoutKillingFlight: a caller whose
// context dies mid-flight gets its context error, while the flight keeps
// running and delivers to the survivor.
func TestCancelledCallerDetachesWithoutKillingFlight(t *testing.T) {
	var g Group
	started := make(chan struct{})
	release := make(chan struct{})
	var flightCtxErr error
	var flightDone sync.WaitGroup

	flightDone.Add(1)
	survivor := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", func(fctx context.Context) (any, error) {
			close(started)
			<-release
			defer flightDone.Done()
			flightCtxErr = fctx.Err()
			return 42, nil
		})
		survivor <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the second caller has attached.
		for g.Stats().Hits == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, shared, err := g.Do(ctx, "k", func(context.Context) (any, error) {
		t.Error("second caller must attach, not start a flight")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller err = %v, want context.Canceled", err)
	}
	if !shared {
		t.Fatal("cancelled caller should have attached to the running flight")
	}

	close(release)
	if err := <-survivor; err != nil {
		t.Fatalf("survivor err = %v, want nil", err)
	}
	flightDone.Wait()
	if flightCtxErr != nil {
		t.Fatalf("flight context was cancelled (%v) though a caller remained", flightCtxErr)
	}
	st := g.Stats()
	if st.Flights != 1 || st.Detached != 1 || st.Aborted != 0 {
		t.Fatalf("stats %+v, want 1 flight / 1 detached / 0 aborted", st)
	}
}

// TestAllCallersGoneCancelsFlight: when the last caller detaches, the
// flight's context is cancelled so the computation can stop.
func TestAllCallersGoneCancelsFlight(t *testing.T) {
	var g Group
	started := make(chan struct{})
	flightErr := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, _, err := g.Do(ctx, "k", func(fctx context.Context) (any, error) {
		close(started)
		select {
		case <-fctx.Done():
			flightErr <- fctx.Err()
			return nil, fctx.Err()
		case <-time.After(10 * time.Second):
			flightErr <- nil
			return nil, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v, want context.Canceled", err)
	}
	select {
	case ferr := <-flightErr:
		if !errors.Is(ferr, context.Canceled) {
			t.Fatalf("flight ctx err = %v, want context.Canceled", ferr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("flight never observed cancellation after its last caller left")
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Aborted != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v, want 1 aborted", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistinctKeysNeverCoalesce: different keys run independent flights.
func TestDistinctKeysNeverCoalesce(t *testing.T) {
	var g Group
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) (any, error) {
				execs.Add(1)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("key k%d: (%v, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 8 {
		t.Fatalf("fn executed %d times, want 8 (one per key)", got)
	}
	if st := g.Stats(); st.Flights != 8 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 8 flights / 0 hits", st)
	}
}

// TestSequentialCallsRunFresh: coalescing only applies to in-progress
// flights — a completed one never serves a later call from cache.
func TestSequentialCallsRunFresh(t *testing.T) {
	var g Group
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			return execs.Add(1), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
		if v != int64(i+1) {
			t.Fatalf("call %d returned %v, want %d", i, v, i+1)
		}
	}
}

// TestFlightErrorIsShared: an error from fn reaches every attached caller.
func TestFlightErrorIsShared(t *testing.T) {
	var g Group
	sentinel := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errsCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				<-release
				return nil, sentinel
			})
			errsCh <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Hits < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("callers never attached: %+v", g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(errsCh)
	for err := range errsCh {
		if !errors.Is(err, sentinel) {
			t.Fatalf("caller err = %v, want sentinel", err)
		}
	}
}

func TestOnDetachHookObservesAbandonment(t *testing.T) {
	var g Group
	type detach struct {
		key   string
		alone bool
	}
	var mu sync.Mutex
	var seen []detach
	g.OnDetach = func(ctx context.Context, key string, alone bool) {
		mu.Lock()
		seen = append(seen, detach{key, alone})
		mu.Unlock()
	}

	started := make(chan struct{})
	release := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	followerCtx, cancelFollower := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(leaderCtx, "k", func(ctx context.Context) (any, error) {
			close(started)
			<-release
			return nil, nil
		})
		if err == nil {
			t.Error("cancelled leader returned nil error")
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _, err := g.Do(followerCtx, "k", func(ctx context.Context) (any, error) {
			t.Error("follower must attach, not start a flight")
			return nil, nil
		})
		if err == nil {
			t.Error("cancelled follower returned nil error")
		}
	}()
	// Let the follower attach before anyone detaches.
	waitFor(t, func() bool { return g.Stats().Hits == 1 })

	cancelFollower()
	waitFor(t, func() bool { return g.Stats().Detached == 1 })
	cancelLeader()
	waitFor(t, func() bool { return g.Stats().Detached == 2 })
	wg.Wait()
	close(release)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("OnDetach fired %d times, want 2 (%v)", len(seen), seen)
	}
	if seen[0].alone || !seen[1].alone {
		t.Fatalf("detach order wrong: first must be attended, last alone: %v", seen)
	}
	if seen[0].key != "k" || seen[1].key != "k" {
		t.Fatalf("OnDetach keys wrong: %v", seen)
	}
	if got := g.Stats(); got.Aborted != 1 {
		t.Fatalf("aborted = %d, want 1", got.Aborted)
	}
}

// waitFor polls cond until it holds or the test deadline nears.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
