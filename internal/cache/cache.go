// Package cache tracks per-node caching storage for the fair-caching
// system: which node holds which chunk, how much capacity remains, and the
// Fairness Degree Cost of Eq. (1) that the solvers minimise.
package cache

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// Errors reported by State mutations.
var (
	// ErrFull reports a store on a node whose cache is at capacity.
	ErrFull = errors.New("cache: node storage full")
	// ErrDuplicate reports storing a chunk a node already holds.
	ErrDuplicate = errors.New("cache: chunk already stored on node")
	// ErrNodeOutOfRange reports a node id outside [0, N).
	ErrNodeOutOfRange = errors.New("cache: node out of range")
)

// State is the caching storage of every node in the network. All chunks
// have equal size, so capacity and usage are measured in chunks, exactly as
// in the paper ("we define S_tot(i) as the total number of chunks the node
// can cache, and S(i) as the number of chunks the node has cached").
type State struct {
	capacity []int
	stored   []map[int]struct{}
	// battery holds per-node battery levels in (0, 1]; nil means all
	// full (the battery-fairness extension of footnote 1 is inert).
	battery []float64
}

// NewState returns a State for n nodes that can each hold capacity chunks.
// The paper's evaluation uses capacity 5.
func NewState(n, capacity int) *State {
	caps := make([]int, n)
	for i := range caps {
		caps[i] = capacity
	}
	return NewStateWithCapacities(caps)
}

// NewStateWithCapacities returns a State with heterogeneous per-node
// capacities (the fairness model explicitly supports nodes contributing
// different amounts of storage).
func NewStateWithCapacities(capacities []int) *State {
	st := &State{
		capacity: append([]int(nil), capacities...),
		stored:   make([]map[int]struct{}, len(capacities)),
	}
	for i := range st.stored {
		st.stored[i] = make(map[int]struct{})
	}
	return st
}

// NumNodes returns the number of nodes tracked.
func (s *State) NumNodes() int { return len(s.capacity) }

// Capacity returns S_tot(i), the total chunk capacity of node i.
func (s *State) Capacity(i int) int { return s.capacity[i] }

// Stored returns S(i), the number of chunks node i currently caches.
func (s *State) Stored(i int) int { return len(s.stored[i]) }

// Free returns the remaining capacity of node i.
func (s *State) Free(i int) int { return s.capacity[i] - len(s.stored[i]) }

// Has reports whether node i caches chunk n.
func (s *State) Has(i, n int) bool {
	_, ok := s.stored[i][n]
	return ok
}

// Store places chunk n on node i. It returns ErrFull when the node is at
// capacity and ErrDuplicate when the node already holds the chunk.
func (s *State) Store(i, n int) error {
	if i < 0 || i >= len(s.capacity) {
		return fmt.Errorf("%w: %d", ErrNodeOutOfRange, i)
	}
	if s.Has(i, n) {
		return fmt.Errorf("%w: chunk %d on node %d", ErrDuplicate, n, i)
	}
	if s.Free(i) <= 0 {
		return fmt.Errorf("%w: node %d (capacity %d)", ErrFull, i, s.capacity[i])
	}
	s.stored[i][n] = struct{}{}
	return nil
}

// Evict removes chunk n from node i. Evicting an absent chunk is a no-op;
// it exists so cache-replacement extensions can reuse the state type.
func (s *State) Evict(i, n int) {
	if i < 0 || i >= len(s.capacity) {
		return
	}
	delete(s.stored[i], n)
}

// Chunks returns the chunk ids cached on node i, sorted.
func (s *State) Chunks(i int) []int {
	out := make([]int, 0, len(s.stored[i]))
	for n := range s.stored[i] {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// Holders returns the nodes caching chunk n, sorted.
func (s *State) Holders(n int) []int {
	var out []int
	for i := range s.stored {
		if s.Has(i, n) {
			out = append(out, i)
		}
	}
	return out
}

// Counts returns the number of cached chunks per node (the t_i of the Gini
// coefficient in Sec. V).
func (s *State) Counts() []int {
	out := make([]int, len(s.stored))
	for i := range s.stored {
		out[i] = len(s.stored[i])
	}
	return out
}

// TotalStored returns the total number of cached chunk copies.
func (s *State) TotalStored() int {
	total := 0
	for i := range s.stored {
		total += len(s.stored[i])
	}
	return total
}

// FairnessCost returns the Fairness Degree Cost of node i (Eq. 1):
//
//	f_i = S(i) / (S_tot(i) − S(i))
//
// It is 0 for an empty cache and +Inf for a full one, so full nodes are
// never selected again.
func (s *State) FairnessCost(i int) float64 {
	free := s.Free(i)
	if free <= 0 {
		return math.Inf(1)
	}
	return float64(s.Stored(i)) / float64(free)
}

// FairnessCosts returns the Fairness Degree Cost of every node.
func (s *State) FairnessCosts() []float64 {
	out := make([]float64, s.NumNodes())
	for i := range out {
		out[i] = s.FairnessCost(i)
	}
	return out
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{
		capacity: append([]int(nil), s.capacity...),
		stored:   make([]map[int]struct{}, len(s.stored)),
	}
	if s.battery != nil {
		c.battery = append([]float64(nil), s.battery...)
	}
	for i, set := range s.stored {
		c.stored[i] = make(map[int]struct{}, len(set))
		for n := range set {
			c.stored[i][n] = struct{}{}
		}
	}
	return c
}
