package cache

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStoreAndQuery(t *testing.T) {
	st := NewState(3, 2)
	if err := st.Store(1, 7); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if !st.Has(1, 7) {
		t.Error("Has(1,7) = false after Store")
	}
	if st.Stored(1) != 1 || st.Free(1) != 1 {
		t.Errorf("Stored/Free = %d/%d, want 1/1", st.Stored(1), st.Free(1))
	}
	if got := st.Chunks(1); len(got) != 1 || got[0] != 7 {
		t.Errorf("Chunks(1) = %v, want [7]", got)
	}
	if got := st.Holders(7); len(got) != 1 || got[0] != 1 {
		t.Errorf("Holders(7) = %v, want [1]", got)
	}
}

func TestStoreErrors(t *testing.T) {
	st := NewState(2, 1)
	if err := st.Store(5, 0); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out-of-range Store error = %v, want ErrNodeOutOfRange", err)
	}
	if err := st.Store(0, 1); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if err := st.Store(0, 1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate Store error = %v, want ErrDuplicate", err)
	}
	if err := st.Store(0, 2); !errors.Is(err, ErrFull) {
		t.Errorf("full Store error = %v, want ErrFull", err)
	}
}

func TestEvict(t *testing.T) {
	st := NewState(1, 1)
	if err := st.Store(0, 3); err != nil {
		t.Fatalf("Store: %v", err)
	}
	st.Evict(0, 3)
	if st.Has(0, 3) {
		t.Error("chunk still present after Evict")
	}
	st.Evict(0, 99) // absent chunk: no-op
	st.Evict(9, 0)  // out of range: no-op
	if err := st.Store(0, 4); err != nil {
		t.Errorf("Store after Evict: %v", err)
	}
}

func TestFairnessCostEquation(t *testing.T) {
	st := NewState(1, 5)
	// f = S / (S_tot - S): 0/5, 1/4, 2/3, 3/2, 4/1, then +Inf.
	want := []float64{0, 0.25, 2.0 / 3.0, 1.5, 4}
	for k, w := range want {
		if got := st.FairnessCost(0); math.Abs(got-w) > 1e-12 {
			t.Errorf("FairnessCost after %d stores = %g, want %g", k, got, w)
		}
		if err := st.Store(0, k); err != nil {
			t.Fatalf("Store %d: %v", k, err)
		}
	}
	if got := st.FairnessCost(0); !math.IsInf(got, 1) {
		t.Errorf("FairnessCost at capacity = %g, want +Inf", got)
	}
}

func TestFairnessCostsVector(t *testing.T) {
	st := NewStateWithCapacities([]int{2, 4})
	if err := st.Store(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Store(1, 0); err != nil {
		t.Fatal(err)
	}
	fc := st.FairnessCosts()
	if math.Abs(fc[0]-1) > 1e-12 { // 1/(2-1)
		t.Errorf("fc[0] = %g, want 1", fc[0])
	}
	if math.Abs(fc[1]-1.0/3.0) > 1e-12 { // 1/(4-1)
		t.Errorf("fc[1] = %g, want 1/3", fc[1])
	}
}

func TestCountsAndTotal(t *testing.T) {
	st := NewState(3, 5)
	for _, n := range []int{0, 1, 2} {
		if err := st.Store(1, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Store(2, 0); err != nil {
		t.Fatal(err)
	}
	counts := st.Counts()
	if counts[0] != 0 || counts[1] != 3 || counts[2] != 1 {
		t.Errorf("Counts() = %v, want [0 3 1]", counts)
	}
	if st.TotalStored() != 4 {
		t.Errorf("TotalStored() = %d, want 4", st.TotalStored())
	}
}

func TestCloneIsolation(t *testing.T) {
	st := NewState(2, 3)
	if err := st.Store(0, 1); err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	if err := c.Store(0, 2); err != nil {
		t.Fatal(err)
	}
	if st.Has(0, 2) {
		t.Error("Clone shares storage with original")
	}
	if !c.Has(0, 1) {
		t.Error("Clone lost existing chunk")
	}
}

// Property: for any sequence of stores, invariants hold: 0 <= S(i) <=
// capacity, fairness cost is non-decreasing in S(i), and TotalStored equals
// the sum of Counts.
func TestStateInvariants(t *testing.T) {
	f := func(seed int64, nRaw, capRaw uint8, ops uint8) bool {
		n := 1 + int(nRaw)%8
		capacity := 1 + int(capRaw)%6
		rng := rand.New(rand.NewSource(seed))
		st := NewState(n, capacity)
		prevCost := make([]float64, n)
		for k := 0; k < int(ops); k++ {
			i := rng.Intn(n)
			chunk := rng.Intn(10)
			before := st.FairnessCost(i)
			err := st.Store(i, chunk)
			if err == nil {
				after := st.FairnessCost(i)
				if after < before {
					return false // fairness cost must not decrease on store
				}
			}
			prevCost[i] = st.FairnessCost(i)
			if st.Stored(i) > st.Capacity(i) || st.Stored(i) < 0 {
				return false
			}
		}
		sum := 0
		for _, c := range st.Counts() {
			sum += c
		}
		return sum == st.TotalStored()
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
