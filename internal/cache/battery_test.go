package cache

import (
	"math"
	"testing"
)

func TestBatteryDefaultsFull(t *testing.T) {
	st := NewState(3, 5)
	if got := st.Battery(1); got != 1 {
		t.Errorf("default Battery = %g, want 1", got)
	}
	if got := st.BatteryFairnessCost(1); got != 0 {
		t.Errorf("default BatteryFairnessCost = %g, want 0", got)
	}
}

func TestSetBatteryClampsAndCosts(t *testing.T) {
	st := NewState(3, 5)
	st.SetBattery(0, 0.5)
	if got := st.BatteryFairnessCost(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("cost at 50%% = %g, want 1", got) // (1-0.5)/0.5
	}
	st.SetBattery(1, 0.2)
	if got := st.BatteryFairnessCost(1); math.Abs(got-4) > 1e-12 {
		t.Errorf("cost at 20%% = %g, want 4", got)
	}
	st.SetBattery(2, -3)
	if got := st.BatteryFairnessCost(2); !math.IsInf(got, 1) {
		t.Errorf("cost at clamped 0 = %g, want +Inf", got)
	}
	st.SetBattery(0, 9)
	if got := st.Battery(0); got != 1 {
		t.Errorf("level clamped above = %g, want 1", got)
	}
	st.SetBattery(99, 0.5) // out of range: no-op
}

func TestCombinedFairnessCost(t *testing.T) {
	st := NewState(2, 4)
	if err := st.Store(0, 0); err != nil {
		t.Fatal(err)
	}
	st.SetBattery(0, 0.5)
	// storage: 1/3, battery: 1; weights 1 and 2 -> 1/3 + 2.
	got := st.CombinedFairnessCost(0, 1, 2)
	want := 1.0/3.0 + 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("combined = %g, want %g", got, want)
	}
	// Battery weight 0 ignores even a dead battery.
	st.SetBattery(1, 0)
	if got := st.CombinedFairnessCost(1, 1, 0); got != 0 {
		t.Errorf("combined with weight 0 = %g, want 0 (empty cache)", got)
	}
	// Dead battery with positive weight dominates.
	if got := st.CombinedFairnessCost(1, 1, 1); !math.IsInf(got, 1) {
		t.Errorf("combined with dead battery = %g, want +Inf", got)
	}
}

func TestCloneCopiesBattery(t *testing.T) {
	st := NewState(2, 5)
	st.SetBattery(0, 0.3)
	c := st.Clone()
	c.SetBattery(0, 0.9)
	if st.Battery(0) != 0.3 {
		t.Errorf("Clone shares battery storage: %g", st.Battery(0))
	}
	if c.Battery(0) != 0.9 {
		t.Errorf("clone battery = %g", c.Battery(0))
	}
}
