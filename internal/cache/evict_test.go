package cache

import "testing"

func TestLRUSelectsLeastRecentlyTouched(t *testing.T) {
	l := NewLRU()
	l.OnStore(0, 0, 1)
	l.OnStore(1, 0, 2)
	l.OnStore(2, 0, 3)
	l.OnAccess(0, 0, 4) // node 0 refreshed; node 1 is now oldest
	cands := []Copy{{0, 0}, {1, 0}, {2, 0}}
	v, ok := SelectVictim(l, cands)
	if !ok || v != (Copy{1, 0}) {
		t.Fatalf("victim = %v ok=%v, want {1 0}", v, ok)
	}
	l.OnEvict(1, 0)
	v, _ = SelectVictim(l, []Copy{{0, 0}, {2, 0}})
	if v != (Copy{2, 0}) {
		t.Fatalf("after evict: victim = %v, want {2 0}", v)
	}
}

func TestLFUSelectsLeastFrequentlyUsed(t *testing.T) {
	l := NewLFU()
	for n := 0; n < 3; n++ {
		l.OnStore(n, 7, 0)
	}
	l.OnAccess(0, 7, 1)
	l.OnAccess(0, 7, 2)
	l.OnAccess(2, 7, 3)
	v, ok := SelectVictim(l, []Copy{{0, 7}, {1, 7}, {2, 7}})
	if !ok || v != (Copy{1, 7}) {
		t.Fatalf("victim = %v ok=%v, want {1 7}", v, ok)
	}
	// Restoring resets the count.
	l.OnEvict(1, 7)
	l.OnStore(1, 7, 4)
	if got := l.Score(1, 7); got != 0 {
		t.Fatalf("score after restore = %v, want 0", got)
	}
}

func TestCostAwareUsesOracle(t *testing.T) {
	costs := map[Copy]float64{{0, 0}: 3, {1, 0}: 1, {2, 0}: 2}
	c := NewCostAware(func(node, chunk int) float64 { return costs[Copy{node, chunk}] })
	v, ok := SelectVictim(c, []Copy{{0, 0}, {1, 0}, {2, 0}})
	if !ok || v != (Copy{1, 0}) {
		t.Fatalf("victim = %v ok=%v, want {1 0}", v, ok)
	}
	c.SetOracle(nil)
	if got := c.Score(5, 5); got != 0 {
		t.Fatalf("nil oracle score = %v, want 0", got)
	}
}

func TestSelectVictimDeterministicTieBreak(t *testing.T) {
	c := NewCostAware(func(node, chunk int) float64 { return 1 })
	cands := []Copy{{3, 2}, {1, 5}, {1, 4}, {2, 0}}
	v, ok := SelectVictim(c, cands)
	if !ok || v != (Copy{1, 4}) {
		t.Fatalf("tie-break victim = %v ok=%v, want {1 4}", v, ok)
	}
	if _, ok := SelectVictim(c, nil); ok {
		t.Fatal("empty candidates: want ok=false")
	}
}

func TestStrategyNames(t *testing.T) {
	if NewLRU().Name() != "lru" || NewLFU().Name() != "lfu" || NewCostAware(nil).Name() != "cost" {
		t.Fatal("strategy names drifted")
	}
}
