package cache

import "math"

// Copy identifies one cached chunk copy: chunk Chunk stored on node Node.
type Copy struct {
	Node  int
	Chunk int
}

// EvictionStrategy ranks cached copies for replacement beyond the online
// system's TTL expiry. A strategy observes the cache stream through the
// On* hooks (now is the caller's logical clock, typically a request or
// publication counter) and exposes a single Score: among a candidate
// set, the copy with the LOWEST score is evicted first. Scores may
// depend on external state (the cost-aware strategy consults a marginal
// retrieval-cost oracle), so they are only meaningful at selection time.
//
// Strategies are deterministic: equal scores are broken by (node, chunk)
// order in SelectVictim, and none of the built-ins draw randomness.
// They are not safe for concurrent use; callers serialize access exactly
// as they do for State.
type EvictionStrategy interface {
	// Name identifies the strategy in reports ("lru", "lfu", "cost").
	Name() string
	// OnStore records that a copy was placed.
	OnStore(node, chunk int, now int64)
	// OnAccess records that a request was served from a copy.
	OnAccess(node, chunk int, now int64)
	// OnEvict records that a copy was removed, releasing its bookkeeping.
	OnEvict(node, chunk int)
	// Score returns the eviction priority of a copy; lower evicts first.
	Score(node, chunk int) float64
}

// SelectVictim returns the candidate with the lowest strategy score,
// breaking ties toward the lowest (node, chunk) pair so selection is
// deterministic. ok is false when candidates is empty.
func SelectVictim(s EvictionStrategy, candidates []Copy) (victim Copy, ok bool) {
	best := math.Inf(1)
	for _, c := range candidates {
		score := s.Score(c.Node, c.Chunk)
		if !ok || score < best ||
			(score == best && (c.Node < victim.Node || (c.Node == victim.Node && c.Chunk < victim.Chunk))) {
			victim, best, ok = c, score, true
		}
	}
	return victim, ok
}

// copyKey packs a (node, chunk) pair into one map key.
func copyKey(node, chunk int) int64 { return int64(node)<<32 | int64(uint32(chunk)) }

// LRU evicts the least-recently-used copy: the score is the last store
// or access tick, so the copy idle longest goes first.
type LRU struct {
	last map[int64]int64
}

// NewLRU returns an empty least-recently-used strategy.
func NewLRU() *LRU { return &LRU{last: make(map[int64]int64)} }

// Name implements EvictionStrategy.
func (l *LRU) Name() string { return "lru" }

// OnStore implements EvictionStrategy.
func (l *LRU) OnStore(node, chunk int, now int64) { l.last[copyKey(node, chunk)] = now }

// OnAccess implements EvictionStrategy.
func (l *LRU) OnAccess(node, chunk int, now int64) { l.last[copyKey(node, chunk)] = now }

// OnEvict implements EvictionStrategy.
func (l *LRU) OnEvict(node, chunk int) { delete(l.last, copyKey(node, chunk)) }

// Score implements EvictionStrategy: older last-touch evicts first.
// Copies never observed score as never touched (evict first).
func (l *LRU) Score(node, chunk int) float64 { return float64(l.last[copyKey(node, chunk)]) }

// LFU evicts the least-frequently-used copy: the score is the access
// count since the copy was stored.
type LFU struct {
	freq map[int64]int64
}

// NewLFU returns an empty least-frequently-used strategy.
func NewLFU() *LFU { return &LFU{freq: make(map[int64]int64)} }

// Name implements EvictionStrategy.
func (l *LFU) Name() string { return "lfu" }

// OnStore implements EvictionStrategy.
func (l *LFU) OnStore(node, chunk int, now int64) { l.freq[copyKey(node, chunk)] = 0 }

// OnAccess implements EvictionStrategy.
func (l *LFU) OnAccess(node, chunk int, now int64) { l.freq[copyKey(node, chunk)]++ }

// OnEvict implements EvictionStrategy.
func (l *LFU) OnEvict(node, chunk int) { delete(l.freq, copyKey(node, chunk)) }

// Score implements EvictionStrategy: fewer accesses evict first.
func (l *LFU) Score(node, chunk int) float64 { return float64(l.freq[copyKey(node, chunk)]) }

// CostAware evicts the copy whose removal raises total retrieval cost
// least. It owns no state of its own; the cost oracle (typically the
// demand subsystem's demand-weighted marginal-cost estimate, backed by
// the incremental cost model's current holder sets) is consulted at
// selection time.
type CostAware struct {
	cost func(node, chunk int) float64
}

// NewCostAware returns a cost-aware strategy over the given marginal
// cost oracle. A nil oracle scores every copy 0 (pure (node, chunk)
// tie-break order).
func NewCostAware(cost func(node, chunk int) float64) *CostAware {
	return &CostAware{cost: cost}
}

// SetOracle swaps the marginal-cost oracle, the hook for owners whose
// cost estimates are recomputed per eviction pass.
func (c *CostAware) SetOracle(cost func(node, chunk int) float64) { c.cost = cost }

// Name implements EvictionStrategy.
func (c *CostAware) Name() string { return "cost" }

// OnStore implements EvictionStrategy.
func (c *CostAware) OnStore(node, chunk int, now int64) {}

// OnAccess implements EvictionStrategy.
func (c *CostAware) OnAccess(node, chunk int, now int64) {}

// OnEvict implements EvictionStrategy.
func (c *CostAware) OnEvict(node, chunk int) {}

// Score implements EvictionStrategy: the marginal retrieval-cost
// increase of removing the copy; the cheapest removal evicts first.
func (c *CostAware) Score(node, chunk int) float64 {
	if c.cost == nil {
		return 0
	}
	return c.cost(node, chunk)
}
