package cache

import "math"

// Battery fairness (paper, footnote 1 of Sec. III-B): "A Fairness Degree
// Cost on the battery can be defined similarly and considered together in
// weighted summation form of the two costs." Battery level is a fraction
// in (0, 1]; by analogy with Eq. (1) the cost is consumed/remaining:
//
//	f_b(i) = (1 − b_i) / b_i
//
// 0 for a full battery, +Inf for a dead one (never selected). Levels
// default to 1 (fully charged) so the extension is inert unless set.

// SetBattery records node i's battery level, clamped to [0, 1].
func (s *State) SetBattery(i int, level float64) {
	if i < 0 || i >= len(s.capacity) {
		return
	}
	if s.battery == nil {
		s.battery = make([]float64, len(s.capacity))
		for k := range s.battery {
			s.battery[k] = 1
		}
	}
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	s.battery[i] = level
}

// Battery returns node i's battery level (1 when never set).
func (s *State) Battery(i int) float64 {
	if s.battery == nil {
		return 1
	}
	return s.battery[i]
}

// BatteryFairnessCost returns the battery Fairness Degree Cost of node i:
// (1 − b)/b, with +Inf for a dead battery.
func (s *State) BatteryFairnessCost(i int) float64 {
	b := s.Battery(i)
	if b <= 0 {
		return math.Inf(1)
	}
	return (1 - b) / b
}

// CombinedFairnessCost returns the weighted summation of the storage and
// battery Fairness Degree Costs, the form suggested by the paper's
// footnote. Either +Inf (full storage or dead battery) dominates.
func (s *State) CombinedFairnessCost(i int, storageWeight, batteryWeight float64) float64 {
	storage := s.FairnessCost(i)
	if math.IsInf(storage, 1) {
		return math.Inf(1)
	}
	total := storageWeight * storage
	if batteryWeight > 0 {
		battery := s.BatteryFairnessCost(i)
		if math.IsInf(battery, 1) {
			return math.Inf(1)
		}
		total += batteryWeight * battery
	}
	return total
}
