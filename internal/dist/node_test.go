package dist

import (
	"math"
	"testing"
)

func TestLocalPathCostsDirectAndTwoHop(t *testing.T) {
	// Self 0 with peers 1 (weight 2, neighbor of 0 and 2) and 2 (weight
	// 3, neighbor of 1). Self weight 1.
	peers := map[int]peerInfo{
		1: {weight: 2, neighbors: []int{0, 2}},
		2: {weight: 3, neighbors: []int{1}},
	}
	costs := localPathCosts(0, 1, peers)
	if got := costs[1]; got != 3 { // 1 + 2
		t.Errorf("cost to 1 = %g, want 3", got)
	}
	if got := costs[2]; got != 6 { // 1 + 2 + 3
		t.Errorf("cost to 2 = %g, want 6", got)
	}
	if _, ok := costs[0]; ok {
		t.Error("self appears in its own cost map")
	}
}

func TestLocalPathCostsUnknownNodesIgnored(t *testing.T) {
	// Peer 1 reports neighbor 99, which self knows nothing about: no
	// edge (and no entry) may be created for it.
	peers := map[int]peerInfo{
		1: {weight: 2, neighbors: []int{0, 99}},
	}
	costs := localPathCosts(0, 1, peers)
	if _, ok := costs[99]; ok {
		t.Error("unknown node 99 got a cost entry")
	}
	if costs[1] != 3 {
		t.Errorf("cost to 1 = %g, want 3", costs[1])
	}
}

func TestLocalPathCostsPrefersCheapRelay(t *testing.T) {
	// Two routes from 0 to 3: via heavy node 1 (weight 10) or light
	// node 2 (weight 1).
	peers := map[int]peerInfo{
		1: {weight: 10, neighbors: []int{0, 3}},
		2: {weight: 1, neighbors: []int{0, 3}},
		3: {weight: 2, neighbors: []int{1, 2}},
	}
	costs := localPathCosts(0, 1, peers)
	if costs[3] != 4 { // 1 + 1 + 2 via node 2
		t.Errorf("cost to 3 = %g, want 4 via the light relay", costs[3])
	}
}

func TestOnFreezeGatedByBid(t *testing.T) {
	n := newNode(3, 0, 1, 0, true, DefaultOptions())
	n.prodCost = 10

	// Redirect toward the producer with an insufficient bid: ignored.
	n.alpha = 5
	n.onFreeze(freeze{Admin: 0})
	if n.state != stateActive {
		t.Fatal("node froze although its bid does not cover the producer cost")
	}

	// Redirect toward an unknown admin: ignored regardless of bid.
	n.alpha = 100
	n.onFreeze(freeze{Admin: 7})
	if n.state != stateActive {
		t.Fatal("node froze onto an admin with unknown cost")
	}

	// Known admin whose cost the bid covers: accepted.
	n.adminCost[7] = 50
	n.onFreeze(freeze{Admin: 7})
	if n.state != stateFrozen || n.assigned != 7 {
		t.Fatalf("state = %v assigned = %d, want frozen onto 7", n.state, n.assigned)
	}

	// Further redirects are no-ops once frozen.
	n.onFreeze(freeze{Admin: 0})
	if n.assigned != 7 {
		t.Error("frozen node re-assigned")
	}
}

func TestMaybeBecomeAdminConditions(t *testing.T) {
	opts := DefaultOptions()
	opts.SpanQuorum = 2
	n := newNode(1, 0, 1, 30 /* fairness */, true, opts)

	// One supporter with enough payment: quorum unmet.
	n.spanPaid[5] = 10
	n.maybeBecomeAdmin(nil)
	if n.state == stateAdmin {
		t.Fatal("became admin below the SPAN quorum")
	}
	// Two supporters but insufficient total payment vs fairness cost 30.
	n.spanPaid[6] = 10
	n.maybeBecomeAdmin(nil)
	if n.state == stateAdmin {
		t.Fatal("became admin with unpaid fairness cost")
	}
	// Without storage: never, even with quorum and payment satisfied.
	n.spanPaid[6] = 40
	n.hasStorage = false
	n.maybeBecomeAdmin(nil)
	if n.state == stateAdmin {
		t.Fatal("became admin without storage")
	}
}

func TestCandidateOrderDeterministic(t *testing.T) {
	n := newNode(0, 9, 1, 0, true, DefaultOptions())
	n.conTo = map[int]float64{7: 1, 2: 3, 5: 2}
	got := n.candidateOrder()
	want := []int{2, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("candidateOrder = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("candidateOrder[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRefreshConFiltersNonCandidates(t *testing.T) {
	n := newNode(0, 9, 1, 0, true, DefaultOptions())
	n.peers = map[int]peerInfo{
		1: {weight: 2, hasStorage: true, neighbors: []int{0}},
		2: {weight: 2, hasStorage: false, neighbors: []int{0}}, // full
		9: {weight: 2, hasStorage: true, neighbors: []int{0}},  // producer
	}
	n.conDirty = true
	n.refreshCon()
	if _, ok := n.conTo[1]; !ok {
		t.Error("storage-bearing peer missing from candidates")
	}
	if _, ok := n.conTo[2]; ok {
		t.Error("full peer kept as candidate")
	}
	if _, ok := n.conTo[9]; ok {
		t.Error("producer kept as candidate")
	}
}

func TestDistOrInf(t *testing.T) {
	d := map[int]float64{1: 2}
	if distOrInf(d, 1) != 2 {
		t.Error("existing entry wrong")
	}
	if !math.IsInf(distOrInf(d, 5), 1) {
		t.Error("missing entry should be +Inf")
	}
}
