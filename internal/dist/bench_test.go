package dist

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

func BenchmarkProtocolOneChunk6x6(b *testing.B) {
	g := graph.NewGrid(6, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := New(g, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.PlaceChunks(9, 1, cache.NewState(36, 5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolFiveChunks8x8(b *testing.B) {
	g := graph.NewGrid(8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr, err := New(g, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pr.PlaceChunks(9, 5, cache.NewState(64, 5)); err != nil {
			b.Fatal(err)
		}
	}
}
