package dist

// Message kinds exactly mirror TABLE II of the paper.
const (
	// KindNPI announces a new chunk awaiting caching (broadcast flood
	// from the producer, accumulating path contention cost).
	KindNPI = "NPI"
	// KindCC is the contention-collection request (k-hop local).
	KindCC = "CC"
	// KindCCResp carries a node's contention info back to the collector.
	// (The paper folds this into CC; it is counted separately here so the
	// accounting is explicit.)
	KindCCResp = "CCR"
	// KindTight asks "can I get data from you?" (bid covers contention).
	KindTight = "TIGHT"
	// KindSpan asks "can you fetch data for me?" (relay bid covers cost).
	KindSpan = "SPAN"
	// KindFreeze tells a node where to obtain the chunk and stops its
	// bidding.
	KindFreeze = "FREEZE"
	// KindNAdmin informs a candidate's supporters that it became an
	// ADMIN caching node (local).
	KindNAdmin = "NADMIN"
	// KindBAdmin announces a new ADMIN network-wide (broadcast flood,
	// accumulating path contention cost).
	KindBAdmin = "BADMIN"
)

// npi floods the new-chunk announcement; Accum is the accumulated node
// contention weight along the flood path including the sender.
type npi struct {
	Producer int
	Accum    float64
}

func (npi) Kind() string { return KindNPI }

// cc requests contention information within the hop limit.
type cc struct{}

func (cc) Kind() string { return KindCC }

// ccResp reports the responder's contention weight, storage availability
// and adjacency so the collector can evaluate local path costs.
type ccResp struct {
	Weight     float64
	HasStorage bool
	Neighbors  []int
}

func (ccResp) Kind() string { return KindCCResp }

// tight is the "can I get data from you?" request.
type tight struct{}

func (tight) Kind() string { return KindTight }

// span is the "can you fetch data for me?" request; Paid carries the
// sender's surplus bid toward the candidate's opening (fairness) cost.
type span struct {
	Paid float64
}

func (span) Kind() string { return KindSpan }

// freeze points the receiver at the node it should obtain the chunk from.
type freeze struct {
	Admin int
}

func (freeze) Kind() string { return KindFreeze }

// nadmin informs supporters that the sender became an ADMIN.
type nadmin struct{}

func (nadmin) Kind() string { return KindNAdmin }

// badmin floods a new ADMIN announcement with accumulated path cost.
type badmin struct {
	Admin int
	Accum float64
}

func (badmin) Kind() string { return KindBAdmin }
