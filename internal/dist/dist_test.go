package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultOptions()); !errors.Is(err, ErrBadTopology) {
		t.Errorf("nil graph: err = %v", err)
	}
	disc := graph.New(4)
	if err := disc.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(disc, DefaultOptions()); !errors.Is(err, ErrBadTopology) {
		t.Errorf("disconnected: err = %v", err)
	}
	opts := DefaultOptions()
	opts.FairnessWeight = -1
	if _, err := New(graph.NewGrid(2, 2), opts); err == nil {
		t.Error("negative fairness weight: want error")
	}
}

func TestPlaceChunksValidation(t *testing.T) {
	pr, err := New(graph.NewGrid(3, 3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(9, 5)
	if _, err := pr.PlaceChunks(-1, 1, st); !errors.Is(err, ErrBadProducer) {
		t.Errorf("bad producer: err = %v", err)
	}
	if _, err := pr.PlaceChunks(0, 0, st); !errors.Is(err, ErrBadChunks) {
		t.Errorf("zero chunks: err = %v", err)
	}
	if _, err := pr.PlaceChunks(0, 1, cache.NewState(4, 5)); !errors.Is(err, ErrBadState) {
		t.Errorf("state mismatch: err = %v", err)
	}
}

func TestProtocolTerminatesAndAssignsEveryone(t *testing.T) {
	g := graph.NewGrid(6, 6)
	pr, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(36, 5)
	p, err := pr.PlaceChunks(9, 1, st)
	if err != nil {
		t.Fatal(err)
	}
	run := p.Chunks[0]
	for j, a := range run.Assign {
		if a < 0 || a >= 36 {
			t.Errorf("node %d unassigned (got %d)", j, a)
		}
	}
	if run.Rounds <= 0 {
		t.Error("Rounds = 0")
	}
	if run.Messages[KindNPI] == 0 {
		t.Error("no NPI messages recorded")
	}
}

func TestProtocolElectsAdminsOnGrid(t *testing.T) {
	g := graph.NewGrid(6, 6)
	pr, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(36, 5)
	p, err := pr.PlaceChunks(9, 1, st)
	if err != nil {
		t.Fatal(err)
	}
	admins := p.Chunks[0].CacheNodes
	if len(admins) == 0 {
		t.Fatal("no ADMIN elected on a 6x6 grid")
	}
	for _, a := range admins {
		if a == 9 {
			t.Error("producer became an ADMIN")
		}
		if !st.Has(a, 0) {
			t.Errorf("admin %d does not hold the chunk", a)
		}
	}
}

func TestProtocolSpreadsLoadAcrossChunks(t *testing.T) {
	g := graph.NewGrid(6, 6)
	pr, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(36, 5)
	p, err := pr.PlaceChunks(9, 5, st)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[int]bool{}
	maxSet := 0
	for _, c := range p.Chunks {
		if len(c.CacheNodes) > maxSet {
			maxSet = len(c.CacheNodes)
		}
		for _, v := range c.CacheNodes {
			distinct[v] = true
		}
	}
	if len(distinct) <= maxSet {
		t.Errorf("distinct admins %d <= max per-chunk %d: no load spreading", len(distinct), maxSet)
	}
	for i := 0; i < 36; i++ {
		if st.Stored(i) > st.Capacity(i) {
			t.Errorf("node %d over capacity", i)
		}
	}
	if st.Stored(9) != 0 {
		t.Error("producer cached data")
	}
}

func TestProtocolRespectsCapacityUnderPressure(t *testing.T) {
	g := graph.NewGrid(4, 4)
	pr, err := New(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(16, 1)
	p, err := pr.PlaceChunks(0, 4, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if st.Stored(i) > 1 {
			t.Errorf("node %d over capacity 1", i)
		}
	}
	if len(p.Chunks) != 4 {
		t.Errorf("chunks run = %d, want 4", len(p.Chunks))
	}
}

func TestProtocolMessageComplexityBound(t *testing.T) {
	// Sec. IV-D: total messages are O(QN + N²). Verify a generous
	// concrete bound c·(QN + N²) with the per-hop flood constant folded
	// into c on grids of growing size.
	for _, size := range []int{4, 6, 8} {
		g := graph.NewGrid(size, size)
		n := size * size
		pr, err := New(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		st := cache.NewState(n, 5)
		const q = 3
		p, err := pr.PlaceChunks(0, q, st)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		total := p.TotalMessages()
		// NPI/BADMIN floods are O(E)=O(N) per event on grids; CC/CCR are
		// O(N·deg²); TIGHT/SPAN O(N²) worst. Allow constant 40.
		bound := 40 * (q*n + n*n)
		if total > bound {
			t.Errorf("size %d: %d messages exceeds bound %d", size, total, bound)
		}
		for _, kind := range []string{KindNPI, KindCC, KindCCResp} {
			if p.MessagesByKind()[kind] == 0 {
				t.Errorf("size %d: no %s messages", size, kind)
			}
		}
	}
}

func TestProtocolHopLimitShape(t *testing.T) {
	// Fig. 3: a 1-hop information scope yields higher contention cost and
	// a less fair distribution than 2 hops, while k >= 2 is flat.
	g := graph.NewGrid(6, 6)
	run := func(k int) (evalTotal, gini float64) {
		opts := DefaultOptions()
		opts.K = k
		pr, err := New(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		st := cache.NewState(36, 5)
		p, err := pr.PlaceChunks(9, 5, st)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := metrics.EvaluateFresh(g, 5, 9, p.CacheNodes(), metrics.AccessCostNearest)
		if err != nil {
			t.Fatal(err)
		}
		return ev.Total(), metrics.Gini(st.Counts())
	}
	cost1, gini1 := run(1)
	cost2, gini2 := run(2)
	cost3, _ := run(3)
	if cost1 < cost2-1e-9 {
		t.Errorf("1-hop cost %.1f below 2-hop %.1f; expected 1-hop to be no better", cost1, cost2)
	}
	if gini1 < gini2-1e-9 {
		t.Errorf("1-hop gini %.3f below 2-hop %.3f; expected 1-hop to be no fairer", gini1, gini2)
	}
	// k >= 2 should be nearly flat (within 10%).
	if diff := math.Abs(cost3-cost2) / cost2; diff > 0.10 {
		t.Errorf("k=2 vs k=3 cost differs by %.1f%%, want < 10%%", 100*diff)
	}
}

func TestProtocolSurvivesMessageLoss(t *testing.T) {
	// Deterministically drop a fraction of TIGHT messages: the protocol
	// must still terminate (nodes fall back to the producer) and respect
	// capacity.
	g := graph.NewGrid(5, 5)
	opts := DefaultOptions()
	counter := 0
	opts.Drop = func(from, to int, p sim.Payload) bool {
		if p.Kind() != KindTight {
			return false
		}
		counter++
		return counter%3 == 0
	}
	pr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.NewState(25, 5)
	p, err := pr.PlaceChunks(12, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range p.Chunks {
		for j, a := range run.Assign {
			if a < 0 {
				t.Errorf("node %d left unassigned under loss", j)
			}
		}
	}
}

func TestProtocolDeterministic(t *testing.T) {
	g := graph.NewGrid(5, 5)
	run := func() *Placement {
		pr, err := New(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		p, err := pr.PlaceChunks(12, 3, cache.NewState(25, 5))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := run(), run()
	for n := range a.Chunks {
		ca, cb := a.Chunks[n].CacheNodes, b.Chunks[n].CacheNodes
		if len(ca) != len(cb) {
			t.Fatalf("chunk %d: nondeterministic admins %v vs %v", n, ca, cb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("chunk %d: nondeterministic admins %v vs %v", n, ca, cb)
			}
		}
	}
}

// Property: on random connected topologies the protocol terminates, all
// nodes get assignments, admins hold the chunk, and capacity holds.
func TestProtocolInvariants(t *testing.T) {
	f := func(seed int64, nRaw, qRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%10
		q := 1 + int(qRaw)%3
		g := randomConnectedGraph(rng, n)
		producer := rng.Intn(n)
		pr, err := New(g, DefaultOptions())
		if err != nil {
			return false
		}
		st := cache.NewState(n, 2)
		p, err := pr.PlaceChunks(producer, q, st)
		if err != nil {
			return false
		}
		for chunkID, run := range p.Chunks {
			for _, a := range run.Assign {
				if a < 0 {
					return false
				}
			}
			for _, v := range run.CacheNodes {
				if v == producer || !st.Has(v, chunkID) {
					return false
				}
			}
		}
		for i := 0; i < n; i++ {
			if st.Stored(i) > st.Capacity(i) {
				return false
			}
		}
		return st.Stored(producer) == 0
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestProtocolTraceHook(t *testing.T) {
	g := graph.NewGrid(4, 4)
	opts := DefaultOptions()
	seen := map[string]int{}
	opts.Trace = func(round, from, to int, p sim.Payload) {
		if from < 0 || from >= 16 || to < 0 || to >= 16 {
			t.Errorf("trace out-of-range endpoints %d->%d", from, to)
		}
		seen[p.Kind()]++
	}
	pr, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.PlaceChunks(5, 1, cache.NewState(16, 5)); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{KindNPI, KindCC, KindCCResp} {
		if seen[kind] == 0 {
			t.Errorf("trace never saw %s", kind)
		}
	}
}
