// Package dist implements the paper's distributed fair-caching algorithm
// (Algorithm 2). Nodes have no global topology knowledge: they learn the
// producer's reachability from the flooded NPI announcement, collect
// contention information from their k-hop neighborhood (CC), raise
// connection and relay bids (TIGHT / SPAN), and candidates that gather a
// SPAN quorum — and whose fairness cost is paid by the supporters' surplus
// bids — volunteer as ADMIN caching nodes (NADMIN / BADMIN). The protocol
// runs on the deterministic round simulator of package sim, which also
// counts messages per type (TABLE II, Sec. IV-D).
package dist

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Options tunes the distributed protocol.
type Options struct {
	// K limits control messages to k-hop neighborhoods; the paper uses 2
	// (Fig. 3 sweeps this).
	K int
	// AlphaStep and GammaStep are the per-round bid increments.
	AlphaStep float64
	GammaStep float64
	// SpanQuorum is M, the SPAN support needed to volunteer as ADMIN.
	SpanQuorum int
	// FairnessWeight scales the Fairness Degree Cost each candidate must
	// see paid before volunteering; 0 disables the fairness gate.
	FairnessWeight float64
	// BatteryWeight scales the battery Fairness Degree Cost (footnote 1
	// extension); 0 ignores battery levels.
	BatteryWeight float64
	// MaxRounds caps one chunk's protocol run; 0 derives a bound from
	// the producer's worst-case contention cost.
	MaxRounds int
	// Drop, when non-nil, injects message loss (failure testing).
	Drop sim.DropFunc
	// Trace, when non-nil, observes every delivered protocol message.
	Trace sim.TraceFunc
}

// DefaultOptions returns the evaluation defaults: 2-hop message scope (the
// paper's choice, justified by the Fig. 3 sweep) and the same calibrated
// dual-growth parameters as the centralized solver — the relay bid grows
// faster than the connection bid so SPAN quorums form before the
// producer's service ball absorbs the supporters.
func DefaultOptions() Options {
	return Options{
		K:              2,
		AlphaStep:      1,
		GammaStep:      2,
		SpanQuorum:     2,
		FairnessWeight: 1,
	}
}

// ChunkRun records one chunk's protocol execution.
type ChunkRun struct {
	// Chunk is the chunk id.
	Chunk int
	// CacheNodes lists the ADMIN nodes that volunteered, sorted.
	CacheNodes []int
	// Assign maps each node to where it will obtain the chunk.
	Assign []int
	// Rounds is the number of simulation rounds the protocol took.
	Rounds int
	// Messages counts protocol messages by kind for this chunk.
	Messages map[string]int
}

// Placement is the outcome of running the protocol for every chunk.
type Placement struct {
	Producer int
	Chunks   []ChunkRun
	State    *cache.State
}

// CacheNodes returns per-chunk holder sets for the metrics evaluation.
func (p *Placement) CacheNodes() [][]int {
	out := make([][]int, len(p.Chunks))
	for i, c := range p.Chunks {
		out[i] = append([]int(nil), c.CacheNodes...)
	}
	return out
}

// TotalMessages sums message counts over all chunks and kinds.
func (p *Placement) TotalMessages() int {
	total := 0
	for _, c := range p.Chunks {
		for _, v := range c.Messages {
			total += v
		}
	}
	return total
}

// MessagesByKind aggregates per-kind counts over all chunks.
func (p *Placement) MessagesByKind() map[string]int {
	out := make(map[string]int)
	for _, c := range p.Chunks {
		for k, v := range c.Messages {
			out[k] += v
		}
	}
	return out
}

// Protocol runs the distributed algorithm over one topology.
type Protocol struct {
	g    *graph.Graph
	opts Options
}

// Errors returned by the protocol.
var (
	ErrBadTopology = errors.New("dist: topology must be connected with at least 2 nodes")
	ErrBadProducer = errors.New("dist: producer out of range")
	ErrBadChunks   = errors.New("dist: chunk count must be positive")
	ErrBadState    = errors.New("dist: cache state size mismatch")
)

// New returns a Protocol for the given connected topology.
func New(g *graph.Graph, opts Options) (*Protocol, error) {
	if g == nil || g.NumNodes() < 2 || !g.Connected() {
		return nil, ErrBadTopology
	}
	if opts.K <= 0 {
		opts.K = 2
	}
	if opts.AlphaStep <= 0 {
		opts.AlphaStep = 1
	}
	if opts.GammaStep <= 0 {
		opts.GammaStep = opts.AlphaStep
	}
	if opts.SpanQuorum <= 0 {
		opts.SpanQuorum = 1
	}
	if opts.FairnessWeight < 0 {
		return nil, fmt.Errorf("dist: fairness weight %g must be >= 0", opts.FairnessWeight)
	}
	return &Protocol{g: g, opts: opts}, nil
}

// PlaceChunks runs the protocol once per chunk (0..chunks-1), committing
// each chunk's ADMIN set into st before the next chunk starts, so the
// fairness and contention feedback matches the centralized algorithm.
func (pr *Protocol) PlaceChunks(producer, chunks int, st *cache.State) (*Placement, error) {
	return pr.PlaceChunksCtx(context.Background(), producer, chunks, st)
}

// PlaceChunksCtx is PlaceChunks with cancellation checked before each
// chunk's protocol run (one run is a bounded round simulation, so the
// per-chunk granularity keeps aborts prompt without touching the
// simulator's determinism).
func (pr *Protocol) PlaceChunksCtx(ctx context.Context, producer, chunks int, st *cache.State) (*Placement, error) {
	if producer < 0 || producer >= pr.g.NumNodes() {
		return nil, fmt.Errorf("%w: %d", ErrBadProducer, producer)
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadChunks, chunks)
	}
	if st == nil || st.NumNodes() != pr.g.NumNodes() {
		return nil, ErrBadState
	}
	placement := &Placement{Producer: producer, State: st}
	for n := 0; n < chunks; n++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("chunk %d: %w", n, err)
		}
		run, err := pr.runChunk(producer, n, st)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", n, err)
		}
		for _, v := range run.CacheNodes {
			if err := st.Store(v, n); err != nil {
				return nil, fmt.Errorf("chunk %d store on %d: %w", n, v, err)
			}
		}
		placement.Chunks = append(placement.Chunks, *run)
	}
	return placement, nil
}

// runChunk executes one chunk's protocol round-trip.
func (pr *Protocol) runChunk(producer, chunkID int, st *cache.State) (*ChunkRun, error) {
	numNodes := pr.g.NumNodes()
	weights := contention.Weights(pr.g, st)

	nodes := make([]*node, numNodes)
	simNodes := make([]sim.Node, numNodes)
	for i := 0; i < numNodes; i++ {
		fairness := st.CombinedFairnessCost(i, pr.opts.FairnessWeight, pr.opts.BatteryWeight)
		hasStorage := st.Free(i) > 0 && !math.IsInf(fairness, 1)
		nodes[i] = newNode(i, producer, weights[i], fairness, hasStorage, pr.opts)
		simNodes[i] = nodes[i]
	}
	network, err := sim.NewNetwork(pr.g, simNodes)
	if err != nil {
		return nil, err
	}
	network.Drop = pr.opts.Drop
	network.Trace = pr.opts.Trace

	maxRounds := pr.opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = pr.roundBound(producer, st)
	}
	rounds, err := network.Run(maxRounds)
	if err != nil {
		return nil, err
	}

	run := &ChunkRun{
		Chunk:    chunkID,
		Assign:   make([]int, numNodes),
		Rounds:   rounds,
		Messages: network.Counts(),
	}
	for i, nd := range nodes {
		run.Assign[i] = nd.assigned
		if nd.state == stateAdmin {
			run.CacheNodes = append(run.CacheNodes, i)
		}
	}
	return run, nil
}

// roundBound derives a safe termination bound: every node freezes onto the
// producer once its bid covers the producer path cost, so the protocol
// needs at most max c(producer, ·)/U_α rounds plus flood propagation slack.
func (pr *Protocol) roundBound(producer int, st *cache.State) int {
	costs := contention.ComputeCosts(pr.g, st)
	maxC := 0.0
	for j, c := range costs.Row(producer) {
		if j != producer && c > maxC {
			maxC = c
		}
	}
	return int(maxC/pr.opts.AlphaStep) + 4*pr.g.NumNodes() + 32
}
