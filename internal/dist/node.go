package dist

import (
	"math"
	"slices"

	"repro/internal/sim"
)

// nodeState follows the paper's terminology: a node is ACTIVE while
// bidding, FROZEN (inactive) once it knows where to obtain the chunk, and
// ADMIN if it volunteered to cache it.
type nodeState int

const (
	stateActive nodeState = iota + 1
	stateFrozen
	stateAdmin
)

// peerInfo is the contention knowledge gathered about a k-hop neighbor.
type peerInfo struct {
	weight     float64
	hasStorage bool
	neighbors  []int
}

// node implements the per-device protocol of Algorithm 2 for one chunk.
type node struct {
	id       int
	producer int
	opts     Options

	weight     float64 // own w_i·(1+S(i))
	fairness   float64 // own Fairness Degree Cost f_i (weighted)
	hasStorage bool

	state    nodeState
	assigned int

	// Producer reachability learned from the NPI flood.
	prodCost float64
	ccSent   bool
	// ccRound is the round the CC collection was issued; bidding starts
	// only after the collection round-trip has completed, so that nodes
	// race on equal information rather than on message latency.
	ccRound int

	// ADMIN reachability learned from BADMIN floods.
	adminCost map[int]float64

	// k-hop contention knowledge from CC responses.
	peers    map[int]peerInfo
	conTo    map[int]float64
	conDirty bool

	// Bidding state.
	alpha     float64
	gamma     map[int]float64
	sentTight map[int]bool
	sentSpan  map[int]bool

	// Requester bookkeeping (the paper's set T and SPAN quorum count).
	requesters []int
	inT        map[int]bool
	spanPaid   map[int]float64
}

var _ sim.Node = (*node)(nil)

func newNode(id, producer int, weight, fairness float64, hasStorage bool, opts Options) *node {
	n := &node{
		id:         id,
		producer:   producer,
		opts:       opts,
		weight:     weight,
		fairness:   fairness,
		hasStorage: hasStorage,
		state:      stateActive,
		assigned:   -1,
		prodCost:   math.Inf(1),
		adminCost:  make(map[int]float64),
		peers:      make(map[int]peerInfo),
		conTo:      make(map[int]float64),
		gamma:      make(map[int]float64),
		sentTight:  make(map[int]bool),
		sentSpan:   make(map[int]bool),
		inT:        make(map[int]bool),
		spanPaid:   make(map[int]float64),
		ccRound:    -1,
	}
	if id == producer {
		n.state = stateFrozen
		n.assigned = id
	}
	return n
}

// Init: the producer floods the NPI announcement (its accumulated cost is
// its own weight) — every other node reacts to receiving it.
func (n *node) Init(ctx *sim.Context) {
	if n.id == n.producer {
		ctx.SendNeighbors(npi{Producer: n.id, Accum: n.weight})
	}
}

func (n *node) OnReceive(ctx *sim.Context, from int, p sim.Payload) {
	switch m := p.(type) {
	case npi:
		n.onNPI(ctx, m)
	case cc:
		ctx.Send(from, ccResp{
			Weight:     n.weight,
			HasStorage: n.hasStorage,
			Neighbors:  append([]int(nil), ctx.Neighbors()...),
		})
	case ccResp:
		n.peers[from] = peerInfo{weight: m.Weight, hasStorage: m.HasStorage, neighbors: m.Neighbors}
		n.conDirty = true
	case tight:
		n.onRequest(ctx, from, 0, false)
	case span:
		n.onRequest(ctx, from, m.Paid, true)
	case freeze:
		n.onFreeze(m)
	case nadmin:
		n.onNAdmin(ctx, from)
	case badmin:
		n.onBAdmin(ctx, m)
	}
}

// onNPI handles the flooded chunk announcement: track the cheapest path to
// the producer, re-flood improvements, and kick off contention collection.
func (n *node) onNPI(ctx *sim.Context, m npi) {
	if n.id == n.producer {
		return
	}
	cost := m.Accum + n.weight
	if cost < n.prodCost {
		n.prodCost = cost
		ctx.SendNeighbors(npi{Producer: m.Producer, Accum: m.Accum + n.weight})
	}
	if !n.ccSent && n.state == stateActive {
		n.ccSent = true
		n.ccRound = ctx.Round()
		ctx.SendKHop(n.opts.K, cc{})
	}
}

// onRequest handles TIGHT and SPAN: remember the requester; frozen and
// ADMIN nodes answer immediately; active candidates accumulate SPAN
// support and volunteer once the quorum and the fairness payment are met.
func (n *node) onRequest(ctx *sim.Context, from int, paid float64, isSpan bool) {
	if !n.inT[from] {
		n.inT[from] = true
		n.requesters = append(n.requesters, from)
	}
	switch n.state {
	case stateFrozen:
		target := n.assigned
		if n.id == n.producer {
			target = n.id
		}
		ctx.Send(from, freeze{Admin: target})
		return
	case stateAdmin:
		ctx.Send(from, freeze{Admin: n.id})
		return
	}
	if !isSpan {
		return
	}
	if paid > n.spanPaid[from] {
		n.spanPaid[from] = paid
	}
	n.maybeBecomeAdmin(ctx)
}

// maybeBecomeAdmin applies the ADMIN condition: enough SPAN supporters
// (the quorum M) and enough surplus payment to cover the node's own
// fairness cost.
func (n *node) maybeBecomeAdmin(ctx *sim.Context) {
	if n.state != stateActive || !n.hasStorage {
		return
	}
	if len(n.spanPaid) < n.opts.SpanQuorum {
		return
	}
	total := 0.0
	for _, paid := range n.spanPaid {
		total += paid
	}
	if total < n.fairness {
		return
	}
	n.state = stateAdmin
	n.assigned = n.id
	for _, j := range n.requesters {
		ctx.Send(j, nadmin{})
	}
	ctx.SendNeighbors(badmin{Admin: n.id, Accum: n.weight})
	// The data chunk itself is then proactively requested from the
	// producer; the dissemination cost is evaluated by the Steiner-tree
	// metric, not by protocol messages.
}

// onFreeze handles a redirect toward data holder m.Admin. Mirroring the
// centralized dual growth — where a demand freezes only once its bid
// covers an *open* facility — the redirect is accepted only when the
// node's bid covers the known cost to that holder; otherwise the node
// keeps bidding and will freeze through its own tick logic later.
func (n *node) onFreeze(m freeze) {
	if n.state != stateActive {
		return
	}
	cost := math.Inf(1)
	switch {
	case m.Admin == n.producer:
		cost = n.prodCost
	default:
		if c, ok := n.adminCost[m.Admin]; ok {
			cost = c
		}
	}
	if n.alpha >= cost {
		n.state = stateFrozen
		n.assigned = m.Admin
	}
}

// onNAdmin: the candidate we supported became an ADMIN; adopt it and tell
// our own requesters where data will be.
func (n *node) onNAdmin(ctx *sim.Context, from int) {
	if n.state != stateActive {
		return
	}
	n.state = stateFrozen
	n.assigned = from
	for _, j := range n.requesters {
		ctx.Send(j, freeze{Admin: from})
	}
}

// onBAdmin handles the network-wide ADMIN announcement flood.
func (n *node) onBAdmin(ctx *sim.Context, m badmin) {
	if m.Admin == n.id {
		return
	}
	cost := m.Accum + n.weight
	if old, ok := n.adminCost[m.Admin]; !ok || cost < old {
		n.adminCost[m.Admin] = cost
		ctx.SendNeighbors(badmin{Admin: m.Admin, Accum: m.Accum + n.weight})
	}
	if n.state == stateActive && n.alpha >= n.adminCost[m.Admin] {
		n.state = stateFrozen
		n.assigned = m.Admin
	}
}

// OnTick grows the bids and issues TIGHT/SPAN/freeze transitions.
func (n *node) OnTick(ctx *sim.Context) {
	if n.state != stateActive {
		return
	}
	// Wait for the contention-collection round trip before bidding.
	if n.ccRound < 0 || ctx.Round() < n.ccRound+2 {
		return
	}
	n.alpha += n.opts.AlphaStep

	// Connect to the producer or a known ADMIN when the bid covers it —
	// the TIGHT-with-an-open-facility case of the centralized algorithm.
	bestOpen, bestCost := -1, math.Inf(1)
	if n.alpha >= n.prodCost {
		bestOpen, bestCost = n.producer, n.prodCost
	}
	for a, c := range n.adminCost {
		if n.alpha >= c && c < bestCost {
			bestOpen, bestCost = a, c
		}
	}
	if bestOpen >= 0 {
		n.state = stateFrozen
		n.assigned = bestOpen
		return
	}

	n.refreshCon()
	for _, j := range n.candidateOrder() {
		c := n.conTo[j]
		if n.alpha >= c && !n.sentTight[j] {
			n.sentTight[j] = true
			ctx.Send(j, tight{})
		}
		if n.sentTight[j] {
			n.gamma[j] += n.opts.GammaStep
			if n.gamma[j] >= c && !n.sentSpan[j] {
				n.sentSpan[j] = true
				ctx.Send(j, span{Paid: n.alpha - c})
			}
		}
	}
}

// refreshCon recomputes contention costs to k-hop candidates from the
// collected neighborhood information (a local node-weighted shortest-path
// computation over the known subgraph).
func (n *node) refreshCon() {
	if !n.conDirty {
		return
	}
	n.conDirty = false
	n.conTo = localPathCosts(n.id, n.weight, n.peers)
	// Only candidates with storage can serve as caching nodes.
	for j := range n.conTo {
		info, ok := n.peers[j]
		if !ok || !info.hasStorage || j == n.producer {
			delete(n.conTo, j)
		}
	}
}

// candidateOrder returns known candidates in deterministic id order.
func (n *node) candidateOrder() []int {
	out := make([]int, 0, len(n.conTo))
	for j := range n.conTo {
		out = append(out, j)
	}
	slices.Sort(out)
	return out
}

func (n *node) Done() bool { return n.state != stateActive }

// localPathCosts runs a node-weighted Dijkstra over the locally known
// subgraph (self + peers, edges limited to known nodes), returning the
// contention cost from self to each known peer including both endpoints.
func localPathCosts(self int, selfWeight float64, peers map[int]peerInfo) map[int]float64 {
	weight := map[int]float64{self: selfWeight}
	adj := map[int][]int{}
	known := map[int]bool{self: true}
	for id, info := range peers {
		weight[id] = info.weight
		known[id] = true
	}
	addEdge := func(u, v int) {
		if known[u] && known[v] {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	for id, info := range peers {
		for _, nb := range info.neighbors {
			addEdge(id, nb)
		}
	}

	dist := map[int]float64{self: selfWeight}
	done := map[int]bool{}
	for {
		u, best := -1, math.Inf(1)
		for id, d := range dist {
			if !done[id] && d < best {
				u, best = id, d
			}
		}
		if u == -1 {
			break
		}
		done[u] = true
		for _, v := range adj[u] {
			if nd := best + weight[v]; nd < distOrInf(dist, v) {
				dist[v] = nd
			}
		}
	}
	delete(dist, self)
	return dist
}

func distOrInf(dist map[int]float64, v int) float64 {
	if d, ok := dist[v]; ok {
		return d
	}
	return math.Inf(1)
}
