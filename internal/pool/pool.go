// Package pool provides the bounded worker pool behind the parallel solve
// engine. A Pool owns a fixed set of worker goroutines (GOMAXPROCS-sized by
// default) that fan independent index ranges out across cores; work items
// are identified by a dense index and must write only to their own output
// slot, which makes every parallel result byte-identical to the sequential
// loop regardless of scheduling.
//
// A Pool with one worker runs everything inline on the calling goroutine —
// the sequential reference path — so callers never need two code paths.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the fan-out width used when a caller asks for 0
// workers: the scheduler's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize maps a caller-facing worker count onto an effective one:
// 0 means DefaultWorkers, negative values force the sequential path.
func Normalize(workers int) int {
	if workers == 0 {
		return DefaultWorkers()
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Pool is a fixed-size worker pool. The zero value and nil are valid and
// behave like a single-worker (inline, sequential) pool. Pools with more
// than one worker own goroutines and must be released with Close.
type Pool struct {
	workers int
	tasks   chan func()
	wg      sync.WaitGroup
	once    sync.Once
}

// New returns a pool of the given effective width (see Normalize: 0 means
// GOMAXPROCS, negative means 1). Widths above one spawn that many worker
// goroutines, which live until Close.
func New(workers int) *Pool {
	p := &Pool{workers: Normalize(workers)}
	if p.workers > 1 {
		p.tasks = make(chan func())
		p.wg.Add(p.workers)
		for i := 0; i < p.workers; i++ {
			go func() {
				defer p.wg.Done()
				for f := range p.tasks {
					f()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's effective width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the worker goroutines. It is safe to call more than once and
// on nil or inline pools. ForEach must not be running or called afterwards.
func (p *Pool) Close() {
	if p == nil || p.tasks == nil {
		return
	}
	p.once.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}

// ForEach runs fn(i) for every i in [0, n), spread over the pool's workers.
// fn must write only to state owned by index i; under that contract the
// result is identical to the sequential loop `for i := 0; i < n; i++`.
//
// Cancelling ctx stops workers from picking up further indexes and makes
// ForEach return ctx.Err(); indexes already started still finish, but the
// full range may not have run — callers must discard partial output on a
// non-nil return.
// ForEachErr is ForEach for fallible work: fn may return an error, and the
// first one (by lowest index, so the choice is deterministic) is returned
// after all started indexes finish. A failing index cancels the derived
// context seen by ctx-checking workers, so remaining indexes are skipped,
// but fn itself is responsible for observing ctx if an individual item is
// long-running. The slot-write contract of ForEach applies unchanged.
func (p *Pool) ForEachErr(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	ferr := p.ForEach(inner, n, func(i int) {
		if errs[i] = fn(i); errs[i] != nil {
			cancel()
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ferr != nil {
		// The derived context only cancels after an error slot was written,
		// so surviving to here means the parent context itself ended.
		return ctx.Err()
	}
	return nil
}

func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}

	var next atomic.Int64
	var done sync.WaitGroup
	spawn := p.workers
	if spawn > n {
		spawn = n
	}
	done.Add(spawn)
	for w := 0; w < spawn; w++ {
		p.tasks <- func() {
			defer done.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}
	}
	done.Wait()
	return ctx.Err()
}

// ForEachW is ForEach with the executing worker's slot index passed to fn
// (0 ≤ w < Workers()); within one call each concurrently running fn sees a
// distinct w, so callers can route a per-worker scratch arena through it
// without locking. The index-to-worker assignment is scheduling-dependent:
// fn must use w only to pick reusable storage, never to influence results —
// under that contract output remains byte-identical to the sequential loop.
func (p *Pool) ForEachW(ctx context.Context, n int, fn func(w, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i)
		}
		return nil
	}

	var next atomic.Int64
	var done sync.WaitGroup
	spawn := p.workers
	if spawn > n {
		spawn = n
	}
	done.Add(spawn)
	for w := 0; w < spawn; w++ {
		w := w
		p.tasks <- func() {
			defer done.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}
	}
	done.Wait()
	return ctx.Err()
}
