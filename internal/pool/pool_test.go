package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != DefaultWorkers() {
		t.Fatalf("Normalize(0) = %d, want GOMAXPROCS %d", got, DefaultWorkers())
	}
	if got := Normalize(-3); got != 1 {
		t.Fatalf("Normalize(-3) = %d, want 1", got)
	}
	if got := Normalize(7); got != 7 {
		t.Fatalf("Normalize(7) = %d, want 7", got)
	}
}

func TestForEachCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(workers)
		const n = 1000
		hits := make([]int32, n)
		if err := p.ForEach(context.Background(), n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		}); err != nil {
			t.Fatalf("workers=%d: ForEach: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, h)
			}
		}
		p.Close()
	}
}

func TestForEachNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	sum := 0
	if err := p.ForEach(context.Background(), 5, func(i int) { sum += i }); err != nil {
		t.Fatalf("ForEach on nil pool: %v", err)
	}
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
	p.Close() // must not panic
}

func TestForEachDeterministicSlots(t *testing.T) {
	const n = 500
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	p := New(8)
	defer p.Close()
	got := make([]int, n)
	if err := p.ForEach(context.Background(), n, func(i int) { got[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForEachCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(4)
	defer p.Close()
	ran := atomic.Int32{}
	err := p.ForEach(ctx, 100, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// Inline path with a pre-cancelled ctx must not run anything.
	var inline *Pool
	inRan := 0
	if err := inline.ForEach(ctx, 100, func(i int) { inRan++ }); !errors.Is(err, context.Canceled) {
		t.Fatalf("inline ForEach: err = %v, want context.Canceled", err)
	}
	if inRan != 0 {
		t.Fatalf("inline ForEach ran %d items after cancel, want 0", inRan)
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(2)
	defer p.Close()
	ran := atomic.Int32{}
	err := p.ForEach(ctx, 10000, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 10000 {
		t.Fatalf("cancel mid-run still executed the whole range (%d items)", got)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(3)
	p.Close()
	p.Close()
	p = New(1)
	p.Close() // inline pool: no goroutines, still fine
}

func TestForEachZeroItems(t *testing.T) {
	p := New(4)
	defer p.Close()
	if err := p.ForEach(context.Background(), 0, func(i int) { t.Fatal("ran") }); err != nil {
		t.Fatal(err)
	}
}
