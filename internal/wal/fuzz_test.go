package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the record decoder. The
// contract under fuzzing: never panic, and either decode cleanly, report
// a clean end (io.EOF on empty input), or return a typed corruption
// error matching ErrCorrupt. A successful decode must re-encode to the
// exact consumed frame.
func FuzzDecodeRecord(f *testing.F) {
	valid, _ := EncodeRecord([]byte("seed-record-payload"))
	empty, _ := EncodeRecord(nil)
	f.Add(valid)
	f.Add(empty)
	f.Add(valid[:len(valid)-3]) // truncated (torn) record
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+1] ^= 0x01 // bit-flipped payload
	f.Add(flipped)
	badLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badLen[0:4], MaxRecordBytes+1) // absurd length field
	f.Add(badLen)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(append(append([]byte(nil), valid...), valid...)) // two records back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			payload, n, err := DecodeRecord(rest)
			if err != nil {
				if len(rest) == 0 {
					if err != io.EOF {
						t.Fatalf("empty input returned %v, want io.EOF", err)
					}
				} else if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("undecodable input returned untyped error %v", err)
				}
				return
			}
			if n < headerSize || n > len(rest) {
				t.Fatalf("decoded frame size %d out of range (buffer %d)", n, len(rest))
			}
			frame, eerr := EncodeRecord(payload)
			if eerr != nil {
				t.Fatalf("re-encoding decoded payload failed: %v", eerr)
			}
			if !bytes.Equal(frame, rest[:n]) {
				t.Fatalf("re-encoded frame differs from consumed bytes")
			}
			rest = rest[n:]
		}
	})
}
