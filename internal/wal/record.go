package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing: every record is length-prefixed and checksummed so a
// reader can walk a segment byte-exactly and detect both torn writes
// (a crash mid-append leaves a short final record) and corruption (bit
// flips fail the CRC).
//
//	offset 0: payload length, uint32 little-endian
//	offset 4: CRC32 (IEEE) of the payload, uint32 little-endian
//	offset 8: payload bytes
const headerSize = 8

// MaxRecordBytes caps one record's payload. A length field above the cap
// is treated as corruption, which stops a garbage length prefix from
// swallowing the rest of a segment during recovery.
const MaxRecordBytes = 16 << 20

// ErrCorrupt is the sentinel matched by errors.Is for every record-level
// decoding failure, torn or corrupt alike.
var ErrCorrupt = errors.New("wal: corrupt record")

// CorruptError describes one undecodable record. Torn distinguishes an
// incomplete record (fewer bytes than the frame promises — the signature
// of a crash mid-append) from a complete frame whose checksum or length
// field is wrong. errors.Is(err, ErrCorrupt) holds for both.
type CorruptError struct {
	Reason string
	Torn   bool
}

func (e *CorruptError) Error() string {
	if e.Torn {
		return fmt.Sprintf("wal: torn record: %s", e.Reason)
	}
	return fmt.Sprintf("wal: corrupt record: %s", e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func tornf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...), Torn: true}
}

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// EncodeRecord frames a payload for appending to a segment.
func EncodeRecord(payload []byte) ([]byte, error) {
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out, nil
}

// DecodeRecord decodes the record starting at b[0] and returns its
// payload (aliasing b — copy it to retain past b's lifetime) and the
// total frame size consumed. An empty buffer returns io.EOF; anything
// undecodable returns a *CorruptError (matching ErrCorrupt), with Torn
// set when the buffer simply ends before the frame does. It never
// panics, whatever the input.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) == 0 {
		return nil, 0, io.EOF
	}
	if len(b) < headerSize {
		return nil, 0, tornf("%d bytes left, header needs %d", len(b), headerSize)
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > MaxRecordBytes {
		return nil, 0, corruptf("length field %d exceeds max %d", length, MaxRecordBytes)
	}
	if uint64(len(b)) < headerSize+uint64(length) {
		return nil, 0, tornf("%d bytes left, record needs %d", len(b), headerSize+length)
	}
	payload = b[headerSize : headerSize+length]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, corruptf("checksum mismatch (stored %08x, computed %08x)",
			binary.LittleEndian.Uint32(b[4:8]), sum)
	}
	return payload, headerSize + int(length), nil
}
