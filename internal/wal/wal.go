// Package wal is an append-only write-ahead log with CRC32-framed
// records, monotonic segment files, a configurable fsync policy and
// snapshot-plus-compaction. It is the durability substrate for the
// faircached placement service: every committed mutation is appended as
// one record, periodic full-state snapshots bound replay time, and
// recovery tolerates a torn final record (a crash mid-append) by
// truncating it instead of failing.
//
// On-disk layout (one directory per log):
//
//	seg-00000001.wal   framed records, appended in commit order
//	seg-00000002.wal   segments rotate at MaxSegmentBytes; seqs only grow
//	snap-00000002.snap one framed record holding a full-state snapshot;
//	                   written atomically (tmp + rename), it supersedes
//	                   every segment with seq <= its own
//
// Recovery replays the newest valid snapshot plus every record in
// segments newer than it. Any undecodable suffix of the final segment is
// treated as a torn tail and truncated; an undecodable record anywhere
// else fails recovery with an error wrapping ErrCorrupt.
package wal

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs after every append: a record is durable before
	// the mutation it logs is acknowledged.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs dirty segments from a background ticker every
	// Options.Interval: bounded data loss, near in-memory append speed.
	SyncInterval
	// SyncNever leaves flushing to the operating system (plus one fsync
	// on rotation, snapshot and close).
	SyncNever
)

// ParseSyncPolicy maps the flag spellings "always", "interval" and
// "never" onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// Options configures a Log. Dir is required; zero values elsewhere mean
// SyncAlways, a 100ms sync interval, 4MiB segments and a silent logger.
type Options struct {
	Dir             string
	Policy          SyncPolicy
	Interval        time.Duration
	MaxSegmentBytes int64
	// Logger receives leveled operational records (recovery outcome,
	// torn-tail truncation, segment rotation, snapshot compaction). nil
	// keeps the log silent — the library never writes to a default sink.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// logger returns the configured logger or a discard-all fallback.
func (o Options) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.New(discardHandler{})
}

// discardHandler drops every record; the stdlib gains slog.DiscardHandler
// only in go 1.24, so carry a two-line equivalent.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Recovery is what Open (or the read-only Scan) reconstructed from a log
// directory: the newest valid snapshot payload, every record payload
// appended after it in order, and how many bytes of a torn final record
// were dropped.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil if none exists.
	Snapshot []byte
	// SnapshotSeq is the segment seq the snapshot superseded (0 = none).
	SnapshotSeq uint64
	// Records are the payloads of segments newer than the snapshot, in
	// append order.
	Records [][]byte
	// TruncatedBytes counts bytes of the final segment dropped as a torn
	// tail (0 when the log ends cleanly).
	TruncatedBytes int64
	// Segments is the number of segment files replayed.
	Segments int
}

// Log is an open write-ahead log. Append, Sync, WriteSnapshot and Close
// are safe for concurrent use.
type Log struct {
	opts Options
	log  *slog.Logger

	mu         sync.Mutex
	f          *os.File // active segment
	seq        uint64   // active segment's sequence number
	size       int64
	dirty      bool      // bytes written since the last fsync
	dirtySince time.Time // when the oldest unsynced append landed
	closed     bool

	done chan struct{} // stops the SyncInterval flusher
	wg   sync.WaitGroup
}

func segName(seq uint64) string  { return fmt.Sprintf("seg-%08d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// scanResult is the full read-only picture of a log directory.
type scanResult struct {
	rec        Recovery
	staleSegs  []uint64 // segments superseded by the snapshot
	staleSnaps []uint64 // snapshots older than the chosen one
	lastSeq    uint64   // seq of the final replayed segment (0 = none)
	lastValid  int64    // valid byte count of that segment
	lastTorn   bool     // final segment ends in an undecodable tail
}

// scanDir reads a log directory without modifying it.
func scanDir(dir string) (*scanResult, error) {
	res := &scanResult{}
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return res, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &seq); n == 1 && err == nil {
			segs = append(segs, seq)
		} else if n, err := fmt.Sscanf(e.Name(), "snap-%d.snap", &seq); n == 1 && err == nil {
			snaps = append(snaps, seq)
		}
	}
	slices.Sort(segs)
	slices.Sort(snaps)

	// Newest snapshot that decodes cleanly wins; older ones are stale.
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapName(snaps[i])))
		if err != nil {
			continue
		}
		payload, _, derr := DecodeRecord(data)
		if derr != nil {
			continue
		}
		res.rec.Snapshot = payload
		res.rec.SnapshotSeq = snaps[i]
		res.staleSnaps = snaps[:i]
		break
	}

	var replay []uint64
	for _, seq := range segs {
		if seq <= res.rec.SnapshotSeq {
			res.staleSegs = append(res.staleSegs, seq)
		} else {
			replay = append(replay, seq)
		}
	}
	for i, seq := range replay {
		if want := replay[0] + uint64(i); seq != want {
			return nil, fmt.Errorf("wal: segment gap: have %s, want %s", segName(seq), segName(want))
		}
	}
	if len(replay) > 0 && res.rec.Snapshot != nil && replay[0] != res.rec.SnapshotSeq+1 {
		return nil, fmt.Errorf("wal: segment gap after snapshot %d: first segment is %d", res.rec.SnapshotSeq, replay[0])
	}

	for i, seq := range replay {
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		last := i == len(replay)-1
		off := 0
		for {
			payload, n, derr := DecodeRecord(data[off:])
			if derr == io.EOF {
				break
			}
			if derr != nil {
				if !last {
					return nil, fmt.Errorf("wal: %s at offset %d: %w", segName(seq), off, derr)
				}
				// Torn tail: a crash mid-append left an incomplete (or
				// garbage) final record. Recovery keeps the clean prefix.
				res.rec.TruncatedBytes = int64(len(data) - off)
				res.lastTorn = true
				break
			}
			res.rec.Records = append(res.rec.Records, payload)
			off += n
		}
		if last {
			res.lastSeq = seq
			res.lastValid = int64(off)
		}
	}
	res.rec.Segments = len(replay)
	return res, nil
}

// Scan reads a log directory without opening it for writing and without
// modifying anything — no truncation, no compaction. Tools (inspection,
// tests) use it to see exactly what Open would recover.
func Scan(dir string) (*Recovery, error) {
	res, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	return &res.rec, nil
}

// Open recovers a log directory (creating it if needed) and opens it for
// appending. A torn final record is truncated away; segments and
// snapshots superseded by the newest snapshot are deleted (finishing any
// compaction a crash interrupted).
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	res, err := scanDir(opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	logger := opts.logger()
	if res.lastTorn {
		if err := os.Truncate(filepath.Join(opts.Dir, segName(res.lastSeq)), res.lastValid); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		logger.Warn("wal truncated torn tail",
			"segment", segName(res.lastSeq),
			"droppedBytes", res.rec.TruncatedBytes)
	}
	for _, seq := range res.staleSegs {
		_ = os.Remove(filepath.Join(opts.Dir, segName(seq)))
	}
	for _, seq := range res.staleSnaps {
		_ = os.Remove(filepath.Join(opts.Dir, snapName(seq)))
	}
	logger.Info("wal recovered",
		"dir", opts.Dir,
		"segments", res.rec.Segments,
		"records", len(res.rec.Records),
		"snapshot", res.rec.Snapshot != nil)

	l := &Log{opts: opts, log: logger}
	if res.lastSeq > 0 {
		f, err := os.OpenFile(filepath.Join(opts.Dir, segName(res.lastSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.seq, l.size = f, res.lastSeq, res.lastValid
	} else {
		if err := l.createSegment(res.rec.SnapshotSeq + 1); err != nil {
			return nil, nil, err
		}
	}
	if opts.Policy == SyncInterval {
		l.done = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, &res.rec, nil
}

// createSegment opens a fresh segment file and makes it the active one.
// Caller holds l.mu (or the log is not yet shared).
func (l *Log) createSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.seq, l.size, l.dirty = f, seq, 0, false
	return l.syncDir()
}

// syncDir fsyncs the log directory so file creations, renames and
// removals are themselves durable.
func (l *Log) syncDir() error {
	d, err := os.Open(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Append writes one record. Durability on return depends on the sync
// policy: guaranteed for SyncAlways, bounded by Interval for
// SyncInterval, up to the OS for SyncNever.
func (l *Log) Append(payload []byte) error {
	frame, err := EncodeRecord(payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size += int64(len(frame))
	if !l.dirty {
		l.dirty = true
		l.dirtySince = time.Now()
	}
	if l.opts.Policy == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// SyncLag reports how long the oldest unsynced append has been waiting
// for an fsync — 0 when every record is on stable storage. It is the
// upper bound on acknowledged-but-volatile history under the interval
// and never policies.
func (l *Log) SyncLag() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty {
		return 0
	}
	return time.Since(l.dirtySince)
}

// Sync forces dirty appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = false
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	sealed := l.seq
	if err := l.createSegment(l.seq + 1); err != nil {
		return err
	}
	l.log.Debug("wal rotated segment", "sealed", segName(sealed), "active", segName(l.seq))
	return nil
}

// WriteSnapshot atomically persists a full-state snapshot (tmp file,
// fsync, rename, directory fsync), rotates to a fresh segment, then
// compacts: every segment the snapshot supersedes and every older
// snapshot is deleted. After WriteSnapshot returns, recovery replays the
// snapshot plus only the records appended after this call.
func (l *Log) WriteSnapshot(payload []byte) error {
	frame, err := EncodeRecord(payload)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	oldSeq := l.seq
	final := filepath.Join(l.opts.Dir, snapName(oldSeq))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, frame); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable; everything at or before oldSeq is now
	// redundant. Rotate first so the active segment outlives compaction.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	for seq := oldSeq; seq >= 1; seq-- {
		p := filepath.Join(l.opts.Dir, segName(seq))
		if err := os.Remove(p); err != nil {
			break // older segments were already compacted away
		}
	}
	for seq := oldSeq - 1; seq >= 1; seq-- {
		if err := os.Remove(filepath.Join(l.opts.Dir, snapName(seq))); err != nil {
			break
		}
	}
	l.log.Info("wal snapshot written", "snapshot", snapName(oldSeq), "bytes", len(frame), "compactedThrough", segName(oldSeq))
	return l.syncDir()
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncLoop is the SyncInterval background flusher.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Close flushes and closes the log. Safe to call more than once; the
// log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.done != nil {
		close(l.done)
		l.wg.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Entry is one item of a read-only directory listing: a snapshot record,
// a segment record, or a decoding problem (Err non-empty; listing of
// that file stops there).
type Entry struct {
	File    string
	Seq     uint64
	Kind    string // "snapshot" or "record"
	Offset  int64
	Payload []byte
	Err     string
}

// List walks every snapshot and segment file in seq order and returns
// one Entry per record, read-only. Unlike Scan it reports stale files
// too — it is the raw material for an inspection listing.
func List(dir string) ([]Entry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	type file struct {
		seq  uint64
		snap bool
		name string
	}
	var files []file
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "seg-%d.wal", &seq); n == 1 && err == nil {
			files = append(files, file{seq, false, e.Name()})
		} else if n, err := fmt.Sscanf(e.Name(), "snap-%d.snap", &seq); n == 1 && err == nil {
			files = append(files, file{seq, true, e.Name()})
		}
	}
	slices.SortFunc(files, func(a, b file) int {
		if a.seq != b.seq {
			return cmp.Compare(a.seq, b.seq)
		}
		// Snapshot precedes the segment it starts; replay depends on it.
		switch {
		case a.snap == b.snap:
			return 0
		case a.snap:
			return -1
		default:
			return 1
		}
	})
	var out []Entry
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		kind := "record"
		if f.snap {
			kind = "snapshot"
		}
		off := 0
		for {
			payload, n, derr := DecodeRecord(data[off:])
			if derr == io.EOF {
				break
			}
			if derr != nil {
				out = append(out, Entry{File: f.name, Seq: f.seq, Kind: kind, Offset: int64(off), Err: derr.Error()})
				break
			}
			out = append(out, Entry{File: f.name, Seq: f.seq, Kind: kind, Offset: int64(off), Payload: payload})
			off += n
		}
	}
	return out, nil
}
