package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.Dir = dir
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func appendAll(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
}

func payloads(rec *Recovery) []string {
	out := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		out[i] = string(r)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for _, p := range []string{"", "a", "hello world", string(bytes.Repeat([]byte{0xff}, 4096))} {
		frame, err := EncodeRecord([]byte(p))
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, n, err := DecodeRecord(frame)
		if err != nil || n != len(frame) || string(got) != p {
			t.Fatalf("roundtrip %q: got %q n=%d err=%v", p, got, n, err)
		}
	}
	if _, _, err := DecodeRecord(nil); err == nil {
		t.Fatal("empty buffer should return io.EOF")
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := openTest(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendAll(t, l, "one", "two", "three")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, rec = openTest(t, dir, Options{})
	want := []string{"one", "two", "three"}
	if got := payloads(rec); len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", rec.TruncatedBytes)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	appendAll(t, l, "keep-1", "keep-2", "torn-victim")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Chop bytes off the final record, simulating a crash mid-append.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec := openTest(t, dir, Options{})
	if got := payloads(rec); len(got) != 2 || got[0] != "keep-1" || got[1] != "keep-2" {
		t.Fatalf("replayed %v, want the two intact records", got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The log must keep working after truncation: append, reopen, replay.
	appendAll(t, l, "after-torn")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	_, rec = openTest(t, dir, Options{})
	if got := payloads(rec); len(got) != 3 || got[2] != "after-torn" {
		t.Fatalf("replay after torn-tail repair: %v", got)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatal("repaired log still reports truncation")
	}
}

func TestCorruptionMidSegmentFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{MaxSegmentBytes: 64})
	// Small segments force rotation: corruption lands in a non-final
	// segment, which recovery must refuse to skip silently.
	appendAll(t, l, "aaaaaaaaaaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbbbbbbbbbb", "cccccccccccccccccccccccc")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestSegmentsRotateMonotonically(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{MaxSegmentBytes: 64})
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("record-%02d-padding-padding", i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(names) < 3 {
		t.Fatalf("expected >= 3 rotated segments, got %v", names)
	}
	for i, name := range names {
		if want := filepath.Join(dir, segName(uint64(i+1))); name != want {
			t.Fatalf("segment %d is %s, want %s", i, name, want)
		}
	}
	_, rec := openTest(t, dir, Options{})
	if len(rec.Records) != 10 || rec.Segments < 3 {
		t.Fatalf("replayed %d records over %d segments", len(rec.Records), rec.Segments)
	}
}

func TestSnapshotCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{MaxSegmentBytes: 64})
	for i := 0; i < 6; i++ {
		appendAll(t, l, fmt.Sprintf("pre-snapshot-record-%02d", i))
	}
	if err := l.WriteSnapshot([]byte("STATE-AT-6")); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	appendAll(t, l, "tail-1", "tail-2")
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Pre-snapshot segments must be gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) != 1 {
		t.Fatalf("compaction left segments %v, want exactly the post-snapshot one", segs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v, want 1", snaps)
	}

	_, rec := openTest(t, dir, Options{})
	if string(rec.Snapshot) != "STATE-AT-6" {
		t.Fatalf("snapshot payload %q", rec.Snapshot)
	}
	if got := payloads(rec); len(got) != 2 || got[0] != "tail-1" || got[1] != "tail-2" {
		t.Fatalf("tail records %v, want [tail-1 tail-2]", got)
	}
}

func TestSecondSnapshotSupersedesFirst(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	appendAll(t, l, "a")
	if err := l.WriteSnapshot([]byte("S1")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "b")
	if err := l.WriteSnapshot([]byte("S2")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "c")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openTest(t, dir, Options{})
	if string(rec.Snapshot) != "S2" {
		t.Fatalf("snapshot %q, want S2", rec.Snapshot)
	}
	if got := payloads(rec); len(got) != 1 || got[0] != "c" {
		t.Fatalf("records %v, want [c]", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openTest(t, dir, Options{Policy: policy, Interval: 5 * time.Millisecond})
			appendAll(t, l, "p1", "p2")
			if policy == SyncInterval {
				time.Sleep(30 * time.Millisecond) // let the flusher run
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
			_, rec := openTest(t, dir, Options{})
			if got := payloads(rec); len(got) != 2 {
				t.Fatalf("replayed %v", got)
			}
		})
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy should reject unknown spellings")
	}
	for _, s := range []string{"always", "interval", "never"} {
		p, err := ParseSyncPolicy(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestScanIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	appendAll(t, l, "x", "y")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	if err := os.WriteFile(seg, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Scan(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(rec.Records) != 1 || rec.TruncatedBytes == 0 {
		t.Fatalf("scan of torn log: %d records, %d truncated", len(rec.Records), rec.TruncatedBytes)
	}
	after, _ := os.ReadFile(seg)
	if len(after) != len(data)-2 {
		t.Fatal("Scan modified the segment file")
	}
}

func TestListEnumeratesRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	appendAll(t, l, "r1")
	if err := l.WriteSnapshot([]byte("SNAP")); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "r2", "r3")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := List(dir)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var kinds []string
	for _, e := range entries {
		kinds = append(kinds, e.Kind+":"+string(e.Payload))
	}
	want := []string{"snapshot:SNAP", "record:r2", "record:r3"}
	if len(kinds) != len(want) {
		t.Fatalf("entries %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}
