package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestRepairNodeCostPaths drives random integer-weight perturbations through
// RepairNodeCostPaths and checks after every batch that the repaired row is
// byte-identical to a fresh sweep with the new weights — the contract the
// incremental cost model is built on.
func TestRepairNodeCostPaths(t *testing.T) {
	for _, seed := range []int64{2, 13, 77} {
		g := pcTestGraph(t, 50, 70, seed)
		n := g.NumNodes()
		pc := NewPathCache(g)
		rng := rand.New(rand.NewSource(seed + 1000))

		// Integer-valued weights, like the contention model's deg·(1+S).
		w := make([]float64, n)
		for i := range w {
			w[i] = float64(1 + rng.Intn(9))
		}

		cost := make([][]float64, n)
		pred := make([][]int32, n)
		for src := 0; src < n; src++ {
			cost[src], pred[src] = pc.NodeCostPaths(src, w)
		}

		scratch := NewRepairScratch(n)
		delta := make([]float64, n)
		for batch := 0; batch < 40; batch++ {
			k := 1 + rng.Intn(4)
			changed := make([]int, 0, k)
			for len(changed) < k {
				node := rng.Intn(n)
				if delta[node] != 0 {
					continue
				}
				// Mix increases and decreases, keeping weights positive.
				d := float64(1 + rng.Intn(3))
				if rng.Intn(2) == 0 && w[node]-d >= 1 {
					d = -d
				}
				delta[node] = d
				w[node] += d
				changed = append(changed, node)
			}
			for src := 0; src < n; src++ {
				touched := pc.RepairNodeCostPaths(src, w, changed, delta, cost[src], pred[src], scratch)
				if touched > n {
					t.Fatalf("seed=%d batch=%d src=%d: repair touched %d cells, more than a full sweep", seed, batch, src, touched)
				}
				wantC, wantP := g.NodeCostPaths(src, w)
				for v := range wantC {
					if math.Float64bits(cost[src][v]) != math.Float64bits(wantC[v]) {
						t.Fatalf("seed=%d batch=%d src=%d v=%d (changed %v): cost %v != %v",
							seed, batch, src, v, changed, cost[src][v], wantC[v])
					}
					if pred[src][v] != wantP[v] {
						t.Fatalf("seed=%d batch=%d src=%d v=%d (changed %v): pred %d != %d",
							seed, batch, src, v, changed, pred[src][v], wantP[v])
					}
				}
			}
			for _, node := range changed {
				delta[node] = 0
			}
		}
	}
}

// TestRepairNodeCostPathsDisconnected checks that unreachable cells stay
// Infinite through repairs and that out-of-range sources are a no-op.
func TestRepairNodeCostPathsDisconnected(t *testing.T) {
	g := New(6)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(3, 4) // node 5 isolated
	pc := NewPathCache(g)
	w := []float64{2, 3, 4, 5, 6, 7}
	cost, pred := pc.NodeCostPaths(0, w)
	scratch := NewRepairScratch(6)

	delta := make([]float64, 6)
	delta[1], delta[4] = 2, 1 // node 4 is unreachable from 0
	w[1] += 2
	w[4] += 1
	pc.RepairNodeCostPaths(0, w, []int{1, 4}, delta, cost, pred, scratch)
	wantC, wantP := g.NodeCostPaths(0, w)
	for v := range wantC {
		if math.Float64bits(cost[v]) != math.Float64bits(wantC[v]) || pred[v] != wantP[v] {
			t.Fatalf("v=%d: got (%v,%d) want (%v,%d)", v, cost[v], pred[v], wantC[v], wantP[v])
		}
	}

	if got := pc.RepairNodeCostPaths(-1, w, []int{1}, delta, cost, pred, scratch); got != 0 {
		t.Fatalf("repair with bad source touched %d cells", got)
	}
}

// TestPathCacheResetCached checks the growth-audit surface: Cached counts
// built entries, and Reset drops them all and rebinds the cache to the new
// graph.
func TestPathCacheResetCached(t *testing.T) {
	g1 := pcTestGraph(t, 20, 25, 4)
	pc := NewPathCache(g1)
	if got := pc.Cached(); got != 0 {
		t.Fatalf("fresh cache reports %d entries", got)
	}
	w := make([]float64, 20)
	for i := range w {
		w[i] = 1
	}
	for src := 0; src < 7; src++ {
		pc.NodeCostPaths(src, w)
	}
	if got := pc.Cached(); got != 7 {
		t.Fatalf("after 7 sources, Cached() = %d", got)
	}

	g2 := pcTestGraph(t, 30, 40, 8)
	pc.Reset(g2)
	if got := pc.Cached(); got != 0 {
		t.Fatalf("Reset kept %d entries", got)
	}
	// Post-reset queries must answer for the NEW graph.
	w2 := make([]float64, 30)
	for i := range w2 {
		w2[i] = float64(1 + i%5)
	}
	for src := 0; src < 30; src++ {
		gotC, gotP := pc.NodeCostPaths(src, w2)
		wantC, wantP := g2.NodeCostPaths(src, w2)
		for v := range wantC {
			if math.Float64bits(gotC[v]) != math.Float64bits(wantC[v]) || gotP[v] != wantP[v] {
				t.Fatalf("post-reset src=%d v=%d: got (%v,%d) want (%v,%d)", src, v, gotC[v], gotP[v], wantC[v], wantP[v])
			}
		}
	}
	if got := pc.Cached(); got != 30 {
		t.Fatalf("after full sweep on new graph, Cached() = %d", got)
	}
}
