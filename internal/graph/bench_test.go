package graph

import (
	"math/rand"
	"testing"
)

func BenchmarkHopDistancesGrid16x16(b *testing.B) {
	g := NewGrid(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.HopDistances(0)
	}
}

func BenchmarkAllPairsHopsGrid12x12(b *testing.B) {
	g := NewGrid(12, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.AllPairsHops()
	}
}

func BenchmarkNodeCostPathsGrid12x12(b *testing.B) {
	g := NewGrid(12, 12)
	w := make([]float64, g.NumNodes())
	for i := range w {
		w[i] = float64(1 + i%4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NodeCostPaths(i%g.NumNodes(), w)
	}
}

func BenchmarkDijkstraGrid12x12(b *testing.B) {
	g := NewGrid(12, 12)
	w := func(u, v int) float64 { return float64(1 + (u+v)%5) }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i%g.NumNodes(), w)
	}
}

func BenchmarkRandomGeometric100(b *testing.B) {
	rg := RandomGeometric{N: 100, Radius: DefaultRadius(100)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := rg.Generate(rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
