package graph

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pool"
)

// randomConnectedGraph builds a deterministic random graph with a spanning
// path plus extra edges, so every node is reachable.
func pcTestGraph(t *testing.T, n int, extra int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(perm[i-1], perm[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

func TestPathCacheMatchesNodeCostPaths(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := pcTestGraph(t, 60, 90, seed)
		pc := NewPathCache(g)
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 3; trial++ {
			w := make([]float64, g.NumNodes())
			for i := range w {
				w[i] = 1 + 10*rng.Float64()
			}
			for src := 0; src < g.NumNodes(); src++ {
				wantC, wantP := g.NodeCostPaths(src, w)
				gotC, gotP := pc.NodeCostPaths(src, w)
				for v := range wantC {
					// Byte-identical: compare bit patterns, not with epsilon.
					if math.Float64bits(wantC[v]) != math.Float64bits(gotC[v]) {
						t.Fatalf("seed=%d src=%d v=%d: cost %v != %v", seed, src, v, gotC[v], wantC[v])
					}
					if wantP[v] != gotP[v] {
						t.Fatalf("seed=%d src=%d v=%d: pred %d != %d", seed, src, v, gotP[v], wantP[v])
					}
				}
			}
		}
	}
}

func TestPathCacheDisconnectedAndBadSource(t *testing.T) {
	g := New(5)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3) // node 4 isolated
	pc := NewPathCache(g)
	w := []float64{1, 2, 3, 4, 5}
	for src := -1; src <= 5; src++ {
		var wantC []float64
		var wantP []int32
		if src >= 0 && src < 5 {
			wantC, wantP = g.NodeCostPaths(src, w)
		} else {
			wantC, wantP = g.NodeCostPaths(src, w)
		}
		gotC, gotP := pc.NodeCostPaths(src, w)
		for v := range wantC {
			if math.Float64bits(wantC[v]) != math.Float64bits(gotC[v]) || wantP[v] != gotP[v] {
				t.Fatalf("src=%d v=%d: got (%v,%d) want (%v,%d)", src, v, gotC[v], gotP[v], wantC[v], wantP[v])
			}
		}
	}
}

func TestPathCacheWarm(t *testing.T) {
	g := pcTestGraph(t, 40, 40, 3)
	pc := NewPathCache(g)
	p := pool.New(4)
	defer p.Close()
	if err := pc.Warm(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.NumNodes(); src++ {
		if pc.peek(src) == nil {
			t.Fatalf("Warm left source %d unbuilt", src)
		}
	}
	// Warming again (and with explicit sources) is a no-op.
	if err := pc.Warm(context.Background(), p, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pc2 := NewPathCache(g)
	if err := pc2.Warm(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Warm with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestPathCacheHopDistances(t *testing.T) {
	g := pcTestGraph(t, 30, 20, 9)
	pc := NewPathCache(g)
	for src := 0; src < g.NumNodes(); src++ {
		want := g.HopDistances(src)
		got := pc.HopDistances(src)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("src=%d v=%d: hop %d != %d", src, v, got[v], want[v])
			}
		}
	}
}

func TestAllPairsHopsCtx(t *testing.T) {
	g := pcTestGraph(t, 50, 60, 11)
	p := pool.New(4)
	defer p.Close()
	got, err := g.AllPairsHopsCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	want := g.AllPairsHops()
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("[%d][%d] = %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.AllPairsHopsCtx(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AllPairsHopsCtx: %v", err)
	}
}

func TestPathCacheConcurrentReads(t *testing.T) {
	g := pcTestGraph(t, 40, 50, 5)
	pc := NewPathCache(g)
	w := make([]float64, g.NumNodes())
	for i := range w {
		w[i] = float64(1 + i%7)
	}
	p := pool.New(8)
	defer p.Close()
	// Hammer the lazy-build path from many goroutines at once.
	if err := p.ForEach(context.Background(), 200, func(i int) {
		src := i % g.NumNodes()
		c, _ := pc.NodeCostPaths(src, w)
		if c[src] != 0 {
			t.Errorf("src=%d: cost[src] = %v, want 0", src, c[src])
		}
	}); err != nil {
		t.Fatal(err)
	}
}
