package graph

import (
	"fmt"
	"math/rand"
)

// NewLine returns a path network 0-1-...-(n-1): the worst-case diameter
// topology (e.g. vehicles along a road segment).
func NewLine(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(i-1, i) // in range by construction
	}
	return g
}

// NewRing returns a cycle over n nodes (n ≥ 3), a line closed at the ends.
func NewRing(n int) *Graph {
	g := NewLine(n)
	if n >= 3 {
		_ = g.AddEdge(n-1, 0)
	}
	return g
}

// Clustered describes a clustered random topology: dense node groups
// (crowds around points of interest) connected by sparse bridges — the
// structure of the paper's motivating outdoor-event scenario.
type Clustered struct {
	// Clusters is the number of groups (≥ 1).
	Clusters int
	// Size is the number of nodes per group (≥ 1).
	Size int
	// IntraProb is the connection probability inside a group (0, 1].
	IntraProb float64
	// Bridges is the number of links added between adjacent groups (≥ 1).
	Bridges int
}

// Generate draws a connected clustered topology using rng. Total nodes =
// Clusters × Size, grouped contiguously (group g holds nodes
// g·Size..(g+1)·Size−1).
func (c Clustered) Generate(rng *rand.Rand) (*Graph, error) {
	if c.Clusters < 1 || c.Size < 1 {
		return nil, fmt.Errorf("graph: clustered needs clusters >= 1 and size >= 1, got %d, %d", c.Clusters, c.Size)
	}
	if c.IntraProb <= 0 || c.IntraProb > 1 {
		return nil, fmt.Errorf("graph: clustered intra probability %g out of (0,1]", c.IntraProb)
	}
	bridges := c.Bridges
	if bridges < 1 {
		bridges = 1
	}
	n := c.Clusters * c.Size
	g := New(n)

	for cl := 0; cl < c.Clusters; cl++ {
		base := cl * c.Size
		// Spanning path keeps each group connected regardless of the
		// probability draw.
		for i := 1; i < c.Size; i++ {
			_ = g.AddEdge(base+i-1, base+i)
		}
		for i := 0; i < c.Size; i++ {
			for j := i + 1; j < c.Size; j++ {
				if rng.Float64() < c.IntraProb {
					_ = g.AddEdge(base+i, base+j)
				}
			}
		}
	}
	// Sparse bridges between consecutive groups.
	for cl := 1; cl < c.Clusters; cl++ {
		prev, cur := (cl-1)*c.Size, cl*c.Size
		for b := 0; b < bridges; b++ {
			_ = g.AddEdge(prev+rng.Intn(c.Size), cur+rng.Intn(c.Size))
		}
	}
	return g, nil
}
