package graph

import (
	"math/rand"
	"testing"
)

func TestNewLine(t *testing.T) {
	g := NewLine(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("line(5): %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.Connected() {
		t.Error("line not connected")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 || g.Degree(4) != 1 {
		t.Error("line degrees wrong")
	}
	if d := g.HopDistances(0); d[4] != 4 {
		t.Errorf("line diameter = %d, want 4", d[4])
	}
	if empty := NewLine(0); empty.NumNodes() != 0 {
		t.Error("empty line")
	}
}

func TestNewRing(t *testing.T) {
	g := NewRing(6)
	if g.NumEdges() != 6 {
		t.Errorf("ring(6) edges = %d, want 6", g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("ring node %d degree = %d", v, g.Degree(v))
		}
	}
	if d := g.HopDistances(0); d[3] != 3 || d[5] != 1 {
		t.Errorf("ring distances wrong: %v", d)
	}
	// Degenerate sizes do not close the loop.
	if g2 := NewRing(2); g2.NumEdges() != 1 {
		t.Errorf("ring(2) edges = %d, want 1 (no loop closure)", g2.NumEdges())
	}
}

func TestClusteredGenerate(t *testing.T) {
	c := Clustered{Clusters: 4, Size: 8, IntraProb: 0.4, Bridges: 2}
	g, err := c.Generate(rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 32 {
		t.Errorf("nodes = %d, want 32", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("clustered topology not connected")
	}
	// Groups are denser internally than across: count cross edges.
	cross := 0
	for _, e := range g.Edges() {
		if e.U/8 != e.V/8 {
			cross++
		}
	}
	if cross > 2*3 { // at most Bridges per adjacent pair (dedup may merge)
		t.Errorf("cross-cluster edges = %d, want <= 6", cross)
	}
	intra := g.NumEdges() - cross
	if intra <= cross {
		t.Errorf("intra %d not denser than cross %d", intra, cross)
	}
}

func TestClusteredValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (Clustered{Clusters: 0, Size: 5, IntraProb: 0.5}).Generate(rng); err == nil {
		t.Error("zero clusters: want error")
	}
	if _, err := (Clustered{Clusters: 2, Size: 0, IntraProb: 0.5}).Generate(rng); err == nil {
		t.Error("zero size: want error")
	}
	if _, err := (Clustered{Clusters: 2, Size: 5, IntraProb: 0}).Generate(rng); err == nil {
		t.Error("zero probability: want error")
	}
	if _, err := (Clustered{Clusters: 2, Size: 5, IntraProb: 1.5}).Generate(rng); err == nil {
		t.Error("probability > 1: want error")
	}
}

func TestClusteredDeterministic(t *testing.T) {
	c := Clustered{Clusters: 3, Size: 6, IntraProb: 0.5, Bridges: 1}
	a, err := c.Generate(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Error("same seed produced different clustered graphs")
	}
}
