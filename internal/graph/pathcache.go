package graph

import (
	"context"
	"sync"

	"repro/internal/pool"
)

// PathCache memoises the topology-dependent half of NodeCostPaths: the BFS
// hop distances from each source and the layered visitation order derived
// from them. Those depend only on the graph, while the node weights change
// on every chunk (the fairness feedback S(i) moves), so the per-chunk work
// drops to a single cost sweep over the cached order.
//
// The replayed sweep visits nodes in exactly the order the counting sort in
// NodeCostPaths produces (ascending hop layer, ascending node id within a
// layer) and scans adjacency lists in the same order, so cached results are
// byte-identical to the uncached routine.
//
// A PathCache must only be used with the graph it was created for, and that
// graph must not gain edges afterwards. Entries build lazily and are safe
// for concurrent use.
type PathCache struct {
	g  *Graph
	mu sync.Mutex
	// entries[src] is nil until the first query from src.
	entries []*pathEntry
}

type pathEntry struct {
	hop []int
	// order lists every node reachable from src except src itself, in
	// ascending hop order with ascending node id inside each layer — the
	// flattening of the counting-sort buckets in NodeCostPaths.
	order []int
}

// NewPathCache returns an empty cache over g. Entries are built on demand.
func NewPathCache(g *Graph) *PathCache {
	return &PathCache{g: g, entries: make([]*pathEntry, g.n)}
}

// Warm prebuilds the entries for the given sources (all nodes when srcs is
// nil), fanning the per-source BFS out over p. It returns early with
// ctx.Err() if the context is cancelled; already-built entries stay valid.
func (pc *PathCache) Warm(ctx context.Context, p *pool.Pool, srcs []int) error {
	if srcs == nil {
		srcs = make([]int, pc.g.n)
		for i := range srcs {
			srcs[i] = i
		}
	}
	built := make([]*pathEntry, len(srcs))
	err := p.ForEach(ctx, len(srcs), func(i int) {
		src := srcs[i]
		if src < 0 || src >= pc.g.n || pc.peek(src) != nil {
			return
		}
		built[i] = pc.build(src)
	})
	if err != nil {
		return err
	}
	pc.mu.Lock()
	for i, e := range built {
		if e != nil && pc.entries[srcs[i]] == nil {
			pc.entries[srcs[i]] = e
		}
	}
	pc.mu.Unlock()
	return nil
}

func (pc *PathCache) peek(src int) *pathEntry {
	pc.mu.Lock()
	e := pc.entries[src]
	pc.mu.Unlock()
	return e
}

func (pc *PathCache) entry(src int) *pathEntry {
	if e := pc.peek(src); e != nil {
		return e
	}
	e := pc.build(src)
	pc.mu.Lock()
	if prev := pc.entries[src]; prev != nil {
		e = prev
	} else {
		pc.entries[src] = e
	}
	pc.mu.Unlock()
	return e
}

func (pc *PathCache) build(src int) *pathEntry {
	hop := pc.g.HopDistances(src)
	buckets := make([][]int, pc.g.n+1)
	total := 0
	for v := 0; v < pc.g.n; v++ {
		if h := hop[v]; h != Unreachable && h > 0 {
			buckets[h] = append(buckets[h], v)
			total++
		}
	}
	order := make([]int, 0, total)
	for h := 1; h <= pc.g.n; h++ {
		order = append(order, buckets[h]...)
	}
	return &pathEntry{hop: hop, order: order}
}

// NodeCostPaths is the cached equivalent of Graph.NodeCostPaths: same
// inputs, byte-identical outputs, but the BFS and ordering work is done at
// most once per source.
func (pc *PathCache) NodeCostPaths(src int, weight []float64) (cost []float64, pred []int) {
	n := pc.g.n
	cost = make([]float64, n)
	pred = make([]int, n)
	for i := range cost {
		cost[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= n {
		return cost, pred
	}
	e := pc.entry(src)
	cost[src] = weight[src]
	for _, v := range e.order {
		hv := e.hop[v]
		for _, u := range pc.g.adj[v] {
			if e.hop[u] != hv-1 || cost[u] == Infinite {
				continue
			}
			if c := cost[u] + weight[v]; c < cost[v] {
				cost[v] = c
				pred[v] = u
			}
		}
	}
	cost[src] = 0
	return cost, pred
}

// HopDistances returns the cached BFS hop distances from src (building the
// entry if needed). The returned slice is shared with the cache and must
// not be modified.
func (pc *PathCache) HopDistances(src int) []int {
	if src < 0 || src >= pc.g.n {
		return pc.g.HopDistances(src)
	}
	return pc.entry(src).hop
}

// AllPairsHopsCtx is AllPairsHops with the per-source BFS fanned out over p
// and cancellation via ctx. The matrix is identical to AllPairsHops; on a
// cancelled context it returns nil and ctx.Err().
func (g *Graph) AllPairsHopsCtx(ctx context.Context, p *pool.Pool) ([][]int, error) {
	all := make([][]int, g.n)
	if err := p.ForEach(ctx, g.n, func(v int) {
		all[v] = g.HopDistances(v)
	}); err != nil {
		return nil, err
	}
	return all, nil
}
