package graph

import (
	"context"
	"sync"

	"repro/internal/pool"
)

// PathCache memoises the topology-dependent half of NodeCostPaths: the BFS
// hop distances from each source and the layered visitation order derived
// from them. Those depend only on the graph, while the node weights change
// on every chunk (the fairness feedback S(i) moves), so the per-chunk work
// drops to a single cost sweep over the cached order.
//
// The replayed sweep visits nodes in exactly the order the counting sort in
// NodeCostPaths produces (ascending hop layer, ascending node id within a
// layer) and scans adjacency lists in the same order, so cached results are
// byte-identical to the uncached routine.
//
// A PathCache must only be used with the graph it was created for, and that
// graph must not gain edges afterwards. Entries build lazily and are safe
// for concurrent use.
type PathCache struct {
	g  *Graph
	mu sync.Mutex
	// entries[src] is nil until the first query from src.
	entries []*pathEntry
}

type pathEntry struct {
	hop []int
	// order lists every node reachable from src except src itself, in
	// ascending hop order with ascending node id inside each layer — the
	// flattening of the counting-sort buckets in NodeCostPaths.
	order []int
}

// NewPathCache returns an empty cache over g. Entries are built on demand.
func NewPathCache(g *Graph) *PathCache {
	return &PathCache{g: g, entries: make([]*pathEntry, g.n)}
}

// Warm prebuilds the entries for the given sources (all nodes when srcs is
// nil), fanning the per-source BFS out over p. It returns early with
// ctx.Err() if the context is cancelled; already-built entries stay valid.
func (pc *PathCache) Warm(ctx context.Context, p *pool.Pool, srcs []int) error {
	if srcs == nil {
		srcs = make([]int, pc.g.n)
		for i := range srcs {
			srcs[i] = i
		}
	}
	built := make([]*pathEntry, len(srcs))
	err := p.ForEach(ctx, len(srcs), func(i int) {
		src := srcs[i]
		if src < 0 || src >= pc.g.n || pc.peek(src) != nil {
			return
		}
		built[i] = pc.build(src)
	})
	if err != nil {
		return err
	}
	pc.mu.Lock()
	for i, e := range built {
		if e != nil && pc.entries[srcs[i]] == nil {
			pc.entries[srcs[i]] = e
		}
	}
	pc.mu.Unlock()
	return nil
}

func (pc *PathCache) peek(src int) *pathEntry {
	pc.mu.Lock()
	e := pc.entries[src]
	pc.mu.Unlock()
	return e
}

func (pc *PathCache) entry(src int) *pathEntry {
	if e := pc.peek(src); e != nil {
		return e
	}
	e := pc.build(src)
	pc.mu.Lock()
	if prev := pc.entries[src]; prev != nil {
		e = prev
	} else {
		pc.entries[src] = e
	}
	pc.mu.Unlock()
	return e
}

func (pc *PathCache) build(src int) *pathEntry {
	hop := pc.g.HopDistances(src)
	buckets := make([][]int, pc.g.n+1)
	total := 0
	for v := 0; v < pc.g.n; v++ {
		if h := hop[v]; h != Unreachable && h > 0 {
			buckets[h] = append(buckets[h], v)
			total++
		}
	}
	order := make([]int, 0, total)
	for h := 1; h <= pc.g.n; h++ {
		order = append(order, buckets[h]...)
	}
	return &pathEntry{hop: hop, order: order}
}

// NodeCostPaths is the cached equivalent of Graph.NodeCostPaths: same
// inputs, byte-identical outputs, but the BFS and ordering work is done at
// most once per source.
func (pc *PathCache) NodeCostPaths(src int, weight []float64) (cost []float64, pred []int32) {
	n := pc.g.n
	cost = make([]float64, n)
	pred = make([]int32, n)
	pc.NodeCostPathsInto(src, weight, cost, pred)
	return cost, pred
}

// NodeCostPathsInto is NodeCostPaths writing into caller-owned slices (both
// of length NumNodes), so row storage can be reused across refreshes instead
// of reallocated — the costmodel passes stride-indexed views into its flat
// matrices. The results are byte-identical to NodeCostPaths.
func (pc *PathCache) NodeCostPathsInto(src int, weight []float64, cost []float64, pred []int32) {
	n := pc.g.n
	for i := 0; i < n; i++ {
		cost[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= n {
		return
	}
	e := pc.entry(src)
	cost[src] = weight[src]
	for _, v := range e.order {
		hv := e.hop[v]
		for _, u := range pc.g.adj[v] {
			if e.hop[u] != hv-1 || cost[u] == Infinite {
				continue
			}
			if c := cost[u] + weight[v]; c < cost[v] {
				cost[v] = c
				pred[v] = int32(u)
			}
		}
	}
	cost[src] = 0
}

// RepairScratch carries the reusable dirty-frontier bookkeeping of
// RepairNodeCostPaths: per-layer pending buckets and an epoch-stamped
// membership mark. One scratch serves any number of sequential repairs over
// the same graph size; concurrent repairs need one scratch each.
type RepairScratch struct {
	buckets [][]int
	mark    []int
	epoch   int
}

// NewRepairScratch returns a scratch for repairs over an n-node graph.
func NewRepairScratch(n int) *RepairScratch {
	return &RepairScratch{
		buckets: make([][]int, n+1),
		mark:    make([]int, n),
	}
}

// RepairNodeCostPaths incrementally updates a (cost, pred) row previously
// produced by NodeCostPaths(src, old weights) so it matches
// NodeCostPaths(src, weight), where the weights differ from the old ones
// only at the nodes listed in changed and delta[k] holds each changed
// node's weight difference (new − old). Only the dirty cone is revisited:
// the changed nodes themselves and, layer by layer, the nodes whose cheapest
// value actually moved — unchanged subtrees are never touched. It returns
// the number of cells recomputed.
//
// A weight change at the source shifts every finite cell by the same
// amount, which is applied analytically. With integer-valued weights (the
// contention model's deg·(1+S) always is) every partial sum is exactly
// representable, so the repaired row is byte-identical to a from-scratch
// sweep — the costmodel equivalence tests assert exactly that. The caller
// is responsible for falling back to NodeCostPathsInto when it cannot
// guarantee that precondition.
func (pc *PathCache) RepairNodeCostPaths(src int, weight []float64, changed []int, delta []float64, cost []float64, pred []int32, s *RepairScratch) int {
	n := pc.g.n
	if src < 0 || src >= n {
		return 0
	}
	e := pc.entry(src)

	// Source-weight shift: every path from src starts with w_src, so all
	// reachable cells move in lockstep and path choices are unaffected.
	for _, k := range changed {
		if k != src || delta[k] == 0 {
			continue
		}
		for _, v := range e.order {
			if cost[v] != Infinite {
				cost[v] += delta[k]
			}
		}
	}

	// Seed the frontier with the changed nodes (their own cell definitely
	// moved); the loop below carries the disturbance to deeper layers only
	// where a cell's value actually changed.
	s.epoch++
	maxLayer := 0
	touched := 0
	for _, k := range changed {
		if k == src {
			continue
		}
		h := e.hop[k]
		if h <= 0 || s.mark[k] == s.epoch {
			continue
		}
		s.mark[k] = s.epoch
		s.buckets[h] = append(s.buckets[h], k)
		if h > maxLayer {
			maxLayer = h
		}
	}
	for h := 1; h <= maxLayer; h++ {
		for idx := 0; idx < len(s.buckets[h]); idx++ {
			v := s.buckets[h][idx]
			oldCost := cost[v]
			// Recompute exactly as the full sweep would: scan previous-layer
			// neighbors in adjacency order, strict improvement wins — so
			// tie-breaks (and therefore pred) match byte for byte.
			newCost, newPred := Infinite, int32(-1)
			wv := weight[v]
			for _, u := range pc.g.adj[v] {
				if e.hop[u] != h-1 {
					continue
				}
				cu := cost[u]
				if u == src {
					// The stored row holds 0 for the source; the sweep's
					// internal base value is its weight.
					cu = weight[src]
				}
				if cu == Infinite {
					continue
				}
				if c := cu + wv; c < newCost {
					newCost, newPred = c, int32(u)
				}
			}
			touched++
			cost[v], pred[v] = newCost, newPred
			if newCost == oldCost {
				continue
			}
			for _, d := range pc.g.adj[v] {
				hd := e.hop[d]
				if hd != h+1 || s.mark[d] == s.epoch {
					continue
				}
				s.mark[d] = s.epoch
				s.buckets[hd] = append(s.buckets[hd], d)
				if hd > maxLayer {
					maxLayer = hd
				}
			}
		}
		s.buckets[h] = s.buckets[h][:0]
	}
	return touched
}

// Reset drops every memoised entry and rebinds the cache to g — the hook
// for topology swaps (device mobility in the online system), where keeping
// per-source entries for a graph that no longer exists would both serve
// wrong answers and grow memory without bound across swaps. Reset must not
// race with readers; the single-writer owners (the online system, the
// per-topology server workers) guarantee that.
func (pc *PathCache) Reset(g *Graph) {
	pc.mu.Lock()
	pc.g = g
	pc.entries = make([]*pathEntry, g.n)
	pc.mu.Unlock()
}

// Cached returns the number of per-source entries currently built — the
// observable for growth audits and the post-swap regression test.
func (pc *PathCache) Cached() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	count := 0
	for _, e := range pc.entries {
		if e != nil {
			count++
		}
	}
	return count
}

// HopDistances returns the cached BFS hop distances from src (building the
// entry if needed). The returned slice is shared with the cache and must
// not be modified.
func (pc *PathCache) HopDistances(src int) []int {
	if src < 0 || src >= pc.g.n {
		return pc.g.HopDistances(src)
	}
	return pc.entry(src).hop
}

// AllPairsHopsCtx is AllPairsHops with the per-source BFS fanned out over p
// and cancellation via ctx. The matrix is identical to AllPairsHops; on a
// cancelled context it returns nil and ctx.Err().
func (g *Graph) AllPairsHopsCtx(ctx context.Context, p *pool.Pool) ([][]int, error) {
	all := make([][]int, g.n)
	if err := p.ForEach(ctx, g.n, func(v int) {
		all[v] = g.HopDistances(v)
	}); err != nil {
		return nil, err
	}
	return all, nil
}
