package graph

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// NewGrid returns a rows×cols grid network: node r*cols+c connects to its
// four lattice neighbors (fewer on the boundary), matching the grid
// topologies of the paper's evaluation.
func NewGrid(rows, cols int) *Graph {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				_ = g.AddEdge(v, v+1) // in range by construction
			}
			if r+1 < rows {
				_ = g.AddEdge(v, v+cols)
			}
		}
	}
	return g
}

// Point is a node position in the unit square, used by the random
// geometric generator.
type Point struct {
	X, Y float64
}

// RandomGeometric describes a random geometric network: n nodes placed
// uniformly in the unit square, with an edge between every pair within
// Radius. This is the paper's "random network" model ("nodes within a
// certain range are connected").
type RandomGeometric struct {
	N      int
	Radius float64
}

// maxGeometricTries bounds resampling before falling back to stitching
// components together.
const maxGeometricTries = 64

// Generate draws a connected random geometric graph using rng. If Radius is
// too small to yield a connected sample after several tries, the nearest
// pair of distinct components is bridged (shortest such edge first) until
// the graph is connected, so callers always receive a connected topology as
// the paper's setup requires. It also returns the node positions.
func (rg RandomGeometric) Generate(rng *rand.Rand) (*Graph, []Point, error) {
	if rg.N <= 0 {
		return nil, nil, fmt.Errorf("graph: random geometric needs n > 0, got %d", rg.N)
	}
	if rg.Radius <= 0 {
		return nil, nil, fmt.Errorf("graph: random geometric needs radius > 0, got %g", rg.Radius)
	}
	var (
		g   *Graph
		pts []Point
	)
	for try := 0; try < maxGeometricTries; try++ {
		pts = samplePoints(rg.N, rng)
		g = connectWithin(pts, rg.Radius)
		if g.Connected() {
			return g, pts, nil
		}
	}
	bridgeComponents(g, pts)
	return g, pts, nil
}

// defaultTargetDegree keeps random geometric graphs in the sparse
// multi-hop regime of wireless simulations (grid-like node degrees).
const defaultTargetDegree = 6

// DefaultRadius returns a connectivity radius giving an expected node
// degree of about 6, the sparse multi-hop regime the paper's wireless
// scenarios live in (a grid has degree ≤ 4). Samples that come out
// disconnected at this radius are stitched by Generate's bridging step,
// so connectivity is still guaranteed.
func DefaultRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(defaultTargetDegree / (math.Pi * float64(n)))
}

func samplePoints(n int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func connectWithin(pts []Point, radius float64) *Graph {
	g := New(len(pts))
	r2 := radius * radius
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if sqDist(pts[i], pts[j]) <= r2 {
				_ = g.AddEdge(i, j) // in range by construction
			}
		}
	}
	return g
}

// bridgeComponents adds the geometrically shortest inter-component edge
// until g is connected.
func bridgeComponents(g *Graph, pts []Point) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		// Components are ordered by smallest node; connect the first to its
		// geometrically nearest other component.
		compID := make([]int, g.NumNodes())
		for id, comp := range comps {
			for _, v := range comp {
				compID[v] = id
			}
		}
		bestU, bestV := -1, -1
		bestD := math.Inf(1)
		for _, u := range comps[0] {
			for v := 0; v < g.NumNodes(); v++ {
				if compID[v] == 0 {
					continue
				}
				if d := sqDist(pts[u], pts[v]); d < bestD {
					bestD, bestU, bestV = d, u, v
				}
			}
		}
		_ = g.AddEdge(bestU, bestV) // endpoints valid: picked from node range
	}
}

func sqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// CentralNode returns the node with the smallest total hop distance to all
// other nodes (a natural producer choice on random topologies), breaking
// ties toward the smaller id.
func CentralNode(g *Graph) int {
	best, bestSum := 0, math.MaxInt64
	for v := 0; v < g.NumNodes(); v++ {
		sum := 0
		for _, d := range g.HopDistances(v) {
			if d == Unreachable {
				sum = math.MaxInt64
				break
			}
			sum += d
		}
		if sum < bestSum {
			best, bestSum = v, sum
		}
	}
	return best
}

// DegreeSequence returns the sorted (ascending) degree sequence, useful for
// characterising generated topologies in tests and experiments.
func DegreeSequence(g *Graph) []int {
	deg := make([]int, g.NumNodes())
	for v := range deg {
		deg[v] = g.Degree(v)
	}
	slices.Sort(deg)
	return deg
}
