// Package graph provides the undirected network-topology substrate used by
// every layer of the fair-caching system: grid and random-geometric
// generators, hop-count and weighted shortest paths, connectivity queries
// and k-hop neighborhoods.
//
// Nodes are dense integers in [0, N). The graph is simple (no self loops,
// no parallel edges) and undirected.
package graph

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
)

// Edge is an undirected edge between nodes U and V with U < V.
type Edge struct {
	U, V int
}

// Canonical returns e with its endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v.
// It panics if v is not an endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", v, e))
	}
}

// Graph is a simple undirected graph over nodes 0..n-1.
//
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count.
type Graph struct {
	n     int
	adj   [][]int
	edges []Edge
}

// ErrNodeOutOfRange reports an edge endpoint outside [0, N).
var ErrNodeOutOfRange = errors.New("graph: node out of range")

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v}. Inserting an existing edge or
// a self loop is a no-op. It returns ErrNodeOutOfRange if either endpoint is
// outside [0, N).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: edge {%d,%d} in graph of %d nodes", ErrNodeOutOfRange, u, v, g.n)
	}
	if u == v || g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges = append(g.edges, Edge{U: u, V: v}.Canonical())
	return nil
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Neighbors returns the neighbors of v. The returned slice is shared with
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of neighbors of v. In the contention model of
// the paper this is the Node Contention Cost w_v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns a copy of the edge list with canonical (U < V) endpoints,
// sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	slices.SortFunc(out, func(a, b Edge) int {
		if a.U != b.U {
			return cmp.Compare(a.U, b.U)
		}
		return cmp.Compare(a.V, b.V)
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for v, nbrs := range g.adj {
		c.adj[v] = append([]int(nil), nbrs...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep, together with a
// mapping from new node ids to original ids. Nodes are renumbered densely
// in increasing original-id order.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	orig := append([]int(nil), keep...)
	slices.Sort(orig)
	// Drop duplicates.
	orig = dedupSortedInts(orig)
	index := make(map[int]int, len(orig))
	for i, v := range orig {
		index[v] = i
	}
	sub := New(len(orig))
	for _, e := range g.edges {
		iu, uok := index[e.U]
		iv, vok := index[e.V]
		if uok && vok {
			_ = sub.AddEdge(iu, iv) // endpoints are in range by construction
		}
	}
	return sub, orig
}

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.componentOf(0)) == g.n
}

// Components returns the connected components as slices of node ids, each
// sorted, ordered by their smallest node id.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		comp := g.componentOf(v)
		for _, u := range comp {
			seen[u] = true
		}
		slices.Sort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// LargestComponent returns the nodes of the largest connected component,
// sorted. Ties break toward the component containing the smallest node id.
func (g *Graph) LargestComponent() []int {
	var best []int
	for _, comp := range g.Components() {
		if len(comp) > len(best) {
			best = comp
		}
	}
	return best
}

func (g *Graph) componentOf(start int) []int {
	seen := make([]bool, g.n)
	queue := []int{start}
	seen[start] = true
	var comp []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		comp = append(comp, v)
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return comp
}

// Unreachable marks an unreachable node in hop-distance results.
const Unreachable = -1

// HopDistances returns the BFS hop distance from src to every node.
// Unreachable nodes get Unreachable (-1).
func (g *Graph) HopDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiSourceHopDistances returns, for every node, the BFS hop distance to
// the nearest of srcs (0 for the sources themselves). Out-of-range sources
// are ignored; nodes unreachable from every source — and every node when no
// valid source is given — get Unreachable (-1). Sources are seeded in
// ascending id order, so ties in the BFS frontier resolve deterministically.
func (g *Graph) MultiSourceHopDistances(srcs []int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	seeds := append([]int(nil), srcs...)
	slices.Sort(seeds)
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= g.n || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// AllPairsHops returns the hop-distance matrix via repeated BFS
// (O(N·(N+E)), faster than Floyd–Warshall on sparse wireless topologies).
// Unreachable pairs get Unreachable (-1).
func (g *Graph) AllPairsHops() [][]int {
	all := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		all[v] = g.HopDistances(v)
	}
	return all
}

// KHopNeighbors returns all nodes within k hops of v, excluding v itself,
// sorted by node id.
func (g *Graph) KHopNeighbors(v, k int) []int {
	if k <= 0 || v < 0 || v >= g.n {
		return nil
	}
	dist := g.boundedHopDistances(v, k)
	var out []int
	for u, d := range dist {
		if u != v && d != Unreachable {
			out = append(out, u)
		}
	}
	return out
}

// boundedHopDistances is BFS from src truncated at maxHops.
func (g *Graph) boundedHopDistances(src, maxHops int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if dist[v] == maxHops {
			continue
		}
		for _, w := range g.adj[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func dedupSortedInts(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
