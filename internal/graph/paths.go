package graph

import (
	"math"
)

// Infinite is the distance reported for unreachable pairs by the weighted
// shortest-path routines.
var Infinite = math.Inf(1)

// NodeCostPaths computes, for every destination t, the minimum total node
// weight of a *hop-shortest* path from src to t, where the total includes
// the weights of both endpoints. The cost from src to itself is 0.
//
// This matches the paper's Path Contention Cost (Eq. 2): data packets
// travel along the shortest hop path, and every node on the path (sender,
// relays and receiver all transmit or receive the chunk) contributes its
// node contention cost. Among equal-hop paths the cheapest one is chosen,
// which makes the matrix deterministic.
//
// The second return value gives, for each destination, a predecessor on the
// chosen path (-1 for src and unreachable nodes), so the path itself can be
// reconstructed.
func (g *Graph) NodeCostPaths(src int, weight []float64) (cost []float64, pred []int32) {
	cost = make([]float64, g.n)
	pred = make([]int32, g.n)
	for i := range cost {
		cost[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= g.n {
		return cost, pred
	}

	hop := g.HopDistances(src)
	// Process nodes in increasing hop order; within a layer, each node's
	// cost is min over predecessors in the previous layer.
	order := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if hop[v] != Unreachable {
			order = append(order, v)
		}
	}
	// Counting-sort by hop distance (hop values are < n).
	buckets := make([][]int, g.n+1)
	for _, v := range order {
		buckets[hop[v]] = append(buckets[hop[v]], v)
	}

	cost[src] = weight[src]
	for h := 1; h <= g.n; h++ {
		for _, v := range buckets[h] {
			for _, u := range g.adj[v] {
				if hop[u] != h-1 || cost[u] == Infinite {
					continue
				}
				if c := cost[u] + weight[v]; c < cost[v] {
					cost[v] = c
					pred[v] = int32(u)
				}
			}
		}
	}
	cost[src] = 0 // a node already holding the data pays nothing
	return cost, pred
}

// PathTo reconstructs the node sequence from the source used to build pred
// to dst (inclusive of both endpoints). It returns nil if dst is
// unreachable. Predecessor rows use int32 node ids on the hot path and int
// elsewhere; both instantiate here.
func PathTo[T ~int | ~int32](pred []T, src, dst int) []int {
	if dst < 0 || dst >= len(pred) {
		return nil
	}
	if dst == src {
		return []int{src}
	}
	if pred[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = int(pred[v]) {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgeWeightFunc gives the cost of traversing the undirected edge {u, v}.
// It must be symmetric and non-negative.
type EdgeWeightFunc func(u, v int) float64

// Dijkstra computes edge-weighted shortest-path distances and predecessors
// from src using the supplied edge weights. Unreachable nodes get Infinite
// distance and predecessor -1.
func (g *Graph) Dijkstra(src int, w EdgeWeightFunc) (dist []float64, pred []int) {
	dist = make([]float64, g.n)
	pred32 := make([]int32, g.n)
	g.DijkstraInto(src, w, dist, pred32, nil)
	pred = make([]int, g.n)
	for i, p := range pred32 {
		pred[i] = int(p)
	}
	return dist, pred
}

// DijkstraScratch is the reusable priority-queue storage of DijkstraInto.
// One scratch serves any number of sequential runs; concurrent runs need
// one scratch each (the steiner fan-out keeps one per pool worker).
type DijkstraScratch struct {
	items []distItem
}

// DijkstraInto is Dijkstra writing into caller-owned rows (both of length
// NumNodes) with the priority queue borrowed from s (nil allocates a
// transient one). The heap replicates container/heap's sift order exactly,
// so distances, predecessors and tie-breaks are byte-identical to Dijkstra
// — the determinism suites replay placements bit for bit.
func (g *Graph) DijkstraInto(src int, w EdgeWeightFunc, dist []float64, pred []int32, s *DijkstraScratch) {
	for i := range dist {
		dist[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= g.n {
		return
	}
	if s == nil {
		s = &DijkstraScratch{}
	}
	dist[src] = 0
	h := s.items[:0]
	h = append(h, distItem{node: int32(src), dist: 0})
	for len(h) > 0 {
		// Pop: swap root with last, sift down over the shrunk heap, take
		// the detached last element — container/heap.Pop verbatim.
		n := len(h) - 1
		h[0], h[n] = h[n], h[0]
		heapDown(h[:n], 0)
		it := h[n]
		h = h[:n]
		if it.dist > dist[it.node] {
			continue
		}
		for _, v := range g.adj[it.node] {
			if d := it.dist + w(int(it.node), v); d < dist[v] {
				dist[v] = d
				pred[v] = it.node
				h = append(h, distItem{node: int32(v), dist: d})
				heapUp(h, len(h)-1)
			}
		}
	}
	s.items = h[:0]
}

type distItem struct {
	node int32
	dist float64
}

func heapUp(h []distItem, j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func heapDown(h []distItem, i int) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// FloydWarshallHops computes the all-pairs hop-distance matrix with the
// classic O(N^3) dynamic program. It exists alongside AllPairsHops (which
// is faster on sparse graphs) because the paper's complexity analysis
// references Floyd–Warshall; tests assert the two agree.
func (g *Graph) FloydWarshallHops() [][]int {
	const inf = math.MaxInt32 / 4
	d := make([][]int, g.n)
	for i := range d {
		d[i] = make([]int, g.n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for _, e := range g.edges {
		d[e.U][e.V] = 1
		d[e.V][e.U] = 1
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if dik >= inf {
				continue
			}
			for j := 0; j < g.n; j++ {
				if v := dik + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= inf {
				d[i][j] = Unreachable
			}
		}
	}
	return d
}
