package graph

import (
	"container/heap"
	"math"
)

// Infinite is the distance reported for unreachable pairs by the weighted
// shortest-path routines.
var Infinite = math.Inf(1)

// NodeCostPaths computes, for every destination t, the minimum total node
// weight of a *hop-shortest* path from src to t, where the total includes
// the weights of both endpoints. The cost from src to itself is 0.
//
// This matches the paper's Path Contention Cost (Eq. 2): data packets
// travel along the shortest hop path, and every node on the path (sender,
// relays and receiver all transmit or receive the chunk) contributes its
// node contention cost. Among equal-hop paths the cheapest one is chosen,
// which makes the matrix deterministic.
//
// The second return value gives, for each destination, a predecessor on the
// chosen path (-1 for src and unreachable nodes), so the path itself can be
// reconstructed.
func (g *Graph) NodeCostPaths(src int, weight []float64) (cost []float64, pred []int) {
	cost = make([]float64, g.n)
	pred = make([]int, g.n)
	for i := range cost {
		cost[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= g.n {
		return cost, pred
	}

	hop := g.HopDistances(src)
	// Process nodes in increasing hop order; within a layer, each node's
	// cost is min over predecessors in the previous layer.
	order := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if hop[v] != Unreachable {
			order = append(order, v)
		}
	}
	// Counting-sort by hop distance (hop values are < n).
	buckets := make([][]int, g.n+1)
	for _, v := range order {
		buckets[hop[v]] = append(buckets[hop[v]], v)
	}

	cost[src] = weight[src]
	for h := 1; h <= g.n; h++ {
		for _, v := range buckets[h] {
			for _, u := range g.adj[v] {
				if hop[u] != h-1 || cost[u] == Infinite {
					continue
				}
				if c := cost[u] + weight[v]; c < cost[v] {
					cost[v] = c
					pred[v] = u
				}
			}
		}
	}
	cost[src] = 0 // a node already holding the data pays nothing
	return cost, pred
}

// PathTo reconstructs the node sequence from the source used to build pred
// to dst (inclusive of both endpoints). It returns nil if dst is
// unreachable.
func PathTo(pred []int, src, dst int) []int {
	if dst < 0 || dst >= len(pred) {
		return nil
	}
	if dst == src {
		return []int{src}
	}
	if pred[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = pred[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgeWeightFunc gives the cost of traversing the undirected edge {u, v}.
// It must be symmetric and non-negative.
type EdgeWeightFunc func(u, v int) float64

// Dijkstra computes edge-weighted shortest-path distances and predecessors
// from src using the supplied edge weights. Unreachable nodes get Infinite
// distance and predecessor -1.
func (g *Graph) Dijkstra(src int, w EdgeWeightFunc) (dist []float64, pred []int) {
	dist = make([]float64, g.n)
	pred = make([]int, g.n)
	for i := range dist {
		dist[i] = Infinite
		pred[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist, pred
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, v := range g.adj[it.node] {
			if d := it.dist + w(it.node, v); d < dist[v] {
				dist[v] = d
				pred[v] = it.node
				heap.Push(pq, distItem{node: v, dist: d})
			}
		}
	}
	return dist, pred
}

type distItem struct {
	node int
	dist float64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// FloydWarshallHops computes the all-pairs hop-distance matrix with the
// classic O(N^3) dynamic program. It exists alongside AllPairsHops (which
// is faster on sparse graphs) because the paper's complexity analysis
// references Floyd–Warshall; tests assert the two agree.
func (g *Graph) FloydWarshallHops() [][]int {
	const inf = math.MaxInt32 / 4
	d := make([][]int, g.n)
	for i := range d {
		d[i] = make([]int, g.n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for _, e := range g.edges {
		d[e.U][e.V] = 1
		d[e.V][e.U] = 1
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if dik >= inf {
				continue
			}
			for j := 0; j < g.n; j++ {
				if v := dik + d[k][j]; v < d[i][j] {
					d[i][j] = v
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= inf {
				d[i][j] = Unreachable
			}
		}
	}
	return d
}
