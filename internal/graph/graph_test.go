package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridShape(t *testing.T) {
	tests := []struct {
		rows, cols    int
		wantNodes     int
		wantEdges     int
		wantCornerDeg int
		wantInnerDeg  int
	}{
		{rows: 1, cols: 1, wantNodes: 1, wantEdges: 0, wantCornerDeg: 0, wantInnerDeg: 0},
		{rows: 2, cols: 2, wantNodes: 4, wantEdges: 4, wantCornerDeg: 2, wantInnerDeg: 2},
		{rows: 3, cols: 3, wantNodes: 9, wantEdges: 12, wantCornerDeg: 2, wantInnerDeg: 4},
		{rows: 4, cols: 6, wantNodes: 24, wantEdges: 38, wantCornerDeg: 2, wantInnerDeg: 4},
		{rows: 6, cols: 6, wantNodes: 36, wantEdges: 60, wantCornerDeg: 2, wantInnerDeg: 4},
	}
	for _, tt := range tests {
		g := NewGrid(tt.rows, tt.cols)
		if g.NumNodes() != tt.wantNodes {
			t.Errorf("NewGrid(%d,%d).NumNodes() = %d, want %d", tt.rows, tt.cols, g.NumNodes(), tt.wantNodes)
		}
		if g.NumEdges() != tt.wantEdges {
			t.Errorf("NewGrid(%d,%d).NumEdges() = %d, want %d", tt.rows, tt.cols, g.NumEdges(), tt.wantEdges)
		}
		if g.NumNodes() > 0 && g.Degree(0) != tt.wantCornerDeg {
			t.Errorf("NewGrid(%d,%d) corner degree = %d, want %d", tt.rows, tt.cols, g.Degree(0), tt.wantCornerDeg)
		}
		if tt.rows >= 3 && tt.cols >= 3 {
			inner := 1*tt.cols + 1
			if g.Degree(inner) != tt.wantInnerDeg {
				t.Errorf("NewGrid(%d,%d) inner degree = %d, want %d", tt.rows, tt.cols, g.Degree(inner), tt.wantInnerDeg)
			}
		}
		if !g.Connected() {
			t.Errorf("NewGrid(%d,%d) not connected", tt.rows, tt.cols)
		}
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("AddEdge(0,3) on 3-node graph: want error, got nil")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("AddEdge(-1,0): want error, got nil")
	}
	if err := g.AddEdge(1, 1); err != nil {
		t.Errorf("AddEdge self loop: want silent no-op, got %v", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("self loop added an edge: NumEdges() = %d", g.NumEdges())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatalf("duplicate AddEdge(1,0): %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge inserted: NumEdges() = %d, want 1", g.NumEdges())
	}
}

func TestEdgeCanonicalAndOther(t *testing.T) {
	e := Edge{U: 5, V: 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Errorf("Canonical() = %v, want {2 5}", e)
	}
	if got := e.Other(2); got != 5 {
		t.Errorf("Other(2) = %d, want 5", got)
	}
	if got := e.Other(5); got != 2 {
		t.Errorf("Other(5) = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Other(non-endpoint) did not panic")
		}
	}()
	e.Other(7)
}

func TestHopDistancesOnGrid(t *testing.T) {
	g := NewGrid(3, 3)
	d := g.HopDistances(0)
	want := []int{0, 1, 2, 1, 2, 3, 2, 3, 4}
	for v, wd := range want {
		if d[v] != wd {
			t.Errorf("HopDistances(0)[%d] = %d, want %d", v, d[v], wd)
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	d := g.HopDistances(0)
	if d[2] != Unreachable || d[3] != Unreachable {
		t.Errorf("disconnected nodes: got %v, want Unreachable for 2 and 3", d)
	}
}

func TestAllPairsHopsMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(rng, 2+rng.Intn(20))
		bfs := g.AllPairsHops()
		fw := g.FloydWarshallHops()
		for i := range bfs {
			for j := range bfs[i] {
				if bfs[i][j] != fw[i][j] {
					t.Fatalf("trial %d: hops(%d,%d) BFS=%d FW=%d", trial, i, j, bfs[i][j], fw[i][j])
				}
			}
		}
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() count = %d, want 3", len(comps))
	}
	if got := g.LargestComponent(); len(got) != 3 || got[0] != 0 {
		t.Errorf("LargestComponent() = %v, want [0 1 2]", got)
	}
	if g.Connected() {
		t.Error("Connected() = true on disconnected graph")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewGrid(2, 3) // nodes 0..5
	sub, orig := g.InducedSubgraph([]int{0, 1, 4, 4, 3})
	if sub.NumNodes() != 4 {
		t.Fatalf("sub.NumNodes() = %d, want 4 (dup removed)", sub.NumNodes())
	}
	wantOrig := []int{0, 1, 3, 4}
	for i, v := range wantOrig {
		if orig[i] != v {
			t.Errorf("orig[%d] = %d, want %d", i, orig[i], v)
		}
	}
	// Edges within {0,1,3,4}: 0-1, 0-3, 1-4, 3-4.
	if sub.NumEdges() != 4 {
		t.Errorf("sub.NumEdges() = %d, want 4", sub.NumEdges())
	}
}

func TestKHopNeighbors(t *testing.T) {
	g := NewGrid(3, 3)
	center := 4
	oneHop := g.KHopNeighbors(center, 1)
	if len(oneHop) != 4 {
		t.Errorf("KHopNeighbors(4,1) = %v, want 4 nodes", oneHop)
	}
	twoHop := g.KHopNeighbors(center, 2)
	if len(twoHop) != 8 {
		t.Errorf("KHopNeighbors(4,2) = %v, want all 8 other nodes", twoHop)
	}
	if got := g.KHopNeighbors(center, 0); got != nil {
		t.Errorf("KHopNeighbors(4,0) = %v, want nil", got)
	}
}

func TestNodeCostPathsUniformWeightsMatchHops(t *testing.T) {
	g := NewGrid(4, 4)
	w := make([]float64, g.NumNodes())
	for i := range w {
		w[i] = 1
	}
	for src := 0; src < g.NumNodes(); src++ {
		hops := g.HopDistances(src)
		cost, pred := g.NodeCostPaths(src, w)
		for dst := 0; dst < g.NumNodes(); dst++ {
			// Unit node weights with both endpoints counted: cost = hops+1
			// for dst != src, 0 for dst == src.
			want := float64(hops[dst] + 1)
			if dst == src {
				want = 0
			}
			if cost[dst] != want {
				t.Fatalf("NodeCostPaths(%d)[%d] = %g, want %g", src, dst, cost[dst], want)
			}
			path := PathTo(pred, src, dst)
			if len(path) != hops[dst]+1 {
				t.Fatalf("PathTo(%d,%d) length = %d, want %d", src, dst, len(path), hops[dst]+1)
			}
		}
	}
}

func TestNodeCostPathsPrefersCheapEqualHopPath(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3, both 2 hops; node 2 is cheap.
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	w := []float64{1, 100, 1, 1}
	cost, pred := g.NodeCostPaths(0, w)
	if cost[3] != 3 { // w0 + w2 + w3
		t.Errorf("cost[3] = %g, want 3 (via cheap node 2)", cost[3])
	}
	path := PathTo(pred, 0, 3)
	if len(path) != 3 || path[1] != 2 {
		t.Errorf("PathTo = %v, want [0 2 3]", path)
	}
}

func TestNodeCostPathsUnreachable(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	cost, pred := g.NodeCostPaths(0, []float64{1, 1, 1})
	if cost[2] != Infinite {
		t.Errorf("cost[2] = %g, want +Inf", cost[2])
	}
	if got := PathTo(pred, 0, 2); got != nil {
		t.Errorf("PathTo unreachable = %v, want nil", got)
	}
}

func TestDijkstraOnWeightedDiamond(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	w := func(u, v int) float64 {
		if u > v {
			u, v = v, u
		}
		if u == 0 && v == 1 {
			return 10
		}
		return 1
	}
	dist, pred := g.Dijkstra(0, w)
	if dist[3] != 2 {
		t.Errorf("dist[3] = %g, want 2", dist[3])
	}
	if path := PathTo(pred, 0, 3); len(path) != 3 || path[1] != 2 {
		t.Errorf("path = %v, want [0 2 3]", path)
	}
	if dist[1] != 3 { // via 0-2-3-1? no: 0-2(1)-3(1)-1(1) = 3 < direct 10
		t.Errorf("dist[1] = %g, want 3", dist[1])
	}
}

func TestCentralNodeOnGrid(t *testing.T) {
	g := NewGrid(3, 3)
	if got := CentralNode(g); got != 4 {
		t.Errorf("CentralNode(3x3) = %d, want 4", got)
	}
}

func TestRandomGeometricConnectedAndDeterministic(t *testing.T) {
	for _, n := range []int{5, 20, 60} {
		rg := RandomGeometric{N: n, Radius: DefaultRadius(n)}
		g1, pts1, err := rg.Generate(rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("Generate(n=%d): %v", n, err)
		}
		if !g1.Connected() {
			t.Errorf("n=%d: generated graph not connected", n)
		}
		if len(pts1) != n {
			t.Errorf("n=%d: got %d points", n, len(pts1))
		}
		g2, _, err := rg.Generate(rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatalf("Generate(n=%d) second run: %v", n, err)
		}
		if g1.NumEdges() != g2.NumEdges() {
			t.Errorf("n=%d: same seed produced different graphs (%d vs %d edges)", n, g1.NumEdges(), g2.NumEdges())
		}
	}
}

func TestRandomGeometricBridgesSparseRadius(t *testing.T) {
	// Radius so small the sample is almost surely disconnected; the
	// generator must stitch components rather than return a broken graph.
	rg := RandomGeometric{N: 30, Radius: 0.01}
	g, _, err := rg.Generate(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !g.Connected() {
		t.Error("sparse-radius graph not bridged to connectivity")
	}
}

func TestRandomGeometricRejectsBadParams(t *testing.T) {
	if _, _, err := (RandomGeometric{N: 0, Radius: 0.5}).Generate(rand.New(rand.NewSource(1))); err == nil {
		t.Error("N=0: want error")
	}
	if _, _, err := (RandomGeometric{N: 5, Radius: 0}).Generate(rand.New(rand.NewSource(1))); err == nil {
		t.Error("Radius=0: want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewGrid(2, 2)
	c := g.Clone()
	mustEdge(t, c, 0, 3)
	if g.HasEdge(0, 3) {
		t.Error("Clone shares edge storage with original")
	}
	if g.Degree(0) == c.Degree(0) {
		t.Error("Clone shares adjacency storage with original")
	}
}

// Property: BFS hop distances satisfy the triangle inequality over one edge
// and are symmetric on random connected graphs.
func TestHopDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, sizeRaw uint8) bool {
		n := 2 + int(sizeRaw)%18
		g := randomConnectedGraph(rand.New(rand.NewSource(seed)), n)
		all := g.AllPairsHops()
		for i := 0; i < n; i++ {
			if all[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if all[i][j] != all[j][i] {
					return false
				}
				for _, e := range g.Edges() {
					if all[i][e.U] > all[i][e.V]+1 || all[i][e.V] > all[i][e.U]+1 {
						return false
					}
					_ = j
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: NodeCostPaths cost equals the node-weight sum along the
// reconstructed path, and the path is hop-shortest.
func TestNodeCostPathsCostMatchesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, sizeRaw uint8) bool {
		n := 2 + int(sizeRaw)%15
		lr := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(lr, n)
		w := make([]float64, n)
		for i := range w {
			w[i] = 1 + lr.Float64()*10
		}
		src := lr.Intn(n)
		hops := g.HopDistances(src)
		cost, pred := g.NodeCostPaths(src, w)
		for dst := 0; dst < n; dst++ {
			path := PathTo(pred, src, dst)
			if dst == src {
				if cost[dst] != 0 {
					return false
				}
				continue
			}
			if len(path) != hops[dst]+1 {
				return false
			}
			sum := 0.0
			for _, v := range path {
				sum += w[v]
			}
			if diff := sum - cost[dst]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

// randomConnectedGraph builds a random connected graph on n nodes: a random
// spanning tree plus random extra edges.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	extra := rng.Intn(n + 1)
	for i := 0; i < extra; i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}
