package contention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestNodeCostIsDegree(t *testing.T) {
	g := graph.NewGrid(3, 3)
	tests := []struct {
		node int
		want float64
	}{
		{node: 0, want: 2}, // corner
		{node: 1, want: 3}, // edge
		{node: 4, want: 4}, // center
	}
	for _, tt := range tests {
		if got := NodeCost(g, tt.node); got != tt.want {
			t.Errorf("NodeCost(%d) = %g, want %g", tt.node, got, tt.want)
		}
	}
}

func TestWeightsReflectStoredChunks(t *testing.T) {
	g := graph.NewGrid(2, 2) // all degree 2
	st := cache.NewState(4, 5)
	mustStore(t, st, 1, 0)
	mustStore(t, st, 1, 1)
	w := Weights(g, st)
	if w[0] != 2 { // 2·(1+0)
		t.Errorf("w[0] = %g, want 2", w[0])
	}
	if w[1] != 6 { // 2·(1+2)
		t.Errorf("w[1] = %g, want 6", w[1])
	}
}

func TestComputeCostsPathOnLine(t *testing.T) {
	// Line 0-1-2: degrees 1,2,1. Empty caches.
	g := graph.New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	st := cache.NewState(3, 5)
	c := ComputeCosts(g, st)
	// c_02 = w0 + w1 + w2 = 1 + 2 + 1 = 4.
	if c.At(0, 2) != 4 {
		t.Errorf("C[0][2] = %g, want 4", c.At(0, 2))
	}
	if c.At(0, 0) != 0 {
		t.Errorf("C[0][0] = %g, want 0", c.At(0, 0))
	}
	if got := c.Path(0, 2); len(got) != 3 || got[1] != 1 {
		t.Errorf("Path(0,2) = %v, want [0 1 2]", got)
	}
}

func TestComputeCostsSymmetricAndCachedInflation(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	before := ComputeCosts(g, st)
	mustStore(t, st, 4, 0) // center caches a chunk
	after := ComputeCosts(g, st)
	// Symmetry under both states.
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(before.At(i, j)-before.At(j, i)) > 1e-9 {
				t.Fatalf("asymmetric cost before: C[%d][%d]=%g C[%d][%d]=%g", i, j, before.At(i, j), j, i, before.At(j, i))
			}
		}
	}
	// A path through the center must now cost more: 0 -> 8 passes center
	// or the boundary; the cheapest route should never get cheaper.
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if after.At(i, j) < before.At(i, j)-1e-9 {
				t.Fatalf("caching decreased cost: C[%d][%d] %g -> %g", i, j, before.At(i, j), after.At(i, j))
			}
		}
	}
	// The direct 1->4 cost includes the inflated center weight.
	// c_14 = w1 + w4 = 3·1 + 4·2 = 11.
	if after.At(1, 4) != 11 {
		t.Errorf("C[1][4] after caching = %g, want 11", after.At(1, 4))
	}
}

func TestEdgeCost(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 5)
	mustStore(t, st, 0, 0)
	// Edge {0,1}: 2·(1+1) + 2·(1+0) = 6.
	if got := EdgeCost(g, st, 0, 1); got != 6 {
		t.Errorf("EdgeCost(0,1) = %g, want 6", got)
	}
	f := EdgeCostFunc(g, st)
	if f(0, 1) != EdgeCost(g, st, 0, 1) {
		t.Error("EdgeCostFunc disagrees with EdgeCost")
	}
	if f(0, 1) != f(1, 0) {
		t.Error("EdgeCost not symmetric")
	}
}

func TestDCFDelayModel(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 5)
	p := DefaultDCF()

	// Empty cache at center node 4: m_k = 0.
	want := p.DIFS + 4*p.TData
	if got := p.HopDelay(g, st, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("HopDelay(empty) = %g, want %g", got, want)
	}

	mustStore(t, st, 4, 0)
	mustStore(t, st, 4, 1)
	// m_k = 2: DIFS + 2·slot + 4·Td + 4·Tc.
	want = p.DIFS + 2*p.Slot + 4*p.TData + 4*p.TCollision
	if got := p.HopDelay(g, st, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("HopDelay(2 chunks) = %g, want %g", got, want)
	}

	// Linearised delay is an affine function of the contention weight.
	wantLin := p.DIFS + p.TData*4*3
	if got := p.LinearHopDelay(g, st, 4); math.Abs(got-wantLin) > 1e-9 {
		t.Errorf("LinearHopDelay = %g, want %g", got, wantLin)
	}

	path := []int{0, 1, 4}
	sum := p.LinearHopDelay(g, st, 0) + p.LinearHopDelay(g, st, 1) + p.LinearHopDelay(g, st, 4)
	if got := p.PathDelay(g, st, path); math.Abs(got-sum) > 1e-9 {
		t.Errorf("PathDelay = %g, want %g", got, sum)
	}
}

// Property: on random connected graphs with random cache states the cost
// matrix is symmetric, zero-diagonal, non-negative, and every reported cost
// equals the weight sum along its reconstructed path.
func TestCostMatrixProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%12
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 3)
		for k := 0; k < n; k++ {
			if rng.Intn(2) == 0 {
				_ = st.Store(rng.Intn(n), rng.Intn(5))
			}
		}
		w := Weights(g, st)
		c := ComputeCosts(g, st)
		for i := 0; i < n; i++ {
			if c.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if c.At(i, j) < 0 {
					return false
				}
				if math.Abs(c.At(i, j)-c.At(j, i)) > 1e-9 {
					return false
				}
				if i == j {
					continue
				}
				path := c.Path(i, j)
				sum := 0.0
				for _, v := range path {
					sum += w[v]
				}
				if math.Abs(sum-c.At(i, j)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func mustStore(t *testing.T, st *cache.State, node, chunk int) {
	t.Helper()
	if err := st.Store(node, chunk); err != nil {
		t.Fatalf("Store(%d,%d): %v", node, chunk, err)
	}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}
