package contention

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/pool"
)

func TestComputeCostsCtxMatchesSequential(t *testing.T) {
	g := graph.NewGrid(7, 7)
	st := cache.NewState(g.NumNodes(), 4)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < g.NumNodes(); i++ {
		for k := 0; k < rng.Intn(4); k++ {
			_ = st.Store(i, k)
		}
	}
	want := ComputeCosts(g, st)

	pc := graph.NewPathCache(g)
	p := pool.New(4)
	defer p.Close()
	for _, cached := range []*graph.PathCache{nil, pc} {
		got, err := ComputeCostsCtx(context.Background(), g, st, cached, p)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < want.N; i++ {
			for j := 0; j < want.N; j++ {
				if math.Float64bits(want.At(i, j)) != math.Float64bits(got.At(i, j)) {
					t.Fatalf("cached=%v C[%d][%d] = %v, want %v", cached != nil, i, j, got.At(i, j), want.At(i, j))
				}
				if want.PredRow(i)[j] != got.PredRow(i)[j] {
					t.Fatalf("cached=%v Pred[%d][%d] = %d, want %d", cached != nil, i, j, got.PredRow(i)[j], want.PredRow(i)[j])
				}
			}
		}
	}
}

func TestComputeCostsCtxCancelled(t *testing.T) {
	g := graph.NewGrid(5, 5)
	st := cache.NewState(g.NumNodes(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeCostsCtx(ctx, g, st, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
