// Package contention implements the paper's contention-induced delay model
// (Sec. III-C): per-node contention costs, the path contention cost matrix
// of Eq. (2), contention-scaled edge costs for dissemination trees, and the
// 802.11 DCF delay estimate that the cost is a linearisation of.
package contention

import (
	"context"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/pool"
)

// NodeCost returns w_k, the Node Contention Cost of node k: its degree.
// Every neighbor sends requests to k and k returns chunks to each direct
// neighbor, so the per-chunk transmission count through k equals its degree.
func NodeCost(g *graph.Graph, k int) float64 {
	return float64(g.Degree(k))
}

// Weights returns the effective relay weight of every node given the
// current cache state: w_k · (1 + S(k)). Previously cached chunks inflate a
// node's contention because each cached chunk is also transmitted to
// neighbors through the same airspace (Eq. 2).
func Weights(g *graph.Graph, st *cache.State) []float64 {
	w := make([]float64, g.NumNodes())
	for k := range w {
		w[k] = NodeCost(g, k) * float64(1+st.Stored(k))
	}
	return w
}

// Costs is the all-pairs Path Contention Cost matrix c_ij of Eq. (2),
// computed over hop-shortest paths (cheapest among equal-hop paths), along
// with predecessor matrices for path reconstruction. Both matrices are
// stored flat in row-major order with stride N, so a refresh that reuses
// the storage is a copy over two allocations and borrowed views stay
// read-only slices into one backing array.
type Costs struct {
	// N is the matrix dimension (nodes per side).
	N int
	// C holds the contention cost of j fetching a chunk from i at C[i*N+j]
	// (symmetric; 0 on the diagonal; +Inf for disconnected pairs).
	C []float64
	// Pred holds j's predecessor on the chosen path from i at Pred[i*N+j]
	// (-1 when j == i or j is unreachable from i).
	Pred []int32
}

// NewCosts returns a zeroed flat cost/pred matrix pair of dimension n.
func NewCosts(n int) *Costs {
	return &Costs{N: n, C: make([]float64, n*n), Pred: make([]int32, n*n)}
}

// At returns c_ij.
func (c *Costs) At(i, j int) float64 { return c.C[i*c.N+j] }

// Row returns row i of the cost matrix as a read-only view.
func (c *Costs) Row(i int) []float64 { return c.C[i*c.N : (i+1)*c.N] }

// PredRow returns row i of the predecessor matrix as a read-only view.
func (c *Costs) PredRow(i int) []int32 { return c.Pred[i*c.N : (i+1)*c.N] }

// Rows materialises row-header views over the flat cost matrix for the
// off-hot-path consumers that index [][]float64 (baseline selection, the
// exact search, metrics). The headers alias the flat storage, so the borrow
// stays read-only.
func (c *Costs) Rows() [][]float64 {
	rows := make([][]float64, c.N)
	for i := range rows {
		rows[i] = c.Row(i)
	}
	return rows
}

// ComputeCosts evaluates Eq. (2) for every node pair under the given cache
// state. It runs one layered-BFS pass per source: O(N·(N+E)).
func ComputeCosts(g *graph.Graph, st *cache.State) *Costs {
	n := g.NumNodes()
	w := Weights(g, st)
	c := NewCosts(n)
	for i := 0; i < n; i++ {
		cost, pred := g.NodeCostPaths(i, w)
		copy(c.Row(i), cost)
		copy(c.PredRow(i), pred)
	}
	return c
}

// ComputeCostsCtx is the engine variant of ComputeCosts: the per-source
// sweeps fan out over p, per-source BFS layer structure comes from pc when
// non-nil (only the weight sweep is recomputed as S(i) moves), and ctx
// cancellation aborts the matrix build. Rows are written only by their own
// index, so the matrix is byte-identical to ComputeCosts.
func ComputeCostsCtx(ctx context.Context, g *graph.Graph, st *cache.State, pc *graph.PathCache, p *pool.Pool) (*Costs, error) {
	n := g.NumNodes()
	w := Weights(g, st)
	c := NewCosts(n)
	err := p.ForEach(ctx, n, func(i int) {
		if pc != nil {
			pc.NodeCostPathsInto(i, w, c.Row(i), c.PredRow(i))
		} else {
			cost, pred := g.NodeCostPaths(i, w)
			copy(c.Row(i), cost)
			copy(c.PredRow(i), pred)
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Path returns the node sequence of the path underlying c_ij, including
// both endpoints, or nil when unreachable.
func (c *Costs) Path(i, j int) []int {
	return graph.PathTo(c.PredRow(i), i, j)
}

// EdgeCost returns c_e for the edge {u, v}: the contention cost of the
// one-hop path between its endpoints, w_u(1+S(u)) + w_v(1+S(v)). The
// dissemination term of the objective charges this per tree edge.
func EdgeCost(g *graph.Graph, st *cache.State, u, v int) float64 {
	return NodeCost(g, u)*float64(1+st.Stored(u)) + NodeCost(g, v)*float64(1+st.Stored(v))
}

// EdgeCostFunc adapts EdgeCost to the graph.EdgeWeightFunc signature for a
// fixed state, for use with Dijkstra and Steiner construction.
func EdgeCostFunc(g *graph.Graph, st *cache.State) graph.EdgeWeightFunc {
	return func(u, v int) float64 { return EdgeCost(g, st, u, v) }
}

// DCFParams parametrises the 802.11 DCF contention-delay estimate of
// Sec. III-C:
//
//	d(k,c) = DIFS + m_k·c + w_k·T_d + m_k²·T_c
//
// with m_k back-off slots (approximated by S(k)), c the back-off slot
// length, w_k the chunks transmitted among neighbors, T_d the chunk
// transmission duration and T_c the collision duration.
type DCFParams struct {
	// DIFS is the DCF inter-frame space.
	DIFS float64
	// Slot is the back-off slot length c.
	Slot float64
	// TData is T_d, the transmission duration of one data chunk.
	TData float64
	// TCollision is T_c, the duration of a collision.
	TCollision float64
}

// DefaultDCF returns 802.11b DSSS timings in microseconds with a 1500-byte
// chunk at 11 Mb/s (T_d ≈ 1091 µs) and T_c ≈ T_d, the paper's
// approximation regime (T_d ≈ T_c ≫ slot).
func DefaultDCF() DCFParams {
	return DCFParams{
		DIFS:       50,
		Slot:       20,
		TData:      1091,
		TCollision: 1091,
	}
}

// HopDelay returns the estimated one-hop contention delay at node k under
// the current cache state, using the full four-term DCF formula.
func (p DCFParams) HopDelay(g *graph.Graph, st *cache.State, k int) float64 {
	mk := float64(st.Stored(k))
	wk := NodeCost(g, k)
	return p.DIFS + mk*p.Slot + wk*p.TData + mk*mk*p.TCollision
}

// LinearHopDelay returns the paper's linearised delay
// DIFS + T_d·w_k·(1 + S(k)), i.e. an affine transformation of the per-node
// contention cost used throughout the evaluation.
func (p DCFParams) LinearHopDelay(g *graph.Graph, st *cache.State, k int) float64 {
	return p.DIFS + p.TData*NodeCost(g, k)*float64(1+st.Stored(k))
}

// PathDelay sums LinearHopDelay over a node path, converting a contention
// cost path into an access-latency estimate.
func (p DCFParams) PathDelay(g *graph.Graph, st *cache.State, path []int) float64 {
	total := 0.0
	for _, k := range path {
		total += p.LinearHopDelay(g, st, k)
	}
	return total
}
