// Package partition cuts a topology into k connected regions so the fair
// caching solve can shard geographically: each region is solved by its own
// engine against its own region-local cost matrices (O(nᵢ²) instead of the
// global O(N²)), and the per-region placements are stitched back together
// with a bounded boundary-reconciliation pass (stitch.go). Grid topologies
// are cut into near-square tiles; arbitrary graphs are cut by greedy
// multi-seed BFS growth from farthest-point seeds. Both cutters are
// deterministic: the same graph and options always produce the same cut.
package partition

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/graph"
)

// MinRegionNodes is the smallest region the cutters will emit: the
// per-region solver (internal/core) requires at least 2 nodes, so smaller
// fragments are merged into an adjacent region.
const MinRegionNodes = 2

// Errors returned by New.
var (
	// ErrDisconnected rejects topologies where some node could never be
	// assigned to a region reachable from its producer.
	ErrDisconnected = errors.New("partition: topology must be connected")
	// ErrBadRegions rejects region counts outside [2, N/MinRegionNodes].
	ErrBadRegions = errors.New("partition: bad region count")
)

// Options configures the cut.
type Options struct {
	// Regions is the target region count k (>= 2). The cutters treat it as
	// a target: tiny fragments are merged away and grid tiling may round
	// to a nearby tile grid, so len(Partition.Regions) can differ slightly.
	Regions int
	// GridRows/GridCols, when both positive and their product equals the
	// node count, declare the graph a row-major grid and select the
	// tile cutter; otherwise the BFS-growth cutter runs.
	GridRows int
	GridCols int
}

// Region is one connected piece of the cut.
type Region struct {
	// Nodes lists the region's members as original node ids, ascending.
	Nodes []int
	// Sub is the induced subtopology over Nodes, renumbered densely in
	// Nodes order: local id i is original node Nodes[i].
	Sub *graph.Graph
}

// Partition is the outcome of a cut: the regions, the assignment of every
// node, and the frontier structure the stitch pass reconciles across.
type Partition struct {
	g *graph.Graph
	// Regions holds the connected pieces, ordered by smallest node id.
	Regions []Region
	// RegionOf maps every original node to its region index.
	RegionOf []int
	// CutEdges lists the edges crossing region boundaries, canonical and
	// sorted.
	CutEdges []graph.Edge
	// Boundary lists the endpoints of cut edges (the frontier nodes),
	// ascending and deduplicated.
	Boundary []int
}

// Graph returns the full topology the partition was cut from.
func (p *Partition) Graph() *graph.Graph { return p.g }

// New cuts g into about opts.Regions connected regions. The graph must be
// connected (ErrDisconnected) and the region count must leave every region
// at least MinRegionNodes nodes (ErrBadRegions).
func New(g *graph.Graph, opts Options) (*Partition, error) {
	if g == nil || g.NumNodes() < 2*MinRegionNodes {
		return nil, fmt.Errorf("%w: need at least %d nodes to split", ErrBadRegions, 2*MinRegionNodes)
	}
	if !g.Connected() {
		return nil, ErrDisconnected
	}
	n := g.NumNodes()
	k := opts.Regions
	if k < 2 || k > n/MinRegionNodes {
		return nil, fmt.Errorf("%w: %d regions over %d nodes (want 2..%d)", ErrBadRegions, k, n, n/MinRegionNodes)
	}
	var labels []int
	if opts.GridRows > 0 && opts.GridCols > 0 && opts.GridRows*opts.GridCols == n {
		labels = gridTileLabels(opts.GridRows, opts.GridCols, k)
	} else {
		labels = growthLabels(g, k)
	}
	mergeSmall(g, labels)
	return fromLabels(g, labels)
}

// gridTileLabels cuts a rows×cols row-major grid into a tr×tc tile grid
// approximating k tiles. Every tile is a sub-rectangle, hence connected.
func gridTileLabels(rows, cols, k int) []int {
	tr, tc := tileShape(rows, cols, k)
	rowBand := bandIndex(rows, tr)
	colBand := bandIndex(cols, tc)
	labels := make([]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			labels[r*cols+c] = rowBand[r]*tc + colBand[c]
		}
	}
	return labels
}

// tileShape picks the tile grid tr×tc closest to k tiles, preferring
// square-ish tiles (matching the aspect ratio of the grid) among ties.
func tileShape(rows, cols, k int) (tr, tc int) {
	tr, tc = 1, min(k, cols)
	bestScore := -1
	for r := 1; r <= rows && r <= k; r++ {
		c := (k + r - 1) / r
		if c > cols {
			continue
		}
		// Primary: tile count near k. Secondary: band shapes near square,
		// i.e. rows/r close to cols/c, scored cross-multiplied to stay in
		// integers.
		score := abs(r*c-k)*(rows*cols) + abs(rows*c-cols*r)
		if bestScore < 0 || score < bestScore {
			tr, tc, bestScore = r, c, score
		}
	}
	return tr, tc
}

// bandIndex splits extent positions into near-equal contiguous bands and
// returns each position's band.
func bandIndex(extent, bands int) []int {
	idx := make([]int, extent)
	for b := 0; b < bands; b++ {
		lo, hi := b*extent/bands, (b+1)*extent/bands
		for p := lo; p < hi; p++ {
			idx[p] = b
		}
	}
	return idx
}

// growthLabels cuts an arbitrary connected graph: k seeds are picked by
// farthest-point sampling, then the regions claim unassigned nodes one BFS
// layer per round, in region order — a deterministic label propagation
// that keeps every region connected and roughly balanced.
func growthLabels(g *graph.Graph, k int) []int {
	n := g.NumNodes()
	seeds := farthestSeeds(g, k)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	frontiers := make([][]int, k)
	remaining := n
	for r, s := range seeds {
		labels[s] = r
		frontiers[r] = []int{s}
		remaining--
	}
	for remaining > 0 {
		progressed := false
		for r := 0; r < k; r++ {
			var next []int
			for _, v := range frontiers[r] {
				for _, u := range g.Neighbors(v) {
					if labels[u] == -1 {
						labels[u] = r
						next = append(next, u)
						remaining--
					}
				}
			}
			frontiers[r] = next
			progressed = progressed || len(next) > 0
		}
		if !progressed {
			break // unreachable on a connected graph; guards the loop
		}
	}
	return labels
}

// farthestSeeds returns k pairwise-distant seed nodes: the first is the
// node farthest from node 0 (a peripheral node, via the classic 2-sweep),
// and each next seed maximises the hop distance to all previous seeds.
// Ties resolve to the lowest node id.
func farthestSeeds(g *graph.Graph, k int) []int {
	first := argmax(g.HopDistances(0))
	seeds := []int{first}
	minDist := g.HopDistances(first)
	for len(seeds) < k {
		next := argmax(minDist)
		seeds = append(seeds, next)
		for i, d := range g.HopDistances(next) {
			if d != graph.Unreachable && (minDist[i] == graph.Unreachable || d < minDist[i]) {
				minDist[i] = d
			}
		}
	}
	return seeds
}

// argmax returns the index of the maximum value, lowest index on ties.
func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// mergeSmall relabels regions smaller than MinRegionNodes into the
// adjacent region they share the most cut edges with (lowest label on
// ties), in place. Merging a fragment into an adjacent connected region
// keeps the union connected.
func mergeSmall(g *graph.Graph, labels []int) {
	for {
		sizes := map[int]int{}
		for _, l := range labels {
			sizes[l]++
		}
		small := -1
		for l, sz := range sizes {
			if sz < MinRegionNodes && (small == -1 || sizes[l] < sizes[small] || (sizes[l] == sizes[small] && l < small)) {
				small = l
			}
		}
		if small == -1 || len(sizes) <= 1 {
			return
		}
		// Count this fragment's edges into each neighboring region.
		links := map[int]int{}
		for _, e := range g.Edges() {
			lu, lv := labels[e.U], labels[e.V]
			if lu == small && lv != small {
				links[lv]++
			}
			if lv == small && lu != small {
				links[lu]++
			}
		}
		into := -1
		for l, c := range links {
			if into == -1 || c > links[into] || (c == links[into] && l < into) {
				into = l
			}
		}
		if into == -1 {
			return // isolated fragment: impossible on a connected graph
		}
		for i, l := range labels {
			if l == small {
				labels[i] = into
			}
		}
	}
}

// fromLabels materialises a Partition from per-node labels, compacting
// label values to dense region indexes ordered by smallest member id.
func fromLabels(g *graph.Graph, labels []int) (*Partition, error) {
	index := map[int]int{}
	var members [][]int
	for v, l := range labels {
		r, ok := index[l]
		if !ok {
			r = len(members)
			index[l] = r
			members = append(members, nil)
		}
		members[r] = append(members[r], v)
	}
	p := &Partition{
		g:        g,
		Regions:  make([]Region, len(members)),
		RegionOf: make([]int, g.NumNodes()),
	}
	for r, nodes := range members {
		sub, orig := g.InducedSubgraph(nodes)
		if !sub.Connected() || sub.NumNodes() < MinRegionNodes {
			return nil, fmt.Errorf("partition: internal error: region %d (%d nodes) is not a valid subtopology", r, sub.NumNodes())
		}
		p.Regions[r] = Region{Nodes: orig, Sub: sub}
		for _, v := range orig {
			p.RegionOf[v] = r
		}
	}
	boundary := map[int]bool{}
	for _, e := range g.Edges() {
		if p.RegionOf[e.U] != p.RegionOf[e.V] {
			p.CutEdges = append(p.CutEdges, e)
			boundary[e.U] = true
			boundary[e.V] = true
		}
	}
	p.Boundary = make([]int, 0, len(boundary))
	for v := range boundary {
		p.Boundary = append(p.Boundary, v)
	}
	slices.Sort(p.Boundary)
	return p, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
