package partition

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func gridGraph(t *testing.T, rows, cols int) *graph.Graph {
	t.Helper()
	return graph.NewGrid(rows, cols)
}

func randomGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	rg := graph.RandomGeometric{N: n, Radius: graph.DefaultRadius(n)}
	g, _, err := rg.Generate(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkPartition asserts the structural invariants every cut must satisfy:
// full disjoint coverage, connected regions of at least MinRegionNodes,
// consistent RegionOf, and cut/boundary sets matching the labels.
func checkPartition(t *testing.T, g *graph.Graph, p *Partition) {
	t.Helper()
	seen := make([]int, g.NumNodes())
	for i := range seen {
		seen[i] = -1
	}
	for r, reg := range p.Regions {
		if len(reg.Nodes) < MinRegionNodes {
			t.Errorf("region %d has %d nodes, want >= %d", r, len(reg.Nodes), MinRegionNodes)
		}
		if !reg.Sub.Connected() {
			t.Errorf("region %d subtopology is disconnected", r)
		}
		if reg.Sub.NumNodes() != len(reg.Nodes) {
			t.Errorf("region %d: %d sub nodes != %d members", r, reg.Sub.NumNodes(), len(reg.Nodes))
		}
		for i, v := range reg.Nodes {
			if i > 0 && reg.Nodes[i-1] >= v {
				t.Errorf("region %d nodes not ascending: %v", r, reg.Nodes)
			}
			if seen[v] != -1 {
				t.Errorf("node %d in regions %d and %d", v, seen[v], r)
			}
			seen[v] = r
			if p.RegionOf[v] != r {
				t.Errorf("RegionOf[%d] = %d, want %d", v, p.RegionOf[v], r)
			}
		}
	}
	for v, r := range seen {
		if r == -1 {
			t.Errorf("node %d not assigned to any region", v)
		}
	}
	wantBoundary := map[int]bool{}
	cuts := 0
	for _, e := range g.Edges() {
		if p.RegionOf[e.U] != p.RegionOf[e.V] {
			cuts++
			wantBoundary[e.U] = true
			wantBoundary[e.V] = true
		}
	}
	if cuts != len(p.CutEdges) {
		t.Errorf("cut edges %d, want %d", len(p.CutEdges), cuts)
	}
	if len(wantBoundary) != len(p.Boundary) {
		t.Errorf("boundary %v has %d nodes, want %d", p.Boundary, len(p.Boundary), len(wantBoundary))
	}
	for _, v := range p.Boundary {
		if !wantBoundary[v] {
			t.Errorf("node %d in Boundary but touches no cut edge", v)
		}
	}
}

func TestGridTiles(t *testing.T) {
	g := gridGraph(t, 6, 6)
	p, err := New(g, Options{Regions: 4, GridRows: 6, GridCols: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, p)
	if len(p.Regions) != 4 {
		t.Fatalf("regions = %d, want 4 (2×2 tiles on a 6×6 grid)", len(p.Regions))
	}
	for r, reg := range p.Regions {
		if len(reg.Nodes) != 9 {
			t.Errorf("region %d has %d nodes, want 9", r, len(reg.Nodes))
		}
	}
	// A 2×2 tiling of a 6×6 grid cuts one 6-edge row seam and one 6-edge
	// column seam.
	if len(p.CutEdges) != 12 {
		t.Errorf("cut edges = %d, want 12", len(p.CutEdges))
	}
}

func TestGridTilesApproximateK(t *testing.T) {
	// 5 doesn't tile 8×8 exactly; the cutter picks a nearby tile grid and
	// the invariants still hold.
	g := gridGraph(t, 8, 8)
	p, err := New(g, Options{Regions: 5, GridRows: 8, GridCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, p)
	if len(p.Regions) < 2 {
		t.Fatalf("regions = %d, want >= 2", len(p.Regions))
	}
}

func TestGrowthCutRandomAndClustered(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random40": randomGraph(t, 40, 3),
		"random80": randomGraph(t, 80, 7),
	}
	cl := graph.Clustered{Clusters: 4, Size: 8, IntraProb: 0.4, Bridges: 2}
	cg, err := cl.Generate(rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	graphs["clustered"] = cg
	for name, g := range graphs {
		for _, k := range []int{2, 4, 6} {
			p, err := New(g, Options{Regions: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			checkPartition(t, g, p)
			// Growth cuts merge fragments but never split, so the region
			// count is at most k.
			if len(p.Regions) < 2 || len(p.Regions) > k {
				t.Errorf("%s k=%d: got %d regions", name, k, len(p.Regions))
			}
		}
	}
}

func TestCutDeterminism(t *testing.T) {
	g := randomGraph(t, 60, 5)
	a, err := New(g, Options{Regions: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(g, Options{Regions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.RegionOf, b.RegionOf) {
		t.Fatal("repeated cuts assigned nodes differently")
	}
	if !reflect.DeepEqual(a.CutEdges, b.CutEdges) || !reflect.DeepEqual(a.Boundary, b.Boundary) {
		t.Fatal("repeated cuts produced different frontiers")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	disconnected := graph.New(6)
	_ = disconnected.AddEdge(0, 1)
	_ = disconnected.AddEdge(2, 3)
	_ = disconnected.AddEdge(4, 5)
	if _, err := New(disconnected, Options{Regions: 2}); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected: err = %v, want ErrDisconnected", err)
	}
	g := gridGraph(t, 4, 4)
	for _, k := range []int{-1, 0, 1, 9, 100} {
		if _, err := New(g, Options{Regions: k}); !errors.Is(err, ErrBadRegions) {
			t.Errorf("k=%d: err = %v, want ErrBadRegions", k, err)
		}
	}
	if _, err := New(nil, Options{Regions: 2}); !errors.Is(err, ErrBadRegions) {
		t.Errorf("nil graph: err = %v, want ErrBadRegions", err)
	}
	if _, err := New(graph.NewLine(3), Options{Regions: 2}); !errors.Is(err, ErrBadRegions) {
		t.Errorf("3 nodes: err = %v, want ErrBadRegions", err)
	}
}

func TestStitchDropsRedundantBoundaryCopy(t *testing.T) {
	// Line 0-1-2-3-4-5 split in the middle: copies on 2 and 3 face each
	// other across the cut; with a zero-gain threshold the pass keeps
	// both, with a copy charge above the small access saving it drops one.
	g := graph.NewLine(6)
	p, err := New(g, Options{Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 6)
	for i := range w {
		w[i] = float64(g.Degree(i))
	}
	holders := [][]int{{2, 3}}
	stitched, stats := p.Stitch(holders, StitchOptions{Producer: 0, Halo: 2, CopyCharge: 100, Weights: w})
	if len(stitched[0]) != 1 {
		t.Fatalf("holders after stitch = %v, want one copy dropped", stitched[0])
	}
	if stats.Dropped != 1 || stats.Candidates < 1 {
		t.Errorf("stats = %+v, want 1 drop of >= 1 candidates", stats)
	}
	// The input must not be mutated.
	if !reflect.DeepEqual(holders, [][]int{{2, 3}}) {
		t.Errorf("input holders mutated: %v", holders)
	}
}

func TestStitchNeverDropsLastCopy(t *testing.T) {
	g := graph.NewLine(6)
	p, err := New(g, Options{Regions: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 6)
	for i := range w {
		w[i] = float64(g.Degree(i))
	}
	stitched, _ := p.Stitch([][]int{{3}}, StitchOptions{Producer: 0, Halo: 3, CopyCharge: 1e9, Weights: w})
	if len(stitched[0]) != 1 {
		t.Fatalf("last copy dropped: %v", stitched[0])
	}
}

func TestStitchHaloZeroIsIdentity(t *testing.T) {
	g := gridGraph(t, 4, 4)
	p, err := New(g, Options{Regions: 2, GridRows: 4, GridCols: 4})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 16)
	for i := range w {
		w[i] = float64(g.Degree(i))
	}
	holders := [][]int{{5, 10}, {3}}
	stitched, stats := p.Stitch(holders, StitchOptions{Producer: 0, Halo: 0, CopyCharge: 1e9, Weights: w})
	if !reflect.DeepEqual(stitched, holders) {
		t.Fatalf("halo 0 changed holders: %v -> %v", holders, stitched)
	}
	if stats.Candidates != 0 || stats.Dropped != 0 {
		t.Errorf("halo 0 stats = %+v, want zero work", stats)
	}
}

func TestMultiSourceHopDistances(t *testing.T) {
	g := graph.NewLine(7)
	got := g.MultiSourceHopDistances([]int{1, 5})
	want := []int{1, 0, 1, 2, 1, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MultiSourceHopDistances = %v, want %v", got, want)
	}
	if d := g.MultiSourceHopDistances(nil); d[0] != graph.Unreachable {
		t.Fatalf("no sources: dist[0] = %d, want Unreachable", d[0])
	}
	if d := g.MultiSourceHopDistances([]int{-3, 99, 2}); d[2] != 0 || d[6] != 4 {
		t.Fatalf("invalid sources not ignored: %v", d)
	}
}
