package partition

import (
	"slices"

	"repro/internal/graph"
)

// StitchOptions configures the boundary reconciliation of Stitch.
type StitchOptions struct {
	// Producer is the global producer node; it always serves every chunk
	// and is never a droppable copy.
	Producer int
	// Halo is the hop radius around cut edges: only holders within Halo
	// hops of a boundary node are re-bid. 0 disables reconciliation.
	Halo int
	// CopyCharge is the cost one cached copy is charged when re-bidding:
	// a boundary copy is dropped when removing it raises the total access
	// cost by less than this. The sharded solve path calibrates it from
	// the regions' own decision-time costs.
	CopyCharge float64
	// Weights are the per-node contention weights (w_k of Eq. 2) the
	// access costs are evaluated under.
	Weights []float64
}

// StitchStats reports what the reconciliation pass did.
type StitchStats struct {
	// HaloNodes is the number of nodes within Halo hops of the boundary.
	HaloNodes int
	// Candidates counts the boundary-adjacent copies that were re-bid.
	Candidates int
	// Dropped counts the copies removed as redundant across the cut.
	Dropped int
}

// Stitch reconciles per-region placements across region boundaries. The
// input holders are the unioned per-chunk caching sets in original node
// ids; regions solve blind to each other, so copies near a cut edge are
// often redundant — the neighbor region placed its own copy a hop away.
// For each chunk, every holder within the halo of the boundary is re-bid
// in ascending node order: the copy is dropped when removing it raises
// the chunk's total access cost (layered-BFS path costs under
// opts.Weights, nearest-server assignment) by less than opts.CopyCharge.
// The pass is deterministic and never drops a chunk's last copy. The
// returned holder sets are fresh sorted slices; the input is not mutated.
func (p *Partition) Stitch(holders [][]int, opts StitchOptions) ([][]int, StitchStats) {
	var stats StitchStats
	out := make([][]int, len(holders))
	for n := range holders {
		out[n] = append([]int(nil), holders[n]...)
		slices.Sort(out[n])
	}
	if opts.Halo <= 0 || len(p.Boundary) == 0 {
		return out, stats
	}
	boundaryHops := p.g.MultiSourceHopDistances(p.Boundary)
	for _, d := range boundaryHops {
		if d != graph.Unreachable && d <= opts.Halo {
			stats.HaloNodes++
		}
	}
	for n := range out {
		out[n] = p.rebidChunk(out[n], boundaryHops, opts, &stats)
	}
	return out, stats
}

// rebidChunk runs the drop pass for one chunk's sorted holder set.
func (p *Partition) rebidChunk(holders []int, boundaryHops []int, opts StitchOptions, stats *StitchStats) []int {
	servers := serverSet(holders, opts.Producer)
	baseCost := p.accessCost(servers, opts.Weights)
	for _, h := range append([]int(nil), holders...) {
		if len(holders) <= 1 {
			break
		}
		if boundaryHops[h] == graph.Unreachable || boundaryHops[h] > opts.Halo {
			continue
		}
		stats.Candidates++
		reduced := without(servers, h)
		cost := p.accessCost(reduced, opts.Weights)
		if cost-baseCost < opts.CopyCharge {
			holders = without(holders, h)
			servers = reduced
			baseCost = cost
			stats.Dropped++
		}
	}
	return holders
}

// serverSet returns holders ∪ {producer}, sorted.
func serverSet(holders []int, producer int) []int {
	servers := append([]int(nil), holders...)
	for _, h := range holders {
		if h == producer {
			return servers
		}
	}
	servers = append(servers, producer)
	slices.Sort(servers)
	return servers
}

// without returns sorted xs with one occurrence of v removed.
func without(xs []int, v int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// accessCost evaluates Σ_j min-path-cost(j → nearest server): the
// accessing-phase term of the paper's objective under a nearest-server
// assignment, computed with one multi-source layered-BFS DP. Mirroring
// graph.NodeCostPaths, a path's cost sums the weights of its nodes with
// the serving endpoint excluded, and among equal-hop paths the cheapest
// is taken — layer by layer, so the result is deterministic.
func (p *Partition) accessCost(servers []int, w []float64) float64 {
	g := p.g
	n := g.NumNodes()
	hops := g.MultiSourceHopDistances(servers)
	maxHop := 0
	for _, d := range hops {
		if d > maxHop {
			maxHop = d
		}
	}
	// cost[v] is the cheapest weight sum over v's layer-decreasing paths
	// to any server; during the DP it includes the server's own weight so
	// intermediate sums compose, and rootW[v] remembers that weight so it
	// can be cancelled at the end (the cheapest parent is chosen by cost,
	// lowest id on ties, keeping rootW deterministic too).
	cost := make([]float64, n)
	rootW := make([]float64, n)
	byLayer := make([][]int, maxHop+1)
	for v := 0; v < n; v++ {
		if hops[v] != graph.Unreachable {
			byLayer[hops[v]] = append(byLayer[hops[v]], v)
		}
	}
	for _, s := range byLayer[0] {
		cost[s] = w[s]
		rootW[s] = w[s]
	}
	for layer := 1; layer <= maxHop; layer++ {
		for _, v := range byLayer[layer] {
			parent := -1
			for _, u := range g.Neighbors(v) {
				if hops[u] != layer-1 {
					continue
				}
				if parent == -1 || cost[u] < cost[parent] || (cost[u] == cost[parent] && u < parent) {
					parent = u
				}
			}
			cost[v] = cost[parent] + w[v]
			rootW[v] = rootW[parent]
		}
	}
	total := 0.0
	for v := 0; v < n; v++ {
		if hops[v] > 0 { // servers access locally for free
			total += cost[v] - rootW[v]
		}
	}
	return total
}
