package baseline

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/pool"
)

func TestSelectNodesCtxMatchesSequential(t *testing.T) {
	g := graph.NewGrid(7, 7)
	p := pool.New(4)
	defer p.Close()
	for _, alg := range []Algorithm{HopCount, Contention} {
		lambda := RecommendedLambda(alg, g.NumNodes())
		want, err := SelectNodes(g, 0, alg, lambda)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SelectNodesCtx(context.Background(), g, 0, alg, lambda, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("%v: %v != %v", alg, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%v: selection %v != %v", alg, got, want)
			}
		}
	}
}

func TestPlaceChunksCtxParallelMatchesSequential(t *testing.T) {
	g := graph.NewGrid(6, 6)
	p := pool.New(4)
	defer p.Close()
	for _, alg := range []Algorithm{HopCount, Contention} {
		lambda := RecommendedLambda(alg, g.NumNodes())
		stA := cache.NewState(g.NumNodes(), 3)
		want, err := PlaceChunks(g, 0, 9, stA, alg, lambda)
		if err != nil {
			t.Fatal(err)
		}
		stB := cache.NewState(g.NumNodes(), 3)
		got, err := PlaceChunksCtx(context.Background(), g, 0, 9, stB, alg, lambda, p)
		if err != nil {
			t.Fatal(err)
		}
		for n := range want.Holders {
			if len(want.Holders[n]) != len(got.Holders[n]) {
				t.Fatalf("%v chunk %d: holders %v != %v", alg, n, got.Holders[n], want.Holders[n])
			}
			for k := range want.Holders[n] {
				if want.Holders[n][k] != got.Holders[n][k] {
					t.Fatalf("%v chunk %d: holders %v != %v", alg, n, got.Holders[n], want.Holders[n])
				}
			}
		}
	}
}

func TestPlaceChunksCtxCancelled(t *testing.T) {
	g := graph.NewGrid(5, 5)
	st := cache.NewState(g.NumNodes(), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceChunksCtx(ctx, g, 0, 4, st, HopCount, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlaceChunksCtx: err = %v, want context.Canceled", err)
	}
	if _, err := SelectNodesCtx(ctx, g, 0, Contention, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SelectNodesCtx: err = %v, want context.Canceled", err)
	}
}
