package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestAlgorithmString(t *testing.T) {
	if HopCount.String() != "Hopc" || Contention.String() != "Cont" {
		t.Errorf("String() = %q/%q, want Hopc/Cont", HopCount, Contention)
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("unknown algorithm String() = %q", got)
	}
}

func TestSelectNodesUnknownAlgorithm(t *testing.T) {
	g := graph.NewGrid(2, 2)
	if _, err := SelectNodes(g, 0, Algorithm(0), 1); !errors.Is(err, ErrBadAlgorithm) {
		t.Errorf("err = %v, want ErrBadAlgorithm", err)
	}
}

func TestSelectNodesNeverPicksProducer(t *testing.T) {
	g := graph.NewGrid(5, 5)
	for _, alg := range []Algorithm{HopCount, Contention} {
		sel, err := SelectNodes(g, 12, alg, DefaultLambda)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for _, v := range sel {
			if v == 12 {
				t.Errorf("%v selected the producer", alg)
			}
		}
	}
}

func TestSelectNodesImprovesOnLongLine(t *testing.T) {
	// Long line with producer at one end: caching far from the producer
	// clearly pays off for hop count.
	n := 15
	g := graph.New(n)
	for i := 1; i < n; i++ {
		mustEdge(t, g, i-1, i)
	}
	sel, err := SelectNodes(g, 0, HopCount, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("no nodes selected on a 15-node line")
	}
	// The selection must include a node in the far half.
	far := false
	for _, v := range sel {
		if v >= n/2 {
			far = true
		}
	}
	if !far {
		t.Errorf("selection %v has no node in the far half", sel)
	}
}

func TestSelectNodesHighLambdaSelectsNothing(t *testing.T) {
	g := graph.NewGrid(3, 3)
	sel, err := SelectNodes(g, 4, HopCount, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 0 {
		t.Errorf("λ=1e9 selected %v, want none (producer serves all)", sel)
	}
}

func TestSelectNodesNoProducerForcesOneMedian(t *testing.T) {
	g := graph.NewGrid(3, 3)
	sel, err := SelectNodes(g, -1, HopCount, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 4 {
		t.Errorf("subgraph round selection = %v, want [4] (grid center)", sel)
	}
}

func TestSelectNodesDeterministicSameSetEachCall(t *testing.T) {
	// The baselines are topology-only: every invocation must return the
	// identical set (this is precisely why they are unfair).
	g := graph.NewGrid(4, 4)
	for _, alg := range []Algorithm{HopCount, Contention} {
		a, err := SelectNodes(g, 5, alg, DefaultLambda)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SelectNodes(g, 5, alg, DefaultLambda)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: nondeterministic selection %v vs %v", alg, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: nondeterministic selection %v vs %v", alg, a, b)
			}
		}
	}
}

func TestPlaceChunksValidation(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 5)
	if _, err := PlaceChunks(g, -1, 1, st, HopCount, 1); err == nil {
		t.Error("bad producer: want error")
	}
	if _, err := PlaceChunks(g, 0, 0, st, HopCount, 1); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := PlaceChunks(g, 0, 1, cache.NewState(3, 5), HopCount, 1); err == nil {
		t.Error("state mismatch: want error")
	}
	if _, err := PlaceChunks(g, 0, 1, nil, HopCount, 1); err == nil {
		t.Error("nil state: want error")
	}
}

func TestPlaceChunksReplicatesOnSameSetUntilFull(t *testing.T) {
	g := graph.NewGrid(6, 6)
	st := cache.NewState(36, 5)
	p, err := PlaceChunks(g, 9, 5, st, Contention, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (capacity 5 holds all 5 chunks)", len(p.Rounds))
	}
	set := p.Rounds[0].Nodes
	if len(set) == 0 {
		t.Fatal("empty first-round set")
	}
	// Every chunk must be held by exactly the round-1 set.
	for n := 0; n < 5; n++ {
		if len(p.Holders[n]) != len(set) {
			t.Errorf("chunk %d holders = %v, want the full set %v", n, p.Holders[n], set)
		}
	}
	for _, v := range set {
		if st.Stored(v) != 5 {
			t.Errorf("set node %d stored %d, want 5 (full)", v, st.Stored(v))
		}
	}
	if len(p.Uncached) != 0 {
		t.Errorf("Uncached = %v, want none", p.Uncached)
	}
}

func TestPlaceChunksMovesToSecondSetWhenFull(t *testing.T) {
	// Capacity 5, 6 chunks: the 6th chunk must trigger a second round on
	// the unchosen remainder — the discontinuity the paper shows in
	// Fig. 8 when chunks go from 5 to 6.
	g := graph.NewGrid(4, 4)
	st := cache.NewState(16, 5)
	p, err := PlaceChunks(g, 5, 6, st, HopCount, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(p.Rounds))
	}
	if p.Rounds[1].FirstChunk != 5 {
		t.Errorf("second round starts at chunk %d, want 5", p.Rounds[1].FirstChunk)
	}
	// Second-round nodes must be disjoint from the first.
	first := map[int]bool{}
	for _, v := range p.Rounds[0].Nodes {
		first[v] = true
	}
	for _, v := range p.Rounds[1].Nodes {
		if first[v] {
			t.Errorf("node %d reused across rounds", v)
		}
		if v == 5 {
			t.Error("producer selected in round 2")
		}
	}
	if len(p.Holders[5]) == 0 {
		t.Error("chunk 5 has no holders despite available nodes")
	}
}

func TestPlaceChunksExhaustsAllStorage(t *testing.T) {
	// 2x2 grid, capacity 1, producer 0: 3 cacheable nodes, 5 chunks ->
	// some chunks end up uncached.
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 1)
	p, err := PlaceChunks(g, 0, 5, st, HopCount, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, hs := range p.Holders {
		cached += len(hs)
	}
	if cached != 3 {
		t.Errorf("total copies = %d, want 3 (all storage consumed)", cached)
	}
	if len(p.Uncached) != 5-countNonEmpty(p.Holders) {
		t.Errorf("Uncached = %v inconsistent with holders %v", p.Uncached, p.Holders)
	}
	if st.Stored(0) != 0 {
		t.Error("producer cached data")
	}
}

// Property: PlaceChunks never exceeds capacity, never caches on the
// producer, and every holder list refers to nodes that really store the
// chunk.
func TestPlaceChunksInvariants(t *testing.T) {
	f := func(seed int64, nRaw, qRaw, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(nRaw)%12
		q := 1 + int(qRaw)%8
		capacity := 1 + int(capRaw)%4
		g := randomConnectedGraph(rng, n)
		producer := rng.Intn(n)
		st := cache.NewState(n, capacity)
		alg := HopCount
		if seed%2 == 0 {
			alg = Contention
		}
		p, err := PlaceChunks(g, producer, q, st, alg, DefaultLambda)
		if err != nil {
			return false
		}
		if st.Stored(producer) != 0 {
			return false
		}
		for i := 0; i < n; i++ {
			if st.Stored(i) > st.Capacity(i) {
				return false
			}
		}
		for nChunk, hs := range p.Holders {
			for _, v := range hs {
				if !st.Has(v, nChunk) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func countNonEmpty(hs [][]int) int {
	c := 0
	for _, h := range hs {
		if len(h) > 0 {
			c++
		}
	}
	return c
}

func mustEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

func TestRecommendedLambda(t *testing.T) {
	if got := RecommendedLambda(HopCount, 36); got != 18 {
		t.Errorf("Hopc lambda = %g, want 18", got)
	}
	if got := RecommendedLambda(Contention, 36); got != 9 {
		t.Errorf("Cont lambda = %g, want 9", got)
	}
	if got := RecommendedLambda(Algorithm(0), 36); got != DefaultLambda {
		t.Errorf("unknown algorithm lambda = %g, want default", got)
	}
}

func TestOneMedian(t *testing.T) {
	dist := [][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	}
	med, err := oneMedian(dist)
	if err != nil {
		t.Fatal(err)
	}
	if med != 1 {
		t.Errorf("oneMedian = %d, want 1", med)
	}
	if _, err := oneMedian(nil); err == nil {
		t.Error("empty matrix: want error")
	}
}
