// Package baseline implements the two comparison algorithms from the
// paper's evaluation:
//
//   - HopCount ("Hopc", Nuggehalli et al. [13]): greedy cache placement
//     minimising total hop-count delay plus λ per cache.
//   - Contention ("Cont", Sung et al. [4]): the same greedy placement with
//     the contention cost of the network topology as the delay metric.
//
// Both select caching nodes from the topology alone — they do not account
// for already-cached data — so repeated invocations pick the same node set.
// The paper extends them to multiple data items by filling the chosen set
// to capacity, then re-running on the subgraph of unchosen nodes (largest
// connected component), and so on (Sec. V-B); PlaceChunks implements that
// extension.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/pool"
)

// Algorithm selects the delay metric of the greedy placement.
type Algorithm int

const (
	// HopCount uses BFS hop distance (Nuggehalli et al. [13]).
	HopCount Algorithm = iota + 1
	// Contention uses the topology's path contention cost (Sung et
	// al. [4]), evaluated with empty caches: these baselines ignore
	// already-cached data by design.
	Contention
)

// String returns the short name used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case HopCount:
		return "Hopc"
	case Contention:
		return "Cont"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// DefaultLambda is the nominal per-cache cost λ from the paper ("we set
// the λ in both algorithms to 1"). The paper does not state the cost
// normalisation that λ=1 is relative to; use RecommendedLambda to obtain a
// value calibrated against this package's cost scales.
const DefaultLambda = 1.0

// RecommendedLambda returns the per-cache cost calibrated so the baselines
// reproduce the caching-set sizes reported in the paper's 6×6-grid
// evaluation (Hop-Count concentrates on 1-2 nodes — 50% of all data on one
// node; Contention selects a moderate set of ~10 — 75-percentile fairness
// ≈ 0.22). The value scales with the network size n because both greedy
// objectives sum distances over all nodes.
func RecommendedLambda(alg Algorithm, n int) float64 {
	switch alg {
	case HopCount:
		return float64(n) / 2
	case Contention:
		return float64(n) / 4
	default:
		return DefaultLambda
	}
}

// Errors returned by the baseline algorithms.
var (
	ErrBadAlgorithm = errors.New("baseline: unknown algorithm")
	ErrNoCandidates = errors.New("baseline: no candidate nodes")
)

// SelectNodes runs the greedy facility placement on g: starting from the
// producer (a free facility; pass producer < 0 for subgraph rounds without
// one), it repeatedly adds the node that most reduces
//
//	Σ_j min_{i ∈ F ∪ {producer}} d(i, j)  +  λ·|F|
//
// and stops when no addition improves the total. The returned set is in
// selection order and never contains the producer.
func SelectNodes(g *graph.Graph, producer int, alg Algorithm, lambda float64) ([]int, error) {
	return SelectNodesCtx(context.Background(), g, producer, alg, lambda, nil)
}

// SelectNodesCtx is SelectNodes with cancellation (checked once per greedy
// round) and with the distance matrix and per-candidate cost scans fanned
// out over p. Candidate costs land in per-node slots and the arg-min scan
// stays sequential, so the selection is identical at any pool width.
func SelectNodesCtx(ctx context.Context, g *graph.Graph, producer int, alg Algorithm, lambda float64, p *pool.Pool) ([]int, error) {
	dist, err := distanceMatrixCtx(ctx, g, alg, p)
	if err != nil {
		return nil, err
	}
	return selectFromMatrix(ctx, g, dist, producer, lambda, p)
}

// SelectNodesModelCtx is SelectNodesCtx with the delay metric served by a
// warm cost model instead of recomputed per call: hop distances come from
// the model's cached per-source BFS and the contention metric from its
// memoised matrix. m must be a model over the same graph with an empty
// cache state — both baselines ignore already-cached data by design, so
// their metrics are topology-only and the placement service's per-topology
// base model is exactly the right oracle.
func SelectNodesModelCtx(ctx context.Context, m *costmodel.Model, producer int, alg Algorithm, lambda float64, p *pool.Pool) ([]int, error) {
	dist, err := distanceMatrixModelCtx(ctx, m, alg, p)
	if err != nil {
		return nil, err
	}
	return selectFromMatrix(ctx, m.Graph(), dist, producer, lambda, p)
}

// selectFromMatrix runs the greedy facility placement over a prebuilt
// distance matrix.
func selectFromMatrix(ctx context.Context, g *graph.Graph, dist [][]float64, producer int, lambda float64, p *pool.Pool) ([]int, error) {
	n := g.NumNodes()
	if n == 0 || (producer < 0 && n < 1) {
		return nil, ErrNoCandidates
	}

	// best[j]: current service cost of demand j.
	best := make([]float64, n)
	for j := range best {
		if producer >= 0 {
			best[j] = dist[producer][j]
		} else {
			best[j] = math.Inf(1)
		}
	}
	chosen := make([]bool, n)
	if producer >= 0 {
		chosen[producer] = true
	}

	var selected []int
	costs := make([]float64, n)
	current := total(best) + lambda*float64(len(selected))
	for {
		err := p.ForEach(ctx, n, func(v int) {
			costs[v] = math.Inf(1)
			if chosen[v] {
				return
			}
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += math.Min(best[j], dist[v][j])
			}
			costs[v] = sum + lambda*float64(len(selected)+1)
		})
		if err != nil {
			return nil, fmt.Errorf("baseline: selection interrupted: %w", err)
		}
		bestNode := -1
		bestCost := current
		for v := 0; v < n; v++ {
			if cost := costs[v]; cost < bestCost-1e-12 {
				bestCost, bestNode = cost, v
			}
		}
		if bestNode < 0 {
			break
		}
		chosen[bestNode] = true
		selected = append(selected, bestNode)
		for j := 0; j < n; j++ {
			best[j] = math.Min(best[j], dist[bestNode][j])
		}
		current = bestCost
	}
	if producer < 0 && len(selected) == 0 {
		// Subgraph rounds must cache somewhere: force the 1-median even
		// when λ exceeds its savings.
		med, err := oneMedian(dist)
		if err != nil {
			return nil, err
		}
		selected = append(selected, med)
	}
	return selected, nil
}

// distanceMatrixCtx evaluates the algorithm's delay metric on the
// topology, with the per-source passes spread over p.
func distanceMatrixCtx(ctx context.Context, g *graph.Graph, alg Algorithm, p *pool.Pool) ([][]float64, error) {
	switch alg {
	case HopCount:
		hops, err := g.AllPairsHopsCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		dist := make([][]float64, len(hops))
		for i, row := range hops {
			dist[i] = make([]float64, len(row))
			for j, h := range row {
				if h == graph.Unreachable {
					dist[i][j] = math.Inf(1)
				} else {
					dist[i][j] = float64(h)
				}
			}
		}
		return dist, nil
	case Contention:
		// Empty state: the baseline's contention metric is topology-only.
		st := cache.NewState(g.NumNodes(), 1)
		costs, err := contention.ComputeCostsCtx(ctx, g, st, nil, p)
		if err != nil {
			return nil, err
		}
		return costs.Rows(), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadAlgorithm, int(alg))
	}
}

// distanceMatrixModelCtx serves the delay metric from a warm cost model:
// the hop matrix is memoised inside the model and the contention matrix is
// the model's incrementally maintained one (read-only borrow). The model's
// state must be empty so the contention metric stays topology-only.
func distanceMatrixModelCtx(ctx context.Context, m *costmodel.Model, alg Algorithm, p *pool.Pool) ([][]float64, error) {
	switch alg {
	case HopCount:
		return m.HopMatrixCtx(ctx, p)
	case Contention:
		for i := 0; i < m.State().NumNodes(); i++ {
			if m.State().Stored(i) != 0 {
				return nil, fmt.Errorf("baseline: model state is not empty (node %d caches data); the baselines' metric is topology-only", i)
			}
		}
		costs, err := m.CostsCtx(ctx, p)
		if err != nil {
			return nil, err
		}
		return costs.Rows(), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadAlgorithm, int(alg))
	}
}

func oneMedian(dist [][]float64) (int, error) {
	best, bestSum := -1, math.Inf(1)
	for v := range dist {
		if s := total(dist[v]); s < bestSum {
			best, bestSum = v, s
		}
	}
	if best < 0 {
		return 0, ErrNoCandidates
	}
	return best, nil
}

func total(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Round records one set-selection round of the multi-item extension.
type Round struct {
	// Nodes is the set selected in this round (original node ids).
	Nodes []int
	// FirstChunk is the first chunk id stored during this round.
	FirstChunk int
}

// Placement is the outcome of the multi-item extension.
type Placement struct {
	// Producer is the data producer node (never caches).
	Producer int
	// Rounds lists the selected sets in order.
	Rounds []Round
	// Holders[n] lists the nodes caching chunk n.
	Holders [][]int
	// Uncached lists chunk ids that found no storage anywhere.
	Uncached []int
	// State is the final cache state.
	State *cache.State
}

// PlaceChunks runs the paper's multi-item extension of a baseline
// algorithm: chunks 0..chunks-1 are replicated across the currently
// selected set until it is full, then a new set is selected from the
// largest connected component of the unchosen remainder. st is mutated.
func PlaceChunks(g *graph.Graph, producer, chunks int, st *cache.State, alg Algorithm, lambda float64) (*Placement, error) {
	return PlaceChunksCtx(context.Background(), g, producer, chunks, st, alg, lambda, nil)
}

// PlaceChunksCtx is PlaceChunks with cancellation checked before every
// chunk and inside each set-selection round; p parallelises the rounds'
// distance matrices and candidate scans (see SelectNodesCtx).
func PlaceChunksCtx(ctx context.Context, g *graph.Graph, producer, chunks int, st *cache.State, alg Algorithm, lambda float64, pl *pool.Pool) (*Placement, error) {
	return placeChunks(ctx, g, nil, producer, chunks, st, alg, lambda, pl)
}

// PlaceChunksModelCtx is PlaceChunksCtx with the first selection round's
// delay metric served by a warm cost model over the full topology (see
// SelectNodesModelCtx; the model must be empty-state over g and is only
// read, never mutated — baseline commits do not feed back into the
// metric). Later rounds run on induced subgraphs, a different topology the
// model does not cover, so they recompute their (much smaller) matrices
// as before.
func PlaceChunksModelCtx(ctx context.Context, m *costmodel.Model, producer, chunks int, st *cache.State, alg Algorithm, lambda float64, pl *pool.Pool) (*Placement, error) {
	if m == nil {
		return nil, errors.New("baseline: nil cost model")
	}
	return placeChunks(ctx, m.Graph(), m, producer, chunks, st, alg, lambda, pl)
}

func placeChunks(ctx context.Context, g *graph.Graph, m *costmodel.Model, producer, chunks int, st *cache.State, alg Algorithm, lambda float64, pl *pool.Pool) (*Placement, error) {
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("baseline: producer %d out of range [0,%d)", producer, g.NumNodes())
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("baseline: chunk count %d must be positive", chunks)
	}
	if st == nil || st.NumNodes() != g.NumNodes() {
		return nil, errors.New("baseline: cache state size mismatch")
	}

	p := &Placement{
		Producer: producer,
		Holders:  make([][]int, chunks),
		State:    st,
	}
	used := make([]bool, g.NumNodes()) // nodes consumed by earlier rounds
	used[producer] = true

	var curSet []int
	for n := 0; n < chunks; n++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baseline: chunk %d: %w", n, err)
		}
		if !hasVacancy(st, curSet) {
			next, err := nextSet(ctx, g, m, producer, st, used, alg, lambda, len(p.Rounds) == 0, pl)
			if err != nil {
				return nil, err
			}
			if len(next) > 0 {
				curSet = next
				for _, v := range curSet {
					used[v] = true
				}
				p.Rounds = append(p.Rounds, Round{Nodes: curSet, FirstChunk: n})
			} else {
				curSet = nil
			}
		}
		if len(curSet) == 0 {
			p.Uncached = append(p.Uncached, n)
			continue
		}
		stored := false
		for _, v := range curSet {
			if st.Free(v) > 0 {
				if err := st.Store(v, n); err != nil {
					return nil, fmt.Errorf("baseline: store chunk %d on %d: %w", n, v, err)
				}
				p.Holders[n] = append(p.Holders[n], v)
				stored = true
			}
		}
		if !stored {
			p.Uncached = append(p.Uncached, n)
		}
	}
	return p, nil
}

// hasVacancy reports whether any node of the set can still store a chunk.
func hasVacancy(st *cache.State, set []int) bool {
	for _, v := range set {
		if st.Free(v) > 0 {
			return true
		}
	}
	return false
}

// nextSet selects the next caching set. The first round runs on the whole
// graph with the producer as a free facility (using the warm model's
// metric when one was supplied); later rounds run on the largest connected
// component of the unchosen remainder.
func nextSet(ctx context.Context, g *graph.Graph, m *costmodel.Model, producer int, st *cache.State, used []bool, alg Algorithm, lambda float64, firstRound bool, pl *pool.Pool) ([]int, error) {
	if firstRound {
		var sel []int
		var err error
		if m != nil {
			sel, err = SelectNodesModelCtx(ctx, m, producer, alg, lambda, pl)
		} else {
			sel, err = SelectNodesCtx(ctx, g, producer, alg, lambda, pl)
		}
		if err != nil {
			return nil, err
		}
		return filterWithCapacity(st, sel), nil
	}
	var remaining []int
	for v := 0; v < g.NumNodes(); v++ {
		if !used[v] && st.Capacity(v) > 0 {
			remaining = append(remaining, v)
		}
	}
	if len(remaining) == 0 {
		return nil, nil
	}
	sub, orig := g.InducedSubgraph(remaining)
	comp := sub.LargestComponent()
	if len(comp) == 0 {
		return nil, nil
	}
	compGraph, compOrig := sub.InducedSubgraph(comp)
	sel, err := SelectNodesCtx(ctx, compGraph, -1, alg, lambda, pl)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, len(sel))
	for _, v := range sel {
		out = append(out, orig[compOrig[v]])
	}
	return filterWithCapacity(st, out), nil
}

func filterWithCapacity(st *cache.State, nodes []int) []int {
	var out []int
	for _, v := range nodes {
		if st.Free(v) > 0 {
			out = append(out, v)
		}
	}
	return out
}
