// Package prom is a dependency-free Prometheus text-format exporter for
// the faircached daemon: counters, gauges and fixed-bucket histograms,
// optionally labelled, rendered in the Prometheus exposition format
// (text version 0.0.4) by a Registry that doubles as an http.Handler.
//
// It deliberately implements only what a scrape target needs — atomic
// instruments and deterministic rendering — not the full client_golang
// surface. All instruments are safe for concurrent use; Observe/Add/Inc
// are lock-free on the hot path.
package prom

import (
	"cmp"
	"fmt"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/load via bit-casting CAS.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Set(v) }

// Add adjusts the value by v (may be negative).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	upper  []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bucket whose upper bound is >= v.
	i, _ := slices.BinarySearch(h.upper, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond lookups to multi-second solves.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// kind is the TYPE line of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one named metric family with zero or more labelled children.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string // label names for vec families; empty for scalars

	mu       sync.Mutex
	children map[string]*child // keyed by canonical label-value tuple
	order    []string          // insertion order of child keys

	gaugeFn func() float64 // kindGauge callback families
	buckets []float64      // kindHistogram bucket bounds
}

type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var nameOK = func(r rune) bool {
	return r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
}

func (r *Registry) register(name, help string, k kind, labels []string) *family {
	if name == "" {
		panic("prom: empty metric name")
	}
	for i, c := range name {
		if !nameOK(c) || (i == 0 && c >= '0' && c <= '9') {
			panic(fmt.Sprintf("prom: invalid metric name %q", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("prom: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: k, labels: labels, children: make(map[string]*child)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil)
	c := &child{counter: &Counter{}}
	f.children[""] = c
	f.order = append(f.order, "")
	return c.counter
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil)
	c := &child{gauge: &Gauge{}}
	f.children[""] = c
	f.order = append(f.order, "")
	return c.gauge
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time — for values the owner already tracks (queue depths, lag).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil)
	f.gaugeFn = fn
}

// Histogram registers and returns an unlabelled fixed-bucket histogram.
// Buckets must be sorted ascending; nil uses DefBuckets. The implicit
// +Inf bucket is always appended.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil)
	f.buckets = checkBuckets(buckets)
	c := &child{hist: newHistogram(f.buckets)}
	f.children[""] = c
	f.order = append(f.order, "")
	return c.hist
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if len(labelNames) == 0 {
		panic("prom: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labelNames)}
}

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if len(labelNames) == 0 {
		panic("prom: HistogramVec needs at least one label")
	}
	f := r.register(name, help, kindHistogram, labelNames)
	f.buckets = checkBuckets(buckets)
	return &HistogramVec{f: f}
}

func checkBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("prom: buckets not strictly ascending at %d: %v", i, buckets))
		}
	}
	return buckets
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// WithLabelValues returns (creating on first use) the child counter for
// the given label values, which must match the label-name count.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	return v.f.child(values).counter
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// WithLabelValues returns (creating on first use) the child histogram.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	return v.f.child(values).hist
}

// child resolves a label-value tuple to its child, creating it on first
// use.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("prom: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.hist = newHistogram(f.buckets)
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// ServeHTTP renders the registry in the Prometheus text format.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	r.Write(&b)
	_, _ = w.Write([]byte(b.String()))
}

// Write renders every family, sorted by name, children in creation
// order. The output is a valid Prometheus exposition.
func (r *Registry) Write(b *strings.Builder) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	slices.SortFunc(fams, func(a, b *family) int { return cmp.Compare(a.name, b.name) })
	for _, f := range fams {
		f.write(b)
	}
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.gaugeFn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.gaugeFn()))
		return
	}
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for _, c := range children {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelValues, "", 0), formatFloat(c.counter.Value()))
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelValues, "", 0), formatFloat(c.gauge.Value()))
		case kindHistogram:
			h := c.hist
			cum := uint64(0)
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", ub), cum)
			}
			// +Inf bucket == total count by construction.
			count := h.count.Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, c.labelValues, "le", math.Inf(1)), count)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, c.labelValues, "", 0), formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, c.labelValues, "", 0), count)
		}
	}
}

// labelString renders {k="v",...}; leName non-empty appends the le
// bucket label. Returns "" when there are no labels at all.
func labelString(names, values []string, leName string, le float64) string {
	if len(names) == 0 && leName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leName)
		b.WriteString(`="`)
		b.WriteString(formatFloat(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
