package prom

import (
	"cmp"
	"fmt"
	"math"
	"net/http/httptest"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.Write(&b)
	return b.String()
}

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Total jobs.")
	g := r.Gauge("queue_depth", "Current depth.")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g.Set(4)
	g.Add(-1.5)

	out := render(r)
	for _, want := range []string{
		"# HELP jobs_total Total jobs.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# HELP queue_depth Current depth.\n# TYPE queue_depth gauge\nqueue_depth 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 7.25
	r.GaugeFunc("lag_seconds", "Lag.", func() float64 { return v })
	if out := render(r); !strings.Contains(out, "lag_seconds 7.25\n") {
		t.Fatalf("missing callback gauge:\n%s", out)
	}
	v = 0
	if out := render(r); !strings.Contains(out, "lag_seconds 0\n") {
		t.Fatalf("callback gauge not re-read:\n%s", out)
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "Requests.", "endpoint", "code")
	v.WithLabelValues("solve", "200").Add(5)
	v.WithLabelValues("solve", "200").Inc() // same child
	v.WithLabelValues("report", "500").Inc()

	out := render(r)
	if !strings.Contains(out, `requests_total{endpoint="solve",code="200"} 6`) {
		t.Errorf("missing solve child:\n%s", out)
	}
	if !strings.Contains(out, `requests_total{endpoint="report",code="500"} 1`) {
		t.Errorf("missing report child:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("weird_total", "Help with \\ and\nnewline.", "l")
	v.WithLabelValues("a\"b\\c\nd").Inc()
	out := render(r)
	if !strings.Contains(out, `# HELP weird_total Help with \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{l="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestHistogramConsistency pins the exposition-format invariants the
// scrape consumers rely on: cumulative monotonic buckets, +Inf bucket
// equal to _count, and _sum equal to the sum of observations.
func TestHistogramConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	obs := []float64{0.005, 0.005, 0.05, 0.5, 5, 0.09, 1.0}
	var wantSum float64
	for _, v := range obs {
		h.Observe(v)
		wantSum += v
	}
	if h.Count() != uint64(len(obs)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(obs))
	}
	if math.Abs(h.Sum()-wantSum) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}

	sum, count, buckets := parseHistogram(t, render(r), "latency_seconds")
	if count != uint64(len(obs)) {
		t.Fatalf("_count = %d, want %d", count, len(obs))
	}
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Fatalf("_sum = %v, want %v", sum, wantSum)
	}
	checkHistogramInvariants(t, sum, count, buckets)
	// Exact expected cumulative counts for these bounds/observations.
	want := map[string]uint64{"0.01": 2, "0.1": 4, "1": 6, "+Inf": 7}
	for _, b := range buckets {
		if b.count != want[b.le] {
			t.Errorf("bucket le=%s = %d, want %d", b.le, b.count, want[b.le])
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("dur_seconds", "Durations.", nil, "op")
	v.WithLabelValues("solve").Observe(0.002)
	v.WithLabelValues("solve").Observe(0.3)
	v.WithLabelValues("report").Observe(0.0002)
	out := render(r)
	if !strings.Contains(out, `dur_seconds_count{op="solve"} 2`) {
		t.Errorf("missing solve count:\n%s", out)
	}
	if !strings.Contains(out, `dur_seconds_count{op="report"} 1`) {
		t.Errorf("missing report count:\n%s", out)
	}
	if !strings.Contains(out, `dur_seconds_bucket{op="solve",le="+Inf"} 2`) {
		t.Errorf("missing solve +Inf bucket:\n%s", out)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "Z.")
	r.Counter("aaa_total", "A.")
	out := render(r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing metric:\n%s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "has space", "1leading", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "bad")
		}()
	}
}

// TestConcurrentObserve hammers every instrument kind from many
// goroutines (run under -race) and checks totals afterwards.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", nil)
	cv := r.CounterVec("cv_total", "CV.", "w")

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w%2)
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 1000)
				cv.WithLabelValues(lbl).Inc()
				if i%100 == 0 {
					_ = render(r) // concurrent scrape
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %v, want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Errorf("gauge = %v, want %d", got, workers*each)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	sum, count, buckets := parseHistogram(t, render(r), "h_seconds")
	if count != workers*each {
		t.Errorf("rendered _count = %d, want %d", count, workers*each)
	}
	checkHistogramInvariants(t, sum, count, buckets)
}

type bucket struct {
	le    string
	bound float64
	count uint64
}

// parseHistogram extracts _sum, _count and the bucket series for an
// unlabelled histogram family from rendered output.
func parseHistogram(t *testing.T, out, name string) (sum float64, count uint64, buckets []bucket) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_sum "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+"_sum "), 64)
			if err != nil {
				t.Fatalf("bad _sum line %q: %v", line, err)
			}
			sum = v
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("bad _count line %q: %v", line, err)
			}
			count = v
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			i := strings.Index(rest, `"`)
			le := rest[:i]
			cstr := strings.TrimSpace(rest[i+2:])
			c, err := strconv.ParseUint(cstr, 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("bad le %q: %v", le, err)
				}
			}
			buckets = append(buckets, bucket{le: le, bound: bound, count: c})
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("no buckets found for %s in:\n%s", name, out)
	}
	return sum, count, buckets
}

// checkHistogramInvariants asserts cumulative monotonicity, bound
// ordering, and +Inf == _count.
func checkHistogramInvariants(t *testing.T, sum float64, count uint64, buckets []bucket) {
	t.Helper()
	if !slices.IsSortedFunc(buckets, func(a, b bucket) int { return cmp.Compare(a.bound, b.bound) }) {
		t.Errorf("bucket bounds not ascending: %+v", buckets)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			t.Errorf("bucket counts not cumulative at %d: %+v", i, buckets)
		}
	}
	last := buckets[len(buckets)-1]
	if last.le != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", last.le)
	}
	if last.count != count {
		t.Errorf("+Inf bucket %d != _count %d", last.count, count)
	}
	if count > 0 && sum < 0 {
		t.Errorf("negative sum %v with %d observations", sum, count)
	}
}
