package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestGiniKnownValues(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		want   float64
	}{
		{name: "empty", counts: nil, want: 0},
		{name: "all zero", counts: []int{0, 0, 0}, want: 0},
		{name: "perfectly even", counts: []int{3, 3, 3, 3}, want: 0},
		{name: "one holds all of two nodes", counts: []int{10, 0}, want: 0.5},
		{name: "one holds all of four nodes", counts: []int{8, 0, 0, 0}, want: 0.75},
		{name: "linear ramp", counts: []int{1, 2, 3, 4}, want: 0.25},
	}
	for _, tt := range tests {
		if got := Gini(tt.counts); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: Gini(%v) = %g, want %g", tt.name, tt.counts, got, tt.want)
		}
	}
}

func TestGiniBoundsAndInvariance(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r % 16)
		}
		g := Gini(counts)
		if g < 0 || g >= 1 {
			return false
		}
		// Permutation invariance.
		shuffled := append([]int(nil), counts...)
		rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return math.Abs(Gini(shuffled)-g) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentileFairness(t *testing.T) {
	// 4 nodes, perfectly even: 75% of data needs 3 of 4 nodes = 0.75.
	got, err := PercentileFairness([]int{2, 2, 2, 2}, 75)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("even 75-percentile = %g, want 0.75", got)
	}
	// One node holds everything: one node suffices for any percentile.
	got, err = PercentileFairness([]int{0, 9, 0}, 75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("concentrated 75-percentile = %g, want 1/3", got)
	}
	// Mixed: counts 5,3,1,1 (total 10); 50% is covered by the top node
	// alone (5 >= 5) -> 1/4; 60% needs the top two (5+3 >= 6) -> 2/4.
	got, err = PercentileFairness([]int{1, 5, 1, 3}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.25 {
		t.Errorf("mixed 50-percentile = %g, want 0.25", got)
	}
	got, err = PercentileFairness([]int{1, 5, 1, 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.5 {
		t.Errorf("mixed 60-percentile = %g, want 0.5", got)
	}
}

func TestPercentileFairnessErrors(t *testing.T) {
	if _, err := PercentileFairness([]int{1}, 0); err == nil {
		t.Error("p=0: want error")
	}
	if _, err := PercentileFairness([]int{1}, 101); err == nil {
		t.Error("p=101: want error")
	}
	if _, err := PercentileFairness(nil, 50); err == nil {
		t.Error("empty counts: want error")
	}
	if _, err := PercentileFairness([]int{0, 0}, 50); err == nil {
		t.Error("all-zero counts: want error")
	}
}

func TestStorageCurve(t *testing.T) {
	curve := StorageCurve([]int{1, 3, 0})
	want := []float64{0.75, 1, 1}
	for i := range want {
		if math.Abs(curve[i]-want[i]) > 1e-12 {
			t.Errorf("curve[%d] = %g, want %g", i, curve[i], want[i])
		}
	}
	zero := StorageCurve([]int{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("all-zero curve = %v, want zeros", zero)
	}
}

func TestStorageCurveMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, r := range raw {
			counts[i] = int(r % 8)
		}
		curve := StorageCurve(counts)
		prev := 0.0
		for _, v := range curve {
			if v < prev-1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistributionDiff(t *testing.T) {
	diff, err := DistributionDiff([]int{3, 1, 0}, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, -2}
	for i := range want {
		if diff[i] != want[i] {
			t.Errorf("diff[%d] = %d, want %d", i, diff[i], want[i])
		}
	}
	if _, err := DistributionDiff([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch: want error")
	}
}

func TestEvaluateLineNetwork(t *testing.T) {
	// Line 0-1-2, producer 0, chunk 0 to be held by node 2.
	g := graph.New(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	ev, err := EvaluateFresh(g, 5, 0, [][]int{{2}}, AccessCostNearest)
	if err != nil {
		t.Fatal(err)
	}
	// Dissemination happens on the empty network, weights [1, 2, 1]:
	// tree {0,2} = edge 0-1 (1+2) + edge 1-2 (2+1) = 6.
	if math.Abs(ev.PerChunk[0].Dissemination-6) > 1e-9 {
		t.Errorf("Dissemination = %g, want 6", ev.PerChunk[0].Dissemination)
	}
	// Accessing under the final state, weights [1, 2, 2]:
	// node 1 fetches from cheapest of {2, producer 0}: c(0,1)=3, c(2,1)=4 -> 3;
	// node 2 holds the chunk: 0.
	if math.Abs(ev.PerChunk[0].Access-3) > 1e-9 {
		t.Errorf("Access = %g, want 3", ev.PerChunk[0].Access)
	}
	if math.Abs(ev.Total()-9) > 1e-9 {
		t.Errorf("Total = %g, want 9", ev.Total())
	}
}

func TestEvaluateChargesDisseminationIncrementally(t *testing.T) {
	// Two chunks on the same holder: the second chunk disseminates
	// through a network already loaded by the first, so it must cost
	// strictly more.
	g := graph.NewGrid(3, 3)
	ev, err := EvaluateFresh(g, 5, 0, [][]int{{8}, {8}}, AccessCostNearest)
	if err != nil {
		t.Fatal(err)
	}
	first := ev.PerChunk[0].Dissemination
	second := ev.PerChunk[1].Dissemination
	if second <= first {
		t.Errorf("second dissemination %g <= first %g; want strictly more (holder loaded)", second, first)
	}
}

func TestEvaluateNoHoldersChargesProducerOnly(t *testing.T) {
	g := graph.NewGrid(2, 2)
	ev, err := EvaluateFresh(g, 5, 0, [][]int{nil}, AccessCostNearest)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Dissemination != 0 {
		t.Errorf("Dissemination = %g, want 0 with no holders", ev.Dissemination)
	}
	if ev.Access <= 0 {
		t.Errorf("Access = %g, want > 0 (all fetch from producer)", ev.Access)
	}
}

func TestEvaluateValidation(t *testing.T) {
	g := graph.NewGrid(2, 2)
	st := cache.NewState(4, 5)
	if _, err := Evaluate(g, cache.NewState(3, 5), 0, nil, AccessCostNearest); err == nil {
		t.Error("state size mismatch: want error")
	}
	if _, err := Evaluate(g, st, 9, nil, AccessCostNearest); err == nil {
		t.Error("bad producer: want error")
	}
}

func TestEvaluateBaseStateNotMutated(t *testing.T) {
	g := graph.NewGrid(4, 4)
	base := cache.NewState(16, 5)
	if _, err := Evaluate(g, base, 0, [][]int{{15}, {10}}, AccessCostNearest); err != nil {
		t.Fatal(err)
	}
	if base.TotalStored() != 0 {
		t.Errorf("Evaluate mutated the base state: %d chunks stored", base.TotalStored())
	}
}

func TestEvaluateReplayOverCapacityFails(t *testing.T) {
	// Holders that exceed the base state's capacity cannot be replayed.
	g := graph.NewGrid(2, 2)
	base := cache.NewState(4, 1)
	if _, err := Evaluate(g, base, 0, [][]int{{1}, {1}}, AccessCostNearest); err == nil {
		t.Error("want error when replaying beyond capacity")
	}
}

func TestHoldersFromState(t *testing.T) {
	st := cache.NewState(4, 5)
	if err := st.Store(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Store(3, 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Store(2, 1); err != nil {
		t.Fatal(err)
	}
	hs := HoldersFromState(st, 2)
	if len(hs) != 2 || len(hs[0]) != 2 || hs[0][0] != 1 || hs[0][1] != 3 || len(hs[1]) != 1 || hs[1][0] != 2 {
		t.Errorf("HoldersFromState = %v, want [[1 3] [2]]", hs)
	}
}

func mustEdge(t *testing.T, g *graph.Graph, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
}

func TestChunkEvalTotal(t *testing.T) {
	ce := ChunkEval{Access: 3, Dissemination: 4}
	if ce.Total() != 7 {
		t.Errorf("Total = %g, want 7", ce.Total())
	}
}

func TestEvaluateStrategies(t *testing.T) {
	// Line 0-1-2-3, producer 0, chunk held by 3 (loaded) — under the
	// final state, node 1 is 1 hop from producer and 2 hops from the
	// holder; every strategy must route it to the producer. Node 2 is
	// equidistant in hops: the hop strategy tie-breaks on true cost.
	g := graph.New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	for _, strat := range []AccessStrategy{AccessHopNearest, AccessTopologyNearest, AccessCostNearest} {
		ev, err := EvaluateFresh(g, 5, 0, [][]int{{3}}, strat)
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if ev.Access <= 0 {
			t.Errorf("strategy %d: access %g", strat, ev.Access)
		}
		if ev.AccessDelay <= 0 {
			t.Errorf("strategy %d: delay %g", strat, ev.AccessDelay)
		}
	}
	if _, err := EvaluateFresh(g, 5, 0, [][]int{{3}}, AccessStrategy(99)); err == nil {
		t.Error("unknown strategy: want error")
	}
}

func TestEvaluateDelayScalesWithContention(t *testing.T) {
	// Loading the single holder raises both cost and estimated delay.
	g := graph.NewGrid(3, 3)
	light, err := EvaluateFresh(g, 5, 0, [][]int{{8}}, AccessCostNearest)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := EvaluateFresh(g, 5, 0, [][]int{{8}, {8}, {8}}, AccessCostNearest)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.PerChunk[0].AccessDelay <= light.PerChunk[0].AccessDelay {
		t.Errorf("delay did not grow with load: %g vs %g",
			heavy.PerChunk[0].AccessDelay, light.PerChunk[0].AccessDelay)
	}
}
