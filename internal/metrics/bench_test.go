package metrics

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

func BenchmarkEvaluate8x8FiveChunks(b *testing.B) {
	g := graph.NewGrid(8, 8)
	holders := [][]int{{0, 20, 40}, {7, 27, 47}, {14, 34, 54}, {21, 41, 61}, {2, 22, 42}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g, cache.NewState(64, 5), 9, holders, AccessCostNearest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGini1000(b *testing.B) {
	counts := make([]int, 1000)
	for i := range counts {
		counts[i] = i % 7
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Gini(counts)
	}
}
