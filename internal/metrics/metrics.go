// Package metrics implements the evaluation measures of the paper's
// Sec. V: the Gini coefficient of per-node caching load, p-percentile
// fairness, chunk-distribution comparisons (Fig. 1), and the uniform
// contention-cost evaluation (accessing + dissemination phases) applied
// identically to every algorithm's placement.
package metrics

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
	"repro/internal/steiner"
)

// Gini returns the Gini coefficient of the per-node chunk counts t_i:
//
//	G = Σ_i Σ_j |t_i − t_j| / (2·N·Σ_j t_j)
//
// 0 means perfectly even caching load, values toward 1 mean a few nodes
// carry everything. An all-zero distribution yields 0.
func Gini(counts []int) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := append([]int(nil), counts...)
	slices.Sort(sorted)
	var (
		sum      int64
		weighted int64
	)
	for i, t := range sorted {
		sum += int64(t)
		// Σ_i Σ_j |t_i − t_j| = 2·Σ_i (2i − n + 1)·t_(i) for sorted t.
		weighted += int64(2*i-n+1) * int64(t)
	}
	if sum == 0 {
		return 0
	}
	return float64(weighted) / (float64(n) * float64(sum))
}

// PercentileFairness returns the paper's p-percentile fairness: the
// fraction of nodes needed to cache p percent of the total data copies,
// filling from the most-loaded node down. Ideally (all loads equal) it is
// p%. Smaller values mean less fair. p is in (0, 100].
func PercentileFairness(counts []int, p float64) (float64, error) {
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %g out of (0,100]", p)
	}
	if len(counts) == 0 {
		return 0, errors.New("metrics: empty counts")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, errors.New("metrics: no data cached")
	}
	sorted := append([]int(nil), counts...)
	slices.SortFunc(sorted, func(a, b int) int { return cmp.Compare(b, a) }) // descending
	target := p / 100 * float64(total)
	cum := 0
	for k, c := range sorted {
		cum += c
		if float64(cum) >= target-1e-9 {
			return float64(k+1) / float64(len(counts)), nil
		}
	}
	return 1, nil
}

// StorageCurve returns, for k = 1..N, the cumulative fraction of all data
// copies held by the k most-loaded nodes — the curve behind Fig. 6
// ("number of nodes needed to store a certain ratio of all data").
func StorageCurve(counts []int) []float64 {
	sorted := append([]int(nil), counts...)
	slices.SortFunc(sorted, func(a, b int) int { return cmp.Compare(b, a) }) // descending
	total := 0
	for _, c := range sorted {
		total += c
	}
	out := make([]float64, len(sorted))
	if total == 0 {
		return out
	}
	cum := 0
	for i, c := range sorted {
		cum += c
		out[i] = float64(cum) / float64(total)
	}
	return out
}

// DistributionDiff returns the per-node difference in stored-chunk counts
// between a placement and a reference (typically the optimal solution) —
// the quantity visualised in Fig. 1.
func DistributionDiff(counts, reference []int) ([]int, error) {
	if len(counts) != len(reference) {
		return nil, fmt.Errorf("metrics: length mismatch %d vs %d", len(counts), len(reference))
	}
	out := make([]int, len(counts))
	for i := range counts {
		out[i] = counts[i] - reference[i]
	}
	return out, nil
}

// ChunkEval is the contention cost attributed to one chunk under the
// uniform evaluation.
type ChunkEval struct {
	// Access is Σ_j c(holder(j), j): every node fetches the chunk from
	// the copy its accessing strategy selects (Sec. V-A/B).
	Access float64
	// Dissemination is the cost of a Steiner tree connecting the chunk's
	// holders with the producer.
	Dissemination float64
	// AccessDelay is the estimated accessing latency in microseconds
	// under the linearised 802.11 DCF model of Sec. III-C:
	// Σ_fetches (DIFS·pathLen + T_d·pathContention).
	AccessDelay float64
}

// Total returns the chunk's evaluated contention cost.
func (c ChunkEval) Total() float64 { return c.Access + c.Dissemination }

// Eval is the uniform contention-cost evaluation of a complete placement.
type Eval struct {
	// PerChunk holds per-chunk access/dissemination costs (Fig. 9).
	PerChunk []ChunkEval
	// Access and Dissemination are the summed phase costs (Fig. 2).
	Access        float64
	Dissemination float64
	// AccessDelay is the summed estimated accessing latency (µs).
	AccessDelay float64
}

// Total returns the summed evaluated contention cost of both phases.
func (e Eval) Total() float64 { return e.Access + e.Dissemination }

// AccessStrategy selects how a node picks the copy it fetches during the
// accessing phase — each algorithm produces its own accessing strategy
// (Sec. V-B), and the evaluation charges real (final-state) contention on
// those choices.
type AccessStrategy int

const (
	// AccessHopNearest fetches from the hop-nearest copy, ties broken
	// toward the cheaper one ("find the nearest copy of a chunk and go
	// through the shortest hop path"). This is the strategy of devices
	// without contention awareness — the Hop-Count baseline.
	AccessHopNearest AccessStrategy = iota + 1
	// AccessTopologyNearest fetches from the copy with the smallest
	// topology contention cost (degree-based, ignoring cache load) — the
	// Contention baseline's own metric.
	AccessTopologyNearest
	// AccessCostNearest fetches from the copy with the smallest true
	// (load-aware) contention cost — the fair-caching algorithms, which
	// track cache load by construction.
	AccessCostNearest
)

// Evaluate computes the paper's evaluation metric for any algorithm's
// placement, replaying both phases over the placement order:
//
//   - Dissemination phase: chunks are pushed out one at a time. Chunk n's
//     Steiner tree (over its holders and the producer) is charged at the
//     cache state *before* chunk n is stored — earlier chunks were
//     disseminated through a less loaded network.
//   - Accessing phase: with all chunks placed, every node fetches every
//     chunk from the copy selected by the given AccessStrategy (or from
//     the producer) and is charged the final state's true contention cost
//     along that path. Contention-oblivious strategies thus pay for the
//     hotspots their placements create.
//
// base is the pre-placement cache state (it is cloned, not mutated); pass
// a fresh state unless modelling pre-existing load. This uniform replay
// makes algorithm comparisons apples-to-apples regardless of each
// algorithm's internal cost bookkeeping.
func Evaluate(g *graph.Graph, base *cache.State, producer int, holders [][]int, strategy AccessStrategy) (*Eval, error) {
	if g.NumNodes() != base.NumNodes() {
		return nil, fmt.Errorf("metrics: graph has %d nodes, state %d", g.NumNodes(), base.NumNodes())
	}
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("metrics: producer %d out of range", producer)
	}
	st := base.Clone()
	ev := &Eval{PerChunk: make([]ChunkEval, len(holders))}

	// Dissemination phase: replay placements in chunk order.
	for n, hs := range holders {
		if len(hs) == 0 {
			continue
		}
		sources := append(append([]int(nil), hs...), producer)
		tree, err := steiner.MSTApprox(g, contention.EdgeCostFunc(g, st), sources)
		if err != nil {
			return nil, fmt.Errorf("metrics: dissemination tree for chunk %d: %w", n, err)
		}
		ev.PerChunk[n].Dissemination = tree.Cost
		ev.Dissemination += tree.Cost
		for _, i := range hs {
			if st.Has(i, n) {
				continue
			}
			if err := st.Store(i, n); err != nil {
				return nil, fmt.Errorf("metrics: replay chunk %d on node %d: %w", n, i, err)
			}
		}
	}

	// Accessing phase: strategy-selected copy, charged true final-state
	// contention; the DCF delay model converts the same fetches into an
	// access-latency estimate.
	costs := contention.ComputeCosts(g, st)
	selector, err := newSelector(g, base, costs, strategy)
	if err != nil {
		return nil, err
	}
	dcf := contention.DefaultDCF()
	for n, hs := range holders {
		sources := append(append([]int(nil), hs...), producer)
		access, delay := 0.0, 0.0
		for j := 0; j < g.NumNodes(); j++ {
			if j == producer {
				continue
			}
			src := selector.pick(sources, j)
			if src < 0 || math.IsInf(costs.At(src, j), 1) {
				return nil, fmt.Errorf("metrics: node %d cannot reach chunk %d", j, n)
			}
			access += costs.At(src, j)
			if src != j {
				// DIFS per hop node plus T_d times the contention
				// weight sum — the linearised d(k,c) of Sec. III-C.
				delay += dcf.DIFS*float64(len(costs.Path(src, j))) + dcf.TData*costs.At(src, j)
			}
		}
		ev.PerChunk[n].Access = access
		ev.PerChunk[n].AccessDelay = delay
		ev.Access += access
		ev.AccessDelay += delay
	}
	return ev, nil
}

// EvaluateFresh is Evaluate starting from an empty uniform-capacity state,
// the setting of the paper's simulations (capacity 5, empty caches).
func EvaluateFresh(g *graph.Graph, capacity, producer int, holders [][]int, strategy AccessStrategy) (*Eval, error) {
	return Evaluate(g, cache.NewState(g.NumNodes(), capacity), producer, holders, strategy)
}

// selector implements the per-strategy copy choice.
type selector struct {
	// metric[i][j] is the strategy's own distance estimate; the true
	// charge always comes from the final-state cost matrix.
	metric [][]float64
	// tiebreak, when non-nil, refines equal-metric choices.
	tiebreak [][]float64
}

func newSelector(g *graph.Graph, base *cache.State, final *contention.Costs, strategy AccessStrategy) (*selector, error) {
	switch strategy {
	case AccessHopNearest:
		hops := g.AllPairsHops()
		metric := make([][]float64, len(hops))
		for i, row := range hops {
			metric[i] = make([]float64, len(row))
			for j, h := range row {
				if h == graph.Unreachable {
					metric[i][j] = math.Inf(1)
				} else {
					metric[i][j] = float64(h)
				}
			}
		}
		return &selector{metric: metric, tiebreak: final.Rows()}, nil
	case AccessTopologyNearest:
		// Degree-based contention with empty caches: the Contention
		// baseline's load-oblivious estimate.
		empty := cache.NewState(g.NumNodes(), 1)
		return &selector{metric: contention.ComputeCosts(g, empty).Rows(), tiebreak: final.Rows()}, nil
	case AccessCostNearest:
		return &selector{metric: final.Rows()}, nil
	default:
		return nil, fmt.Errorf("metrics: unknown access strategy %d", int(strategy))
	}
}

// pick returns the source in sources minimising the strategy metric to j,
// refining ties with the tiebreak matrix, then the smaller node id.
func (s *selector) pick(sources []int, j int) int {
	best := -1
	bestMetric, bestTie := math.Inf(1), math.Inf(1)
	for _, i := range sources {
		m := s.metric[i][j]
		tie := m
		if s.tiebreak != nil {
			tie = s.tiebreak[i][j]
		}
		better := m < bestMetric-1e-12 ||
			(m < bestMetric+1e-12 && tie < bestTie-1e-12) ||
			(m < bestMetric+1e-12 && tie < bestTie+1e-12 && best >= 0 && i < best)
		if better {
			best, bestMetric, bestTie = i, m, tie
		}
	}
	return best
}

// HoldersFromState reconstructs per-chunk holder lists for chunk ids
// 0..chunks-1 from a cache state.
func HoldersFromState(st *cache.State, chunks int) [][]int {
	out := make([][]int, chunks)
	for n := 0; n < chunks; n++ {
		out[n] = st.Holders(n)
	}
	return out
}
