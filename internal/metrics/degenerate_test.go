package metrics

import (
	"math"
	"testing"
)

// These tests pin the documented conventions on degenerate inputs, so the
// server's report path can call the metrics unconditionally: Gini and
// StorageCurve degrade to zeros (nothing cached means perfectly even
// nothing), while PercentileFairness — whose definition divides by the
// total copy count — reports an error instead of inventing a value.

func TestGiniDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		counts []int
		want   float64
	}{
		{"nil", nil, 0},
		{"empty", []int{}, 0},
		{"all zero", []int{0, 0, 0, 0}, 0},
		{"single node", []int{7}, 0},
		{"single empty node", []int{0}, 0},
		{"all equal", []int{3, 3, 3, 3, 3}, 0},
	}
	for _, tc := range cases {
		if got := Gini(tc.counts); got != tc.want {
			t.Errorf("Gini(%s %v) = %v, want %v", tc.name, tc.counts, got, tc.want)
		}
	}
	// Sanity on the other extreme: one node holding everything approaches
	// (n−1)/n.
	if got, want := Gini([]int{0, 0, 0, 10}), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("Gini(concentrated) = %v, want %v", got, want)
	}
}

func TestPercentileFairnessDegenerate(t *testing.T) {
	// Undefined inputs are errors, never fabricated numbers.
	for name, call := range map[string]func() (float64, error){
		"empty counts":   func() (float64, error) { return PercentileFairness(nil, 75) },
		"zero total":     func() (float64, error) { return PercentileFairness([]int{0, 0, 0}, 75) },
		"p zero":         func() (float64, error) { return PercentileFairness([]int{1, 2}, 0) },
		"p negative":     func() (float64, error) { return PercentileFairness([]int{1, 2}, -5) },
		"p above range":  func() (float64, error) { return PercentileFairness([]int{1, 2}, 100.5) },
		"all degenerate": func() (float64, error) { return PercentileFairness(nil, 0) },
	} {
		if v, err := call(); err == nil {
			t.Errorf("%s: got %v, want error", name, v)
		}
	}

	// A single-node network needs its one node for any percentile.
	if got, err := PercentileFairness([]int{4}, 75); err != nil || got != 1 {
		t.Errorf("single node: got (%v, %v), want (1, nil)", got, err)
	}
	// All-equal loads hit the ideal: p percent of the data needs p percent
	// of the nodes (rounded up to whole nodes).
	if got, err := PercentileFairness([]int{2, 2, 2, 2}, 75); err != nil || got != 0.75 {
		t.Errorf("all equal p=75: got (%v, %v), want (0.75, nil)", got, err)
	}
	if got, err := PercentileFairness([]int{2, 2, 2, 2}, 100); err != nil || got != 1 {
		t.Errorf("all equal p=100: got (%v, %v), want (1, nil)", got, err)
	}
}

func TestStorageCurveDegenerate(t *testing.T) {
	if got := StorageCurve(nil); len(got) != 0 {
		t.Errorf("StorageCurve(nil) = %v, want empty", got)
	}
	got := StorageCurve([]int{0, 0, 0})
	if len(got) != 3 {
		t.Fatalf("StorageCurve(all-zero) has %d points, want 3", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Errorf("StorageCurve(all-zero)[%d] = %v, want 0 (empty network convention)", i, v)
		}
	}
	// Single node holds everything immediately.
	if got := StorageCurve([]int{5}); len(got) != 1 || got[0] != 1 {
		t.Errorf("StorageCurve(single) = %v, want [1]", got)
	}
}

func TestDistributionDiffDegenerate(t *testing.T) {
	if _, err := DistributionDiff([]int{1, 2}, []int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	out, err := DistributionDiff(nil, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("DistributionDiff(nil,nil) = (%v, %v), want empty, nil", out, err)
	}
}
