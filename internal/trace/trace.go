// Package trace is a dependency-free, allocation-disciplined span tracer
// for the solve pipeline. A Tracer owns a fixed-capacity ring buffer of
// finished spans and a head-sampling knob; each traced request gets a
// Trace handle whose spans record into the ring (and, for explain
// requests, into a per-request collection that summaries are built from).
//
// The design point is "free when off": a nil *Trace is the disabled
// state, every method on the zero Span and the nil Trace is a no-op, and
// Span is a value type with a fixed-size attribute array, so threading
// spans through the per-chunk solve loop adds zero heap allocations when
// tracing is disabled and only the ring-slot copy when sampled.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MaxAttrs is the per-span attribute capacity. Attributes past the cap
// are dropped silently; solve phases annotate at most a handful of
// counters each.
const MaxAttrs = 6

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity.
const DefaultCapacity = 2048

// Attr is one integer annotation on a span (tick counts, admitted
// facilities, repaired rows, byte sizes — the pipeline's counters are
// all integral).
type Attr struct {
	Key string
	Val int64
}

// Record is one finished span as stored in the ring: identifiers, name,
// and start/end offsets on the owning Tracer's monotonic epoch.
type Record struct {
	TraceID string
	SpanID  uint64
	Parent  uint64
	Name    string
	Start   time.Duration // offset from Tracer epoch, monotonic
	End     time.Duration
	Attrs   [MaxAttrs]Attr
	NAttrs  uint8
}

// Duration is the span's elapsed time.
func (r *Record) Duration() time.Duration { return r.End - r.Start }

// AttrMap copies the span's attributes into a fresh map (dump/summary
// paths only; allocates).
func (r *Record) AttrMap() map[string]int64 {
	if r.NAttrs == 0 {
		return nil
	}
	m := make(map[string]int64, r.NAttrs)
	for i := uint8(0); i < r.NAttrs; i++ {
		m[r.Attrs[i].Key] = r.Attrs[i].Val
	}
	return m
}

// Tracer owns the span ring and sampling state. One Tracer serves one
// Solver (or one server); all methods are safe for concurrent use. The
// observer, when set, must be installed before concurrent use begins.
type Tracer struct {
	epoch time.Time
	every atomic.Int64  // sample 1 in N traces; 0 = off
	ctr   atomic.Uint64 // head-sampling counter
	ids   atomic.Uint64 // span-id sequence

	obs func(*Record) // optional span observer (metrics export)

	mu   sync.Mutex
	ring []Record
	n    uint64 // total records ever written
}

// New builds a Tracer with a preallocated ring of the given capacity
// (DefaultCapacity when non-positive) and sampling off.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Record, capacity)}
}

// Epoch is the wall-clock instant record offsets are measured from.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// SetSampling records 1 in every traces (1 = all, 0 or negative = off).
func (t *Tracer) SetSampling(every int) {
	if t == nil {
		return
	}
	if every < 0 {
		every = 0
	}
	t.every.Store(int64(every))
}

// Sampling returns the current 1-in-N knob (0 = off).
func (t *Tracer) Sampling() int {
	if t == nil {
		return 0
	}
	return int(t.every.Load())
}

// Observe installs fn as the span observer, called once per recorded
// span (sampled or explain traces only — never on the disabled path).
// Install before the Tracer sees concurrent traffic.
func (t *Tracer) Observe(fn func(*Record)) {
	if t == nil {
		return
	}
	t.obs = fn
}

// StartTrace begins a trace for one request. It returns nil — the
// disabled, all-no-op handle — unless the request is explicitly
// collected (collect=true, the explain path) or head sampling picks it.
// An empty id gets a generated one.
func (t *Tracer) StartTrace(id string, collect bool) *Trace {
	if t == nil {
		return nil
	}
	sampled := false
	if every := t.every.Load(); every > 0 {
		sampled = t.ctr.Add(1)%uint64(every) == 0
	}
	if !sampled && !collect {
		return nil
	}
	if id == "" {
		id = "local-" + strconv.FormatUint(t.ids.Add(1), 16)
	}
	return &Trace{t: t, id: id, collect: collect}
}

func (t *Tracer) record(rec Record) {
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = rec
	t.n++
	t.mu.Unlock()
	if t.obs != nil {
		// Copy in-branch so the common observer-free path keeps rec on
		// the caller's stack.
		o := rec
		t.obs(&o)
	}
}

// Snapshot copies the ring's finished spans, oldest first.
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.n
	if size > uint64(len(t.ring)) {
		size = uint64(len(t.ring))
	}
	out := make([]Record, 0, size)
	for i := uint64(0); i < size; i++ {
		out = append(out, t.ring[(t.n-size+i)%uint64(len(t.ring))])
	}
	return out
}

// Trace is one sampled (or explain-collected) request's recording
// context. The nil Trace is the disabled state: Start returns a dead
// Span and everything downstream no-ops.
type Trace struct {
	t       *Tracer
	id      string
	collect bool

	mu   sync.Mutex
	recs []Record
}

// ID returns the trace id ("" on the nil Trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Start opens a root span. Safe on the nil Trace (returns a dead Span).
func (tr *Trace) Start(name string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, id: tr.t.ids.Add(1), name: name, start: time.Since(tr.t.epoch)}
}

// Collected copies the spans recorded so far for this trace (explain
// traces only; sampled-only traces return nil).
func (tr *Trace) Collected() []Record {
	if tr == nil || !tr.collect {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Record, len(tr.recs))
	copy(out, tr.recs)
	return out
}

// Span is an in-progress operation. It is a value type: attributes live
// in a fixed array on the caller's stack and only End copies the
// finished record into the Tracer's ring. The zero Span (from a nil
// Trace) is dead — every method is a no-op.
type Span struct {
	tr     *Trace
	name   string
	id     uint64
	parent uint64
	start  time.Duration
	attrs  [MaxAttrs]Attr
	n      uint8
}

// Live reports whether the span records anywhere. Use it to skip
// attribute computation that is itself costly.
func (s *Span) Live() bool { return s.tr != nil }

// Child opens a sub-span under s. On a dead span the child is dead too.
func (s *Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	sp := s.tr.Start(name)
	sp.parent = s.id
	return sp
}

// SetInt annotates the span; attributes past MaxAttrs are dropped.
func (s *Span) SetInt(key string, v int64) {
	if s.tr == nil || s.n >= MaxAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Val: v}
	s.n++
}

// End finishes the span, copying it into the ring (and the per-request
// collection on explain traces). End is idempotent: the second call on
// the same value is a no-op.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	tr := s.tr
	s.tr = nil
	rec := Record{
		TraceID: tr.id,
		SpanID:  s.id,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start,
		End:     time.Since(tr.t.epoch),
		Attrs:   s.attrs,
		NAttrs:  s.n,
	}
	tr.t.record(rec)
	if tr.collect {
		tr.mu.Lock()
		tr.recs = append(tr.recs, rec)
		tr.mu.Unlock()
	}
}

// PhaseSummary aggregates an explain trace's spans of one name: how many
// ran, their total elapsed time, and their summed integer attributes.
type PhaseSummary struct {
	Phase    string
	Count    int
	Total    time.Duration
	Counters map[string]int64
}

// Summarize groups records by span name in first-appearance order,
// summing durations and attributes.
func Summarize(recs []Record) []PhaseSummary {
	if len(recs) == 0 {
		return nil
	}
	idx := make(map[string]int, 8)
	out := make([]PhaseSummary, 0, 8)
	for i := range recs {
		r := &recs[i]
		j, ok := idx[r.Name]
		if !ok {
			j = len(out)
			idx[r.Name] = j
			out = append(out, PhaseSummary{Phase: r.Name})
		}
		ps := &out[j]
		ps.Count++
		ps.Total += r.Duration()
		for k := uint8(0); k < r.NAttrs; k++ {
			if ps.Counters == nil {
				ps.Counters = make(map[string]int64, MaxAttrs)
			}
			ps.Counters[r.Attrs[k].Key] += r.Attrs[k].Val
		}
	}
	return out
}

type ctxKey struct{}

// NewContext returns ctx carrying tr. A nil tr returns ctx unchanged,
// so the disabled path never allocates a context wrapper.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext extracts the Trace carried by ctx, nil if none. The nil
// result is the usual disabled handle — callers use it directly.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
