package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatalf("nil trace ID = %q, want empty", tr.ID())
	}
	sp := tr.Start("solve")
	if sp.Live() {
		t.Fatal("span from nil trace is live")
	}
	sp.SetInt("x", 1)
	child := sp.Child("phase")
	child.SetInt("y", 2)
	child.End()
	sp.End()
	if got := tr.Collected(); got != nil {
		t.Fatalf("nil trace collected %d records", len(got))
	}

	var tc *Tracer
	if tc.StartTrace("id", true) != nil {
		t.Fatal("nil tracer started a trace")
	}
	tc.SetSampling(1)
	if tc.Sampling() != 0 {
		t.Fatal("nil tracer sampling != 0")
	}
	if tc.Snapshot() != nil {
		t.Fatal("nil tracer snapshot != nil")
	}
}

func TestSamplingKnob(t *testing.T) {
	tc := New(16)
	if got := tc.StartTrace("", false); got != nil {
		t.Fatal("sampling off but StartTrace returned a live trace")
	}
	if got := tc.StartTrace("exp", true); got == nil {
		t.Fatal("collect=true must force a live trace even with sampling off")
	}
	tc.SetSampling(1)
	for i := 0; i < 5; i++ {
		if tc.StartTrace("", false) == nil {
			t.Fatalf("sampling=1 missed trace %d", i)
		}
	}
	tc.SetSampling(3)
	live := 0
	for i := 0; i < 30; i++ {
		if tc.StartTrace("", false) != nil {
			live++
		}
	}
	if live != 10 {
		t.Fatalf("sampling=3 kept %d of 30 traces, want 10", live)
	}
}

func TestRecordingAndSummary(t *testing.T) {
	tc := New(16)
	tr := tc.StartTrace("t1", true)
	root := tr.Start("solve")
	for i := 0; i < 3; i++ {
		c := root.Child("chunk")
		c.SetInt("ticks", int64(10*(i+1)))
		c.End()
	}
	root.SetInt("chunks", 3)
	root.End()
	root.End() // idempotent

	recs := tr.Collected()
	if len(recs) != 4 {
		t.Fatalf("collected %d records, want 4", len(recs))
	}
	for _, r := range recs[:3] {
		if r.Name != "chunk" || r.TraceID != "t1" {
			t.Fatalf("bad child record %+v", r)
		}
		if r.Parent != recs[3].SpanID {
			t.Fatalf("child parent = %d, want root %d", r.Parent, recs[3].SpanID)
		}
		if r.End < r.Start {
			t.Fatalf("record ends before it starts: %+v", r)
		}
	}

	sum := Summarize(recs)
	if len(sum) != 2 {
		t.Fatalf("summary has %d phases, want 2", len(sum))
	}
	if sum[0].Phase != "chunk" || sum[0].Count != 3 || sum[0].Counters["ticks"] != 60 {
		t.Fatalf("chunk summary wrong: %+v", sum[0])
	}
	if sum[1].Phase != "solve" || sum[1].Counters["chunks"] != 3 {
		t.Fatalf("solve summary wrong: %+v", sum[1])
	}

	snap := tc.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring snapshot has %d records, want 4", len(snap))
	}
}

func TestRingWrap(t *testing.T) {
	tc := New(4)
	tr := tc.StartTrace("wrap", true)
	for i := 0; i < 10; i++ {
		sp := tr.Start("s")
		sp.SetInt("i", int64(i))
		sp.End()
	}
	snap := tc.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	for i, r := range snap {
		if want := int64(6 + i); r.Attrs[0].Val != want {
			t.Fatalf("ring[%d] attr = %d, want %d (oldest-first)", i, r.Attrs[0].Val, want)
		}
	}
}

func TestAttrOverflowDropped(t *testing.T) {
	tc := New(4)
	tr := tc.StartTrace("", true)
	sp := tr.Start("s")
	for i := 0; i < MaxAttrs+3; i++ {
		sp.SetInt("k", 1)
	}
	sp.End()
	recs := tr.Collected()
	if recs[0].NAttrs != MaxAttrs {
		t.Fatalf("NAttrs = %d, want %d", recs[0].NAttrs, MaxAttrs)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tc := New(256)
	tr := tc.StartTrace("conc", true)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sp := tr.Start("op")
				sp.SetInt("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Collected()); got != 160 {
		t.Fatalf("collected %d spans, want 160", got)
	}
	seen := make(map[uint64]bool)
	for _, r := range tr.Collected() {
		if seen[r.SpanID] {
			t.Fatalf("duplicate span id %d", r.SpanID)
		}
		seen[r.SpanID] = true
	}
}

func TestObserver(t *testing.T) {
	tc := New(8)
	var names []string
	tc.Observe(func(r *Record) { names = append(names, r.Name) })
	tr := tc.StartTrace("", true)
	sp := tr.Start("a")
	sp.End()
	sp = tr.Start("b")
	sp.End()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("observer saw %v", names)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context yielded a trace")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("nil trace must not wrap the context")
	}
	tc := New(8)
	tr := tc.StartTrace("ctx", true)
	ctx2 := NewContext(ctx, tr)
	if FromContext(ctx2) != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

func TestDisabledSpanAllocFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("solve")
		sp.SetInt("chunks", 8)
		c := sp.Child("chunk")
		c.SetInt("ticks", 41)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}

func TestSampledSpanRingOnlyAllocBound(t *testing.T) {
	tc := New(64)
	tc.SetSampling(1)
	tr := tc.StartTrace("hot", false)
	if tr == nil {
		t.Fatal("sampling=1 must trace")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("solve")
		c := sp.Child("chunk")
		c.SetInt("ticks", 41)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("sampled (non-collect) span path allocates %.1f/op, want 0 (ring slots are preallocated)", allocs)
	}
}

func TestEpochMonotonic(t *testing.T) {
	tc := New(4)
	if tc.Epoch().IsZero() {
		t.Fatal("epoch not set")
	}
	tr := tc.StartTrace("", true)
	sp := tr.Start("s")
	time.Sleep(time.Millisecond)
	sp.End()
	r := tr.Collected()[0]
	if r.Duration() < time.Millisecond/2 {
		t.Fatalf("duration %v too small", r.Duration())
	}
}
