package confl

import (
	"context"
	"testing"
)

// allocInstance builds a deterministic standalone instance: line-metric
// connection costs |i-j| and uniform facility costs.
func allocInstance(n int) Instance {
	conn := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			conn[i*n+j] = float64(d)
		}
	}
	fc := make([]float64, n)
	for i := range fc {
		fc[i] = 3
	}
	return Instance{N: n, Producer: 0, FacilityCost: fc, ConnCost: conn}
}

// TestSteadyStateTickAllocFree pins the tentpole contract at its core: one
// dual-growth tick on a warm scratch performs zero heap allocations. Any
// regression here multiplies across every tick of every chunk of every
// solve, so the ceiling is exactly 0.
func TestSteadyStateTickAllocFree(t *testing.T) {
	inst := allocInstance(48)
	opts := Options{AlphaStep: 1, GammaStep: 1, SpanQuorum: 1}
	ctx := context.Background()

	// Warm the scratch with one full solve, then rebind and drive the
	// dual growth to convergence so the measured tick is steady-state.
	var scr Scratch
	if _, err := SolveScratchCtx(ctx, inst, opts, &scr); err != nil {
		t.Fatal(err)
	}
	s := scr.s.reset(inst, opts)
	for i := 0; s.anyActive(); i++ {
		if i > 10*inst.N {
			t.Fatal("dual growth failed to converge")
		}
		if err := s.tick(ctx); err != nil {
			t.Fatal(err)
		}
	}

	if got := testing.AllocsPerRun(50, func() {
		if err := s.tick(ctx); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("steady-state tick allocates %.1f times per run, want 0", got)
	}
}

// TestSolveScratchAllocBudget pins the whole-solve budget on a warm
// scratch: only the returned Solution (Assign, Alpha, Facilities and the
// struct itself) may allocate. The ceiling leaves no room for per-tick or
// per-node garbage to creep back in.
func TestSolveScratchAllocBudget(t *testing.T) {
	inst := allocInstance(48)
	opts := Options{AlphaStep: 1, GammaStep: 1, SpanQuorum: 1}
	ctx := context.Background()

	var scr Scratch
	if _, err := SolveScratchCtx(ctx, inst, opts, &scr); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := SolveScratchCtx(ctx, inst, opts, &scr); err != nil {
			t.Fatal(err)
		}
	})
	// Solution struct + Assign + Alpha + Facilities growth ≈ 6-8 allocs;
	// 16 gives slack for size-class variation without masking a leak of
	// even one alloc per tick (48 nodes ⇒ tens of ticks).
	if got > 16 {
		t.Errorf("warm SolveScratchCtx allocates %.1f times per run, want <= 16", got)
	}
}
