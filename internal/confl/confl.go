// Package confl solves one per-chunk Connected Facility Location instance
// with the primal-dual dual-growth scheme of the paper's Algorithm 1
// (phase 1). Demands raise connection bids α at a fixed unit step U_α;
// surplus bids fund facility opening costs (β) and relay/connectivity
// support (γ, the SPAN mechanism); a candidate whose opening cost is fully
// paid and that gathered a SPAN quorum becomes an ADMIN caching node.
//
// The scheme mirrors the structure of the 6.55-approximation primal-dual
// ConFL algorithm the paper builds on [20]; the iterative per-chunk use
// preserves the ratio (paper, Theorem 1). Phase 2 (connecting the ADMIN
// set with a Steiner tree) lives in package steiner and is orchestrated by
// package core.
package confl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/bitset"
	"repro/internal/pool"
)

// Instance is a single-chunk ConFL instance over nodes 0..N-1.
type Instance struct {
	// N is the number of nodes.
	N int
	// Producer is the node that originates the chunk. It acts as an
	// always-open facility with zero opening cost, and is not a demand.
	Producer int
	// FacilityCost holds the opening cost f_i per node (the Fairness
	// Degree Cost). +Inf marks nodes that must not cache (full storage).
	// The producer's entry is ignored. The slice is borrowed, not copied:
	// Algorithm 1 hands in views owned by its incremental cost model, so
	// the dual growth must treat it as read-only (it does — both cost
	// inputs are only ever read) and must not retain it past the solve.
	FacilityCost []float64
	// ConnCost is the symmetric path contention cost matrix c_ij, stored
	// flat in row-major order with stride N (entry (i, j) at ConnCost[i*N+j]).
	// Like FacilityCost it is a read-only borrow from the caller's cost
	// model, valid for the duration of one solve.
	ConnCost []float64
	// PreOpen lists nodes already caching the chunk; they behave like the
	// producer (open facilities with no further opening cost).
	PreOpen []int
}

// connRow returns row i of the flat connection cost matrix.
func (in *Instance) connRow(i int) []float64 {
	return in.ConnCost[i*in.N : (i+1)*in.N]
}

// Options tunes the dual-growth process.
type Options struct {
	// AlphaStep is U_α, the per-tick increment of every active demand's
	// connection bid. Smaller steps approximate the continuous process
	// more closely at the price of more iterations (Sec. IV-B).
	AlphaStep float64
	// GammaStep is U_γ, the per-tick increment of relay (SPAN) bids. A
	// demand starts raising its relay bid toward a candidate once its
	// connection bid covers the candidate's connection cost.
	GammaStep float64
	// SpanQuorum is M: the number of SPAN supporters a candidate needs
	// before volunteering as an ADMIN caching node.
	SpanQuorum int
	// MaxIterations caps the dual-growth loop as a safety net; 0 derives
	// the paper's bound max(c_ij)/U_α (plus slack) automatically.
	MaxIterations int
	// Pool fans the per-demand and per-candidate tick phases out over its
	// workers. nil (or a single-worker pool) runs the sequential reference
	// path; results are byte-identical either way because every parallel
	// item writes only its own row or slot.
	Pool *pool.Pool
}

// DefaultOptions returns the parameter set used throughout the evaluation,
// calibrated on the paper's 6×6-grid scenario so that per-chunk cache-set
// sizes, Gini coefficient and percentile fairness land in the reported
// regime (≈7 caches per chunk, Gini < 0.4 and falling with network size).
// The relay bid grows faster than the connection bid (U_γ > U_α) so that
// SPAN quorums form before the producer's growing service ball freezes the
// candidates' supporters.
func DefaultOptions() Options {
	return Options{
		AlphaStep:  1,
		GammaStep:  2.5,
		SpanQuorum: 2,
	}
}

// Solution is the outcome of phase 1 for one chunk. Its slices are freshly
// allocated per solve (they outlive the scratch the dual growth ran on).
type Solution struct {
	// Facilities is the ADMIN set A: nodes chosen to cache the chunk
	// (never includes the producer or pre-open nodes), sorted.
	Facilities []int
	// Assign maps every node to the open facility it was frozen against
	// (producer, pre-open or ADMIN member). Assign[Producer] = Producer.
	Assign []int
	// Alpha holds the final dual values α_j.
	Alpha []float64
	// Iterations is the number of dual-growth ticks executed.
	Iterations int
}

// Errors returned by Solve.
var (
	ErrBadInstance = errors.New("confl: invalid instance")
	ErrNoProgress  = errors.New("confl: dual growth exceeded iteration bound")
)

// solver carries the mutable dual-growth state. Its buffers live inside a
// Scratch and recycle across chunks and solves; the per-solve reset is a
// handful of memclr sweeps. The solver address is stable for the lifetime
// of its Scratch, so the tick-phase closures bind once and never reallocate.
type solver struct {
	inst Instance
	opts Options
	// open and admin are mutated only in the sequential opening scan, so
	// they pack into bitsets; frozen (the TIGHT set) is written by the
	// parallel freeze phase — distinct demands may share a bitset word, so
	// it must stay byte-addressed.
	open   bitset.Set
	admin  bitset.Set
	frozen []bool
	assign []int32
	alpha  []float64
	// gamma holds demand j's relay (SPAN) bid toward candidate i at
	// gamma[i*N+j] — flat with stride N, cleared per solve.
	gamma []float64
	// paidBuf caches Σ_j β_ij per candidate for one tick (α is fixed once
	// the raise phase ends, so the totals can be precomputed in parallel).
	paidBuf []float64

	// Hoisted tick-phase closures (allocated once per Scratch, not per
	// tick): the ForEach fan-outs would otherwise allocate a capture per
	// tick per phase.
	freezeFn func(j int)
	spanFn   func(i int)
	paidFn   func(i int)
}

// Scratch owns the reusable dual-growth state of one ConFL solver. A zero
// Scratch is ready for use; one Scratch serves any number of sequential
// solves (the per-chunk loop reuses one across all chunks), growing its
// buffers to the largest instance seen. Concurrent solves need one Scratch
// each.
type Scratch struct {
	s solver
}

// Solve runs the dual-growth process until every demand is frozen.
func Solve(inst Instance, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), inst, opts)
}

// SolveCtx runs the dual-growth process until every demand is frozen,
// checking ctx between ticks (and inside the parallel tick phases when
// opts.Pool is set). On cancellation it returns ctx.Err() wrapped so that
// errors.Is(err, context.Canceled/DeadlineExceeded) holds.
func SolveCtx(ctx context.Context, inst Instance, opts Options) (*Solution, error) {
	return SolveScratchCtx(ctx, inst, opts, nil)
}

// SolveScratchCtx is SolveCtx with the dual-growth state carved out of scr
// (nil allocates a transient scratch): a warm scratch makes a steady-state
// solve allocate only its Solution. The result is byte-identical to
// SolveCtx at any pool width.
func SolveScratchCtx(ctx context.Context, inst Instance, opts Options, scr *Scratch) (*Solution, error) {
	if err := validate(inst); err != nil {
		return nil, err
	}
	if opts.AlphaStep <= 0 {
		opts.AlphaStep = 1
	}
	if opts.GammaStep <= 0 {
		opts.GammaStep = opts.AlphaStep
	}
	if opts.SpanQuorum <= 0 {
		opts.SpanQuorum = 1
	}

	if scr == nil {
		scr = &Scratch{}
	}
	s := scr.s.reset(inst, opts)
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxC := 0.0
		for _, c := range inst.connRow(inst.Producer) {
			if c > maxC {
				maxC = c
			}
		}
		maxIter = int(maxC/opts.AlphaStep) + inst.N + 2
	}

	iter := 0
	for ; s.anyActive(); iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("%w after %d iterations", ErrNoProgress, iter)
		}
		if err := s.tick(ctx); err != nil {
			return nil, fmt.Errorf("confl: dual growth interrupted: %w", err)
		}
	}

	sol := &Solution{
		Assign:     make([]int, inst.N),
		Alpha:      append([]float64(nil), s.alpha...),
		Iterations: iter,
	}
	for j, a := range s.assign {
		sol.Assign[j] = int(a)
	}
	for i := 0; i < inst.N; i++ {
		if s.admin.Has(i) {
			sol.Facilities = append(sol.Facilities, i)
		}
	}
	// Facilities collect in ascending node order already; the sort is kept
	// as a guard (and documents the ordered contract).
	slices.Sort(sol.Facilities)
	return sol, nil
}

// reset binds the solver to a new instance, growing and clearing its
// buffers. The returned pointer is the scratch-resident solver.
func (s *solver) reset(inst Instance, opts Options) *solver {
	n := inst.N
	s.inst = inst
	s.opts = opts
	s.open = s.open.Grow(n)
	s.admin = s.admin.Grow(n)
	s.frozen = growBools(s.frozen, n)
	s.assign = growInt32(s.assign, n)
	s.alpha = growFloats(s.alpha, n)
	s.gamma = growFloats(s.gamma, n*n)
	s.paidBuf = growFloats(s.paidBuf, n)
	for j := range s.assign {
		s.assign[j] = -1
	}
	s.open.Add(inst.Producer)
	s.frozen[inst.Producer] = true
	s.assign[inst.Producer] = int32(inst.Producer)
	for _, v := range inst.PreOpen {
		s.open.Add(v)
		s.frozen[v] = true
		s.assign[v] = int32(v)
	}
	if s.freezeFn == nil {
		s.freezeFn = func(j int) { s.freezeDemand(j) }
		s.spanFn = func(i int) { s.raiseSpan(i) }
		s.paidFn = func(i int) {
			if s.isCandidate(i) {
				s.paidBuf[i] = s.paid(i)
			}
		}
	}
	return s
}

// tick advances the dual-growth process by one step U_α.
//
// Three of its four phases are embarrassingly parallel once the preceding
// phase has completed — each work item reads only state the earlier phases
// fixed and writes only its own slot or row — so they fan out over
// opts.Pool. The opening phase stays sequential: each opening freezes
// supporters, which changes the SPAN counts of later candidates.
func (s *solver) tick(ctx context.Context) error {
	inst, n := s.inst, s.inst.N
	p := s.opts.Pool

	// Raise connection bids of active demands.
	for j := 0; j < n; j++ {
		if !s.frozen[j] {
			s.alpha[j] += s.opts.AlphaStep
		}
	}

	// TIGHT: freeze demands whose bid covers an open facility. Because a
	// frozen demand's α stops growing, its contribution max(0, α_j − c_ij)
	// to still-unopened candidates is automatically snapshotted. Each
	// demand j reads the fixed open set and writes frozen[j]/assign[j].
	if err := p.ForEach(ctx, n, s.freezeFn); err != nil {
		return err
	}

	// Raise relay (SPAN) bids toward candidates the demand is tight with.
	// Per-candidate row i of γ; frozen[] is fixed for the rest of the tick.
	if err := p.ForEach(ctx, n, s.spanFn); err != nil {
		return err
	}

	// β totals depend only on α, which no longer moves this tick, so they
	// can be precomputed in parallel before the sequential opening scan.
	if err := p.ForEach(ctx, n, s.paidFn); err != nil {
		return err
	}

	// Open candidates that are fully paid and hold a SPAN quorum.
	for i := 0; i < n; i++ {
		if !s.isCandidate(i) {
			continue
		}
		if s.paidBuf[i] < inst.FacilityCost[i] || s.spanCount(i) < s.opts.SpanQuorum {
			continue
		}
		s.openAdmin(i)
	}
	return nil
}

// raiseSpan advances candidate i's relay-bid row for the demands tight with
// it (the SPAN phase of one tick). It writes only row i of γ.
func (s *solver) raiseSpan(i int) {
	if !s.isCandidate(i) {
		return
	}
	conn := s.inst.connRow(i)
	gamma := s.gamma[i*s.inst.N : (i+1)*s.inst.N]
	for j := 0; j < s.inst.N; j++ {
		if !s.frozen[j] && s.alpha[j] >= conn[j] {
			gamma[j] += s.opts.GammaStep
		}
	}
}

// isCandidate reports whether node i can still become a caching facility.
func (s *solver) isCandidate(i int) bool {
	return !s.open.Has(i) && i != s.inst.Producer && !math.IsInf(s.inst.FacilityCost[i], 1)
}

// paid returns Σ_j β_ij, the total contribution toward i's opening cost.
func (s *solver) paid(i int) float64 {
	total := 0.0
	conn := s.inst.connRow(i)
	for j := 0; j < s.inst.N; j++ {
		if j == s.inst.Producer {
			continue
		}
		if b := s.alpha[j] - conn[j]; b > 0 {
			total += b
		}
	}
	return total
}

// spanCount returns the number of active demands whose relay bid covers
// the connection cost to candidate i (SPAN supporters). The candidate's
// own zero-cost entry does not count: support must come from peers.
func (s *solver) spanCount(i int) int {
	count := 0
	conn := s.inst.connRow(i)
	gamma := s.gamma[i*s.inst.N : (i+1)*s.inst.N]
	for j := 0; j < s.inst.N; j++ {
		if s.frozen[j] || j == i {
			continue
		}
		if c := conn[j]; gamma[j] >= c && c > 0 {
			count++
		}
	}
	return count
}

// openAdmin promotes candidate i to an ADMIN caching node and freezes its
// supporters onto it.
func (s *solver) openAdmin(i int) {
	s.open.Add(i)
	s.admin.Add(i)
	if !s.frozen[i] {
		s.frozen[i] = true
		s.assign[i] = int32(i)
	}
	conn := s.inst.connRow(i)
	gamma := s.gamma[i*s.inst.N : (i+1)*s.inst.N]
	for j := 0; j < s.inst.N; j++ {
		if s.frozen[j] {
			continue
		}
		if s.alpha[j] >= conn[j] || gamma[j] >= conn[j] {
			s.frozen[j] = true
			s.assign[j] = int32(i)
		}
	}
}

// freezeDemand connects demand j to the cheapest open facility its α
// covers, if any. It touches only j's slots, so distinct demands can be
// frozen concurrently against a fixed open set. The scan walks the set
// bits of the open bitset in ascending node order (the open set is a
// handful of nodes, so this replaces n strided matrix loads with |open|),
// with the same strict < tie-break as a full ascending sweep.
func (s *solver) freezeDemand(j int) {
	if s.frozen[j] {
		return
	}
	best := int32(-1)
	bestC := math.Inf(1)
	aj := s.alpha[j]
	n := s.inst.N
	for wi, word := range s.open {
		base := wi * 64
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			if c := s.inst.ConnCost[i*n+j]; aj >= c && c < bestC {
				best, bestC = int32(i), c
			}
		}
	}
	if best >= 0 {
		s.frozen[j] = true
		s.assign[j] = best
	}
}

func (s *solver) anyActive() bool {
	for j := 0; j < s.inst.N; j++ {
		if !s.frozen[j] {
			return true
		}
	}
	return false
}

// growBools returns a cleared bool slice of length n, reusing b's storage
// when possible.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// growInt32 returns an int32 slice of length n, reusing storage (contents
// undefined; callers overwrite).
func growInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// growFloats returns a zeroed float64 slice of length n, reusing storage.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

func validate(inst Instance) error {
	if inst.N <= 0 {
		return fmt.Errorf("%w: N = %d", ErrBadInstance, inst.N)
	}
	if inst.Producer < 0 || inst.Producer >= inst.N {
		return fmt.Errorf("%w: producer %d out of range [0,%d)", ErrBadInstance, inst.Producer, inst.N)
	}
	if len(inst.FacilityCost) != inst.N {
		return fmt.Errorf("%w: facility cost length %d != N %d", ErrBadInstance, len(inst.FacilityCost), inst.N)
	}
	if len(inst.ConnCost) != inst.N*inst.N {
		return fmt.Errorf("%w: connection cost matrix length %d != N² %d", ErrBadInstance, len(inst.ConnCost), inst.N*inst.N)
	}
	for j, c := range inst.connRow(inst.Producer) {
		if math.IsInf(c, 1) {
			return fmt.Errorf("%w: node %d unreachable from producer", ErrBadInstance, j)
		}
	}
	for _, v := range inst.PreOpen {
		if v < 0 || v >= inst.N {
			return fmt.Errorf("%w: pre-open node %d out of range", ErrBadInstance, v)
		}
	}
	return nil
}
