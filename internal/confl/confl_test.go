package confl

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
)

// lineInstance builds an instance over a path graph 0-1-...-(n-1) with an
// empty cache, producer at p.
func lineInstance(t *testing.T, n, p int) Instance {
	t.Helper()
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(i-1, i); err != nil {
			t.Fatal(err)
		}
	}
	return instanceFrom(g, cache.NewState(n, 5), p)
}

func instanceFrom(g *graph.Graph, st *cache.State, producer int) Instance {
	costs := contention.ComputeCosts(g, st)
	fc := st.FairnessCosts()
	return Instance{
		N:            g.NumNodes(),
		Producer:     producer,
		FacilityCost: fc,
		ConnCost:     costs.C,
		PreOpen:      nil,
	}
}

func TestSolveValidation(t *testing.T) {
	valid := lineInstance(t, 4, 0)
	tests := []struct {
		name   string
		mutate func(Instance) Instance
	}{
		{name: "zero nodes", mutate: func(in Instance) Instance { in.N = 0; return in }},
		{name: "producer out of range", mutate: func(in Instance) Instance { in.Producer = 9; return in }},
		{name: "bad facility cost length", mutate: func(in Instance) Instance { in.FacilityCost = in.FacilityCost[:2]; return in }},
		{name: "bad cost rows", mutate: func(in Instance) Instance { in.ConnCost = in.ConnCost[:1]; return in }},
		{name: "bad pre-open", mutate: func(in Instance) Instance { in.PreOpen = []int{9}; return in }},
		{name: "unreachable node", mutate: func(in Instance) Instance {
			in.ConnCost[0*in.N+3] = math.Inf(1)
			return in
		}},
	}
	for _, tt := range tests {
		inst := tt.mutate(lineInstance(t, 4, 0))
		if _, err := Solve(inst, DefaultOptions()); !errors.Is(err, ErrBadInstance) {
			t.Errorf("%s: err = %v, want ErrBadInstance", tt.name, err)
		}
	}
	if _, err := Solve(valid, DefaultOptions()); err != nil {
		t.Errorf("valid instance: %v", err)
	}
}

func TestSolveAllFrozenAndAssigned(t *testing.T) {
	inst := lineInstance(t, 8, 0)
	sol, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < inst.N; j++ {
		if sol.Assign[j] < 0 || sol.Assign[j] >= inst.N {
			t.Errorf("Assign[%d] = %d, not a node", j, sol.Assign[j])
		}
	}
	if sol.Assign[0] != 0 {
		t.Errorf("producer assigned to %d, want itself", sol.Assign[0])
	}
	if sol.Iterations <= 0 {
		t.Error("Iterations = 0, expected progress to be counted")
	}
}

func TestSolveAssignsToOpenFacilitiesOnly(t *testing.T) {
	inst := lineInstance(t, 10, 0)
	sol, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	openSet := map[int]bool{inst.Producer: true}
	for _, f := range sol.Facilities {
		openSet[f] = true
	}
	for j, a := range sol.Assign {
		if !openSet[a] {
			t.Errorf("Assign[%d] = %d which is not open (facilities %v)", j, a, sol.Facilities)
		}
	}
}

func TestSolveFullNodesNeverChosen(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 1)
	// Fill every node except producer 4 and nodes 0, 8.
	for _, v := range []int{1, 2, 3, 5, 6, 7} {
		if err := st.Store(v, 99); err != nil {
			t.Fatal(err)
		}
	}
	inst := instanceFrom(g, st, 4)
	sol, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f != 0 && f != 8 {
			t.Errorf("full node %d chosen as facility", f)
		}
	}
}

func TestSolveHighQuorumFallsBackToProducer(t *testing.T) {
	inst := lineInstance(t, 6, 0)
	opts := DefaultOptions()
	opts.SpanQuorum = 100 // unreachable quorum: nobody volunteers
	sol, err := Solve(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Facilities) != 0 {
		t.Errorf("Facilities = %v, want none", sol.Facilities)
	}
	for j, a := range sol.Assign {
		if a != 0 {
			t.Errorf("Assign[%d] = %d, want producer 0", j, a)
		}
	}
}

func TestSolveOpensFacilityOnLongLine(t *testing.T) {
	// On a long line with producer at one end, distant demands should
	// recruit a closer ADMIN rather than all connecting to the producer.
	inst := lineInstance(t, 20, 0)
	opts := DefaultOptions()
	opts.SpanQuorum = 2
	sol, err := Solve(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Facilities) == 0 {
		t.Fatal("no facility opened on a 20-node line with quorum 2")
	}
	// At least one distant node should be served by a non-producer.
	servedByAdmin := 0
	for _, a := range sol.Assign {
		if a != 0 {
			servedByAdmin++
		}
	}
	if servedByAdmin == 0 {
		t.Error("all demands assigned to producer despite open facilities")
	}
}

func TestSolvePreOpenServesNeighbors(t *testing.T) {
	inst := lineInstance(t, 10, 0)
	inst.PreOpen = []int{9}
	sol, err := Solve(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[9] != 9 {
		t.Errorf("pre-open node assigned to %d, want itself", sol.Assign[9])
	}
	if sol.Assign[8] != 9 {
		t.Errorf("Assign[8] = %d, want pre-open neighbor 9", sol.Assign[8])
	}
}

func TestSolveIterationBoundError(t *testing.T) {
	inst := lineInstance(t, 12, 0)
	opts := DefaultOptions()
	opts.MaxIterations = 1
	if _, err := Solve(inst, opts); !errors.Is(err, ErrNoProgress) {
		t.Errorf("err = %v, want ErrNoProgress", err)
	}
}

func TestSolveSmallerAlphaStepNoWorse(t *testing.T) {
	// A finer step should not increase the number of ADMIN nodes wildly;
	// mostly we check both terminate and produce valid solutions, and the
	// finer step takes more iterations (Sec. IV-B trade-off).
	inst := lineInstance(t, 15, 7)
	coarse, err := Solve(inst, Options{AlphaStep: 4, GammaStep: 4, SpanQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Solve(lineInstance(t, 15, 7), Options{AlphaStep: 0.25, GammaStep: 0.25, SpanQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Iterations <= coarse.Iterations {
		t.Errorf("fine step iterations %d <= coarse %d", fine.Iterations, coarse.Iterations)
	}
}

func TestSolveDeterministic(t *testing.T) {
	g := graph.NewGrid(4, 4)
	st := cache.NewState(16, 5)
	a, err := Solve(instanceFrom(g, st, 5), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(instanceFrom(g, st, 5), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Facilities) != len(b.Facilities) {
		t.Fatalf("non-deterministic facilities: %v vs %v", a.Facilities, b.Facilities)
	}
	for i := range a.Facilities {
		if a.Facilities[i] != b.Facilities[i] {
			t.Fatalf("non-deterministic facilities: %v vs %v", a.Facilities, b.Facilities)
		}
	}
	for j := range a.Assign {
		if a.Assign[j] != b.Assign[j] {
			t.Fatalf("non-deterministic assignment at %d: %d vs %d", j, a.Assign[j], b.Assign[j])
		}
	}
}

// Property: on random connected graphs with random producers, Solve
// terminates with every node assigned to an open facility, never selects
// the producer as a facility, and dual values are bounded by the cost of
// connecting to the producer plus one step.
func TestSolveProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%15
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 3)
		for k := 0; k < n/2; k++ {
			_ = st.Store(rng.Intn(n), rng.Intn(4))
		}
		producer := rng.Intn(n)
		inst := instanceFrom(g, st, producer)
		opts := DefaultOptions()
		opts.SpanQuorum = 1 + rng.Intn(3)
		sol, err := Solve(inst, opts)
		if err != nil {
			return false
		}
		open := map[int]bool{producer: true}
		for _, fac := range sol.Facilities {
			if fac == producer {
				return false
			}
			open[fac] = true
		}
		for j, a := range sol.Assign {
			if !open[a] {
				return false
			}
			// α_j never exceeds the producer connection cost by more
			// than one step: once it covers the producer, j freezes.
			if sol.Alpha[j] > inst.ConnCost[producer*inst.N+j]+opts.AlphaStep+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randomConnectedGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		_ = g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < rng.Intn(n+1); i++ {
		_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}
