package confl

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/contention"
	"repro/internal/graph"
)

func benchInstance(side int) Instance {
	g := graph.NewGrid(side, side)
	st := cache.NewState(g.NumNodes(), 5)
	costs := contention.ComputeCosts(g, st)
	return Instance{
		N:            g.NumNodes(),
		Producer:     9 % g.NumNodes(),
		FacilityCost: st.FairnessCosts(),
		ConnCost:     costs.C,
	}
}

func BenchmarkSolvePrimalDual6x6(b *testing.B) {
	inst := benchInstance(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePrimalDual10x10(b *testing.B) {
	inst := benchInstance(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(inst, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGreedy6x6(b *testing.B) {
	inst := benchInstance(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveGreedy(inst, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
