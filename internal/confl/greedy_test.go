package confl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
)

func TestSolveGreedyValidation(t *testing.T) {
	inst := lineInstance(t, 4, 0)
	inst.Producer = 9
	if _, err := SolveGreedy(inst, DefaultOptions()); err == nil {
		t.Error("bad producer: want error")
	}
}

func TestSolveGreedyAssignsEveryone(t *testing.T) {
	inst := lineInstance(t, 12, 0)
	sol, err := SolveGreedy(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	openSet := map[int]bool{0: true}
	for _, f := range sol.Facilities {
		if f == 0 {
			t.Error("producer opened as facility")
		}
		openSet[f] = true
	}
	for j, a := range sol.Assign {
		if !openSet[a] {
			t.Errorf("Assign[%d] = %d not open", j, a)
		}
		if inst.ConnCost[a*inst.N+j] != sol.Alpha[j] {
			t.Errorf("Assign[%d] not the recorded best cost", j)
		}
	}
}

func TestSolveGreedyOpensOnLongLine(t *testing.T) {
	// Far demands on a long line make a cache clearly profitable.
	inst := lineInstance(t, 20, 0)
	sol, err := SolveGreedy(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Facilities) == 0 {
		t.Fatal("greedy opened nothing on a 20-node line")
	}
}

func TestSolveGreedySkipsFullNodes(t *testing.T) {
	g := graph.NewGrid(3, 3)
	st := cache.NewState(9, 1)
	for _, v := range []int{0, 1, 2, 3, 5, 6, 7} {
		if err := st.Store(v, 42); err != nil {
			t.Fatal(err)
		}
	}
	inst := instanceFrom(g, st, 4)
	sol, err := SolveGreedy(inst, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range sol.Facilities {
		if f != 8 {
			t.Errorf("full node %d opened", f)
		}
	}
}

// TestGreedyVersusPrimalDualObjective sanity-checks the ablation: both
// heuristics must yield feasible solutions within a small factor of each
// other on random instances (neither dominates, but neither should be
// wildly worse).
func TestGreedyVersusPrimalDualObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		g := randomConnectedGraph(rng, n)
		st := cache.NewState(n, 4)
		producer := rng.Intn(n)
		inst := instanceFrom(g, st, producer)

		objective := func(sol *Solution) float64 {
			total := 0.0
			for _, f := range sol.Facilities {
				total += inst.FacilityCost[f]
			}
			for j := 0; j < n; j++ {
				if j == producer {
					continue
				}
				best := inst.ConnCost[producer*inst.N+j]
				for _, f := range sol.Facilities {
					if c := inst.ConnCost[f*inst.N+j]; c < best {
						best = c
					}
				}
				total += best
			}
			return total
		}

		greedy, err := SolveGreedy(inst, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		pd, err := Solve(inst, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d primal-dual: %v", trial, err)
		}
		og, op := objective(greedy), objective(pd)
		if og <= 0 || op <= 0 || math.IsInf(og, 1) || math.IsInf(op, 1) {
			t.Fatalf("trial %d: degenerate objectives %g, %g", trial, og, op)
		}
		if og > 4*op || op > 4*og {
			t.Errorf("trial %d: heuristics diverge wildly: greedy %g vs primal-dual %g", trial, og, op)
		}
	}
}
