package confl

import (
	"context"
	"fmt"
	"math"
	"slices"
)

// SolveGreedy solves the same per-chunk ConFL instance with a greedy
// heuristic instead of the primal-dual dual growth. The paper's related
// work (Sec. II) notes that greedy ConFL solutions [23] lack approximation
// guarantees but can perform well in practice; this implementation exists
// as an ablation point against the guaranteed primal-dual algorithm.
//
// The greedy rule: starting from the producer alone, repeatedly open the
// facility with the best marginal gain
//
//	gain(i) = access savings − f_i − connection increment(i)
//
// where the connection increment is i's cheapest contention path to an
// already open facility (a proxy for the Steiner growth), and stop when no
// facility has positive gain. The returned Solution mirrors Solve's.
func SolveGreedy(inst Instance, opts Options) (*Solution, error) {
	return SolveGreedyCtx(context.Background(), inst, opts)
}

// SolveGreedyCtx is SolveGreedy with cancellation: the marginal-gain scan
// over candidates fans out over opts.Pool (deterministically — gains land
// in per-candidate slots and the arg-max scan stays sequential), and ctx is
// checked once per opened facility.
func SolveGreedyCtx(ctx context.Context, inst Instance, opts Options) (*Solution, error) {
	if err := validate(inst); err != nil {
		return nil, err
	}
	n := inst.N

	open := make([]bool, n)
	open[inst.Producer] = true
	for _, v := range inst.PreOpen {
		open[v] = true
	}

	// best[j]: current cheapest service cost for demand j.
	best := make([]float64, n)
	assign := make([]int, n)
	for j := 0; j < n; j++ {
		best[j] = math.Inf(1)
		assign[j] = -1
		for i := 0; i < n; i++ {
			if c := inst.ConnCost[i*n+j]; open[i] && c < best[j] {
				best[j] = c
				assign[j] = i
			}
		}
	}

	var facilities []int
	gains := make([]float64, n)
	for {
		// Each candidate's marginal gain depends only on the fixed open
		// set and service costs, so the scan parallelises into per-slot
		// writes; the arg-max below keeps the sequential tie-breaking.
		err := opts.Pool.ForEach(ctx, n, func(i int) {
			gains[i] = math.Inf(-1)
			if open[i] || i == inst.Producer || math.IsInf(inst.FacilityCost[i], 1) {
				return
			}
			conn := inst.connRow(i)
			savings := 0.0
			for j := 0; j < n; j++ {
				if d := best[j] - conn[j]; d > 0 {
					savings += d
				}
			}
			// Steiner growth proxy: the cheapest connection from i to
			// the currently open set.
			connect := math.Inf(1)
			for k := 0; k < n; k++ {
				if open[k] && conn[k] < connect {
					connect = conn[k]
				}
			}
			gains[i] = savings - inst.FacilityCost[i] - connect
		})
		if err != nil {
			return nil, fmt.Errorf("confl: greedy interrupted: %w", err)
		}
		bestGain, bestNode := 0.0, -1
		for i := 0; i < n; i++ {
			if gain := gains[i]; gain > bestGain+1e-12 {
				bestGain, bestNode = gain, i
			}
		}
		if bestNode < 0 {
			break
		}
		open[bestNode] = true
		facilities = append(facilities, bestNode)
		conn := inst.connRow(bestNode)
		for j := 0; j < n; j++ {
			if c := conn[j]; c < best[j] {
				best[j] = c
				assign[j] = bestNode
			}
		}
	}

	slices.Sort(facilities)
	return &Solution{
		Facilities: facilities,
		Assign:     assign,
		Alpha:      best, // the greedy's service costs play the dual role
	}, nil
}
