package confl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pool"
)

// randomInstance builds a valid symmetric instance with a few pre-open
// nodes and a few storage-full (+Inf facility cost) nodes.
func randomInstance(seed int64, n int) Instance {
	rng := rand.New(rand.NewSource(seed))
	conn := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := 1 + 30*rng.Float64()
			conn[i*n+j], conn[j*n+i] = c, c
		}
	}
	fc := make([]float64, n)
	for i := range fc {
		if rng.Intn(10) == 0 {
			fc[i] = math.Inf(1)
		} else {
			fc[i] = 5 + 50*rng.Float64()
		}
	}
	inst := Instance{N: n, Producer: rng.Intn(n), FacilityCost: fc, ConnCost: conn}
	if rng.Intn(2) == 0 {
		inst.PreOpen = []int{rng.Intn(n)}
	}
	return inst
}

func sameSolution(t *testing.T, tag string, want, got *Solution) {
	t.Helper()
	if len(want.Facilities) != len(got.Facilities) {
		t.Fatalf("%s: facilities %v != %v", tag, got.Facilities, want.Facilities)
	}
	for k := range want.Facilities {
		if want.Facilities[k] != got.Facilities[k] {
			t.Fatalf("%s: facilities %v != %v", tag, got.Facilities, want.Facilities)
		}
	}
	for j := range want.Assign {
		if want.Assign[j] != got.Assign[j] {
			t.Fatalf("%s: assign[%d] = %d, want %d", tag, j, got.Assign[j], want.Assign[j])
		}
		if math.Float64bits(want.Alpha[j]) != math.Float64bits(got.Alpha[j]) {
			t.Fatalf("%s: alpha[%d] = %v, want %v", tag, j, got.Alpha[j], want.Alpha[j])
		}
	}
	if want.Iterations != got.Iterations {
		t.Fatalf("%s: iterations %d != %d", tag, got.Iterations, want.Iterations)
	}
}

func TestSolveParallelMatchesSequential(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	for seed := int64(0); seed < 8; seed++ {
		inst := randomInstance(seed, 40)
		seq, err := Solve(inst, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		opts := DefaultOptions()
		opts.Pool = p
		par, err := SolveCtx(context.Background(), inst, opts)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		sameSolution(t, "primal-dual", seq, par)
	}
}

func TestSolveGreedyParallelMatchesSequential(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	for seed := int64(100); seed < 108; seed++ {
		inst := randomInstance(seed, 40)
		seq, err := SolveGreedy(inst, DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		opts := DefaultOptions()
		opts.Pool = p
		par, err := SolveGreedyCtx(context.Background(), inst, opts)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		sameSolution(t, "greedy", seq, par)
	}
}

func TestSolveCtxCancelled(t *testing.T) {
	inst := randomInstance(1, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveCtx(ctx, inst, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx: err = %v, want context.Canceled", err)
	}
	if _, err := SolveGreedyCtx(ctx, inst, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveGreedyCtx: err = %v, want context.Canceled", err)
	}
}
