package demand

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pool"
)

// TestAdaptationPropertyInvariants drives randomized request/adapt/evict
// sequences over grid, random and clustered topologies at worker widths
// 1 and 4 and asserts, throughout:
//
//   - no node ever exceeds its capacity,
//   - the holder bookkeeping mirrors the cache state exactly,
//   - the incremental cost model stays byte-identical to its
//     full-recompute Verify oracle.
//
// Across the matrix the walk takes >10k randomized steps in total.
func TestAdaptationPropertyInvariants(t *testing.T) {
	topologies := []struct {
		name  string
		build func(t *testing.T) *graph.Graph
	}{
		{"grid", func(t *testing.T) *graph.Graph { return graph.NewGrid(6, 6) }},
		{"random", func(t *testing.T) *graph.Graph {
			rg := graph.RandomGeometric{N: 40, Radius: graph.DefaultRadius(40)}
			g, _, err := rg.Generate(rand.New(rand.NewSource(17)))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"clustered", func(t *testing.T) *graph.Graph {
			c := graph.Clustered{Clusters: 3, Size: 8, IntraProb: 0.5, Bridges: 2}
			g, err := c.Generate(rand.New(rand.NewSource(23)))
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
	}
	for _, tc := range topologies {
		for _, workers := range []int{1, 4} {
			tc, workers := tc, workers
			t.Run(tc.name, func(t *testing.T) {
				runPropertyWalk(t, tc.build(t), workers, 2000)
			})
		}
	}
}

func runPropertyWalk(t *testing.T, g *graph.Graph, workers, steps int) {
	t.Helper()
	const chunks = 10
	s, err := New(g, 0, chunks, Options{
		Capacity:   2,
		Workers:    workers,
		TopDelta:   4,
		CopyBudget: 6,
		BucketSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.SeedCtx(ctx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(workers)*1000 + int64(g.NumNodes())))
	n := g.NumNodes()
	pl := pool.New(pool.Normalize(workers))
	defer pl.Close()

	checkInvariants := func(step int) {
		for v := 0; v < n; v++ {
			if s.st.Free(v) < 0 {
				t.Fatalf("step %d: node %d over capacity (%d/%d)", step, v, s.st.Stored(v), s.st.Capacity(v))
			}
		}
	}
	verify := func(step int) {
		if err := s.model.Verify(ctx, pl); err != nil {
			t.Fatalf("step %d: cost model diverged from oracle: %v", step, err)
		}
		checkHoldersSync(t, s)
	}
	verify(0)

	for step := 0; step < steps; step++ {
		switch r := rng.Float64(); {
		case r < 0.90: // request
			node := rng.Intn(n)
			if _, _, err := s.Observe(node, rng.Intn(chunks)); err != nil {
				t.Fatalf("step %d: observe: %v", step, err)
			}
		case r < 0.97: // direct eviction of a random live copy
			k := rng.Intn(chunks)
			if hs := s.holders[k]; len(hs) > 0 {
				v := hs[rng.Intn(len(hs))]
				if !s.evict(v, k) {
					t.Fatalf("step %d: evict(%d, %d) found nothing", step, v, k)
				}
			}
		default: // adaptation pass
			if _, err := s.AdaptCtx(ctx); err != nil {
				t.Fatalf("step %d: adapt: %v", step, err)
			}
		}
		checkInvariants(step)
		if step%500 == 499 {
			verify(step)
		}
	}
	verify(steps)
	st := s.Stats()
	if st.Requests == 0 || st.Adaptations == 0 {
		t.Fatalf("walk exercised too little: %+v", st)
	}
}
