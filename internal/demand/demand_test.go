package demand

import (
	"context"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/sim"
)

func TestTrackerWindowAndShares(t *testing.T) {
	tr := NewTracker(4, 3, 2, 10, 0.5)
	sh := tr.Shares()
	for k, s := range sh {
		if math.Abs(s-0.25) > 1e-12 {
			t.Fatalf("uniform prior: share[%d] = %v", k, s)
		}
	}
	for i := 0; i < 30; i++ {
		tr.Observe(i%3, 0)
	}
	sh = tr.Shares()
	if sh[0] < 0.9 {
		t.Fatalf("all demand on chunk 0: share = %v", sh[0])
	}
	if tr.Total() != 30 {
		t.Fatalf("Total = %d", tr.Total())
	}
	// The window holds at most 2 buckets × 10 requests.
	if w := tr.WindowCount(0); w > 20 {
		t.Fatalf("window count %d exceeds window size", w)
	}
	nw := tr.NodeWeights()
	sum := 0.0
	for _, w := range nw {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("node weights sum %v", sum)
	}
}

func TestTrackerShiftsUnderDrift(t *testing.T) {
	tr := NewTracker(2, 1, 4, 5, 0.5)
	for i := 0; i < 40; i++ {
		tr.Observe(0, 0)
	}
	for i := 0; i < 40; i++ {
		tr.Observe(0, 1)
	}
	sh := tr.Shares()
	if sh[1] < sh[0] {
		t.Fatalf("demand moved to chunk 1 but shares = %v", sh)
	}
}

func newTestSystem(t *testing.T, opts Options) *System {
	t.Helper()
	g := graph.NewGrid(5, 5)
	s, err := New(g, 0, 12, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SeedCtx(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeedMatchesStateAndHolders(t *testing.T) {
	s := newTestSystem(t, Options{Capacity: 3})
	total := 0
	for k := 0; k < s.Chunks(); k++ {
		hs := s.Holders(k)
		total += len(hs)
		for _, v := range hs {
			if !s.State().Has(v, k) {
				t.Fatalf("holder list says node %d has chunk %d, state disagrees", v, k)
			}
			if v == s.Producer() {
				t.Fatalf("producer holds chunk %d", k)
			}
		}
	}
	if total != s.State().TotalStored() {
		t.Fatalf("holder lists track %d copies, state stores %d", total, s.State().TotalStored())
	}
	if err := s.SeedCtx(context.Background()); err == nil {
		t.Fatal("second seed: want error")
	}
}

func TestObserveAccounting(t *testing.T) {
	s := newTestSystem(t, Options{Capacity: 3, HitRadius: 2})
	// Request every chunk from every non-producer node once.
	n := s.State().NumNodes()
	for j := 1; j < n; j++ {
		for k := 0; k < s.Chunks(); k++ {
			server, hops, err := s.Observe(j, k)
			if err != nil {
				t.Fatal(err)
			}
			if hops < 0 {
				t.Fatalf("negative hops %d", hops)
			}
			if server != s.Producer() && !s.State().Has(server, k) {
				t.Fatalf("served chunk %d from node %d which does not hold it", k, server)
			}
		}
	}
	st := s.Stats()
	want := int64((n - 1) * s.Chunks())
	if st.Requests != want {
		t.Fatalf("Requests = %d, want %d", st.Requests, want)
	}
	if st.CacheHits+st.ProducerServed != st.Requests {
		t.Fatalf("hit accounting leaks: %+v", st)
	}
	if st.LocalHits > st.CacheHits {
		t.Fatalf("local hits exceed cache hits: %+v", st)
	}
	if st.MeanCost() <= 0 {
		t.Fatalf("mean cost = %v, want > 0", st.MeanCost())
	}
	if p := s.P99Cost(); p < s.PercentileCost(0.5) {
		t.Fatalf("p99 %v below median %v", p, s.PercentileCost(0.5))
	}
	if _, _, err := s.Observe(-1, 0); err == nil {
		t.Fatal("bad node: want error")
	}
	if _, _, err := s.Observe(1, s.Chunks()); err == nil {
		t.Fatal("bad chunk: want error")
	}
}

func TestObserveServesNearestCopy(t *testing.T) {
	g := graph.NewLine(6)
	s, err := New(g, 0, 1, Options{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the placement: chunk 0 on node 4 only.
	if err := s.Model().Commit(4, 0); err != nil {
		t.Fatal(err)
	}
	s.holdersAdd(0, 4)
	server, hops, err := s.Observe(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if server != 4 || hops != 1 {
		t.Fatalf("served from %d at %d hops, want holder 4 at 1", server, hops)
	}
	// Node 1 is 1 hop from the producer, 3 from the holder.
	server, hops, err = s.Observe(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if server != 0 || hops != 1 {
		t.Fatalf("served from %d at %d hops, want producer 0 at 1", server, hops)
	}
}

func TestAdaptConcentratesOnHotChunk(t *testing.T) {
	s := newTestSystem(t, Options{Capacity: 3, TopDelta: 4, CopyBudget: 8})
	tr, err := sim.NewTrace(sim.TraceSpec{Nodes: 25, Chunks: 12, Seed: 11, ZipfS: 1.2, Exclude: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		r := tr.Next()
		if _, _, err := s.Observe(r.Node, r.Chunk); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	rep, err := s.AdaptCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TopChunks) != 4 {
		t.Fatalf("TopChunks = %v, want 4 entries", rep.TopChunks)
	}
	after := s.Stats()
	if after.Adaptations != before.Adaptations+1 {
		t.Fatalf("Adaptations = %d", after.Adaptations)
	}
	if len(rep.Placed) == 0 {
		t.Fatal("adaptation placed nothing on a hot skewed trace")
	}
	// The hottest chunk should have gained copies relative to the static
	// seed (the seed gives every chunk a similar footprint).
	shares := s.Tracker().Shares()
	hot := 0
	for k, sh := range shares {
		if sh > shares[hot] {
			hot = k
		}
	}
	found := false
	for _, k := range rep.TopChunks {
		if k == hot {
			found = true
		}
	}
	if !found {
		t.Fatalf("hottest chunk %d not in TopChunks %v", hot, rep.TopChunks)
	}
	// Capacity never violated, holder lists in sync.
	for v := 0; v < s.State().NumNodes(); v++ {
		if s.State().Free(v) < 0 {
			t.Fatalf("node %d over capacity", v)
		}
	}
	checkHoldersSync(t, s)
}

func TestAdaptDeterministic(t *testing.T) {
	run := func(workers int) ([][]int, Stats) {
		g := graph.NewGrid(5, 5)
		s, err := New(g, 0, 12, Options{Capacity: 3, Workers: workers, TopDelta: 4, CopyBudget: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SeedCtx(context.Background()); err != nil {
			t.Fatal(err)
		}
		tr, err := sim.NewTrace(sim.TraceSpec{Nodes: 25, Chunks: 12, Seed: 5, ZipfS: 1.0, Exclude: 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			r := tr.Next()
			if _, _, err := s.Observe(r.Node, r.Chunk); err != nil {
				t.Fatal(err)
			}
			if i%1000 == 999 {
				if _, err := s.AdaptCtx(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
		}
		return s.Placement(), s.Stats()
	}
	p1, st1 := run(1)
	p4, st4 := run(4)
	if st1 != st4 {
		t.Fatalf("stats diverge across worker counts:\n1: %+v\n4: %+v", st1, st4)
	}
	for k := range p1 {
		if len(p1[k]) != len(p4[k]) {
			t.Fatalf("chunk %d holders diverge: %v vs %v", k, p1[k], p4[k])
		}
		for i := range p1[k] {
			if p1[k][i] != p4[k][i] {
				t.Fatalf("chunk %d holders diverge: %v vs %v", k, p1[k], p4[k])
			}
		}
	}
}

func TestAdaptWithLRUAndLFU(t *testing.T) {
	for _, strat := range []cache.EvictionStrategy{cache.NewLRU(), cache.NewLFU()} {
		// CopyBudget near the network's total capacity forces the pass to
		// pressure-evict regardless of how many slots seeding left free.
		s := newTestSystem(t, Options{Capacity: 2, Eviction: strat, TopDelta: 3, CopyBudget: 45})
		tr, err := sim.NewTrace(sim.TraceSpec{Nodes: 25, Chunks: 12, Seed: 3, Exclude: 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			r := tr.Next()
			if _, _, err := s.Observe(r.Node, r.Chunk); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := s.AdaptCtx(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if len(rep.Evicted) == 0 {
			t.Fatalf("%s: expected pressure evictions on a tight cache", strat.Name())
		}
		checkHoldersSync(t, s)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	g := graph.NewGrid(3, 3)
	if _, err := New(nil, 0, 4, Options{}); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := New(g, 9, 4, Options{}); err == nil {
		t.Error("producer out of range: want error")
	}
	if _, err := New(g, 0, 0, Options{}); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := New(g, 0, 4, Options{Capacity: -1}); err == nil {
		t.Error("negative capacity: want error")
	}
}

// checkHoldersSync asserts the holder lists exactly mirror the state.
func checkHoldersSync(t *testing.T, s *System) {
	t.Helper()
	for k := 0; k < s.Chunks(); k++ {
		want := s.State().Holders(k)
		got := s.Holders(k)
		if len(want) != len(got) {
			t.Fatalf("chunk %d: holders %v, state %v", k, got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("chunk %d: holders %v, state %v", k, got, want)
			}
		}
	}
}
