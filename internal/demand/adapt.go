package demand

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"repro/internal/cache"
	"repro/internal/trace"
)

// AdaptReport records what one adaptation pass did.
type AdaptReport struct {
	// TopChunks lists the chunk ids the pass examined, in demand-score
	// order (highest first).
	TopChunks []int
	// Evicted lists the copies pressure-eviction removed.
	Evicted []cache.Copy
	// Placed lists the copies the pass added (re-placements and
	// redundancy copies).
	Placed []cache.Copy
	// Replaced lists chunks that had lost every copy and were re-placed
	// by a full fair-caching iteration.
	Replaced []int
}

// hitBonus is the extra hop-equivalent value of a copy placement that
// moves a requester from outside HitRadius to inside it (a miss turned
// into a hit). It is sized past the hop diameter of the evaluation
// topologies so that converting misses always outranks shaving hops off
// an already-hit path — duplicating a chunk that is already within
// radius buys no hit-rate at all.
const hitBonus = 24.0

// chunkScore is one chunk's estimated demand-weighted retrieval cost:
// share(k) · Σ_j w(j) · d(j, nearest holder or producer of k). High
// scores mark hot chunks that are far from their requesters — the
// mispositioned chunks the pass re-examines first.
type chunkScore struct {
	chunk int
	score float64
}

// AdaptCtx runs one adaptation pass against the current popularity
// estimates:
//
//  1. Score every chunk by demand-weighted retrieval cost and pick the
//     top TopDelta.
//  2. Pressure-evict the lowest-value copies (per the eviction strategy)
//     until at least CopyBudget slots are free network-wide.
//  3. Re-place any examined chunk that lost all copies with a full
//     fair-caching iteration (delta updates through the shared model).
//  4. Spend the remaining budget on redundancy copies: round-robin over
//     the examined chunks, each round adding the copy with the highest
//     demand-weighted hop saving net of a storage-fairness penalty.
//
// Every mutation flows through the incremental cost model, so the pass
// costs delta repairs, not rebuilds. The pass is deterministic for a
// fixed request history.
func (s *System) AdaptCtx(ctx context.Context) (*AdaptReport, error) {
	return s.AdaptTraceCtx(ctx, nil)
}

// AdaptTraceCtx is AdaptCtx with each of the five phases (score, evict,
// replace, redundancy, fill) plus the settling refresh recorded as child
// spans of parent. A nil (or dead) parent runs the untraced path at zero
// extra cost.
func (s *System) AdaptTraceCtx(ctx context.Context, parent *trace.Span) (*AdaptReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("demand: adapt: %w", err)
	}
	var dead trace.Span
	if parent == nil {
		parent = &dead
	}
	shares := s.tracker.Shares()
	weights := s.tracker.NodeWeights()

	report := &AdaptReport{}
	sp := parent.Child("adapt.score")
	top := s.topChunks(shares, weights)
	report.TopChunks = top
	sp.SetInt("topChunks", int64(len(top)))
	sp.End()

	sp = parent.Child("adapt.evict")
	if err := s.pressureEvict(shares, weights, report); err != nil {
		return nil, err
	}
	sp.SetInt("evicted", int64(len(report.Evicted)))
	sp.End()

	sp = parent.Child("adapt.replace")
	if err := s.replaceLost(ctx, top, report); err != nil {
		return nil, err
	}
	sp.SetInt("replaced", int64(len(report.Replaced)))
	sp.End()

	// The redundancy phase may fill every free slot: capacity left idle
	// serves nobody, so the budget only bounds displacement (evictions),
	// not placements into free space.
	budget := 0
	for v := 0; v < s.st.NumNodes(); v++ {
		budget += s.st.Free(v)
	}
	sp = parent.Child("adapt.redundancy")
	placedBefore := len(report.Placed)
	s.addRedundancy(top, shares, weights, budget, report)
	sp.SetInt("placed", int64(len(report.Placed)-placedBefore))
	sp.End()

	sp = parent.Child("adapt.fill")
	placedBefore = len(report.Placed)
	s.fillFree(shares, report)
	sp.SetInt("placed", int64(len(report.Placed)-placedBefore))
	sp.End()

	// Leave the matrices repaired: the pass batched its deltas, one
	// refresh settles them so the next request burst and Verify calls
	// start from a clean model.
	pl := s.newPool()
	defer pl.Close()
	sp = parent.Child("adapt.refresh")
	if err := s.model.RefreshCtx(ctx, pl); err != nil {
		return nil, err
	}
	sp.End()
	s.statsMu.Lock()
	s.stats.Adaptations++
	s.stats.CopiesPlaced += int64(len(report.Placed))
	s.statsMu.Unlock()
	return report, nil
}

// topChunks ranks chunks by demand-weighted retrieval cost and returns
// the TopDelta highest, ties broken toward the lower chunk id.
func (s *System) topChunks(shares, weights []float64) []int {
	scores := make([]chunkScore, s.chunks)
	for k := 0; k < s.chunks; k++ {
		cost := 0.0
		for j := range weights {
			if weights[j] == 0 || j == s.producer {
				continue
			}
			_, d := s.nearestServer(j, k)
			cost += weights[j] * float64(d)
		}
		scores[k] = chunkScore{chunk: k, score: shares[k] * cost}
	}
	// Descending score with ascending chunk id on ties: a strict total
	// order, so the adaptation set is deterministic across runs.
	slices.SortFunc(scores, func(a, b chunkScore) int {
		if a.score != b.score {
			return cmp.Compare(b.score, a.score)
		}
		return cmp.Compare(a.chunk, b.chunk)
	})
	n := s.opts.TopDelta
	if n > len(scores) {
		n = len(scores)
	}
	top := make([]int, n)
	for i := 0; i < n; i++ {
		top[i] = scores[i].chunk
	}
	return top
}

// marginalEvictCost returns, for every current copy of chunk k, the
// demand-weighted retrieval-cost increase its removal would cause:
// requesters whose nearest server is that copy fall back to their
// second-nearest (other holders or the producer). It writes the values
// into the cost-aware oracle map.
func (s *System) marginalEvictCost(k int, shares, weights []float64, oracle map[int64]float64) {
	holders := s.holders[k]
	for _, v := range holders {
		oracle[copyID(v, k)] = 0
	}
	if len(holders) == 0 {
		return
	}
	for j := range weights {
		if weights[j] == 0 || j == s.producer {
			continue
		}
		// Nearest and second-nearest servers of chunk k from j, producer
		// included; ties resolve exactly as nearestServer's serving rule.
		best, bestD := s.producer, s.hop[j][s.producer]
		fromCache := false
		for _, v := range holders {
			if d := s.hop[j][v]; d < bestD || (d == bestD && !fromCache) {
				best, bestD, fromCache = v, d, true
			}
		}
		if !fromCache {
			continue // served by the producer; no copy is load-bearing here
		}
		secondD := s.hop[j][s.producer]
		for _, v := range holders {
			if v == best {
				continue
			}
			if d := s.hop[j][v]; d < secondD {
				secondD = d
			}
		}
		oracle[copyID(best, k)] += shares[k] * weights[j] * float64(secondD-bestD)
	}
}

// pressureEvict frees capacity for the placement phases: while fewer
// than CopyBudget slots are free network-wide, the eviction strategy's
// lowest-scoring copy is removed. With the built-in cost-aware strategy
// the score is the marginal retrieval-cost increase, recomputed for the
// victim's chunk after each removal.
func (s *System) pressureEvict(shares, weights []float64, report *AdaptReport) error {
	free := 0
	for v := 0; v < s.st.NumNodes(); v++ {
		free += s.st.Free(v)
	}
	var candidates []cache.Copy
	for k := 0; k < s.chunks; k++ {
		for _, v := range s.holders[k] {
			candidates = append(candidates, cache.Copy{Node: v, Chunk: k})
		}
	}
	if s.costOracle != nil {
		clear(s.costOracle)
		for k := 0; k < s.chunks; k++ {
			s.marginalEvictCost(k, shares, weights, s.costOracle)
		}
	}
	for free < s.opts.CopyBudget && len(candidates) > 0 {
		victim, ok := cache.SelectVictim(s.strat, candidates)
		if !ok {
			break
		}
		if !s.evict(victim.Node, victim.Chunk) {
			return fmt.Errorf("demand: evict lost track of copy (%d, %d)", victim.Node, victim.Chunk)
		}
		report.Evicted = append(report.Evicted, victim)
		free++
		for i, c := range candidates {
			if c == victim {
				candidates = append(candidates[:i], candidates[i+1:]...)
				break
			}
		}
		if s.costOracle != nil {
			// The victim's chunk lost a copy: its survivors' marginal
			// costs changed (some requesters re-homed onto them).
			s.marginalEvictCost(victim.Chunk, shares, weights, s.costOracle)
		}
	}
	return nil
}

// replaceLost runs one full fair-caching iteration for every examined
// chunk that no longer has any copy — the situation TTL expiry and
// aggressive eviction create, where only the producer serves the chunk.
func (s *System) replaceLost(ctx context.Context, top []int, report *AdaptReport) error {
	for _, k := range top {
		if len(s.holders[k]) > 0 {
			continue
		}
		res, err := s.solver.PlaceOneModelCtx(ctx, s.producer, k, s.model)
		if err != nil {
			return fmt.Errorf("demand: re-place chunk %d: %w", k, err)
		}
		for _, v := range res.CacheNodes {
			s.holdersAdd(k, v)
			s.strat.OnStore(v, k, s.clock)
			report.Placed = append(report.Placed, cache.Copy{Node: v, Chunk: k})
		}
		report.Replaced = append(report.Replaced, k)
	}
	return nil
}

// addRedundancy spends the remaining copy budget on extra copies of the
// examined chunks, round-robin so one hot chunk cannot starve the rest:
// each round places the copy with the highest demand-weighted hop saving
//
//	share(k) · Σ_j w(j) · max(0, d_now(j,k) − hop(j,v))
//
// minus FairnessBias · FairnessCost(v), skipping full nodes, existing
// holders and the producer, and stopping when no candidate nets a
// positive gain. Ties break toward the lowest node id.
func (s *System) addRedundancy(top []int, shares, weights []float64, budget int, report *AdaptReport) {
	if budget <= 0 || len(top) == 0 {
		return
	}
	n := s.st.NumNodes()
	// d1[j] per chunk is recomputed on each placement attempt; chunks cycle
	// until the budget runs out or a full round places nothing.
	exhausted := make(map[int]bool, len(top))
	for budget > 0 && len(exhausted) < len(top) {
		progressed := false
		for _, k := range top {
			if budget <= 0 {
				break
			}
			if exhausted[k] {
				continue
			}
			d1 := make([]float64, n)
			for j := 0; j < n; j++ {
				_, d := s.nearestServer(j, k)
				d1[j] = float64(d)
			}
			bestV, bestGain := -1, 0.0
			for v := 0; v < n; v++ {
				if v == s.producer || s.st.Free(v) <= 0 || s.st.Has(v, k) {
					continue
				}
				gain := 0.0
				for j := 0; j < n; j++ {
					if weights[j] == 0 || j == s.producer {
						continue
					}
					dv := float64(s.hop[j][v])
					save := d1[j] - dv
					if save <= 0 {
						continue
					}
					// A copy that pulls a requester inside HitRadius turns
					// misses into hits — worth more than the same hop count
					// saved far from the radius.
					if d1[j] > float64(s.opts.HitRadius) && dv <= float64(s.opts.HitRadius) {
						save += hitBonus
					}
					gain += weights[j] * save
				}
				gain = shares[k]*gain - s.opts.FairnessBias*s.st.FairnessCost(v)
				if gain > bestGain || (gain == bestGain && bestGain > 0 && v < bestV) {
					bestV, bestGain = v, gain
				}
			}
			if bestV < 0 || bestGain <= 0 {
				exhausted[k] = true
				continue
			}
			if err := s.commit(bestV, k); err != nil {
				// Full or duplicate despite the guards would be a holder
				// bookkeeping bug; mark the chunk done rather than spin.
				exhausted[k] = true
				continue
			}
			report.Placed = append(report.Placed, cache.Copy{Node: bestV, Chunk: k})
			budget--
			progressed = true
		}
		if !progressed {
			break
		}
	}
}

// fillFree spends any capacity the targeted phases left idle: each node
// with free slots takes the chunk its neighborhood most lacks, scored by
// share(k) · d(v, nearest holder or producer of k). Idle storage serves
// nobody, and because every node fills to capacity the caching load
// levels out — this phase is what keeps the adaptive policy's Gini near
// the static placement's while the targeted phases chase hit-rate.
func (s *System) fillFree(shares []float64, report *AdaptReport) {
	n := s.st.NumNodes()
	for v := 0; v < n; v++ {
		if v == s.producer {
			continue
		}
		for s.st.Free(v) > 0 {
			bestK, bestScore := -1, 0.0
			for k := 0; k < s.chunks; k++ {
				if s.st.Has(v, k) {
					continue
				}
				_, d := s.nearestServer(v, k)
				dist := float64(d)
				if dist > float64(s.opts.HitRadius) {
					dist += hitBonus // out-of-radius chunks are misses here
				}
				score := shares[k] * dist
				if score > bestScore {
					bestK, bestScore = k, score
				}
			}
			if bestK < 0 || bestScore <= 0 {
				break
			}
			if err := s.commit(v, bestK); err != nil {
				break
			}
			report.Placed = append(report.Placed, cache.Copy{Node: v, Chunk: bestK})
		}
	}
}
