package demand

// Tracker maintains online popularity estimates from the request stream:
// a sliding window of exact per-chunk and per-node counts (ring of
// fixed-size buckets, so memory is O(buckets·(Q+N)) regardless of trace
// length) blended with a per-chunk EWMA of bucket shares. The window
// reacts quickly to drift; the EWMA remembers enough history to keep
// estimates stable between adaptations.
type Tracker struct {
	chunks, nodes int
	alpha         float64
	bucketSize    int

	chunkBuckets [][]int32 // [bucket][chunk]
	nodeBuckets  [][]int32 // [bucket][node]
	chunkWin     []int64   // window totals per chunk
	nodeWin      []int64   // window totals per node
	winTotal     int64

	ewma     []float64 // per-chunk EWMA of bucket shares
	ewmaInit bool

	cur      int // current bucket index
	curCount int // observations in the current bucket
	total    int64
}

// NewTracker returns a tracker over chunk ids [0, chunks) and node ids
// [0, nodes) with a window of buckets×bucketSize requests and EWMA
// weight alpha in (0, 1].
func NewTracker(chunks, nodes, buckets, bucketSize int, alpha float64) *Tracker {
	if buckets < 1 {
		buckets = 1
	}
	if bucketSize < 1 {
		bucketSize = 1
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	t := &Tracker{
		chunks:       chunks,
		nodes:        nodes,
		alpha:        alpha,
		bucketSize:   bucketSize,
		chunkBuckets: make([][]int32, buckets),
		nodeBuckets:  make([][]int32, buckets),
		chunkWin:     make([]int64, chunks),
		nodeWin:      make([]int64, nodes),
		ewma:         make([]float64, chunks),
	}
	for b := range t.chunkBuckets {
		t.chunkBuckets[b] = make([]int32, chunks)
		t.nodeBuckets[b] = make([]int32, nodes)
	}
	return t
}

// Observe records one request event.
func (t *Tracker) Observe(node, chunk int) {
	if t.curCount >= t.bucketSize {
		t.rotate()
	}
	t.chunkBuckets[t.cur][chunk]++
	t.nodeBuckets[t.cur][node]++
	t.chunkWin[chunk]++
	t.nodeWin[node]++
	t.winTotal++
	t.curCount++
	t.total++
}

// rotate folds the full current bucket into the EWMA and reopens the
// oldest bucket, dropping its counts from the window.
func (t *Tracker) rotate() {
	full := t.chunkBuckets[t.cur]
	if t.curCount > 0 {
		inv := 1 / float64(t.curCount)
		if !t.ewmaInit {
			for k, c := range full {
				t.ewma[k] = float64(c) * inv
			}
			t.ewmaInit = true
		} else {
			a := t.alpha
			for k, c := range full {
				t.ewma[k] = (1-a)*t.ewma[k] + a*float64(c)*inv
			}
		}
	}
	t.cur = (t.cur + 1) % len(t.chunkBuckets)
	for k, c := range t.chunkBuckets[t.cur] {
		if c != 0 {
			t.chunkWin[k] -= int64(c)
			t.winTotal -= int64(c)
			t.chunkBuckets[t.cur][k] = 0
		}
	}
	for v, c := range t.nodeBuckets[t.cur] {
		if c != 0 {
			t.nodeWin[v] -= int64(c)
			t.nodeBuckets[t.cur][v] = 0
		}
	}
	t.curCount = 0
}

// Shares returns the estimated chunk demand distribution: an equal
// blend of the sliding-window share and the EWMA share, normalized to
// sum to 1. Before any observation it is uniform.
func (t *Tracker) Shares() []float64 {
	out := make([]float64, t.chunks)
	if t.total == 0 {
		for k := range out {
			out[k] = 1 / float64(t.chunks)
		}
		return out
	}
	sum := 0.0
	for k := range out {
		s := 0.0
		if t.winTotal > 0 {
			s = float64(t.chunkWin[k]) / float64(t.winTotal)
		}
		if t.ewmaInit {
			s = 0.5*s + 0.5*t.ewma[k]
		}
		out[k] = s
		sum += s
	}
	if sum > 0 {
		for k := range out {
			out[k] /= sum
		}
	}
	return out
}

// NodeWeights returns the per-node request-rate shares over the sliding
// window, normalized to sum to 1; uniform before any observation.
func (t *Tracker) NodeWeights() []float64 {
	out := make([]float64, t.nodes)
	if t.winTotal == 0 {
		for v := range out {
			out[v] = 1 / float64(t.nodes)
		}
		return out
	}
	inv := 1 / float64(t.winTotal)
	for v := range out {
		out[v] = float64(t.nodeWin[v]) * inv
	}
	return out
}

// Total returns the number of observations so far.
func (t *Tracker) Total() int64 { return t.total }

// WindowCount returns the exact request count for one chunk inside the
// sliding window.
func (t *Tracker) WindowCount(chunk int) int64 { return t.chunkWin[chunk] }
