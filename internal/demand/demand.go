// Package demand is the request-driven adaptive caching subsystem: it
// serves a live stream of chunk requests against the current placement,
// maintains online popularity estimates (sliding window + EWMA, package
// Tracker), and periodically re-places the most mispositioned chunks
// through delta updates to the shared incremental cost model — warm
// mutations via Commit/Evict, never a full rebuild. It generalizes
// package online from publication-driven to request-driven operation,
// following the adaptation-loop design of Ioannidis & Yeh (Adaptive
// Caching Networks with Optimality Guarantees) and the demand-weighted
// diversity/redundancy tradeoff of Wang et al.
//
// A System is not safe for concurrent use; callers (the server's
// per-topology worker, the eval replayer) serialize mutations exactly as
// they do for the online system. Stats alone may be read concurrently.
package demand

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pool"
)

// Errors returned by the demand system.
var ErrBadInput = errors.New("demand: invalid input")

// Options configures the adaptive caching system. Zero values select the
// documented defaults.
type Options struct {
	// Capacity is the per-node cache capacity in chunks (default 5, the
	// paper's evaluation value). Ignored when Model is set — the model's
	// state fixes the capacities.
	Capacity int
	// FairnessWeight and BatteryWeight mirror the core solver options and
	// must match Model's weights when one is injected. FairnessWeight
	// defaults to 1.
	FairnessWeight float64
	BatteryWeight  float64
	// Workers sizes the solver pool for seeding and adaptation placements.
	Workers int
	// Eviction selects the replacement strategy consulted when the
	// adaptation loop frees capacity; nil selects the cost-aware strategy
	// backed by the system's demand-weighted marginal-cost estimate.
	Eviction cache.EvictionStrategy
	// HitRadius is the hop distance within which a cache copy counts as a
	// local hit (default 2, the paper's K-hop neighborhood).
	HitRadius int
	// TopDelta bounds how many top-demand chunks one adaptation pass
	// re-examines (default 8).
	TopDelta int
	// CopyBudget bounds how many existing copies one adaptation pass may
	// displace: pressure-eviction frees at most this many occupied slots
	// (default 3×TopDelta). Free capacity is always eligible for filling
	// — the redundancy phase places into every free slot with a positive
	// demand-weighted gain, so the network's storage is actually used.
	CopyBudget int
	// FairnessBias scales the storage-fairness penalty inside the
	// redundancy greedy, trading hit-rate against Gini (default 0.02).
	// Negative disables the penalty.
	FairnessBias float64
	// WindowBuckets and BucketSize shape the popularity tracker's sliding
	// window (defaults 8 buckets × 2048 requests); Alpha is its EWMA
	// weight (default 0.3).
	WindowBuckets int
	BucketSize    int
	Alpha         float64
	// Model, when non-nil, supplies a caller-owned cost model to adopt —
	// the warm-fork hook the root Solver uses so adaptive systems skip
	// the cold all-pairs build. The model's graph must be the system's
	// graph and its state must be empty.
	Model *costmodel.Model
}

func (o Options) withDefaults() Options {
	if o.Capacity == 0 {
		o.Capacity = 5
	}
	if o.FairnessWeight == 0 {
		o.FairnessWeight = 1
	}
	if o.HitRadius == 0 {
		o.HitRadius = 2
	}
	if o.TopDelta == 0 {
		o.TopDelta = 8
	}
	if o.CopyBudget == 0 {
		o.CopyBudget = 3 * o.TopDelta
	}
	if o.FairnessBias == 0 {
		o.FairnessBias = 0.02
	} else if o.FairnessBias < 0 {
		o.FairnessBias = 0
	}
	if o.WindowBuckets == 0 {
		o.WindowBuckets = 8
	}
	if o.BucketSize == 0 {
		o.BucketSize = 2048
	}
	if o.Alpha == 0 {
		o.Alpha = 0.3
	}
	return o
}

// Stats is a snapshot of the system's request/adaptation counters.
type Stats struct {
	// Requests counts observed request events.
	Requests int64
	// LocalHits counts requests served by a cache copy within HitRadius
	// hops; CacheHits counts requests served by any cache copy;
	// ProducerServed counts requests that fell through to the producer.
	LocalHits      int64
	CacheHits      int64
	ProducerServed int64
	// Evictions, Adaptations and CopiesPlaced count the adaptation loop's
	// work (seeding does not count toward CopiesPlaced).
	Evictions    int64
	Adaptations  int64
	CopiesPlaced int64
	// CostSum totals the hop-distance retrieval cost over all requests.
	CostSum float64
}

// HitRate returns the fraction of requests served within HitRadius.
func (s Stats) HitRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.LocalHits) / float64(s.Requests)
}

// CacheRate returns the fraction of requests served by any cache copy.
func (s Stats) CacheRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// MeanCost returns the mean hop-distance retrieval cost per request.
func (s Stats) MeanCost() float64 {
	if s.Requests == 0 {
		return 0
	}
	return s.CostSum / float64(s.Requests)
}

// System is one adaptive caching instance: a live cost model, the current
// placement, a popularity tracker, and an eviction strategy.
type System struct {
	g        *graph.Graph
	producer int
	chunks   int
	opts     Options

	solver  *core.Solver
	model   *costmodel.Model
	st      *cache.State
	strat   cache.EvictionStrategy
	tracker *Tracker

	hop     [][]int // all-pairs hop distances
	holders [][]int // per-chunk holder lists, sorted

	clock int64

	// oracle state for the built-in cost-aware strategy: per-copy
	// demand-weighted marginal retrieval costs, rebuilt each eviction pass.
	costOracle map[int64]float64

	statsMu sync.Mutex
	stats   Stats
	hist    []int64 // request count by retrieval hop distance
}

// New builds an adaptive system over a connected topology. The producer
// holds every chunk locally and never caches; chunk ids are [0, chunks).
func New(g *graph.Graph, producer, chunks int, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if g == nil || g.NumNodes() < 2 {
		return nil, fmt.Errorf("%w: nil or trivial topology", ErrBadInput)
	}
	if producer < 0 || producer >= g.NumNodes() {
		return nil, fmt.Errorf("%w: producer %d", ErrBadInput, producer)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("%w: chunks %d", ErrBadInput, chunks)
	}
	var (
		model *costmodel.Model
		st    *cache.State
		pc    *graph.PathCache
	)
	if opts.Model != nil {
		model = opts.Model
		if model.Graph() != g {
			return nil, fmt.Errorf("%w: injected model bound to another topology", ErrBadInput)
		}
		if mo := model.Options(); mo.FairnessWeight != opts.FairnessWeight || mo.BatteryWeight != opts.BatteryWeight {
			return nil, fmt.Errorf("%w: injected model weights (%g, %g) differ from options (%g, %g)",
				ErrBadInput, mo.FairnessWeight, mo.BatteryWeight, opts.FairnessWeight, opts.BatteryWeight)
		}
		st = model.State()
		if st.TotalStored() != 0 {
			return nil, fmt.Errorf("%w: injected model state is not empty", ErrBadInput)
		}
		pc = model.PathCache()
	} else {
		if opts.Capacity < 1 {
			return nil, fmt.Errorf("%w: capacity %d", ErrBadInput, opts.Capacity)
		}
		pc = graph.NewPathCache(g)
		st = cache.NewState(g.NumNodes(), opts.Capacity)
		var err error
		model, err = costmodel.New(g, pc, st, costmodel.Options{
			FairnessWeight: opts.FairnessWeight,
			BatteryWeight:  opts.BatteryWeight,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	coreOpts := core.DefaultOptions()
	coreOpts.FairnessWeight = opts.FairnessWeight
	coreOpts.BatteryWeight = opts.BatteryWeight
	coreOpts.Workers = opts.Workers
	coreOpts.PathCache = pc
	solver, err := core.New(g, coreOpts)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	hop := make([][]int, n)
	for i := 0; i < n; i++ {
		hop[i] = append([]int(nil), pc.HopDistances(i)...)
	}
	strat := opts.Eviction
	s := &System{
		g:        g,
		producer: producer,
		chunks:   chunks,
		opts:     opts,
		solver:   solver,
		model:    model,
		st:       st,
		tracker:  NewTracker(chunks, n, opts.WindowBuckets, opts.BucketSize, opts.Alpha),
		hop:      hop,
		holders:  make([][]int, chunks),
		hist:     make([]int64, maxHop(hop)+2),
	}
	if strat == nil {
		s.costOracle = make(map[int64]float64)
		ca := cache.NewCostAware(func(node, chunk int) float64 {
			return s.costOracle[copyID(node, chunk)]
		})
		strat = ca
	}
	s.strat = strat
	return s, nil
}

func maxHop(hop [][]int) int {
	m := 0
	for _, row := range hop {
		for _, h := range row {
			if h > m {
				m = h
			}
		}
	}
	return m
}

// copyID packs a (node, chunk) pair into one map key.
func copyID(node, chunk int) int64 { return int64(node)<<32 | int64(uint32(chunk)) }

// SeedCtx runs the fair-caching approximation once over all chunks
// against the empty state — the static initial placement the adaptation
// loop then refines. It must be called exactly once, before any request.
func (s *System) SeedCtx(ctx context.Context) error {
	if s.clock != 0 || s.st.TotalStored() != 0 {
		return fmt.Errorf("%w: seed on a non-empty system", ErrBadInput)
	}
	p, err := s.solver.PlaceModelCtx(ctx, s.producer, s.chunks, s.model)
	if err != nil {
		return err
	}
	for _, cr := range p.Chunks {
		s.holders[cr.Chunk] = append([]int(nil), cr.CacheNodes...)
		for _, v := range cr.CacheNodes {
			s.strat.OnStore(v, cr.Chunk, s.clock)
		}
	}
	return nil
}

// Producer returns the producer node.
func (s *System) Producer() int { return s.producer }

// Chunks returns the chunk-id space size.
func (s *System) Chunks() int { return s.chunks }

// State returns the live cache state (read-only for callers).
func (s *System) State() *cache.State { return s.st }

// Model returns the live cost model, the hook for verification tests.
func (s *System) Model() *costmodel.Model { return s.model }

// Strategy returns the eviction strategy in use.
func (s *System) Strategy() cache.EvictionStrategy { return s.strat }

// Tracker returns the popularity tracker.
func (s *System) Tracker() *Tracker { return s.tracker }

// Holders returns the nodes currently caching chunk k, sorted.
func (s *System) Holders(k int) []int {
	if k < 0 || k >= s.chunks {
		return nil
	}
	return append([]int(nil), s.holders[k]...)
}

// Placement returns a copy of every chunk's holder list.
func (s *System) Placement() [][]int {
	out := make([][]int, s.chunks)
	for k := range s.holders {
		out[k] = append([]int(nil), s.holders[k]...)
	}
	return out
}

// Gini returns the Gini coefficient of the per-node cached-chunk counts.
func (s *System) Gini() float64 { return metrics.Gini(s.st.Counts()) }

// Stats returns a snapshot of the counters. Safe to call concurrently
// with Observe/Adapt from the owning goroutine's perspective (the
// counters are mutex-guarded; the placement itself is not).
func (s *System) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// P99Cost returns the 99th-percentile hop-distance retrieval cost.
func (s *System) P99Cost() float64 { return s.PercentileCost(0.99) }

// PercentileCost returns the q-quantile (q in (0,1]) of the retrieval
// cost distribution, from the exact hop histogram.
func (s *System) PercentileCost(q float64) float64 {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if s.stats.Requests == 0 {
		return 0
	}
	need := int64(q * float64(s.stats.Requests))
	if need < 1 {
		need = 1
	}
	var cum int64
	for h, c := range s.hist {
		cum += c
		if cum >= need {
			return float64(h)
		}
	}
	return float64(len(s.hist) - 1)
}

// nearestServer returns the serving node and hop distance for a request
// (j, k): the closest current holder of k, falling back to the producer.
// Ties prefer a cache copy over the producer, then the lowest node id
// (holder lists are sorted), so serving is deterministic.
func (s *System) nearestServer(j, k int) (server, hops int) {
	best, bestD := s.producer, s.hop[j][s.producer]
	if bestD == graph.Unreachable {
		bestD = int(^uint(0) >> 1) // unreachable producer: any holder wins
	}
	fromCache := false
	for _, v := range s.holders[k] {
		if d := s.hop[j][v]; d != graph.Unreachable && (d < bestD || (d == bestD && !fromCache)) {
			best, bestD, fromCache = v, d, true
		}
	}
	return best, bestD
}

// Observe serves one request event: node asks for chunk. It updates the
// popularity tracker, the hit/miss accounting and the eviction
// strategy's recency/frequency state, and returns the serving node and
// its hop distance.
func (s *System) Observe(node, chunk int) (server, hops int, err error) {
	if node < 0 || node >= s.g.NumNodes() {
		return 0, 0, fmt.Errorf("%w: node %d", ErrBadInput, node)
	}
	if chunk < 0 || chunk >= s.chunks {
		return 0, 0, fmt.Errorf("%w: chunk %d", ErrBadInput, chunk)
	}
	server, hops = s.nearestServer(node, chunk)
	s.clock++
	if server != s.producer {
		s.strat.OnAccess(server, chunk, s.clock)
	}
	s.tracker.Observe(node, chunk)

	s.statsMu.Lock()
	s.stats.Requests++
	s.stats.CostSum += float64(hops)
	if server != s.producer {
		s.stats.CacheHits++
		if hops <= s.opts.HitRadius {
			s.stats.LocalHits++
		}
	} else {
		s.stats.ProducerServed++
	}
	if hops >= 0 && hops < len(s.hist) {
		s.hist[hops]++
	} else {
		s.hist[len(s.hist)-1]++
	}
	s.statsMu.Unlock()
	return server, hops, nil
}

// holdersAdd inserts v into chunk k's sorted holder list.
func (s *System) holdersAdd(k, v int) {
	h := s.holders[k]
	i, _ := slices.BinarySearch(h, v)
	if i < len(h) && h[i] == v {
		return
	}
	h = append(h, 0)
	copy(h[i+1:], h[i:])
	h[i] = v
	s.holders[k] = h
}

// holdersRemove deletes v from chunk k's holder list.
func (s *System) holdersRemove(k, v int) {
	h := s.holders[k]
	i, _ := slices.BinarySearch(h, v)
	if i < len(h) && h[i] == v {
		s.holders[k] = append(h[:i], h[i+1:]...)
	}
}

// commit stores chunk k on node v through the model and syncs the holder
// list and strategy.
func (s *System) commit(v, k int) error {
	if err := s.model.Commit(v, k); err != nil {
		return err
	}
	s.holdersAdd(k, v)
	s.strat.OnStore(v, k, s.clock)
	return nil
}

// evict removes chunk k from node v through the model and syncs the
// holder list and strategy, reporting whether a copy was removed.
func (s *System) evict(v, k int) bool {
	if !s.model.Evict(v, k) {
		return false
	}
	s.holdersRemove(k, v)
	s.strat.OnEvict(v, k)
	s.statsMu.Lock()
	s.stats.Evictions++
	s.statsMu.Unlock()
	return true
}

// newPool returns the worker pool adaptation passes fan out over.
func (s *System) newPool() *pool.Pool { return pool.New(pool.Normalize(s.opts.Workers)) }
