// Package sim is a deterministic round-based message-passing simulator for
// wireless edge nodes. The distributed caching protocol (package dist) runs
// on top of it: nodes exchange typed payloads with direct neighbors or
// k-hop neighborhoods, the simulator delivers each message one round after
// it is sent, counts messages per type (the paper analyses message
// complexity per type in Sec. IV-D), and supports drop-based failure
// injection for robustness tests.
package sim

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/graph"
)

// Payload is a typed message body. Kind is used for per-type accounting.
type Payload interface {
	Kind() string
}

// Node is the behaviour of one simulated device.
type Node interface {
	// Init runs once before the first round (e.g. the producer floods
	// its announcement here).
	Init(ctx *Context)
	// OnReceive handles one delivered payload.
	OnReceive(ctx *Context, from int, p Payload)
	// OnTick runs once per round after deliveries (timer-driven logic
	// such as bid growth).
	OnTick(ctx *Context)
	// Done reports whether the node has reached a terminal state. The
	// network stops when every node is done and no messages are in
	// flight.
	Done() bool
}

// DropFunc decides whether to drop a message (failure injection). It must
// be deterministic for reproducible runs.
type DropFunc func(from, to int, p Payload) bool

// TraceFunc observes every delivered message (after the drop decision),
// for protocol debugging and event logging. It must not mutate state.
type TraceFunc func(round, from, to int, p Payload)

// Network couples a topology with node behaviours and runs the protocol.
type Network struct {
	g     *graph.Graph
	nodes []Node
	// Drop, when non-nil, is consulted for every delivery.
	Drop DropFunc
	// Trace, when non-nil, observes every delivered message.
	Trace TraceFunc

	inbox  []delivery // messages to deliver this round
	outbox []delivery // messages sent this round, delivered next round
	counts map[string]int
	round  int
}

type delivery struct {
	from, to int
	payload  Payload
}

// ErrMaxRounds reports that the protocol did not terminate in time.
var ErrMaxRounds = errors.New("sim: protocol did not terminate within the round limit")

// NewNetwork builds a network over g; nodes[i] drives node i.
func NewNetwork(g *graph.Graph, nodes []Node) (*Network, error) {
	if g.NumNodes() != len(nodes) {
		return nil, fmt.Errorf("sim: %d nodes for a %d-node graph", len(nodes), g.NumNodes())
	}
	return &Network{
		g:      g,
		nodes:  nodes,
		counts: make(map[string]int),
	}, nil
}

// Run executes rounds until every node is done and no messages are in
// flight, or maxRounds is exceeded. It returns the number of rounds run.
func (n *Network) Run(maxRounds int) (int, error) {
	for i, node := range n.nodes {
		node.Init(&Context{net: n, self: i})
	}
	n.promoteOutbox()
	for n.round = 0; n.round < maxRounds; n.round++ {
		for _, d := range n.inbox {
			n.nodes[d.to].OnReceive(&Context{net: n, self: d.to}, d.from, d.payload)
		}
		n.inbox = n.inbox[:0]
		for i, node := range n.nodes {
			node.OnTick(&Context{net: n, self: i})
		}
		n.promoteOutbox()
		if len(n.inbox) == 0 && n.allDone() {
			return n.round + 1, nil
		}
	}
	return n.round, ErrMaxRounds
}

// promoteOutbox moves sent messages into next round's inbox, applying the
// drop hook and counting every attempted send.
func (n *Network) promoteOutbox() {
	for _, d := range n.outbox {
		n.counts[d.payload.Kind()]++
		if n.Drop != nil && n.Drop(d.from, d.to, d.payload) {
			continue
		}
		if n.Trace != nil {
			n.Trace(n.round, d.from, d.to, d.payload)
		}
		n.inbox = append(n.inbox, d)
	}
	n.outbox = n.outbox[:0]
}

func (n *Network) allDone() bool {
	for _, node := range n.nodes {
		if !node.Done() {
			return false
		}
	}
	return true
}

// Counts returns a copy of the per-kind message counters (attempted sends,
// including dropped ones).
func (n *Network) Counts() map[string]int {
	out := make(map[string]int, len(n.counts))
	for k, v := range n.counts {
		out[k] = v
	}
	return out
}

// TotalMessages returns the total number of messages sent.
func (n *Network) TotalMessages() int {
	total := 0
	for _, v := range n.counts {
		total += v
	}
	return total
}

// Kinds returns the message kinds seen so far, sorted.
func (n *Network) Kinds() []string {
	out := make([]string, 0, len(n.counts))
	for k := range n.counts {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Context is a node's handle onto the network during a callback.
type Context struct {
	net  *Network
	self int
}

// Self returns the node id being driven.
func (c *Context) Self() int { return c.self }

// Round returns the current round number.
func (c *Context) Round() int { return c.net.round }

// Neighbors returns the node's direct neighbors. The slice is shared and
// must not be modified.
func (c *Context) Neighbors() []int { return c.net.g.Neighbors(c.self) }

// Degree returns the node's degree (its Node Contention Cost).
func (c *Context) Degree() int { return c.net.g.Degree(c.self) }

// KHop returns the nodes within k hops of the caller (excluding itself).
func (c *Context) KHop(k int) []int { return c.net.g.KHopNeighbors(c.self, k) }

// Send queues a unicast payload to another node, delivered next round.
// Sends to out-of-range targets or to self are ignored.
func (c *Context) Send(to int, p Payload) {
	if to < 0 || to >= len(c.net.nodes) || to == c.self {
		return
	}
	c.net.outbox = append(c.net.outbox, delivery{from: c.self, to: to, payload: p})
}

// SendNeighbors queues the payload to every direct neighbor (a local
// wireless broadcast, counted as one message per receiver).
func (c *Context) SendNeighbors(p Payload) {
	for _, v := range c.net.g.Neighbors(c.self) {
		c.Send(v, p)
	}
}

// SendKHop queues the payload to every node within k hops.
func (c *Context) SendKHop(k int, p Payload) {
	for _, v := range c.net.g.KHopNeighbors(c.self, k) {
		c.Send(v, p)
	}
}
