package sim

import "testing"

func TestTraceDeterministic(t *testing.T) {
	spec := TraceSpec{Nodes: 20, Chunks: 32, Seed: 42, Exclude: 3}
	a, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("request %d diverged: %v vs %v", i, ra, rb)
		}
	}
	if a.Count() != 10000 {
		t.Fatalf("Count() = %d, want 10000", a.Count())
	}
}

func TestTraceSeedChangesStream(t *testing.T) {
	a, _ := NewTrace(TraceSpec{Nodes: 10, Chunks: 16, Seed: 1})
	b, _ := NewTrace(TraceSpec{Nodes: 10, Chunks: 16, Seed: 2})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceRangesAndExclude(t *testing.T) {
	tr, err := NewTrace(TraceSpec{Nodes: 12, Chunks: 8, Seed: 7, Exclude: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		r := tr.Next()
		if r.Node < 0 || r.Node >= 12 || r.Node == 5 {
			t.Fatalf("request %d: node %d out of range or excluded", i, r.Node)
		}
		if r.Chunk < 0 || r.Chunk >= 8 {
			t.Fatalf("request %d: chunk %d out of range", i, r.Chunk)
		}
	}
}

func TestTraceZipfSkew(t *testing.T) {
	tr, err := NewTrace(TraceSpec{Nodes: 10, Chunks: 50, Seed: 3, ZipfS: 1.1, NodeSkew: -1})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[tr.Next().Chunk]++
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	if sum != n {
		t.Fatalf("counts sum %d != %d", sum, n)
	}
	// Under Zipf(1.1) over 50 chunks the top chunk draws ~22% of requests;
	// uniform would be 2%. Accept anything clearly skewed.
	if frac := float64(max) / float64(n); frac < 0.10 {
		t.Fatalf("top chunk drew %.3f of requests, want a Zipf head >= 0.10", frac)
	}
}

func TestTraceDriftRotatesHead(t *testing.T) {
	spec := TraceSpec{Nodes: 5, Chunks: 10, Seed: 9, ZipfS: 1.2, DriftEvery: 5000}
	tr, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	head := func(n int) int {
		counts := make([]int, 10)
		for i := 0; i < n; i++ {
			counts[tr.Next().Chunk]++
		}
		best := 0
		for k, c := range counts {
			if c > counts[best] {
				best = k
			}
			_ = c
		}
		return best
	}
	first := head(5000)
	// After many drift periods the hot rank has rotated away.
	for i := 0; i < 4; i++ {
		_ = head(5000)
	}
	last := head(5000)
	if first == last {
		t.Fatalf("hot chunk did not drift: %d before and after", first)
	}
}

func TestTraceRejectsBadSpecs(t *testing.T) {
	if _, err := NewTrace(TraceSpec{Nodes: 0, Chunks: 5}); err == nil {
		t.Error("Nodes=0: want error")
	}
	if _, err := NewTrace(TraceSpec{Nodes: 5, Chunks: 0}); err == nil {
		t.Error("Chunks=0: want error")
	}
	if _, err := NewTrace(TraceSpec{Nodes: 1, Chunks: 1, Exclude: 0}); err == nil {
		t.Error("excluding the only node: want error")
	}
}
