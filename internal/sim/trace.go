package sim

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Request is one demand event: node Node asks for chunk Chunk. It is the
// unit of the request-driven workload the adaptive caching subsystem
// (package demand) consumes.
type Request struct {
	Node  int
	Chunk int
}

// TraceSpec configures the deterministic request-trace generator. The
// zero values of the tunables select the defaults noted on each field;
// the same spec always yields the same request stream.
type TraceSpec struct {
	// Nodes and Chunks size the id spaces requests draw from.
	Nodes  int
	Chunks int
	// Seed seeds both the popularity permutations and the per-request
	// sampling. Identical seeds give identical traces.
	Seed int64
	// ZipfS is the Zipf exponent of the chunk popularity distribution
	// (weight of rank r is (r+1)^-s); 0 selects 0.8. Larger values skew
	// demand harder toward the head.
	ZipfS float64
	// NodeSkew is the Zipf exponent of the per-node request rates; 0
	// selects 0.5 (mild hotspots), negative means uniform rates.
	NodeSkew float64
	// DriftEvery rotates the chunk popularity ranking by one position
	// every DriftEvery requests, modeling drifting demand; 0 disables
	// drift.
	DriftEvery int
	// Exclude removes one node (the producer, which holds every chunk
	// locally) from the requester population; -1 or an out-of-range value
	// keeps every node.
	Exclude int
}

// Trace is a deterministic stream of requests with Zipf chunk
// popularities, skewed per-node rates and optional popularity drift.
// Chunk ranks are assigned through a seeded permutation, so "which chunk
// is hot" varies with the seed while the rank weights stay Zipf.
type Trace struct {
	spec      TraceSpec
	rng       *rand.Rand
	chunkCDF  []float64 // cumulative weight by popularity rank
	nodeCDF   []float64 // cumulative weight by rate rank
	chunkPerm []int     // rank -> chunk id
	nodePerm  []int     // rank -> node id
	count     int       // requests emitted so far
	shift     int       // accumulated drift rotations
}

// NewTrace validates the spec and returns a generator positioned at the
// first request.
func NewTrace(spec TraceSpec) (*Trace, error) {
	if spec.Nodes < 1 || spec.Chunks < 1 {
		return nil, fmt.Errorf("sim: trace needs nodes and chunks >= 1, got %d/%d", spec.Nodes, spec.Chunks)
	}
	if spec.Exclude >= 0 && spec.Exclude < spec.Nodes && spec.Nodes == 1 {
		return nil, fmt.Errorf("sim: trace excludes the only node")
	}
	if spec.ZipfS == 0 {
		spec.ZipfS = 0.8
	}
	if spec.NodeSkew == 0 {
		spec.NodeSkew = 0.5
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	t := &Trace{
		spec:      spec,
		rng:       rng,
		chunkCDF:  zipfCDF(spec.Chunks, spec.ZipfS),
		chunkPerm: rng.Perm(spec.Chunks),
	}
	nodes := make([]int, 0, spec.Nodes)
	for v := 0; v < spec.Nodes; v++ {
		if v != spec.Exclude {
			nodes = append(nodes, v)
		}
	}
	rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	t.nodePerm = nodes
	skew := spec.NodeSkew
	if skew < 0 {
		skew = 0
	}
	t.nodeCDF = zipfCDF(len(nodes), skew)
	return t, nil
}

// zipfCDF returns the cumulative Zipf(s) distribution over n ranks,
// normalized so the last entry is exactly 1.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	cdf[n-1] = 1
	return cdf
}

// sample draws one rank from a cumulative distribution.
func sample(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	i, _ := slices.BinarySearch(cdf, u)
	return i
}

// Next returns the next request of the stream. The generator never ends;
// callers bound the replay length.
func (t *Trace) Next() Request {
	if t.spec.DriftEvery > 0 && t.count > 0 && t.count%t.spec.DriftEvery == 0 {
		t.shift++
	}
	t.count++
	rank := (sample(t.rng, t.chunkCDF) + t.shift) % t.spec.Chunks
	return Request{
		Node:  t.nodePerm[sample(t.rng, t.nodeCDF)],
		Chunk: t.chunkPerm[rank],
	}
}

// Count returns the number of requests emitted so far.
func (t *Trace) Count() int { return t.count }
