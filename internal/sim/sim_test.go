package sim

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// pingPayload is a trivial test payload.
type pingPayload struct{ ttl int }

func (pingPayload) Kind() string { return "PING" }

// floodNode floods a PING with decreasing TTL and records receipt.
type floodNode struct {
	origin   bool
	received int
	done     bool
}

func (f *floodNode) Init(ctx *Context) {
	if f.origin {
		ctx.SendNeighbors(pingPayload{ttl: 3})
		f.done = true
	}
}

func (f *floodNode) OnReceive(ctx *Context, from int, p Payload) {
	ping, ok := p.(pingPayload)
	if !ok {
		return
	}
	f.received++
	if f.received == 1 && ping.ttl > 0 {
		ctx.SendNeighbors(pingPayload{ttl: ping.ttl - 1})
	}
	f.done = true
}

func (f *floodNode) OnTick(*Context) {}
func (f *floodNode) Done() bool      { return f.done }

func TestNewNetworkSizeMismatch(t *testing.T) {
	g := graph.NewGrid(2, 2)
	if _, err := NewNetwork(g, make([]Node, 3)); err == nil {
		t.Error("want error on node/graph size mismatch")
	}
}

func TestFloodReachesEveryNodeWithinTTL(t *testing.T) {
	g := graph.NewGrid(3, 3)
	nodes := make([]Node, 9)
	floods := make([]*floodNode, 9)
	for i := range nodes {
		floods[i] = &floodNode{origin: i == 0}
		nodes[i] = floods[i]
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := net.Run(50)
	if err != nil {
		t.Fatalf("Run: %v (rounds %d)", err, rounds)
	}
	// TTL 3 + origin hop covers distance up to 4: the whole 3x3 grid.
	for i := 1; i < 9; i++ {
		if floods[i].received == 0 {
			t.Errorf("node %d never received the flood", i)
		}
	}
	if got := net.Counts()["PING"]; got == 0 {
		t.Error("PING count = 0")
	}
	if net.TotalMessages() != net.Counts()["PING"] {
		t.Error("TotalMessages disagrees with per-kind counts")
	}
	if kinds := net.Kinds(); len(kinds) != 1 || kinds[0] != "PING" {
		t.Errorf("Kinds() = %v, want [PING]", kinds)
	}
}

func TestRunStopsWhenIdle(t *testing.T) {
	// Nodes that do nothing: the network must stop after round 1.
	g := graph.NewGrid(2, 2)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = &floodNode{done: false}
	}
	// floodNode.Done is false until it receives something; nothing is
	// ever sent, so Run must hit the limit.
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(5); !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDropInjection(t *testing.T) {
	g := graph.NewGrid(3, 3)
	nodes := make([]Node, 9)
	floods := make([]*floodNode, 9)
	for i := range nodes {
		floods[i] = &floodNode{origin: i == 0}
		nodes[i] = floods[i]
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Drop everything: no node other than the origin ever hears a PING,
	// so the run cannot finish (receivers stay not-done) — but counts
	// still record the attempted sends.
	net.Drop = func(from, to int, p Payload) bool { return true }
	if _, err := net.Run(5); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds under total loss", err)
	}
	if net.Counts()["PING"] == 0 {
		t.Error("dropped messages not counted as attempted sends")
	}
	for i := 1; i < 9; i++ {
		if floods[i].received != 0 {
			t.Errorf("node %d received %d messages despite total loss", i, floods[i].received)
		}
	}
}

func TestPartialDropStillCompletes(t *testing.T) {
	g := graph.NewGrid(3, 3)
	nodes := make([]Node, 9)
	for i := range nodes {
		nodes[i] = &floodNode{origin: i == 4}
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministically drop one of node 8's two incoming links (from 5);
	// the flood must still reach it via node 7.
	net.Drop = func(from, to int, p Payload) bool { return to == 8 && from == 5 }
	if _, err := net.Run(50); err != nil {
		t.Fatalf("Run with partial loss: %v", err)
	}
}

func TestContextSendIgnoresBadTargets(t *testing.T) {
	g := graph.NewGrid(2, 2)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i] = &floodNode{done: true}
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{net: net, self: 0}
	ctx.Send(-1, pingPayload{})
	ctx.Send(99, pingPayload{})
	ctx.Send(0, pingPayload{}) // self
	if len(net.outbox) != 0 {
		t.Errorf("outbox has %d messages, want 0", len(net.outbox))
	}
	if ctx.Self() != 0 {
		t.Errorf("Self() = %d", ctx.Self())
	}
	if ctx.Degree() != 2 {
		t.Errorf("Degree() = %d, want 2", ctx.Degree())
	}
	if got := ctx.KHop(2); len(got) != 3 {
		t.Errorf("KHop(2) = %v, want 3 nodes", got)
	}
}

func TestSendKHopCountsPerReceiver(t *testing.T) {
	g := graph.NewGrid(3, 3)
	nodes := make([]Node, 9)
	for i := range nodes {
		nodes[i] = &floodNode{done: true}
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{net: net, self: 4}
	ctx.SendKHop(1, pingPayload{})
	if len(net.outbox) != 4 {
		t.Errorf("SendKHop(1) from center queued %d, want 4", len(net.outbox))
	}
}

func TestTraceObservesDeliveredMessages(t *testing.T) {
	g := graph.NewGrid(3, 3)
	nodes := make([]Node, 9)
	for i := range nodes {
		nodes[i] = &floodNode{origin: i == 0}
	}
	net, err := NewNetwork(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	var traced int
	net.Drop = func(from, to int, p Payload) bool { return to == 4 }
	net.Trace = func(round, from, to int, p Payload) {
		if to == 4 {
			t.Errorf("trace saw a dropped message to node 4")
		}
		if p.Kind() != "PING" {
			t.Errorf("unexpected kind %q", p.Kind())
		}
		traced++
	}
	// Node 4 never hears anything, so the run times out — that's fine,
	// the trace contract is what is under test.
	_, _ = net.Run(30)
	delivered := net.Counts()["PING"]
	if traced == 0 || traced >= delivered {
		t.Errorf("traced %d of %d attempted messages; want >0 and < attempted (drops excluded)", traced, delivered)
	}
}
