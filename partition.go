package faircache

// DefaultPartitionHalo is the boundary re-bid radius used when
// PartitionOptions.Halo is 0: two hops covers the copies a neighbor
// region would have placed just across a cut edge without reaching deep
// into region interiors.
const DefaultPartitionHalo = 2

// PartitionOptions routes a solve through the geographic sharding path:
// the topology is cut into connected regions (exact tiles on grids, greedy
// BFS growth elsewhere), every region is solved concurrently by its own
// engine against region-local cost matrices — peak matrix memory drops
// from O(N²) to O(Σ nᵢ²) — and the per-region placements are stitched
// with a deterministic boundary-reconciliation pass. Only AlgorithmApprox
// supports sharding; other algorithms reject it with ErrBadArgument.
//
// Sharding trades a bounded amount of placement quality for scale: each
// region is blind to its neighbors, so the stitched cost can exceed the
// global solve's. Result.Partition reports the decomposition, and the
// repository's equivalence suite measures the cost factor (see the README
// "Sharded solves" section for current numbers).
type PartitionOptions struct {
	// Regions is the target region count k (>= 2, and small enough that
	// every region keeps at least 2 nodes). The partitioner treats it as
	// a target; the exact count is reported in Result.Partition.Regions.
	Regions int
	// Halo is the hop radius around cut edges within which stitched
	// copies are re-bid against the chunk's calibrated per-copy charge:
	// 0 selects DefaultPartitionHalo, negative disables reconciliation
	// (keep every region's copies).
	Halo int
}

// PartitionReport describes how a sharded solve was decomposed and
// stitched. It contains only deterministic quantities, so partitioned
// results stay byte-comparable across runs and worker counts.
type PartitionReport struct {
	// Regions is the number of regions actually cut.
	Regions int `json:"regions"`
	// MinRegionNodes/MaxRegionNodes bound the region sizes.
	MinRegionNodes int `json:"minRegionNodes"`
	MaxRegionNodes int `json:"maxRegionNodes"`
	// CutEdges is the number of topology links crossing region borders.
	CutEdges int `json:"cutEdges"`
	// BoundaryNodes is the number of cut-edge endpoints.
	BoundaryNodes int `json:"boundaryNodes"`
	// Halo is the effective re-bid radius used (after defaulting).
	Halo int `json:"halo"`
	// HaloNodes is the number of nodes within Halo hops of the boundary.
	HaloNodes int `json:"haloNodes"`
	// RebidCandidates counts the boundary-adjacent copies re-evaluated by
	// the reconciliation pass; DroppedCopies counts how many of them were
	// removed as redundant across the cut.
	RebidCandidates int `json:"rebidCandidates"`
	DroppedCopies   int `json:"droppedCopies"`
	// MatrixCells is the summed size of the per-region cost matrices
	// (Σ nᵢ²); FullMatrixCells is the N² a global solve would allocate.
	// Their ratio is the sharded path's peak-memory saving.
	MatrixCells     int `json:"matrixCells"`
	FullMatrixCells int `json:"fullMatrixCells"`
}
