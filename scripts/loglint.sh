#!/bin/sh
# loglint: the structured-logging gate for daemon code.
#
# The daemon logs through log/slog (leveled, key-value, trace-id-tagged
# records that -log-format can switch to JSON); a stray log.Printf or
# fmt.Println in a server code path bypasses the handler, loses the
# level/format contract and can interleave with exposition output. This
# gate forbids, in every non-test .go file under internal/ and
# cmd/faircached/:
#
#   - the standard "log" package's printers: log.Print*, log.Fatal*,
#     log.Panic*, plus log.New / log.Default (building a bare logger is
#     the same bypass one call later)
#   - unstructured stdout writes: fmt.Println and bare fmt.Print
#
# fmt.Printf / fmt.Fprintf / fmt.Fprintln remain allowed: CLI subcommands
# (load, inspect) print user-facing reports, and errors format with
# fmt.Errorf. Test files are exempt — t.Log is the right tool there.
#
# Run from the repository root: ./scripts/loglint.sh
set -u

fail=0

bad=$(grep -rn --include='*.go' --exclude='*_test.go' \
    -E '\blog\.(Print|Printf|Println|Fatal|Fatalf|Fatalln|Panic|Panicf|Panicln|New|Default)\(|\bfmt\.(Println|Print)\(' \
    internal cmd/faircached 2>/dev/null |
    grep -v -E '\bslog\.')
if [ -n "$bad" ]; then
    echo "loglint: daemon code must log through log/slog (server Options.Logger / the -log-format handler), not the legacy log package or bare prints:" >&2
    echo "$bad" >&2
    fail=1
fi

# The legacy log package must not even be imported outside tests: an
# import with none of the calls above usually means log.Writer() or
# log.SetOutput() plumbing, which bypasses the handler the same way.
bad_import=$(grep -rn --include='*.go' --exclude='*_test.go' \
    -E '^[[:space:]]*(_[[:space:]]+)?"log"$' \
    internal cmd/faircached 2>/dev/null)
if [ -n "$bad_import" ]; then
    echo "loglint: daemon code must not import the legacy \"log\" package; use log/slog:" >&2
    echo "$bad_import" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "loglint: OK"
