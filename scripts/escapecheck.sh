#!/usr/bin/env sh
# escapecheck.sh — escape-analysis spot-check of the solve hot path.
#
# Compiles the hot packages with -gcflags=-m=1 and counts the compiler's
# "escapes to heap" / "moved to heap" diagnostics inside a named set of
# hot-path functions. Each function carries an allowed count: 0 for the
# per-tick / per-scan kernels that must stay allocation-free, small
# non-zero budgets for functions whose only escapes are one-time scratch
# growth (`make` on first use, amortized to zero across a solve). The
# check fails when a function reports MORE escapes than its budget —
# i.e. when a change quietly pushes a new allocation onto the hot path.
#
# When an escape is legitimate (a new lazily-grown scratch buffer), raise
# that function's budget here in the same commit and say why in review.
set -eu

cd "$(dirname "$0")/.."

# file:function:allowed — keep this list small and genuinely hot: the
# dual-growth tick phases, the Steiner scan/compaction kernels, and the
# per-chunk driver. Non-zero budgets cover lazy scratch-growth `make`
# sites, the returned ChunkResult, the per-chunk edge-cost closure, and
# error-path fmt args — all per-chunk at worst, never per-tick.
CHECKS="
internal/confl/confl.go:tick:0
internal/confl/confl.go:freezeDemand:0
internal/confl/confl.go:raiseSpan:0
internal/confl/confl.go:paid:0
internal/confl/confl.go:spanCount:0
internal/confl/confl.go:openAdmin:0
internal/steiner/steiner.go:subgraphMST:1
internal/steiner/steiner.go:pruneLeaves:2
internal/graph/paths.go:DijkstraInto:0
internal/core/core.go:placeChunk:4
"

fail=0
for spec in $CHECKS; do
  file="${spec%%:*}"
  rest="${spec#*:}"
  func="${rest%%:*}"
  allowed="${rest#*:}"
  pkg="./$(dirname "$file")"

  range="$(awk -v fn="$func" '
    $0 ~ ("^func (\\([^)]*\\) )?" fn "\\(") { start = NR }
    start && /^}/ { print start, NR; exit }
  ' "$file")"
  if [ -z "$range" ]; then
    echo "escapecheck: $file: function $func not found (stale check list?)" >&2
    fail=1
    continue
  fi
  start="${range%% *}"
  end="${range##* }"

  diags="$(go build -gcflags=-m=1 "$pkg" 2>&1 | awk -F: -v f="$file" -v s="$start" -v e="$end" '
    (index($0, "escapes to heap") || index($0, "moved to heap")) &&
    $1 == f && $2 + 0 >= s && $2 + 0 <= e
  ')"
  count=0
  if [ -n "$diags" ]; then
    count="$(printf '%s\n' "$diags" | wc -l | tr -d ' ')"
  fi

  if [ "$count" -gt "$allowed" ]; then
    echo "escapecheck: $file:$func reports $count heap escapes, budget is $allowed:" >&2
    printf '%s\n' "$diags" >&2
    fail=1
  else
    echo "escapecheck: $file:$func ok ($count/$allowed escapes)"
  fi
done

exit $fail
