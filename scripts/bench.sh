#!/usr/bin/env sh
# bench.sh — run the repo's benchmarks and record the results as
# BENCH_<short-sha>.json, so perf changes land in review diffs next to the
# code that caused them.
#
# Environment overrides:
#   BENCH_PKGS    packages to benchmark        (default: ./...)
#   BENCH_PATTERN -bench regexp                (default: .)
#   BENCH_TIME    -benchtime value             (default: go's default)
#   BENCH_OUT     output path                  (default: BENCH_<short-sha>.json)
#
# The JSON layout is one object per benchmark line:
#   {"name": ..., "iterations": ..., "nsPerOp": ..., "bytesPerOp": ..., "allocsPerOp": ...}
# wrapped with the commit, date and `go version` for provenance.
set -eu

cd "$(dirname "$0")/.."

PKGS="${BENCH_PKGS:-./...}"
PATTERN="${BENCH_PATTERN:-.}"
SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
OUT="${BENCH_OUT:-BENCH_${SHA}.json}"

TIME_FLAG=""
if [ -n "${BENCH_TIME:-}" ]; then
  TIME_FLAG="-benchtime=${BENCH_TIME}"
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086 — TIME_FLAG is intentionally word-split.
go test -run '^$' -bench "$PATTERN" -benchmem -count=1 $TIME_FLAG $PKGS | tee "$RAW"

awk -v sha="$SHA" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version)" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", sha, date, gover
  n = 0
}
/^Benchmark/ {
  name = $1
  iters = $2
  ns = ""; bytes = ""; allocs = ""; coal = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "coalesced/op") coal = $i
  }
  if (ns == "") next
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"nsPerOp\": %s", name, iters, ns
  if (bytes != "") printf ", \"bytesPerOp\": %s", bytes
  if (allocs != "") printf ", \"allocsPerOp\": %s", allocs
  if (coal != "") printf ", \"coalescedPerOp\": %s", coal
  printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
