#!/usr/bin/env sh
# bench.sh — run the repo's benchmarks and record the results as
# BENCH_<short-sha>.json, so perf changes land in review diffs next to the
# code that caused them.
#
# Environment overrides:
#   BENCH_PKGS    packages to benchmark        (default: ./...)
#   BENCH_PATTERN -bench regexp                (default: .)
#   BENCH_TIME    -benchtime value             (default: go's default)
#   BENCH_OUT     output path                  (default: BENCH_<short-sha>.json)
#   BENCH_ASSERT  when 1, fail if any benchmark's allocs/op regressed
#                 beyond tolerance vs the committed baseline (see below)
#
# The JSON layout is one object per benchmark line:
#   {"name": ..., "iterations": ..., "nsPerOp": ..., "bytesPerOp": ..., "allocsPerOp": ...}
# wrapped with the commit, date and `go version` for provenance.
#
# After recording, the fresh run is diffed against the most recently
# committed BENCH_*.json (by commit time) and per-benchmark ns/op and
# allocs/op deltas are printed, so a perf regression is visible in the
# run log (and in CI) before the numbers land in review.
#
# With BENCH_ASSERT=1 the comparison becomes a gate on allocs/op only:
# a benchmark may not allocate more than 10% AND more than 2 allocs/op
# over its baseline. allocs/op is deterministic even at -benchtime=1x,
# so CI's smoke run can assert on it; ns/op stays advisory there (1x
# timings are noise). The tolerance absorbs size-class jitter while
# still catching a tracing hook or logging call leaking allocations
# onto a hot path.
set -eu

cd "$(dirname "$0")/.."

PKGS="${BENCH_PKGS:-./...}"
PATTERN="${BENCH_PATTERN:-.}"
SHA="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
OUT="${BENCH_OUT:-BENCH_${SHA}.json}"

TIME_FLAG=""
if [ -n "${BENCH_TIME:-}" ]; then
  TIME_FLAG="-benchtime=${BENCH_TIME}"
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# shellcheck disable=SC2086 — TIME_FLAG is intentionally word-split.
go test -run '^$' -bench "$PATTERN" -benchmem -count=1 $TIME_FLAG $PKGS | tee "$RAW"

awk -v sha="$SHA" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version)" -v btime="${BENCH_TIME:-default}" '
BEGIN {
  printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", sha, date, gover, btime
  n = 0
}
/^Benchmark/ {
  name = $1
  iters = $2
  ns = ""; bytes = ""; allocs = ""; coal = ""
  for (i = 3; i < NF; i++) {
    if ($(i+1) == "ns/op") ns = $i
    if ($(i+1) == "B/op") bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
    if ($(i+1) == "coalesced/op") coal = $i
  }
  if (ns == "") next
  if (n++) printf ","
  printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"nsPerOp\": %s", name, iters, ns
  if (bytes != "") printf ", \"bytesPerOp\": %s", bytes
  if (allocs != "") printf ", \"allocsPerOp\": %s", allocs
  if (coal != "") printf ", \"coalescedPerOp\": %s", coal
  printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"

# Baseline: the committed BENCH_*.json with the newest commit timestamp,
# excluding the file this run just wrote and any file recorded at a
# different -benchtime. A 1x smoke run amortizes cold setup over a single
# iteration while a default-time run spreads it over thousands, so
# allocs/op (and ns/op) are only comparable between runs of the same
# benchtime; files predating the benchtime field count as "default".
# Benchmark names are compared with their -GOMAXPROCS suffix stripped so
# runs from machines with different core counts still line up.
WANT_BTIME="${BENCH_TIME:-default}"
BASE=""
BASE_T=-1 # staged-but-uncommitted baselines have no commit time (0)
for f in $(git ls-files 'BENCH_*.json' 2>/dev/null); do
  [ "$f" = "${OUT#./}" ] && continue
  fbtime="$(sed -n 's/.*"benchtime": "\([^"]*\)".*/\1/p' "$f" | head -1)"
  [ -n "$fbtime" ] || fbtime="default"
  [ "$fbtime" = "$WANT_BTIME" ] || continue
  t="$(git log -1 --format=%ct -- "$f" 2>/dev/null)"
  [ -n "$t" ] || t=0
  if [ "$t" -gt "$BASE_T" ]; then
    BASE="$f"
    BASE_T="$t"
  fi
done

if [ -z "$BASE" ]; then
  echo "no committed BENCH_*.json baseline for benchtime=$WANT_BTIME; skipping comparison"
  exit 0
fi

echo ""
echo "delta vs $BASE ($(git log -1 --format=%h -- "$BASE")):"
awk -v assert="${BENCH_ASSERT:-0}" '
function bname(line,    n) {
  if (!match(line, /"name": "[^"]+"/)) return ""
  n = substr(line, RSTART + 9, RLENGTH - 10)
  sub(/-[0-9]+$/, "", n)  # strip the -GOMAXPROCS suffix
  return n
}
function num(line, key,    v) {
  if (!match(line, "\"" key "\": [0-9.e+]+")) return ""
  v = substr(line, RSTART, RLENGTH)
  sub(/.*: /, "", v)
  return v
}
function pct(old, new) {
  if (old + 0 == 0) return "n/a"
  return sprintf("%+.1f%%", 100 * (new - old) / old)
}
/\{"name":/ {
  n = bname($0)
  if (n == "") next
  if (FNR == NR) {
    base_ns[n] = num($0, "nsPerOp")
    base_al[n] = num($0, "allocsPerOp")
    next
  }
  ns = num($0, "nsPerOp")
  al = num($0, "allocsPerOp")
  if (!(n in base_ns)) {
    printf "  %-46s new benchmark: %s ns/op", n, ns
    if (al != "") printf ", %s allocs/op", al
    printf "\n"
    next
  }
  printf "  %-46s ns/op %s -> %s (%s)", n, base_ns[n], ns, pct(base_ns[n], ns)
  if (al != "" && base_al[n] != "")
    printf "  allocs/op %s -> %s (%s)", base_al[n], al, pct(base_al[n], al)
  printf "\n"
  # The assertion gate: allocs/op beyond 10% AND 2 absolute over baseline.
  if (assert == 1 && al != "" && base_al[n] != "") {
    if (al + 0 > base_al[n] * 1.10 && al + 0 > base_al[n] + 2) {
      bad[nbad++] = sprintf("%s: allocs/op %s -> %s", n, base_al[n], al)
    }
  }
}
END {
  if (nbad > 0) {
    printf "\nBENCH_ASSERT: %d benchmark(s) regressed allocs/op beyond tolerance (>10%% and >2):\n", nbad > "/dev/stderr"
    for (i = 0; i < nbad; i++) printf "  %s\n", bad[i] > "/dev/stderr"
    exit 1
  }
}
' "$BASE" "$OUT"
