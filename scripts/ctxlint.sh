#!/bin/sh
# ctxlint: the context-first API gate.
#
# Two rules, enforced over every non-test .go file:
#
#   1. An exported function whose name ends in "Ctx" must take
#      "ctx context.Context" as its FIRST parameter.
#   2. An exported solve entry point (Solve*/Place*/Publish*/Select* and
#      the five algorithm wrappers) that does NOT take a context must be
#      on the allowlist below. The allowlist freezes the deprecated
#      pre-context API; new entry points must be context-first, so any
#      unlisted match fails the build.
#
# Run from the repository root: ./scripts/ctxlint.sh
set -u

fail=0

# ---- rule 1: *Ctx functions take ctx context.Context first -------------
bad_ctx=$(grep -rn --include='*.go' --exclude='*_test.go' \
    -E '^func (\([^)]+\) )?[A-Z][A-Za-z0-9]*Ctx\(' . |
    grep -v -E '\((ctx context\.Context|_ context\.Context)')
if [ -n "$bad_ctx" ]; then
    echo "ctxlint: *Ctx entry points must take 'ctx context.Context' as the first parameter:" >&2
    echo "$bad_ctx" >&2
    fail=1
fi

# ---- rule 2: non-context solve entry points are frozen ------------------
# Allowlist of deprecated wrappers and offline reference solvers, one
# "file:Func" per line. Do NOT add new entries: write the context-first
# variant instead and, if a compat shim is genuinely needed, bring it to
# review with a Deprecated: doc comment.
allowlist='
./faircache.go:Approximate
./faircache.go:Distribute
./faircache.go:HopCountBaseline
./faircache.go:ContentionBaseline
./faircache.go:Optimal
./online.go:Publish
./internal/baseline/baseline.go:SelectNodes
./internal/baseline/baseline.go:PlaceChunks
./internal/confl/confl.go:Solve
./internal/confl/greedy.go:SolveGreedy
./internal/core/core.go:Place
./internal/core/core.go:PlaceOne
./internal/dist/dist.go:PlaceChunks
./internal/exact/exact.go:SolveChunk
./internal/exact/exact.go:PlaceChunks
./internal/online/online.go:Publish
./internal/ilp/ilp.go:SolveChunk
./internal/lp/lp.go:Solve
'

matches=$(grep -rn --include='*.go' --exclude='*_test.go' \
    -E '^func (\([^)]+\) )?(Solve|Place|Publish|Select|Approximate|Distribute|Optimal|HopCountBaseline|ContentionBaseline)[A-Za-z0-9]*\(.*(\*?Options|\*?cache\.State|producer|chunks|Request)' . |
    grep -v 'context\.Context')

echo "$matches" | while IFS= read -r line; do
    [ -z "$line" ] && continue
    file=${line%%:*}
    rest=${line#*:}          # strip file
    rest=${rest#*:}          # strip line number
    name=$(printf '%s' "$rest" | sed -E 's/^func (\([^)]+\) )?([A-Za-z0-9]+)\(.*/\2/')
    case "$allowlist" in
    *"$file:$name"*) ;;
    *)
        echo "ctxlint: new solve entry point without a context.Context first parameter:" >&2
        echo "  $line" >&2
        echo "  (context-first is the API contract; see scripts/ctxlint.sh)" >&2
        exit 1
        ;;
    esac
done || fail=1

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "ctxlint: ok"
