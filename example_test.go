package faircache_test

import (
	"context"
	"fmt"
	"log"

	faircache "repro"
)

// ExampleSolver_Solve is the context-first entry point: bind a topology
// once, then solve any algorithm with cancellation and deadline support.
func ExampleSolver_Solve() {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), faircache.Request{
		Producer: 9,
		Chunks:   5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunks placed: %d\n", res.Chunks)
	fmt.Printf("load is fair (gini < 0.4): %v\n", res.Gini() < 0.4)
	// Output:
	// chunks placed: 5
	// load is fair (gini < 0.4): true
}

// ExampleParseAlgorithm resolves legacy spellings onto the canonical
// algorithm names and runs the selection through the Solver API — the
// pattern a service dispatching on request strings uses.
func ExampleParseAlgorithm() {
	alg, err := faircache.ParseAlgorithm("approximate") // legacy alias
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical name: %s\n", alg)
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), faircache.Request{
		Producer:  9,
		Chunks:    5,
		Algorithm: alg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunks placed: %d\n", res.Chunks)
	fmt.Printf("producer cached anything: %v\n", res.Counts[9] > 0)
	fmt.Printf("load is fair (gini < 0.4): %v\n", res.Gini() < 0.4)
	// Output:
	// canonical name: Appx
	// chunks placed: 5
	// producer cached anything: false
	// load is fair (gini < 0.4): true
}

// ExampleSolver_Solve_distributed runs the distributed protocol and
// checks the message complexity bound of Sec. IV-D.
func ExampleSolver_Solve_distributed() {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), faircache.Request{
		Producer:  9,
		Chunks:    5,
		Algorithm: faircache.AlgorithmDistributed,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, v := range res.Messages {
		total += v
	}
	n := topo.NumNodes()
	fmt.Printf("protocol used the seven TABLE II message types: %v\n", len(res.Messages) >= 7)
	fmt.Printf("within O(QN+N^2) bound: %v\n", total <= 40*(5*n+n*n))
	// Output:
	// protocol used the seven TABLE II message types: true
	// within O(QN+N^2) bound: true
}

// ExampleResult_ContentionCost compares the fair placement against the
// hop-count baseline on the evaluation metric.
func ExampleResult_ContentionCost() {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		log.Fatal(err)
	}
	fair, err := solver.Solve(context.Background(), faircache.Request{
		Producer: 9, Chunks: 5, Algorithm: faircache.AlgorithmApprox,
	})
	if err != nil {
		log.Fatal(err)
	}
	hop, err := solver.Solve(context.Background(), faircache.Request{
		Producer: 9, Chunks: 5, Algorithm: faircache.AlgorithmHopCount,
	})
	if err != nil {
		log.Fatal(err)
	}
	fairCost, err := fair.ContentionCost()
	if err != nil {
		log.Fatal(err)
	}
	hopCost, err := hop.ContentionCost()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair placement is cheaper: %v\n", fairCost.Total() < hopCost.Total())
	fmt.Printf("and fairer: %v\n", fair.Gini() < hop.Gini())
	// Output:
	// fair placement is cheaper: true
	// and fairer: true
}

// ExampleNewOnline streams chunks through the online system with
// expiry-driven cache replacement.
func ExampleNewOnline() {
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := faircache.NewOnline(topo, 5, &faircache.Options{Capacity: 2, ChunkTTL: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.Publish(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("publications: %d\n", sys.Clock())
	fmt.Printf("live chunks within TTL window: %v\n", len(sys.Live()) <= 2)
	// Output:
	// publications: 5
	// live chunks within TTL window: true
}
