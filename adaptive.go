package faircache

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/costmodel"
	"repro/internal/demand"
	"repro/internal/pool"
	"repro/internal/trace"
)

// RequestEvent is one observed demand event: node Node requested chunk
// Chunk.
type RequestEvent struct {
	Node  int `json:"node"`
	Chunk int `json:"chunk"`
}

// AdaptiveOptions tunes an adaptive caching system. Zero values select
// the documented defaults.
type AdaptiveOptions struct {
	// Capacity is the per-node cache capacity in chunks (default 5).
	Capacity int
	// FairnessWeight scales the fairness cost term (default 1).
	FairnessWeight float64
	// Workers sizes the solver pool (0 = GOMAXPROCS).
	Workers int
	// Eviction names the replacement strategy consulted by adaptation
	// passes: "cost" (default — evict the copy whose removal raises total
	// retrieval cost least), "lru" or "lfu".
	Eviction string
	// HitRadius is the hop distance within which a cache copy counts as a
	// local hit (default 2).
	HitRadius int
	// TopDelta bounds how many top-demand chunks one adaptation pass
	// re-examines (default 8).
	TopDelta int
	// CopyBudget bounds how many copies one adaptation pass may move
	// (default 3×TopDelta).
	CopyBudget int
}

// AdaptiveStats is a snapshot of an adaptive system's serving and
// adaptation counters, plus the derived quality metrics the evaluation
// reports.
type AdaptiveStats struct {
	Requests       int64   `json:"requests"`
	LocalHits      int64   `json:"localHits"`
	CacheHits      int64   `json:"cacheHits"`
	ProducerServed int64   `json:"producerServed"`
	Evictions      int64   `json:"evictions"`
	Adaptations    int64   `json:"adaptations"`
	CopiesPlaced   int64   `json:"copiesPlaced"`
	HitRate        float64 `json:"hitRate"`
	CacheRate      float64 `json:"cacheRate"`
	MeanCost       float64 `json:"meanCost"`
	P99Cost        float64 `json:"p99Cost"`
	Gini           float64 `json:"gini"`
	Eviction       string  `json:"eviction"`
}

// BatchResult summarizes one Report call.
type BatchResult struct {
	// Requests is the number of events ingested.
	Requests int64 `json:"requests"`
	// LocalHits counts events served by a cache copy within HitRadius
	// hops; CacheHits counts events served by any cache copy.
	LocalHits int64 `json:"localHits"`
	CacheHits int64 `json:"cacheHits"`
}

// AdaptationResult summarizes one adaptation pass.
type AdaptationResult struct {
	// TopChunks lists the chunk ids the pass examined, hottest first.
	TopChunks []int `json:"topChunks"`
	// Evicted and Placed count the copies the pass removed and added.
	Evicted int `json:"evicted"`
	Placed  int `json:"placed"`
	// Replaced lists chunks that had lost every copy and were re-placed
	// by a full fair-caching iteration.
	Replaced []int `json:"replaced,omitempty"`
	// Trace is the per-phase explain summary, present only when the pass
	// ran with AdaptRunOptions.Explain.
	Trace *ExplainReport `json:"trace,omitempty"`
}

// AdaptRunOptions tunes one adaptation pass's observability; see the
// same-named Options fields on solve requests.
type AdaptRunOptions struct {
	// Explain records the pass's phase spans and returns the summary in
	// AdaptationResult.Trace.
	Explain bool
	// TraceID labels the pass's trace spans; empty means a generated id.
	TraceID string
}

// AdaptiveSystem is the request-driven adaptive caching variant: a static
// fair placement is seeded once, then a live request stream drives
// popularity estimates and periodic adaptation passes that re-place the
// most mispositioned chunks through delta updates to the solver's shared
// cost model. Unlike the Solver that created it, an AdaptiveSystem is a
// mutable stream consumer and is NOT safe for concurrent use; callers
// (the server's per-topology worker) serialize access.
type AdaptiveSystem struct {
	sys  *demand.System
	topo *Topology
	name string
	// tracer is the creating Solver's span ring, shared so adaptation
	// passes land next to solve spans under one sampling knob.
	tracer *trace.Tracer
}

// NewAdaptive builds and seeds an adaptive caching system on the
// solver's topology: chunk ids [0, chunks) are placed once by the fair
// caching approximation (warm-forking the solver's topology cost model,
// so repeat systems skip the cold all-pairs build), ready to serve and
// adapt to a request stream.
func (s *Solver) NewAdaptive(ctx context.Context, producer, chunks int, opts *AdaptiveOptions) (*AdaptiveSystem, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := AdaptiveOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Capacity == 0 {
		o.Capacity = 5
	}
	if o.Capacity < 0 {
		return nil, fmt.Errorf("%w: negative capacity %d", ErrBadArgument, o.Capacity)
	}
	if o.FairnessWeight == 0 {
		o.FairnessWeight = 1
	} else if o.FairnessWeight < 0 {
		o.FairnessWeight = 0
	}
	var strat cache.EvictionStrategy
	switch o.Eviction {
	case "", "cost":
		o.Eviction = "cost"
	case "lru":
		strat = cache.NewLRU()
	case "lfu":
		strat = cache.NewLFU()
	default:
		return nil, fmt.Errorf("%w: unknown eviction strategy %q", ErrBadArgument, o.Eviction)
	}

	pl := pool.New(pool.Normalize(o.Workers))
	defer pl.Close()
	var dead trace.Span
	bm, err := s.baseModel(ctx, pl, &dead)
	if err != nil {
		return nil, err
	}
	st := cache.NewState(s.topo.g.NumNodes(), o.Capacity)
	m, err := bm.ForkCtx(ctx, pl, st, costmodel.Options{FairnessWeight: o.FairnessWeight})
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	sys, err := demand.New(s.topo.g, producer, chunks, demand.Options{
		FairnessWeight: o.FairnessWeight,
		Workers:        o.Workers,
		Eviction:       strat,
		HitRadius:      o.HitRadius,
		TopDelta:       o.TopDelta,
		CopyBudget:     o.CopyBudget,
		Model:          m,
	})
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	if err := sys.SeedCtx(ctx); err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return &AdaptiveSystem{sys: sys, topo: s.topo, name: o.Eviction, tracer: s.tracer}, nil
}

// Report ingests a batch of request events: each is served by its
// nearest current copy (or the producer), feeding the hit/miss
// accounting and the popularity estimates the next Adapt call uses.
func (a *AdaptiveSystem) Report(events []RequestEvent) (BatchResult, error) {
	before := a.sys.Stats()
	for i, e := range events {
		if _, _, err := a.sys.Observe(e.Node, e.Chunk); err != nil {
			return BatchResult{}, fmt.Errorf("faircache: event %d: %w", i, err)
		}
	}
	after := a.sys.Stats()
	return BatchResult{
		Requests:  after.Requests - before.Requests,
		LocalHits: after.LocalHits - before.LocalHits,
		CacheHits: after.CacheHits - before.CacheHits,
	}, nil
}

// Adapt runs one adaptation pass against the current popularity
// estimates (see demand.System.AdaptCtx for the exact phases).
func (a *AdaptiveSystem) Adapt(ctx context.Context) (*AdaptationResult, error) {
	return a.AdaptWith(ctx, nil)
}

// AdaptWith is Adapt with per-pass observability options: an Explain
// pass records the five phases' spans (score, evict, replace,
// redundancy, fill, plus the settling refresh) into the owning solver's
// trace ring and returns the summary in AdaptationResult.Trace. nil opts
// behaves exactly like Adapt.
func (a *AdaptiveSystem) AdaptWith(ctx context.Context, opts *AdaptRunOptions) (*AdaptationResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var o AdaptRunOptions
	if opts != nil {
		o = *opts
	}
	tr := a.tracer.StartTrace(o.TraceID, o.Explain)
	sp := tr.Start("adapt")
	rep, err := a.sys.AdaptTraceCtx(ctx, &sp)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	res := &AdaptationResult{
		TopChunks: rep.TopChunks,
		Evicted:   len(rep.Evicted),
		Placed:    len(rep.Placed),
		Replaced:  rep.Replaced,
	}
	if o.Explain {
		res.Trace = buildExplain(tr, "adapt")
	}
	return res, nil
}

// Stats returns the current counters and quality metrics.
func (a *AdaptiveSystem) Stats() AdaptiveStats {
	st := a.sys.Stats()
	return AdaptiveStats{
		Requests:       st.Requests,
		LocalHits:      st.LocalHits,
		CacheHits:      st.CacheHits,
		ProducerServed: st.ProducerServed,
		Evictions:      st.Evictions,
		Adaptations:    st.Adaptations,
		CopiesPlaced:   st.CopiesPlaced,
		HitRate:        st.HitRate(),
		CacheRate:      st.CacheRate(),
		MeanCost:       st.MeanCost(),
		P99Cost:        a.sys.P99Cost(),
		Gini:           a.sys.Gini(),
		Eviction:       a.name,
	}
}

// Holders returns the nodes currently caching chunk k, sorted.
func (a *AdaptiveSystem) Holders(k int) []int { return a.sys.Holders(k) }

// Placement returns every chunk's current holder list.
func (a *AdaptiveSystem) Placement() [][]int { return a.sys.Placement() }

// Counts returns the per-node cached-chunk counts.
func (a *AdaptiveSystem) Counts() []int { return a.sys.State().Counts() }

// Gini returns the Gini coefficient of the current caching load.
func (a *AdaptiveSystem) Gini() float64 { return a.sys.Gini() }

// Producer returns the producer node.
func (a *AdaptiveSystem) Producer() int { return a.sys.Producer() }

// Chunks returns the chunk-id space size.
func (a *AdaptiveSystem) Chunks() int { return a.sys.Chunks() }
