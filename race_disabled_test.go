//go:build !race

package faircache_test

const raceEnabled = false
