package faircache

import (
	"sort"
	"time"

	"repro/internal/trace"
)

// TraceSpan is the public projection of one recorded solve span: what ran,
// when, for how long, under which trace, with its integer counters. The
// daemon's GET /debug/trace dumps these as JSON.
type TraceSpan struct {
	TraceID    string           `json:"traceId"`
	SpanID     uint64           `json:"spanId"`
	ParentID   uint64           `json:"parentId,omitempty"`
	Name       string           `json:"name"`
	Start      time.Time        `json:"start"`
	DurationMs float64          `json:"durationMs"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
}

// ExplainPhase summarises one pipeline phase of an explain trace.
type ExplainPhase struct {
	// Phase is the span name ("chunk", "confl", "steiner.connect",
	// "costmodel.refresh", "partition.region", "partition.stitch", ...).
	Phase string `json:"phase"`
	// Count is how many spans of this phase ran.
	Count int `json:"count"`
	// TotalMs is their summed elapsed time. Phases overlap (a chunk span
	// contains its confl span) and partitioned regions run concurrently,
	// so phase totals do not sum to TotalMs of the report.
	TotalMs float64 `json:"totalMs"`
	// Counters sums the phase's integer span attributes (ticks, admitted
	// facilities, repaired rows, stitch re-bids, ...).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// ExplainReport is the per-request phase breakdown returned on
// Options.Explain via Result.Trace / AdaptationResult.Trace.
type ExplainReport struct {
	TraceID string         `json:"traceId"`
	TotalMs float64        `json:"totalMs"`
	Spans   int            `json:"spans"`
	Phases  []ExplainPhase `json:"phases"`
}

// SetTraceSampling turns span recording on for 1 in every solves
// (1 = every solve, 0 = off, the default). Sampled spans land in the
// solver's fixed-size ring buffer (TraceSpans); requests with
// Options.Explain record regardless of this knob. Tracing is free when
// off: the disabled path adds zero allocations to a solve.
func (s *Solver) SetTraceSampling(every int) { s.tracer.SetSampling(every) }

// TraceSampling returns the current 1-in-N sampling knob (0 = off).
func (s *Solver) TraceSampling() int { return s.tracer.Sampling() }

// TraceSpans copies the solver's recent-span ring buffer, oldest first,
// keeping only spans at least slowerThan long (0 keeps all).
func (s *Solver) TraceSpans(slowerThan time.Duration) []TraceSpan {
	recs := s.tracer.Snapshot()
	epoch := s.tracer.Epoch()
	out := make([]TraceSpan, 0, len(recs))
	for i := range recs {
		if recs[i].Duration() < slowerThan {
			continue
		}
		out = append(out, publicSpan(&recs[i], epoch))
	}
	return out
}

// OnTraceSpan installs fn as the solver's span observer, invoked once per
// recorded span (sampled or explain traces only). The daemon uses it to
// feed per-phase latency histograms. Install before the solver sees
// concurrent traffic; fn runs on the solving goroutine, keep it fast.
func (s *Solver) OnTraceSpan(fn func(TraceSpan)) {
	if fn == nil {
		s.tracer.Observe(nil)
		return
	}
	epoch := s.tracer.Epoch()
	s.tracer.Observe(func(r *trace.Record) { fn(publicSpan(r, epoch)) })
}

func publicSpan(r *trace.Record, epoch time.Time) TraceSpan {
	return TraceSpan{
		TraceID:    r.TraceID,
		SpanID:     r.SpanID,
		ParentID:   r.Parent,
		Name:       r.Name,
		Start:      epoch.Add(r.Start),
		DurationMs: float64(r.Duration()) / float64(time.Millisecond),
		Attrs:      r.AttrMap(),
	}
}

// buildExplain turns a collected explain trace into the public report.
// rootName's total (there is exactly one root span per request) becomes
// the report's TotalMs.
func buildExplain(tr *trace.Trace, rootName string) *ExplainReport {
	recs := tr.Collected()
	if recs == nil {
		return nil
	}
	sums := trace.Summarize(recs)
	rep := &ExplainReport{TraceID: tr.ID(), Spans: len(recs)}
	for _, ps := range sums {
		ms := float64(ps.Total) / float64(time.Millisecond)
		if ps.Phase == rootName {
			rep.TotalMs = ms
		}
		rep.Phases = append(rep.Phases, ExplainPhase{
			Phase:    ps.Phase,
			Count:    ps.Count,
			TotalMs:  ms,
			Counters: ps.Counters,
		})
	}
	// Slowest phases first reads best in JSON output; the root span stays
	// on top by construction since it contains every other phase.
	sort.SliceStable(rep.Phases, func(i, j int) bool {
		return rep.Phases[i].TotalMs > rep.Phases[j].TotalMs
	})
	return rep
}
