package faircache

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/online"
)

// Publication records one online chunk placement.
type Publication struct {
	// Chunk is the published chunk's id (assigned sequentially).
	Chunk int
	// Time is the publication index, starting at 1.
	Time int
	// CacheNodes lists the nodes now caching the chunk.
	CacheNodes []int
	// Expired lists chunk ids whose lifetime ended before this
	// publication (their copies were evicted — cache replacement).
	Expired []int
}

// OnlineSystem is the online variant of the fair-caching algorithm (the
// paper's future-work direction, Sec. VI): chunks are published over
// time, stale chunks expire and are evicted, and each arrival is placed by
// one fair-caching iteration against the live storage state. Storage is
// recycled fairly over unbounded horizons.
type OnlineSystem struct {
	sys  *online.System
	topo *Topology
}

// NewOnline builds an online system on a topology. Options.Capacity sets
// per-node storage and Options.ChunkTTL the chunk lifetime in subsequent
// publications: 0 keeps the default of one capacity-worth, any positive
// value is used verbatim (ChunkTTL = 1 evicts a chunk at the very next
// publication), and any negative value means chunks never expire. See the
// Options.ChunkTTL documentation for the exact mapping onto the internal
// encoding.
func NewOnline(t *Topology, producer int, opts *Options) (*OnlineSystem, error) {
	if opts != nil && opts.Capacity < 0 {
		return nil, fmt.Errorf("%w: negative capacity %d", ErrBadArgument, opts.Capacity)
	}
	o := opts.withDefaults()
	onlineOpts := online.Options{
		Capacity: o.Capacity,
		TTL:      o.Capacity, // default: one capacity-worth of arrivals
		Core:     core.DefaultOptions(),
	}
	if opts != nil && opts.ChunkTTL != 0 {
		onlineOpts.TTL = opts.ChunkTTL
		if opts.ChunkTTL < 0 {
			onlineOpts.TTL = 0 // never expire
		}
	}
	onlineOpts.Core.FairnessWeight = o.FairnessWeight
	onlineOpts.Core.BatteryWeight = o.BatteryWeight
	if o.AlphaStep > 0 {
		onlineOpts.Core.ConFL.AlphaStep = o.AlphaStep
	}
	if o.GammaStep > 0 {
		onlineOpts.Core.ConFL.GammaStep = o.GammaStep
	}
	if o.SpanQuorum > 0 {
		onlineOpts.Core.ConFL.SpanQuorum = o.SpanQuorum
	}
	onlineOpts.Core.Workers = o.Workers
	sys, err := online.New(t.g, producer, onlineOpts)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return &OnlineSystem{sys: sys, topo: t}, nil
}

// Publish places the next chunk, evicting expired ones first. It is
// PublishCtx with a background context.
func (o *OnlineSystem) Publish() (*Publication, error) {
	return o.PublishCtx(context.Background())
}

// PublishCtx places the next chunk, evicting expired ones first. The
// context governs the placement iteration: cancellation or deadline expiry
// stops it mid-solve and surfaces as an error satisfying errors.Is with
// ctx.Err(). A cancelled publication is not committed, but the clock tick
// (and any TTL evictions it triggered) stands — time passed even though
// the placement was abandoned.
func (o *OnlineSystem) PublishCtx(ctx context.Context) (*Publication, error) {
	pub, err := o.sys.PublishCtx(ctx)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return &Publication{
		Chunk:      pub.Chunk,
		Time:       pub.Time,
		CacheNodes: pub.CacheNodes,
		Expired:    pub.Expired,
	}, nil
}

// Holders returns the nodes currently caching the given chunk.
func (o *OnlineSystem) Holders(chunk int) []int { return o.sys.Holders(chunk) }

// OnlineSnapshot is an immutable copy of an online system's committed
// state, taken between publications. It is the export hook a serving
// layer needs: answer reads from the snapshot while the next mutation is
// prepared against the live system.
type OnlineSnapshot struct {
	// Clock is the number of publications so far.
	Clock int
	// Published is the total number of chunk ids ever assigned; ids in
	// [0, Published) are known to the system even if since expired.
	Published int
	// Holders maps each live chunk id to the nodes caching it.
	Holders map[int][]int
	// Counts is the per-node cached-chunk count.
	Counts []int
}

// Snapshot returns a deep-copied snapshot of the current state. The
// caller may retain and read it concurrently with later publications.
func (o *OnlineSystem) Snapshot() *OnlineSnapshot {
	live := o.sys.Live()
	holders := make(map[int][]int, len(live))
	for _, chunk := range live {
		holders[chunk] = o.sys.Holders(chunk)
	}
	return &OnlineSnapshot{
		Clock:     o.sys.Clock(),
		Published: o.sys.Published(),
		Holders:   holders,
		Counts:    o.sys.Counts(),
	}
}

// Live returns the ids of chunks currently cached somewhere.
func (o *OnlineSystem) Live() []int { return o.sys.Live() }

// Counts returns the current per-node cached-chunk counts.
func (o *OnlineSystem) Counts() []int { return o.sys.Counts() }

// Gini returns the Gini coefficient of the current caching load.
func (o *OnlineSystem) Gini() float64 { return metrics.Gini(o.sys.Counts()) }

// Clock returns the number of publications so far.
func (o *OnlineSystem) Clock() int { return o.sys.Clock() }

// SetTopology swaps the network topology (device mobility): subsequent
// publications place against the new connectivity while cached chunks and
// their expiry clocks carry over. The node count must stay the same.
func (o *OnlineSystem) SetTopology(t *Topology) error {
	if err := o.sys.SetTopology(t.g); err != nil {
		return fmt.Errorf("faircache: %w", err)
	}
	o.topo = t
	return nil
}
