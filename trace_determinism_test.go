// Determinism and cost tests for the tracing layer: the explain/span
// machinery must be a pure observer. A traced solve and an untraced
// solve of the same request must produce byte-identical placements on
// every topology family and worker count, and tracing must be free when
// off — the disabled path may not add a single allocation to the warm
// solve loop.
package faircache_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	faircache "repro"
)

// traceTopologies builds the three topology families the evaluation
// uses; each is paired with a valid producer.
func traceTopologies(t *testing.T) []struct {
	name     string
	topo     *faircache.Topology
	producer int
} {
	t.Helper()
	grid, err := faircache.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	random, err := faircache.Random(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := faircache.Clustered(3, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name     string
		topo     *faircache.Topology
		producer int
	}{
		{"grid", grid, 9},
		{"random", random, random.CentralNode()},
		{"clustered", clustered, clustered.CentralNode()},
	}
}

// TestTracingDoesNotChangePlacements solves the same request with
// tracing fully off, then with sampling on plus Explain, and requires
// identical Holders and Counts — on grid, random and clustered
// topologies, sequential and with a worker pool. Run under -race this
// also exercises the span ring's locking against the solve path.
func TestTracingDoesNotChangePlacements(t *testing.T) {
	for _, tc := range traceTopologies(t) {
		for _, workers := range []int{1, 4} {
			t.Run(tc.name+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				base, err := faircache.NewSolver(tc.topo)
				if err != nil {
					t.Fatal(err)
				}
				traced, err := faircache.NewSolver(tc.topo)
				if err != nil {
					t.Fatal(err)
				}
				traced.SetTraceSampling(1) // every solve lands in the ring
				req := func(explain bool) faircache.Request {
					return faircache.Request{
						Producer: tc.producer,
						Chunks:   6,
						Options: &faircache.Options{
							Capacity: 4,
							Workers:  workers,
							Explain:  explain,
							TraceID:  "determinism-test",
						},
					}
				}
				plain, err := base.Solve(context.Background(), req(false))
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					got, err := traced.Solve(context.Background(), req(true))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Holders, plain.Holders) {
						t.Fatalf("run %d: traced holders differ from untraced:\n got %v\nwant %v", i, got.Holders, plain.Holders)
					}
					if !reflect.DeepEqual(got.Counts, plain.Counts) {
						t.Fatalf("run %d: traced counts differ from untraced:\n got %v\nwant %v", i, got.Counts, plain.Counts)
					}
					if got.Trace == nil {
						t.Fatal("explain solve returned no trace report")
					}
				}
			})
		}
	}
}

// TestExplainReportShape checks the explain summary carries the solve's
// identity and the phases the approximation pipeline is known to run.
func TestExplainReportShape(t *testing.T) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), faircache.Request{
		Producer: 9,
		Chunks:   5,
		Options:  &faircache.Options{Explain: true, TraceID: "explain-shape"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Trace
	if rep == nil {
		t.Fatal("Explain set but Result.Trace is nil")
	}
	if rep.TraceID != "explain-shape" {
		t.Errorf("TraceID = %q, want explain-shape", rep.TraceID)
	}
	if rep.Spans < 1+5 { // root + one span per chunk at minimum
		t.Errorf("Spans = %d, want at least 6", rep.Spans)
	}
	phases := map[string]faircache.ExplainPhase{}
	for _, ph := range rep.Phases {
		phases[ph.Phase] = ph
	}
	for _, want := range []string{"solve", "chunk", "confl", "steiner.connect"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("explain report missing phase %q (have %v)", want, rep.Phases)
		}
	}
	if ph := phases["chunk"]; ph.Count != 5 {
		t.Errorf("chunk phase ran %d spans, want 5", ph.Count)
	}
	if ph := phases["solve"]; ph.Counters["chunks"] != 5 || ph.Counters["producer"] != 9 {
		t.Errorf("solve counters = %v, want chunks=5 producer=9", ph.Counters)
	}
	// An untraced solver must not return a report.
	plain, err := solver.Solve(context.Background(), faircache.Request{Producer: 9, Chunks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Error("Explain unset but Result.Trace is non-nil")
	}
}

// TestTraceSpansRing checks sampled spans land in the solver ring with
// the request's trace id and that the slowerThan filter excludes fast
// spans.
func TestTraceSpansRing(t *testing.T) {
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := solver.TraceSpans(0); len(got) != 0 {
		t.Fatalf("fresh solver has %d spans, want 0", len(got))
	}
	solver.SetTraceSampling(1)
	if got := solver.TraceSampling(); got != 1 {
		t.Fatalf("TraceSampling = %d, want 1", got)
	}
	if _, err := solver.Solve(context.Background(), faircache.Request{
		Producer: 0,
		Chunks:   3,
		Options:  &faircache.Options{TraceID: "ring-test"},
	}); err != nil {
		t.Fatal(err)
	}
	spans := solver.TraceSpans(0)
	if len(spans) == 0 {
		t.Fatal("sampled solve left no spans in the ring")
	}
	sawRoot := false
	for _, sp := range spans {
		if sp.TraceID != "ring-test" {
			t.Errorf("span %s has trace id %q, want ring-test", sp.Name, sp.TraceID)
		}
		if sp.Name == "solve" {
			sawRoot = true
			if sp.ParentID != 0 {
				t.Errorf("root span has parent %d", sp.ParentID)
			}
		} else if sp.ParentID == 0 {
			t.Errorf("span %s has no parent", sp.Name)
		}
	}
	if !sawRoot {
		t.Errorf("ring holds no root solve span: %v", spans)
	}
	// A filter far above any real duration excludes everything.
	if got := solver.TraceSpans(3600 * 1000); len(got) != 0 {
		t.Errorf("slowerThan filter kept %d spans, want 0", len(got))
	}
}

// TestOnTraceSpanObserver checks the streaming hook fires once per
// sampled span (the server's phase histograms hang off this).
func TestOnTraceSpanObserver(t *testing.T) {
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	solver.OnTraceSpan(func(sp faircache.TraceSpan) { names = append(names, sp.Name) })
	solver.SetTraceSampling(1)
	if _, err := solver.Solve(context.Background(), faircache.Request{Producer: 0, Chunks: 2}); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "solve") || !strings.Contains(joined, "confl") {
		t.Errorf("observer saw %q, want solve and confl spans", joined)
	}
}

// TestTracingOffAllocFree pins the disabled-path cost to zero: a warm
// solve with sampling off and no Explain allocates exactly as many times
// as the pre-tracing baseline, measured as a delta between two identical
// loops on the same solver. Sampled solves may allocate, but only a
// bounded amount (ring copy + id).
func TestTracingOffAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts jitter under the race detector; run without -race")
	}
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	req := faircache.Request{
		Producer: 9,
		Chunks:   8,
		Options:  &faircache.Options{Capacity: 3, Workers: 1},
	}
	solve := func() {
		if _, err := solver.Solve(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	solve() // cold build
	before := testing.AllocsPerRun(10, solve)
	after := testing.AllocsPerRun(10, solve)
	t.Logf("tracing off: %.0f then %.0f allocs/run", before, after)
	if after > before {
		t.Errorf("disabled tracing path not steady: %.0f allocs/run after %.0f", after, before)
	}

	solver.SetTraceSampling(1)
	sampled := testing.AllocsPerRun(10, solve)
	t.Logf("tracing sampled: %.0f allocs/run", sampled)
	if sampled > before+200 {
		t.Errorf("sampled tracing adds %.0f allocs/run over %.0f, want <= 200 extra", sampled-before, before)
	}
	solver.SetTraceSampling(0)
	off := testing.AllocsPerRun(10, solve)
	t.Logf("tracing re-disabled: %.0f allocs/run", off)
	if off > before {
		t.Errorf("re-disabled tracing allocates %.0f/run, baseline was %.0f", off, before)
	}
}
