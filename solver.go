package faircache

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dist"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Request describes one placement solve: which node produces the data, how
// many chunks to place, which of the paper's algorithms to run and any
// option overrides. The zero Algorithm selects AlgorithmApprox and a nil
// Options means "paper defaults", so the minimal request is
// Request{Producer: p, Chunks: q}.
type Request struct {
	// Producer is the data producer node (never caches).
	Producer int
	// Chunks is the number of chunks to place (ids 0..Chunks-1).
	Chunks int
	// Algorithm selects the placement algorithm; "" means AlgorithmApprox.
	Algorithm Algorithm
	// Options overrides the paper defaults; nil keeps them all.
	Options *Options
}

// Solver is the context-first entry point of the library: it binds a
// topology once and then answers placement requests for any algorithm,
// producer and option set via Solve. Construction is cheap; the solver
// additionally memoises the topology's shortest-path structure across
// solves and keeps a fully built topology cost model alive, so a
// long-lived Solver (a placement service holds one per topology) answers
// repeat requests from a warm start: the approximation forks the base
// model's matrices instead of paying the cold all-pairs rebuild, and the
// baselines read its topology metric directly. A Solver is safe for
// concurrent use.
type Solver struct {
	topo *Topology
	pc   *graph.PathCache
	// scratch is the solver-owned arena pool: every approximation solve
	// (whole-topology and per-region sharded) borrows its per-chunk scratch
	// buffers here, so steady-state request traffic recycles arenas instead
	// of reallocating the inner solve state on every chunk.
	scratch *core.ScratchPool

	mu    sync.Mutex
	base  *costmodel.Model // empty-state topology model; read-only once built
	stats SolverStats

	// planMu guards plans, the memoised partition plans of the sharded
	// solve path, keyed by requested region count.
	planMu sync.Mutex
	plans  map[int]*partitionPlan

	// tracer owns the solver's recent-span ring buffer and sampling knob
	// (SetTraceSampling / TraceSpans). Off by default and free when off.
	tracer *trace.Tracer
}

// SolverStats counts how solves obtained their cost matrices.
type SolverStats struct {
	// ColdBuilds counts solves that had to build the topology cost
	// matrices from scratch (at most one per topology lifetime for the
	// approximation path).
	ColdBuilds int `json:"coldBuilds"`
	// WarmSolves counts solves served from the pre-built base model (a
	// fork for the approximation, a read-only borrow for the baselines).
	WarmSolves int `json:"warmSolves"`
	// PartitionedSolves counts solves served by the sharded
	// (partition-and-stitch) engine.
	PartitionedSolves int `json:"partitionedSolves"`
	// PartitionPlans counts distinct partition plans built — one per
	// requested region count, each holding its regions' subtopologies,
	// path caches and base cost models across solves.
	PartitionPlans int `json:"partitionPlans"`
}

// NewSolver returns a Solver bound to the given topology. Disconnected
// topologies are rejected up front with ErrNotConnected (an
// ErrBadArgument): unreachable nodes would silently never be assigned a
// nearby copy, and the partitioner could not cover them at all.
func NewSolver(t *Topology) (*Solver, error) {
	if t == nil || t.g == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrBadArgument)
	}
	if !t.g.Connected() {
		return nil, ErrNotConnected
	}
	return &Solver{topo: t, pc: graph.NewPathCache(t.g), scratch: core.NewScratchPool(), tracer: trace.New(0)}, nil
}

// Topology returns the topology the solver is bound to.
func (s *Solver) Topology() *Topology { return s.topo }

// Stats returns the solver's warm/cold solve counters.
func (s *Solver) Stats() SolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// baseModel returns the solver's shared empty-state cost model, building
// (and fully refreshing) it on first use. After that single build the
// model is never mutated again, so concurrent solves may read it freely.
func (s *Solver) baseModel(ctx context.Context, pl *pool.Pool, sp *trace.Span) (*costmodel.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.base != nil {
		s.stats.WarmSolves++
		return s.base, nil
	}
	// Weights of an empty state depend only on node degrees, so one base
	// model serves every capacity/battery/weight configuration: forks
	// re-derive the cheap fairness vector from their own state and
	// options, only the O(N²) matrices are shared.
	bsp := sp.Child("costmodel.build")
	st := cache.NewState(s.topo.g.NumNodes(), 1)
	m, err := costmodel.New(s.topo.g, s.pc, st, costmodel.Options{FairnessWeight: 1})
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	if err := m.RefreshCtx(ctx, pl); err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	bsp.SetInt("cold", 1)
	bsp.SetInt("cells", int64(m.MatrixCells()))
	bsp.End()
	s.base = m
	s.stats.ColdBuilds++
	return m, nil
}

// Solve runs one placement request. The context governs the whole solve:
// cancellation or deadline expiry stops the engine mid-solve (between
// chunks and inside each chunk's dual-growth, search and tree phases) and
// surfaces as an error satisfying errors.Is with ctx.Err(). Invalid
// requests fail with an error satisfying errors.Is(err, ErrBadArgument).
// Independent inner work fans out over Options.Workers; the result is
// byte-identical at any worker count.
func (s *Solver) Solve(ctx context.Context, req Request) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	alg := req.Algorithm
	if alg == "" {
		alg = AlgorithmApprox
	}
	if n := s.topo.NumNodes(); req.Producer < 0 || req.Producer >= n {
		return nil, fmt.Errorf("%w: producer %d out of range [0,%d)", ErrBadArgument, req.Producer, n)
	}
	if req.Chunks <= 0 {
		return nil, fmt.Errorf("%w: chunk count %d must be positive", ErrBadArgument, req.Chunks)
	}
	o := req.Options.withDefaults()
	tr := s.tracer.StartTrace(o.TraceID, o.Explain)
	sp := tr.Start("solve")
	sp.SetInt("chunks", int64(req.Chunks))
	sp.SetInt("producer", int64(req.Producer))
	res, err := s.dispatch(ctx, req, o, alg, &sp)
	sp.End()
	if err != nil {
		return nil, err
	}
	if o.Explain {
		res.Trace = buildExplain(tr, "solve")
	}
	return res, nil
}

// dispatch routes a validated request to its algorithm's solve path,
// with sp — the request's root trace span — as the parent the pipeline's
// phase spans attach under (a dead span when tracing is off).
func (s *Solver) dispatch(ctx context.Context, req Request, o Options, alg Algorithm, sp *trace.Span) (*Result, error) {
	if o.Partition != nil {
		if alg != AlgorithmApprox {
			return nil, fmt.Errorf("%w: partitioned solves support only AlgorithmApprox, got %q", ErrBadArgument, string(alg))
		}
		return s.solvePartitioned(ctx, req, o, sp)
	}
	switch alg {
	case AlgorithmApprox:
		return s.solveApprox(ctx, req, o, sp)
	case AlgorithmDistributed:
		return s.solveDistributed(ctx, req, o, sp)
	case AlgorithmHopCount:
		return s.solveBaseline(ctx, req, o, baseline.HopCount, AlgorithmHopCount, metrics.AccessHopNearest, sp)
	case AlgorithmContention:
		return s.solveBaseline(ctx, req, o, baseline.Contention, AlgorithmContention, metrics.AccessTopologyNearest, sp)
	case AlgorithmOptimal:
		return s.solveOptimal(ctx, req, o, sp)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadArgument, string(alg))
	}
}

// coreOptions maps public approximation options onto the engine's.
func coreOptions(o Options) core.Options {
	coreOpts := core.DefaultOptions()
	coreOpts.FairnessWeight = o.FairnessWeight
	coreOpts.BatteryWeight = o.BatteryWeight
	if o.GreedyConFL {
		coreOpts.Strategy = core.Greedy
	}
	coreOpts.ImproveSteiner = o.ImproveSteiner
	if o.AlphaStep > 0 {
		coreOpts.ConFL.AlphaStep = o.AlphaStep
	}
	if o.GammaStep > 0 {
		coreOpts.ConFL.GammaStep = o.GammaStep
	}
	if o.SpanQuorum > 0 {
		coreOpts.ConFL.SpanQuorum = o.SpanQuorum
	}
	coreOpts.Workers = o.Workers
	coreOpts.ChunkStarted = o.ChunkStarted
	return coreOpts
}

// solveApprox runs the paper's centralized approximation (Algorithm 1).
func (s *Solver) solveApprox(ctx context.Context, req Request, o Options, sp *trace.Span) (*Result, error) {
	coreOpts := coreOptions(o)
	coreOpts.PathCache = s.pc
	coreOpts.Scratch = s.scratch
	coreOpts.Parent = *sp
	solver, err := core.New(s.topo.g, coreOpts)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	st := newState(s.topo, o)
	base := st.Clone()

	// Fork the solver's warm topology model for this solve: fresh states
	// are empty, so the fork reuses the shared contention matrices and
	// the cold all-pairs build is paid once per topology, not per solve.
	pl := pool.New(pool.Normalize(o.Workers))
	defer pl.Close()
	bm, err := s.baseModel(ctx, pl, sp)
	if err != nil {
		return nil, err
	}
	fsp := sp.Child("costmodel.fork")
	var fst0 costmodel.Stats
	if fsp.Live() {
		fst0 = bm.Stats()
	}
	m, err := bm.ForkCtx(ctx, pl, st, costmodel.Options{
		FairnessWeight: coreOpts.FairnessWeight,
		BatteryWeight:  coreOpts.BatteryWeight,
	})
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	if fsp.Live() {
		fst1 := bm.Stats()
		fsp.SetInt("warm", int64(fst1.WarmForks-fst0.WarmForks))
		fsp.SetInt("cold", int64(fst1.ColdForks-fst0.ColdForks))
	}
	fsp.End()
	p, err := solver.PlaceModelCtx(ctx, req.Producer, req.Chunks, m)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	return newResult(s.topo, AlgorithmApprox, req.Producer, req.Chunks, o.Capacity, p.CacheNodes(), st, base, metrics.AccessCostNearest), nil
}

// solveDistributed runs the distributed protocol (Algorithm 2) on the
// deterministic message-round simulator.
func (s *Solver) solveDistributed(ctx context.Context, req Request, o Options, sp *trace.Span) (*Result, error) {
	distOpts := dist.DefaultOptions()
	distOpts.K = o.HopLimit
	distOpts.FairnessWeight = o.FairnessWeight
	distOpts.BatteryWeight = o.BatteryWeight
	if o.AlphaStep > 0 {
		distOpts.AlphaStep = o.AlphaStep
	}
	if o.GammaStep > 0 {
		distOpts.GammaStep = o.GammaStep
	}
	if o.SpanQuorum > 0 {
		distOpts.SpanQuorum = o.SpanQuorum
	}
	protocol, err := dist.New(s.topo.g, distOpts)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	st := newState(s.topo, o)
	base := st.Clone()
	psp := sp.Child("dist.place")
	p, err := protocol.PlaceChunksCtx(ctx, req.Producer, req.Chunks, st)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	psp.End()
	res := newResult(s.topo, AlgorithmDistributed, req.Producer, req.Chunks, o.Capacity, p.CacheNodes(), st, base, metrics.AccessCostNearest)
	res.Messages = p.MessagesByKind()
	return res, nil
}

// solveBaseline runs one of the two greedy comparison algorithms with the
// paper's multi-item extension.
func (s *Solver) solveBaseline(ctx context.Context, req Request, o Options, alg baseline.Algorithm, name Algorithm, strategy metrics.AccessStrategy, sp *trace.Span) (*Result, error) {
	lambda := o.Lambda
	if lambda <= 0 {
		lambda = baseline.RecommendedLambda(alg, s.topo.NumNodes())
	}
	st := newState(s.topo, o)
	base := st.Clone()
	pl := pool.New(pool.Normalize(o.Workers))
	defer pl.Close()
	bm, err := s.baseModel(ctx, pl, sp)
	if err != nil {
		return nil, err
	}
	psp := sp.Child("baseline.place")
	p, err := baseline.PlaceChunksModelCtx(ctx, bm, req.Producer, req.Chunks, st, alg, lambda, pl)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	psp.End()
	return newResult(s.topo, name, req.Producer, req.Chunks, o.Capacity, p.Holders, st, base, strategy), nil
}

// solveOptimal runs the exact per-chunk branch-and-bound reference.
func (s *Solver) solveOptimal(ctx context.Context, req Request, o Options, sp *trace.Span) (*Result, error) {
	exOpts := exact.DefaultOptions()
	exOpts.FairnessWeight = o.FairnessWeight
	exOpts.NodeBudget = o.SearchBudget
	exOpts.MaxSubsetSize = o.SearchWidth
	exOpts.Workers = o.Workers
	exOpts.PathCache = s.pc
	st := newState(s.topo, o)
	base := st.Clone()
	psp := sp.Child("exact.place")
	p, err := exact.PlaceChunksCtx(ctx, s.topo.g, req.Producer, req.Chunks, st, exOpts)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	psp.End()
	res := newResult(s.topo, AlgorithmOptimal, req.Producer, req.Chunks, o.Capacity, p.CacheNodes(), st, base, metrics.AccessCostNearest)
	res.ProvenOptimal = p.Optimal()
	return res, nil
}
