// Allocation-budget regression tests for the public solve entry points.
// The scratch-arena refactor cut BenchmarkSolveSequential from ~389k to
// ~11k allocs per solve; these tests pin per-solve ceilings on a small
// grid so a future change cannot silently reintroduce per-tick or
// per-node garbage without tripping CI. Ceilings carry ~2x headroom over
// the measured steady state — they catch order-of-magnitude regressions,
// not size-class jitter.
package faircache_test

import (
	"context"
	"testing"

	faircache "repro"
)

// TestSolveAllocBudget pins allocs per warm solve for the approximation
// and the two wireless-caching baselines on a 6x6 grid, 8 chunks. The
// first solve per algorithm pays the cold path-cache/cost-model build;
// the measured runs are the steady state a daemon serves from.
func TestSolveAllocBudget(t *testing.T) {
	for _, tc := range []struct {
		alg     faircache.Algorithm
		ceiling float64
	}{
		// Appx runs Algorithm 1 on the arena hot path; warm solves are
		// dominated by result assembly (~300 measured).
		{faircache.AlgorithmApprox, 800},
		// The baselines skip the arena machinery and still rebuild their
		// cost views per solve (~1500 measured) — bounded, not optimized.
		{faircache.AlgorithmHopCount, 3000},
		{faircache.AlgorithmContention, 3000},
	} {
		t.Run(string(tc.alg), func(t *testing.T) {
			topo, err := faircache.Grid(6, 6)
			if err != nil {
				t.Fatal(err)
			}
			solver, err := faircache.NewSolver(topo)
			if err != nil {
				t.Fatal(err)
			}
			req := faircache.Request{
				Producer:  9,
				Chunks:    8,
				Algorithm: tc.alg,
				Options:   &faircache.Options{Capacity: 3, Workers: 1},
			}
			solve := func() {
				if _, err := solver.Solve(context.Background(), req); err != nil {
					t.Fatal(err)
				}
			}
			solve() // cold: path cache + base model build
			got := testing.AllocsPerRun(10, solve)
			t.Logf("Solve(%s): %.0f allocs/run", tc.alg, got)
			if got > tc.ceiling {
				t.Errorf("Solve(%s) allocates %.0f times per run, want <= %g", tc.alg, got, tc.ceiling)
			}
		})
	}
}
