package faircache_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	faircache "repro"
)

// topologies returns the three network models of the paper's evaluation,
// built with fixed seeds.
func testTopologies(t *testing.T) map[string]*faircache.Topology {
	t.Helper()
	grid, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	random, err := faircache.Random(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := faircache.Clustered(4, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*faircache.Topology{
		"grid":      grid,
		"random":    random,
		"clustered": clustered,
	}
}

func sameResult(t *testing.T, label string, want, got *faircache.Result) {
	t.Helper()
	if len(want.Holders) != len(got.Holders) {
		t.Fatalf("%s: %d chunks != %d chunks", label, len(got.Holders), len(want.Holders))
	}
	for n := range want.Holders {
		if len(want.Holders[n]) != len(got.Holders[n]) {
			t.Fatalf("%s chunk %d: holders %v != %v", label, n, got.Holders[n], want.Holders[n])
		}
		for k := range want.Holders[n] {
			if want.Holders[n][k] != got.Holders[n][k] {
				t.Fatalf("%s chunk %d: holders %v != %v", label, n, got.Holders[n], want.Holders[n])
			}
		}
	}
	for i := range want.Counts {
		if want.Counts[i] != got.Counts[i] {
			t.Fatalf("%s: counts[%d] %d != %d", label, i, got.Counts[i], want.Counts[i])
		}
	}
	if math.Float64bits(want.Gini()) != math.Float64bits(got.Gini()) {
		t.Fatalf("%s: gini %v != %v", label, got.Gini(), want.Gini())
	}
	wantCost, err := want.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	gotCost, err := got.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(wantCost.Total()) != math.Float64bits(gotCost.Total()) {
		t.Fatalf("%s: cost %v != %v", label, gotCost.Total(), wantCost.Total())
	}
}

// TestSolveParallelMatchesSequential is the engine's determinism contract
// at the public API: for fixed seeds, the parallel engine must produce
// byte-identical holder sets, counts, Gini and contention cost to the
// sequential reference, on every topology model and algorithm.
func TestSolveParallelMatchesSequential(t *testing.T) {
	algorithms := []faircache.Algorithm{
		faircache.AlgorithmApprox,
		faircache.AlgorithmHopCount,
		faircache.AlgorithmContention,
	}
	for name, topo := range testTopologies(t) {
		solver, err := faircache.NewSolver(topo)
		if err != nil {
			t.Fatal(err)
		}
		producer := topo.CentralNode()
		for _, alg := range algorithms {
			seq, err := solver.Solve(context.Background(), faircache.Request{
				Producer:  producer,
				Chunks:    6,
				Algorithm: alg,
				Options:   &faircache.Options{Workers: 1},
			})
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", name, alg, err)
			}
			for _, workers := range []int{0, 2, 4} {
				par, err := solver.Solve(context.Background(), faircache.Request{
					Producer:  producer,
					Chunks:    6,
					Algorithm: alg,
					Options:   &faircache.Options{Workers: workers},
				})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, alg, workers, err)
				}
				sameResult(t, name+"/"+string(alg), seq, par)
			}
		}
	}
}

// TestSolverConcurrentStress hammers one Solver from many goroutines (run
// with -race): every solve must match the single-threaded reference.
func TestSolverConcurrentStress(t *testing.T) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	req := faircache.Request{Producer: 9, Chunks: 5}
	ref, err := solver.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]*faircache.Result, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = solver.Solve(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		sameResult(t, "concurrent", ref, results[i])
	}
}

func TestSolveBadArguments(t *testing.T) {
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  faircache.Request
	}{
		{"producer negative", faircache.Request{Producer: -1, Chunks: 1}},
		{"producer out of range", faircache.Request{Producer: 16, Chunks: 1}},
		{"zero chunks", faircache.Request{Producer: 0, Chunks: 0}},
		{"negative chunks", faircache.Request{Producer: 0, Chunks: -3}},
		{"unknown algorithm", faircache.Request{Producer: 0, Chunks: 1, Algorithm: "Nope"}},
	}
	for _, c := range cases {
		_, err := solver.Solve(context.Background(), c.req)
		if !errors.Is(err, faircache.ErrBadArgument) {
			t.Errorf("%s: err = %v, want errors.Is(ErrBadArgument)", c.name, err)
		}
	}
	if _, err := faircache.NewSolver(nil); !errors.Is(err, faircache.ErrBadArgument) {
		t.Errorf("NewSolver(nil): err = %v, want errors.Is(ErrBadArgument)", err)
	}
}

func TestSolvePreCancelled(t *testing.T) {
	topo, err := faircache.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []faircache.Algorithm{
		faircache.AlgorithmApprox,
		faircache.AlgorithmDistributed,
		faircache.AlgorithmHopCount,
		faircache.AlgorithmContention,
		faircache.AlgorithmOptimal,
	} {
		_, err := solver.Solve(ctx, faircache.Request{
			Producer:  0,
			Chunks:    2,
			Algorithm: alg,
			Options:   &faircache.Options{SearchWidth: 2, SearchBudget: 100},
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
	}
}

// TestSolveCancelMidSolve uses the ChunkStarted observability hook to
// cancel after the second chunk begins and asserts the engine stopped
// there instead of placing the remaining chunks.
func TestSolveCancelMidSolve(t *testing.T) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 12
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := 0
	_, err = solver.Solve(ctx, faircache.Request{
		Producer: 9,
		Chunks:   chunks,
		Options: &faircache.Options{
			ChunkStarted: func(chunk int) {
				started++
				if chunk == 1 {
					cancel()
				}
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started >= chunks {
		t.Fatalf("all %d chunks started despite cancellation", started)
	}
}

func TestSolveDeadlineExceeded(t *testing.T) {
	topo, err := faircache.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err = solver.Solve(ctx, faircache.Request{Producer: 0, Chunks: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestParseAlgorithm pins the canonical enum: every canonical name
// round-trips through String, every legacy alias resolves, and unknown
// names fail with ErrBadArgument.
func TestParseAlgorithm(t *testing.T) {
	cases := map[string]faircache.Algorithm{
		"Appx": faircache.AlgorithmApprox, "appx": faircache.AlgorithmApprox,
		"":            faircache.AlgorithmApprox,
		"approximate": faircache.AlgorithmApprox,
		"Dist":        faircache.AlgorithmDistributed,
		"distribute":  faircache.AlgorithmDistributed,
		"distributed": faircache.AlgorithmDistributed,
		"Hopc":        faircache.AlgorithmHopCount,
		"hopcount":    faircache.AlgorithmHopCount,
		"Cont":        faircache.AlgorithmContention,
		"contention":  faircache.AlgorithmContention,
		"Brtf":        faircache.AlgorithmOptimal,
		"optimal":     faircache.AlgorithmOptimal,
		"exact":       faircache.AlgorithmOptimal,
		" BRTF ":      faircache.AlgorithmOptimal, // case + whitespace
	}
	for in, want := range cases {
		got, err := faircache.ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	// Canonical names round-trip: Parse(a.String()) == a.
	for _, a := range []faircache.Algorithm{
		faircache.AlgorithmApprox, faircache.AlgorithmDistributed,
		faircache.AlgorithmHopCount, faircache.AlgorithmContention,
		faircache.AlgorithmOptimal,
	} {
		got, err := faircache.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round-trip %v: (%v, %v)", a, got, err)
		}
	}
	if _, err := faircache.ParseAlgorithm("lru"); !errors.Is(err, faircache.ErrBadArgument) {
		t.Errorf("unknown algorithm err = %v, want ErrBadArgument", err)
	}
}

func TestOnlinePublishCtxCancelled(t *testing.T) {
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := faircache.NewOnline(topo, 5, &faircache.Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.PublishCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("PublishCtx: err = %v, want context.Canceled", err)
	}
	if sys.Clock() != 0 {
		t.Fatalf("pre-cancelled publish advanced the clock to %d", sys.Clock())
	}
	if _, err := sys.PublishCtx(context.Background()); err != nil {
		t.Fatalf("publish after cancelled attempt: %v", err)
	}
}
