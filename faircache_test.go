package faircache

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

// runAlgT is the in-package twin of the external runAlg helper: one
// positional solve through the Solver API, standing in for the removed
// deprecated wrappers.
func runAlgT(alg Algorithm, t *Topology, producer, chunks int, opts *Options) (*Result, error) {
	s, err := NewSolver(t)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: alg,
		Options:   opts,
	})
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid(0, 5); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Grid(0,5) err = %v", err)
	}
	if _, err := Grid(1, 1); !errors.Is(err, ErrBadArgument) {
		t.Errorf("Grid(1,1) err = %v", err)
	}
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumNodes() != 36 || topo.NumLinks() != 60 {
		t.Errorf("6x6 grid: %d nodes, %d links", topo.NumNodes(), topo.NumLinks())
	}
	if topo.Degree(0) != 2 {
		t.Errorf("corner degree = %d", topo.Degree(0))
	}
	if got := topo.Neighbors(0); len(got) != 2 {
		t.Errorf("Neighbors(0) = %v", got)
	}
}

func TestFromLinks(t *testing.T) {
	if _, err := FromLinks(3, [][2]int{{0, 1}}); !errors.Is(err, ErrNotConnected) {
		t.Errorf("disconnected: err = %v", err)
	}
	if _, err := FromLinks(2, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range link: want error")
	}
	topo, err := FromLinks(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumLinks() != 2 {
		t.Errorf("NumLinks = %d", topo.NumLinks())
	}
}

// TestDisconnectedRejectedUpFront pins the typed rejection of
// disconnected topologies: ErrNotConnected wraps ErrBadArgument, so
// callers can match either, and both the constructor and the solver
// entry points refuse the input before any solving happens.
func TestDisconnectedRejectedUpFront(t *testing.T) {
	_, err := FromLinks(4, [][2]int{{0, 1}, {2, 3}})
	if !errors.Is(err, ErrNotConnected) {
		t.Fatalf("FromLinks: err = %v, want ErrNotConnected", err)
	}
	if !errors.Is(err, ErrBadArgument) {
		t.Fatalf("FromLinks: err = %v must also match ErrBadArgument", err)
	}

	// Constructors bridge or reject disconnected inputs, so NewSolver's
	// own check needs a hand-built topology to exercise.
	g := graph.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSolver(&Topology{g: g}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("NewSolver: err = %v, want ErrNotConnected", err)
	}
	if _, err := NewSolver(&Topology{g: g}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("NewSolver: err must also match ErrBadArgument")
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a, err := Random(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Errorf("same seed, different topologies: %d vs %d links", a.NumLinks(), b.NumLinks())
	}
	if a.CentralNode() != b.CentralNode() {
		t.Error("same seed, different central node")
	}
}

func TestApproximateOnPaperScenario(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmApprox, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmApprox {
		t.Errorf("Algorithm = %v", res.Algorithm)
	}
	if len(res.Holders) != 5 {
		t.Fatalf("Holders length = %d", len(res.Holders))
	}
	if res.Counts[9] != 0 {
		t.Error("producer cached data")
	}
	if res.TotalCopies() == 0 || res.DistinctCacheNodes() == 0 {
		t.Error("nothing cached")
	}
	// Paper's headline fairness: Gini < 0.4 on the 6x6 grid.
	if g := res.Gini(); g >= 0.4 {
		t.Errorf("Gini = %g, want < 0.4", g)
	}
	pf, err := res.PercentileFairness(75)
	if err != nil {
		t.Fatal(err)
	}
	if pf < 0.4 {
		t.Errorf("75-percentile fairness = %g, want the paper's spread-out regime (> 0.4)", pf)
	}
	cost, err := res.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total() <= 0 || len(cost.PerChunk) != 5 {
		t.Errorf("cost report: %+v", cost)
	}
	sum := 0.0
	for _, pc := range cost.PerChunk {
		sum += pc
	}
	if math.Abs(sum-cost.Total()) > 1e-6 {
		t.Errorf("per-chunk sum %g != total %g", sum, cost.Total())
	}
	curve := res.StorageCurve()
	if len(curve) != 36 || curve[35] != 1 {
		t.Errorf("storage curve = %v", curve)
	}
}

func TestDistributeProducesMessagesAndFairness(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmDistributed, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == nil || res.Messages["NPI"] == 0 {
		t.Errorf("Messages = %v, want protocol traffic", res.Messages)
	}
	if g := res.Gini(); g >= 0.5 {
		t.Errorf("Gini = %g, want the paper's fair regime", g)
	}
}

func TestBaselinesAreUnfair(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := runAlgT(AlgorithmHopCount, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := runAlgT(AlgorithmContention, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	appx, err := runAlgT(AlgorithmApprox, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fairness ordering of the paper: Appx fairer than Cont fairer than
	// Hopc (Fig. 6/7).
	if !(appx.Gini() < cont.Gini() && cont.Gini() < hop.Gini()) {
		t.Errorf("gini ordering violated: appx %g, cont %g, hopc %g", appx.Gini(), cont.Gini(), hop.Gini())
	}
	// Contention ordering: Hopc clearly worse than Appx (Fig. 2).
	hopCost, err := hop.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	appxCost, err := appx.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	if hopCost.Total() <= appxCost.Total() {
		t.Errorf("Hopc total %g not worse than Appx %g", hopCost.Total(), appxCost.Total())
	}
}

func TestOptimalOnSmallGrid(t *testing.T) {
	topo, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmOptimal, topo, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ProvenOptimal {
		t.Error("3x3 search should complete exhaustively")
	}
	appx, err := runAlgT(AlgorithmApprox, topo, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	optCost, err := res.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	appxCost, err := appx.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	// The approximation can beat the optimum on the *evaluation* metric
	// (the optimum minimises the decision-time objective), but both must
	// be positive and within the approximation guarantee in magnitude.
	if optCost.Total() <= 0 || appxCost.Total() <= 0 {
		t.Errorf("non-positive costs: opt %g appx %g", optCost.Total(), appxCost.Total())
	}
	if appxCost.Total() > 6.55*optCost.Total() {
		t.Errorf("approximation exceeds 6.55x the optimum on evaluation: %g vs %g", appxCost.Total(), optCost.Total())
	}
}

func TestOptimalSearchBudget(t *testing.T) {
	topo, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmOptimal, topo, 5, 1, &Options{SearchBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.ProvenOptimal {
		t.Error("budget 5 on 4x4 should not prove optimality")
	}
}

func TestOptionsDefaultsAndOverrides(t *testing.T) {
	topo, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1 with 3 chunks must still respect capacity everywhere.
	res, err := runAlgT(AlgorithmApprox, topo, 0, 3, &Options{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Counts {
		if c > 1 {
			t.Errorf("node %d stores %d > capacity 1", i, c)
		}
	}
	// Negative fairness weight = ablation (contention only); still runs.
	if _, err := runAlgT(AlgorithmApprox, topo, 0, 2, &Options{FairnessWeight: -1}); err != nil {
		t.Errorf("zero-fairness ablation: %v", err)
	}
	// Distributed 1-hop override.
	if _, err := runAlgT(AlgorithmDistributed, topo, 0, 1, &Options{HopLimit: 1}); err != nil {
		t.Errorf("1-hop distribute: %v", err)
	}
	// Baseline with explicit lambda.
	if _, err := runAlgT(AlgorithmHopCount, topo, 0, 2, &Options{Lambda: 4}); err != nil {
		t.Errorf("explicit lambda: %v", err)
	}
}

func TestPlacementErrorsSurface(t *testing.T) {
	topo, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runAlgT(AlgorithmApprox, topo, -1, 1, nil); err == nil {
		t.Error("bad producer: want error")
	}
	if _, err := runAlgT(AlgorithmDistributed, topo, 0, 0, nil); err == nil {
		t.Error("zero chunks: want error")
	}
	if _, err := runAlgT(AlgorithmHopCount, topo, 99, 1, nil); err == nil {
		t.Error("bad producer baseline: want error")
	}
	if _, err := runAlgT(AlgorithmOptimal, topo, 99, 1, nil); err == nil {
		t.Error("bad producer optimal: want error")
	}
}

func TestBatteryFairnessExtension(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the batteries of the left half of the grid; with the
	// battery-fairness extension on, caching must shift to the right.
	levels := make([]float64, 36)
	for i := range levels {
		levels[i] = 1
		if i%6 < 3 {
			levels[i] = 0.05 // nearly dead
		}
	}
	opts := &Options{BatteryLevels: levels, BatteryWeight: 1}
	for _, run := range []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"approximate", func() (*Result, error) { return runAlgT(AlgorithmApprox, topo, 9, 5, opts) }},
		{"distribute", func() (*Result, error) { return runAlgT(AlgorithmDistributed, topo, 9, 5, opts) }},
	} {
		res, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		left, right := 0, 0
		for i, c := range res.Counts {
			if i%6 < 3 {
				left += c
			} else {
				right += c
			}
		}
		if right == 0 {
			t.Fatalf("%s: nothing cached at all", run.name)
		}
		if left >= right {
			t.Errorf("%s: drained half holds %d chunks vs %d on the charged half", run.name, left, right)
		}
	}
}

func TestBatteryWeightZeroIgnoresLevels(t *testing.T) {
	topo, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]float64, 16)
	for i := range levels {
		levels[i] = 0.01
	}
	// Weight 0: drained batteries must not prevent caching.
	res, err := runAlgT(AlgorithmApprox, topo, 5, 3, &Options{BatteryLevels: levels})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCopies() == 0 {
		t.Error("battery levels leaked into placement despite weight 0")
	}
}

func TestHeterogeneousCapacities(t *testing.T) {
	topo, err := Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Half the devices contribute no storage at all.
	caps := make([]int, 16)
	for i := range caps {
		if i%2 == 0 {
			caps[i] = 4
		}
	}
	res, err := runAlgT(AlgorithmApprox, topo, 5, 4, &Options{Capacities: caps})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Counts {
		if caps[i] == 0 && c > 0 {
			t.Errorf("zero-capacity node %d cached %d chunks", i, c)
		}
		if c > caps[i] {
			t.Errorf("node %d stored %d > capacity %d", i, c, caps[i])
		}
	}
	if res.TotalCopies() == 0 {
		t.Error("nothing cached despite available storage")
	}
	// Contention evaluation must replay against the same capacities.
	if _, err := res.ContentionCost(); err != nil {
		t.Errorf("ContentionCost with heterogeneous capacities: %v", err)
	}
}

func TestAccessDelayEstimate(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	appx, err := runAlgT(AlgorithmApprox, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := runAlgT(AlgorithmHopCount, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	appxCost, err := appx.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	hopCost, err := hop.ContentionCost()
	if err != nil {
		t.Fatal(err)
	}
	if appxCost.AccessDelay <= 0 {
		t.Fatalf("AccessDelay = %v, want > 0", appxCost.AccessDelay)
	}
	// The DCF delay is a linear transform of the contention cost, so the
	// fairness algorithm's latency advantage must carry over.
	if appxCost.AccessDelay >= hopCost.AccessDelay {
		t.Errorf("Appx delay %v not below Hopc %v", appxCost.AccessDelay, hopCost.AccessDelay)
	}
}

func TestOnlineSystemAPI(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewOnline(topo, 9, &Options{Capacity: 3, ChunkTTL: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sawExpiry bool
	for i := 0; i < 12; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if pub.Time != i+1 || pub.Chunk != i {
			t.Errorf("publication %d = %+v", i, pub)
		}
		if len(pub.Expired) > 0 {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Error("no chunk ever expired over 12 publications with TTL 3")
	}
	if sys.Clock() != 12 {
		t.Errorf("Clock() = %d", sys.Clock())
	}
	if len(sys.Live()) > 3 {
		t.Errorf("live chunks %v exceed the TTL window", sys.Live())
	}
	for i, c := range sys.Counts() {
		if c > 3 {
			t.Errorf("node %d holds %d > capacity", i, c)
		}
	}
	if g := sys.Gini(); g < 0 || g >= 1 {
		t.Errorf("Gini() = %g out of range", g)
	}
	if _, err := NewOnline(topo, 99, nil); err == nil {
		t.Error("bad producer: want error")
	}
}

func TestGreedyConFLAblation(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmApprox, topo, 9, 5, &Options{GreedyConFL: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCopies() == 0 {
		t.Fatal("greedy strategy cached nothing")
	}
	for i, c := range res.Counts {
		if c > res.Capacity {
			t.Errorf("node %d over capacity", i)
		}
		if i == 9 && c != 0 {
			t.Error("producer cached data")
		}
	}
	if _, err := res.ContentionCost(); err != nil {
		t.Errorf("greedy ContentionCost: %v", err)
	}
}

func TestLineRingClusteredTopologies(t *testing.T) {
	if _, err := Line(1); err == nil {
		t.Error("Line(1): want error")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2): want error")
	}
	if _, err := Clustered(0, 5, 1); err == nil {
		t.Error("Clustered(0,..): want error")
	}
	line, err := Line(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runAlgT(AlgorithmApprox, line, 0, 3, nil); err != nil {
		t.Errorf("approximate on line: %v", err)
	}
	ring, err := Ring(12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runAlgT(AlgorithmDistributed, ring, 0, 2, nil); err != nil {
		t.Errorf("distribute on ring: %v", err)
	}
	crowd, err := Clustered(3, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runAlgT(AlgorithmApprox, crowd, crowd.CentralNode(), 4, nil)
	if err != nil {
		t.Fatalf("approximate on clustered: %v", err)
	}
	if res.TotalCopies() == 0 {
		t.Error("nothing cached on the clustered topology")
	}
}

func TestImproveSteinerOptionNeverWorsensDecisionCost(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := runAlgT(AlgorithmApprox, topo, 9, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	improved, err := runAlgT(AlgorithmApprox, topo, 9, 5, &Options{ImproveSteiner: true})
	if err != nil {
		t.Fatal(err)
	}
	// The same ConFL decisions are made; only the dissemination trees may
	// shrink, so holders are identical.
	for n := range plain.Holders {
		if len(plain.Holders[n]) != len(improved.Holders[n]) {
			t.Fatalf("chunk %d holder sets diverged", n)
		}
		for i := range plain.Holders[n] {
			if plain.Holders[n][i] != improved.Holders[n][i] {
				t.Fatalf("chunk %d holder sets diverged", n)
			}
		}
	}
}
