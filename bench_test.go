// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. V), one benchmark per experiment, plus ablation benches
// for the design knobs called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure bench reports, besides ns/op, custom metrics matching the
// figure's headline quantity (contention cost, Gini, fairness percentage,
// message counts), so a bench run doubles as a compact reproduction
// report.
package faircache_test

import (
	"context"
	"testing"

	faircache "repro"

	"repro/internal/eval"
)

// benchSolve runs the engine on the paper's large-grid regime (15×15
// nodes, 64 chunks) at a fixed worker count. Workers=1 is the sequential
// reference path; Workers=0 sizes the pool to GOMAXPROCS. Comparing the
// two benchmarks measures the parallel engine's speedup on multi-core
// hosts (they coincide on a single-core runner).
func benchSolve(b *testing.B, workers int) {
	topo, err := faircache.Grid(15, 15)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		b.Fatal(err)
	}
	req := faircache.Request{
		Producer: 9,
		Chunks:   64,
		Options:  &faircache.Options{Capacity: 3, Workers: workers},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Gini(), "gini")
		}
	}
}

func BenchmarkSolveSequential(b *testing.B) { benchSolve(b, 1) }
func BenchmarkSolveParallel(b *testing.B)   { benchSolve(b, 0) }

// BenchmarkSolvePartitioned runs the same large-grid regime through the
// geographic sharding path (Options.Partition): regions solve in parallel
// against per-region cost matrices and the boundary stitch reconciles the
// cut. Comparing against BenchmarkSolveParallel measures what sharding
// buys on a topology the global path can still handle; the reported
// matrix-cells metric is the per-solve peak-memory ratio (Σ nᵢ² / N²).
func BenchmarkSolvePartitioned(b *testing.B) {
	topo, err := faircache.Grid(15, 15)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := faircache.NewSolver(topo)
	if err != nil {
		b.Fatal(err)
	}
	req := faircache.Request{
		Producer: 9,
		Chunks:   64,
		Options: &faircache.Options{
			Capacity:  3,
			Partition: &faircache.PartitionOptions{Regions: 9},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Gini(), "gini")
			b.ReportMetric(float64(res.Partition.MatrixCells)/float64(res.Partition.FullMatrixCells), "matrix-cells-ratio")
		}
	}
}

// benchScenario mirrors the paper's defaults with a budgeted exact search
// so Brtf-dependent figures stay tractable inside a benchmark loop.
func benchScenario() eval.Scenario {
	sc := eval.DefaultScenario()
	sc.OptimalBudget = 2000
	sc.OptimalWidth = 8
	return sc
}

func BenchmarkFig1ChunkDistribution6x6(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		fig, err := eval.RunFig1(6, 6, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			total := 0
			for _, d := range fig.Diff[faircache.AlgorithmApprox] {
				if d < 0 {
					total -= d
				} else {
					total += d
				}
			}
			b.ReportMetric(float64(total), "appx-total-|diff|")
		}
	}
}

func BenchmarkFig2SmallGridsWithOptimal(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig2Small([]int{3, 4}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Total[faircache.AlgorithmApprox]/last.Optimal, "appx/optimal-ratio")
		}
	}
}

func BenchmarkFig2LargeGrids(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig2Large([]int{10, 12}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Total[faircache.AlgorithmHopCount]/last.Total[faircache.AlgorithmApprox], "hopc/appx-ratio")
		}
	}
}

func BenchmarkFig3HopLimitSweep(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig3(6, 6, 4, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].Total()/rows[1].Total(), "k1/k2-cost-ratio")
		}
	}
}

func BenchmarkFig4RandomNetworks(b *testing.B) {
	sc := benchScenario()
	sc.Seeds = []int64{1, 2} // 2 seeds per op keeps the bench responsive
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig4([]int{20, 60}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Total[faircache.AlgorithmHopCount]/last.Total[faircache.AlgorithmApprox], "hopc/appx-ratio")
		}
	}
}

// BenchmarkFig5 measures the single-chunk placement time of each
// algorithm directly — the figure's own quantity is the benchmark metric.
func BenchmarkFig5PlaceOneChunkAppx(b *testing.B) { benchPlaceOne(b, faircache.AlgorithmApprox) }
func BenchmarkFig5PlaceOneChunkHopc(b *testing.B) { benchPlaceOne(b, faircache.AlgorithmHopCount) }
func BenchmarkFig5PlaceOneChunkCont(b *testing.B) { benchPlaceOne(b, faircache.AlgorithmContention) }

func benchPlaceOne(b *testing.B, alg faircache.Algorithm) {
	topo, err := faircache.Grid(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Run(alg, topo, 9, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6StorageConcentration(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		fig, err := eval.RunFig6(6, 6, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*fig.Percentile75[faircache.AlgorithmApprox], "appx-75pct-fairness-%")
			b.ReportMetric(100*fig.Percentile75[faircache.AlgorithmHopCount], "hopc-75pct-fairness-%")
		}
	}
}

func BenchmarkFig7GiniGrids(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig7Grid([]int{4, 6, 8}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[1].Gini[faircache.AlgorithmApprox], "appx-gini-6x6")
		}
	}
}

func BenchmarkFig7GiniRandom(b *testing.B) {
	sc := benchScenario()
	sc.Seeds = []int64{1, 2}
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig7Random([]int{20, 60}, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[1].Gini[faircache.AlgorithmApprox], "appx-gini-60")
		}
	}
}

func BenchmarkFig8AccumulatedCost4x4(b *testing.B) { benchFig8(b, 4) }
func BenchmarkFig8AccumulatedCost8x8(b *testing.B) { benchFig8(b, 8) }

func benchFig8(b *testing.B, side int) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunFig8(side, side, 10, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Total[faircache.AlgorithmContention]/last.Total[faircache.AlgorithmApprox], "cont/appx-at-10-chunks")
		}
	}
}

func BenchmarkFig9PerChunkCost4x4(b *testing.B) { benchFig9(b, 4) }
func BenchmarkFig9PerChunkCost6x6(b *testing.B) { benchFig9(b, 6) }

func benchFig9(b *testing.B, side int) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		fig, err := eval.RunFig9(side, side, 10, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			xs := fig.PerChunk[faircache.AlgorithmApprox]
			lo, hi := xs[0], xs[0]
			for _, x := range xs {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
			b.ReportMetric(hi-lo, "appx-per-chunk-spread")
		}
	}
}

func BenchmarkTable2MessageCounts(b *testing.B) {
	sc := benchScenario()
	for i := 0; i < b.N; i++ {
		tab, err := eval.RunTable2(6, 6, sc)
		if err != nil {
			b.Fatal(err)
		}
		if !tab.WithinBound {
			b.Fatalf("message bound violated: %d > %d", tab.Total, tab.Bound)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(tab.Total), "messages")
		}
	}
}

// --- Ablation benches for the DESIGN.md design choices. ---

// BenchmarkAblationAlphaStep sweeps U_α: a large step terminates faster
// but can pick fewer caching nodes (Sec. IV-B trade-off).
func BenchmarkAblationAlphaStep(b *testing.B) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, step := range []float64{0.5, 1, 2, 4} {
		b.Run(stepName(step), func(b *testing.B) {
			var lastGini float64
			for i := 0; i < b.N; i++ {
				res, err := runAlg(faircache.AlgorithmApprox, topo, 9, 5, &faircache.Options{AlphaStep: step, GammaStep: 2.5 * step})
				if err != nil {
					b.Fatal(err)
				}
				lastGini = res.Gini()
			}
			b.ReportMetric(lastGini, "gini")
		})
	}
}

// BenchmarkAblationSpanQuorum sweeps M: the SPAN quorum gates how many
// caches open per chunk.
func BenchmarkAblationSpanQuorum(b *testing.B) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []int{1, 2, 3, 4} {
		b.Run(quorumName(m), func(b *testing.B) {
			var distinct int
			for i := 0; i < b.N; i++ {
				res, err := runAlg(faircache.AlgorithmApprox, topo, 9, 5, &faircache.Options{SpanQuorum: m})
				if err != nil {
					b.Fatal(err)
				}
				distinct = res.DistinctCacheNodes()
			}
			b.ReportMetric(float64(distinct), "distinct-caches")
		})
	}
}

// BenchmarkAblationFairnessWeight compares the full objective against the
// contention-only ablation (fairness weight 0).
func BenchmarkAblationFairnessWeight(b *testing.B) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []float64{-1, 1, 4} { // -1 requests weight 0
		b.Run(weightName(w), func(b *testing.B) {
			var gini float64
			for i := 0; i < b.N; i++ {
				res, err := runAlg(faircache.AlgorithmApprox, topo, 9, 5, &faircache.Options{FairnessWeight: w})
				if err != nil {
					b.Fatal(err)
				}
				gini = res.Gini()
			}
			b.ReportMetric(gini, "gini")
		})
	}
}

func stepName(step float64) string {
	switch step {
	case 0.5:
		return "U=0.5"
	case 1:
		return "U=1"
	case 2:
		return "U=2"
	default:
		return "U=4"
	}
}

func quorumName(m int) string {
	return "M=" + string(rune('0'+m))
}

func weightName(w float64) string {
	switch {
	case w < 0:
		return "w=0"
	case w == 1:
		return "w=1"
	default:
		return "w=4"
	}
}

// BenchmarkAblationGreedyVsPrimalDual compares the guaranteed primal-dual
// ConFL solver against the greedy heuristic (related work [23]) on the
// paper's 6×6 scenario.
func BenchmarkAblationGreedyVsPrimalDual(b *testing.B) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, greedy := range []bool{false, true} {
		name := "primal-dual"
		if greedy {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			var cost, gini float64
			for i := 0; i < b.N; i++ {
				res, err := runAlg(faircache.AlgorithmApprox, topo, 9, 5, &faircache.Options{GreedyConFL: greedy})
				if err != nil {
					b.Fatal(err)
				}
				report, err := res.ContentionCost()
				if err != nil {
					b.Fatal(err)
				}
				cost, gini = report.Total(), res.Gini()
			}
			b.ReportMetric(cost, "contention")
			b.ReportMetric(gini, "gini")
		})
	}
}

// BenchmarkAdaptReplay replays a 100k-request Zipf trace through the
// adaptive demand subsystem (seed, serve, periodic adaptation passes) on
// a 9×9 grid — the evaluation's CI-scale scenario. The reported hit-rate
// metric tracks the policy's steady-state quality alongside its cost.
func BenchmarkAdaptReplay(b *testing.B) {
	sc := eval.AdaptiveScenario{
		Rows: 9, Cols: 9,
		Chunks:     48,
		Requests:   100_000,
		AdaptEvery: 5_000,
		DriftEvery: -1,
	}
	var hitRate float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunAdaptive(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "adaptive" {
				hitRate = r.HitRate
			}
		}
	}
	b.ReportMetric(hitRate, "hit-rate")
	b.ReportMetric(float64(sc.Requests*3)/float64(b.Elapsed().Seconds()*float64(b.N)+1e-9)/1e6, "Mreq/s")
}
