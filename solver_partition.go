package faircache

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/pool"
	"repro/internal/trace"
)

// partitionPlan is one memoised decomposition of the solver's topology:
// the cut itself plus, per region, a canonical engine (owning the region's
// path cache) and a lazily built empty-state base cost model. Plans live
// for the solver's lifetime, so repeated sharded solves at the same region
// count skip both the cut and the per-region matrix builds.
type partitionPlan struct {
	part    *partition.Partition
	solvers []*core.Solver

	// mu guards bases' one-time construction; after that the models are
	// read-only (solves fork them) and may be read without the lock.
	mu    sync.Mutex
	bases []*costmodel.Model
}

// partitionPlan returns the solver's cached plan for a region count,
// cutting the topology on first use.
func (s *Solver) partitionPlan(regions int) (*partitionPlan, error) {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	if plan, ok := s.plans[regions]; ok {
		return plan, nil
	}
	part, err := partition.New(s.topo.g, partition.Options{
		Regions:  regions,
		GridRows: s.topo.gridRows,
		GridCols: s.topo.gridCols,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadArgument, err)
	}
	plan := &partitionPlan{part: part}
	for r, reg := range part.Regions {
		copts := core.DefaultOptions()
		copts.Workers = -1
		engine, err := core.New(reg.Sub, copts)
		if err != nil {
			return nil, fmt.Errorf("faircache: region %d: %w", r, err)
		}
		plan.solvers = append(plan.solvers, engine)
	}
	if s.plans == nil {
		s.plans = make(map[int]*partitionPlan)
	}
	s.plans[regions] = plan
	s.mu.Lock()
	s.stats.PartitionPlans++
	s.mu.Unlock()
	return plan, nil
}

// ensureBases builds every region's empty-state base model once, fanned
// out over the pool. As with Solver.baseModel, empty-state weights depend
// only on node degrees, so one base per region serves every capacity,
// battery and weight configuration through warm forks. Reports whether
// this call did the build (the cold path).
func (p *partitionPlan) ensureBases(ctx context.Context, pl *pool.Pool) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.bases != nil {
		return false, nil
	}
	bases := make([]*costmodel.Model, len(p.part.Regions))
	err := pl.ForEachErr(ctx, len(bases), func(r int) error {
		reg := p.part.Regions[r]
		st := cache.NewState(reg.Sub.NumNodes(), 1)
		m, err := costmodel.New(reg.Sub, p.solvers[r].PathCache(), st, costmodel.Options{FairnessWeight: 1})
		if err != nil {
			return err
		}
		if err := m.RefreshCtx(ctx, nil); err != nil {
			return err
		}
		bases[r] = m
		return nil
	})
	if err != nil {
		return false, err
	}
	p.bases = bases
	return true, nil
}

// regionProducers picks every region's local producer id: the region
// holding the global producer uses it, every other region uses its
// gateway — the member nearest the producer on the full topology (lowest
// id on ties), where producer traffic enters the region. A gateway acts
// as the region's data source and, like any producer, never caches.
func regionProducers(g *graph.Graph, part *partition.Partition, producer int) []int {
	hops := g.HopDistances(producer)
	out := make([]int, len(part.Regions))
	for r, reg := range part.Regions {
		best := 0
		for li, v := range reg.Nodes {
			if hops[v] < hops[reg.Nodes[best]] {
				best = li
			}
		}
		out[r] = best
	}
	return out
}

// regionState slices a request's capacities and battery levels down to
// one region's members.
func regionState(reg partition.Region, o Options) *cache.State {
	n := len(reg.Nodes)
	var st *cache.State
	if len(o.Capacities) > 0 {
		caps := make([]int, n)
		for i, v := range reg.Nodes {
			caps[i] = o.Capacity
			if v < len(o.Capacities) {
				caps[i] = o.Capacities[v]
			}
		}
		st = cache.NewStateWithCapacities(caps)
	} else {
		st = cache.NewState(n, o.Capacity)
	}
	for i, v := range reg.Nodes {
		if v < len(o.BatteryLevels) {
			st.SetBattery(i, o.BatteryLevels[v])
		}
	}
	return st
}

// solvePartitioned runs the sharded variant of the centralized
// approximation: cut (memoised) → per-region Algorithm 1 in parallel →
// boundary stitch. Regions solve against their own warm-forked cost
// models, so no O(N²) structure over the full topology is ever built on
// this path.
func (s *Solver) solvePartitioned(ctx context.Context, req Request, o Options, sp *trace.Span) (*Result, error) {
	halo := o.Partition.Halo
	switch {
	case halo == 0:
		halo = DefaultPartitionHalo
	case halo < 0:
		halo = 0
	}
	plan, err := s.partitionPlan(o.Partition.Regions)
	if err != nil {
		return nil, err
	}
	part := plan.part

	pl := pool.New(pool.Normalize(o.Workers))
	defer pl.Close()
	bsp := sp.Child("partition.bases")
	built, err := plan.ensureBases(ctx, pl)
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}
	if built {
		bsp.SetInt("cold", 1)
		bsp.SetInt("regions", int64(len(part.Regions)))
	}
	bsp.End()

	// The fan-out is across regions; inside each region the engine runs
	// its sequential reference path (nesting a ForEach on the same pool
	// would deadlock, and the region fan-out is where the parallelism
	// is). Slot writes keep the outcome byte-identical at any width.
	coreOpts := coreOptions(o)
	coreOpts.Workers = -1
	coreOpts.ChunkStarted = nil // regions run concurrently; see Options
	// Concurrent region solves each check an arena out of the solver-owned
	// pool (PlaceModelCtx gets/puts one per call), so sharing it is safe.
	coreOpts.Scratch = s.scratch
	producers := regionProducers(s.topo.g, part, req.Producer)
	placements := make([]*core.Placement, len(part.Regions))
	err = pl.ForEachErr(ctx, len(part.Regions), func(r int) error {
		rsp := sp.Child("partition.region")
		rsp.SetInt("region", int64(r))
		rsp.SetInt("nodes", int64(len(part.Regions[r].Nodes)))
		defer rsp.End()
		ropts := coreOpts
		ropts.Parent = rsp
		engine, err := plan.solvers[r].Reconfigure(ropts)
		if err != nil {
			return err
		}
		m, err := plan.bases[r].ForkCtx(ctx, nil, regionState(part.Regions[r], o), costmodel.Options{
			FairnessWeight: coreOpts.FairnessWeight,
			BatteryWeight:  coreOpts.BatteryWeight,
		})
		if err != nil {
			return err
		}
		p, err := engine.PlaceModelCtx(ctx, producers[r], req.Chunks, m)
		if err != nil {
			return fmt.Errorf("region %d: %w", r, err)
		}
		placements[r] = p
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("faircache: %w", err)
	}

	// Union the per-region holder sets in original ids and calibrate the
	// per-copy charge from the regions' own decision-time costs: the
	// average fairness + dissemination price one committed copy paid.
	merged := make([][]int, req.Chunks)
	var chargeSum float64
	copies := 0
	for r, p := range placements {
		nodes := part.Regions[r].Nodes
		for _, cres := range p.Chunks {
			chargeSum += cres.Fairness + cres.Dissemination
			for _, li := range cres.CacheNodes {
				merged[cres.Chunk] = append(merged[cres.Chunk], nodes[li])
			}
		}
	}
	for n := range merged {
		slices.Sort(merged[n])
		copies += len(merged[n])
	}
	copyCharge := 0.0
	if copies > 0 {
		copyCharge = chargeSum / float64(copies)
	}
	weights := make([]float64, s.topo.g.NumNodes())
	for v := range weights {
		weights[v] = float64(s.topo.g.Degree(v))
	}
	ssp := sp.Child("partition.stitch")
	stitched, stitchStats := part.Stitch(merged, partition.StitchOptions{
		Producer:   req.Producer,
		Halo:       halo,
		CopyCharge: copyCharge,
		Weights:    weights,
	})
	ssp.SetInt("haloNodes", int64(stitchStats.HaloNodes))
	ssp.SetInt("rebids", int64(stitchStats.Candidates))
	ssp.SetInt("dropped", int64(stitchStats.Dropped))
	ssp.End()

	st := newState(s.topo, o)
	base := st.Clone()
	for n, holders := range stitched {
		for _, v := range holders {
			if err := st.Store(v, n); err != nil {
				return nil, fmt.Errorf("faircache: stitched placement: %w", err)
			}
		}
	}

	minNodes, maxNodes, matrixCells := len(part.Regions[0].Nodes), 0, 0
	for r, reg := range part.Regions {
		if len(reg.Nodes) < minNodes {
			minNodes = len(reg.Nodes)
		}
		if len(reg.Nodes) > maxNodes {
			maxNodes = len(reg.Nodes)
		}
		matrixCells += plan.bases[r].MatrixCells()
	}
	res := newResult(s.topo, AlgorithmApprox, req.Producer, req.Chunks, o.Capacity, stitched, st, base, metrics.AccessCostNearest)
	res.Partition = &PartitionReport{
		Regions:         len(part.Regions),
		MinRegionNodes:  minNodes,
		MaxRegionNodes:  maxNodes,
		CutEdges:        len(part.CutEdges),
		BoundaryNodes:   len(part.Boundary),
		Halo:            halo,
		HaloNodes:       stitchStats.HaloNodes,
		RebidCandidates: stitchStats.Candidates,
		DroppedCopies:   stitchStats.Dropped,
		MatrixCells:     matrixCells,
		FullMatrixCells: s.topo.g.NumNodes() * s.topo.g.NumNodes(),
	}
	s.mu.Lock()
	s.stats.PartitionedSolves++
	if built {
		s.stats.ColdBuilds++
	} else {
		s.stats.WarmSolves++
	}
	s.mu.Unlock()
	return res, nil
}
