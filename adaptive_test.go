package faircache_test

import (
	"context"
	"errors"
	"testing"

	faircache "repro"
	"repro/internal/sim"
)

func newAdaptive(t *testing.T, opts *faircache.AdaptiveOptions) *faircache.AdaptiveSystem {
	t.Helper()
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	s, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.NewAdaptive(context.Background(), 0, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdaptiveSeedAndReport(t *testing.T) {
	a := newAdaptive(t, &faircache.AdaptiveOptions{Capacity: 3})
	if a.Chunks() != 16 || a.Producer() != 0 {
		t.Fatalf("identity drifted: chunks %d producer %d", a.Chunks(), a.Producer())
	}
	seeded := 0
	for k := 0; k < a.Chunks(); k++ {
		seeded += len(a.Holders(k))
	}
	if seeded == 0 {
		t.Fatal("seeding placed nothing")
	}
	tr, err := sim.NewTrace(sim.TraceSpec{Nodes: 36, Chunks: 16, Seed: 1, Exclude: 0})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]faircache.RequestEvent, 2000)
	for i := range events {
		r := tr.Next()
		events[i] = faircache.RequestEvent{Node: r.Node, Chunk: r.Chunk}
	}
	batch, err := a.Report(events)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Requests != 2000 {
		t.Fatalf("batch.Requests = %d", batch.Requests)
	}
	if batch.LocalHits > batch.CacheHits || batch.CacheHits > batch.Requests {
		t.Fatalf("batch accounting inconsistent: %+v", batch)
	}
	st := a.Stats()
	if st.Requests != 2000 || st.HitRate != float64(st.LocalHits)/2000 {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.Eviction != "cost" {
		t.Fatalf("default eviction = %q, want cost", st.Eviction)
	}
	if _, err := a.Report([]faircache.RequestEvent{{Node: 99, Chunk: 0}}); err == nil {
		t.Fatal("out-of-range node: want error")
	}
}

func TestAdaptiveAdaptImprovesHitRate(t *testing.T) {
	a := newAdaptive(t, &faircache.AdaptiveOptions{Capacity: 3, TopDelta: 6, CopyBudget: 18})
	spec := sim.TraceSpec{Nodes: 36, Chunks: 16, Seed: 7, ZipfS: 1.1, Exclude: 0}
	tr, err := sim.NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(n int) faircache.BatchResult {
		events := make([]faircache.RequestEvent, n)
		for i := range events {
			r := tr.Next()
			events[i] = faircache.RequestEvent{Node: r.Node, Chunk: r.Chunk}
		}
		b, err := a.Report(events)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	before := feed(10000)
	for i := 0; i < 4; i++ {
		if _, err := a.Adapt(context.Background()); err != nil {
			t.Fatal(err)
		}
		feed(5000)
	}
	if _, err := a.Adapt(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := feed(10000)
	rBefore := float64(before.LocalHits) / float64(before.Requests)
	rAfter := float64(after.LocalHits) / float64(after.Requests)
	if rAfter <= rBefore {
		t.Fatalf("adaptation did not improve hit rate: %.4f -> %.4f", rBefore, rAfter)
	}
	st := a.Stats()
	if st.Adaptations != 5 {
		t.Fatalf("Adaptations = %d, want 5", st.Adaptations)
	}
	if st.Gini < 0 || st.Gini > 1 {
		t.Fatalf("Gini = %v out of range", st.Gini)
	}
}

func TestAdaptiveEvictionSelection(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "cost"} {
		a := newAdaptive(t, &faircache.AdaptiveOptions{Capacity: 2, Eviction: name})
		if got := a.Stats().Eviction; got != name {
			t.Fatalf("eviction = %q, want %q", got, name)
		}
	}
	topo, err := faircache.Grid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewAdaptive(context.Background(), 0, 4, &faircache.AdaptiveOptions{Eviction: "fifo"}); !errors.Is(err, faircache.ErrBadArgument) {
		t.Fatalf("unknown strategy: err = %v, want ErrBadArgument", err)
	}
	if _, err := s.NewAdaptive(context.Background(), 99, 4, nil); err == nil {
		t.Fatal("bad producer: want error")
	}
}

func TestAdaptiveWarmForksBaseModel(t *testing.T) {
	topo, err := faircache.Grid(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := faircache.NewSolver(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.NewAdaptive(context.Background(), 0, 8, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.ColdBuilds != 1 {
		t.Fatalf("ColdBuilds = %d, want 1 (adaptive systems should warm-fork)", st.ColdBuilds)
	}
	if st.WarmSolves < 2 {
		t.Fatalf("WarmSolves = %d, want >= 2", st.WarmSolves)
	}
}
