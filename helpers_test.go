package faircache_test

import (
	"context"

	faircache "repro"
)

// runAlg runs one positional solve through the Solver API — the shim the
// removed deprecated wrappers (Approximate, Distribute, ...) used to
// provide. Tests keep their terse call shape; the library keeps a single
// public entry point.
func runAlg(alg faircache.Algorithm, t *faircache.Topology, producer, chunks int, opts *faircache.Options) (*faircache.Result, error) {
	s, err := faircache.NewSolver(t)
	if err != nil {
		return nil, err
	}
	return s.Solve(context.Background(), faircache.Request{
		Producer:  producer,
		Chunks:    chunks,
		Algorithm: alg,
		Options:   opts,
	})
}
