package faircache_test

import (
	"math"
	"testing"

	faircache "repro"
)

// TestHeadlineRegression pins the reproduced headline numbers of the 6×6
// scenario (README / EXPERIMENTS.md) within loose tolerances, guarding the
// calibration against accidental drift. The placement algorithms are
// deterministic, so exact equality would also hold — the tolerances leave
// room for intentional re-tuning without masking sign flips.
func TestHeadlineRegression(t *testing.T) {
	topo, err := faircache.Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	type expect struct {
		run        func() (*faircache.Result, error)
		gini       float64 // ± 0.15
		fairness75 float64 // ± 0.15
		total      float64 // ± 25%
	}
	cases := map[string]expect{
		"Appx": {
			run:  func() (*faircache.Result, error) { return runAlg(faircache.AlgorithmApprox, topo, 9, 5, nil) },
			gini: 0.30, fairness75: 0.58, total: 2618,
		},
		"Dist": {
			run:  func() (*faircache.Result, error) { return runAlg(faircache.AlgorithmDistributed, topo, 9, 5, nil) },
			gini: 0.40, fairness75: 0.50, total: 2515,
		},
		"Hopc": {
			run:  func() (*faircache.Result, error) { return runAlg(faircache.AlgorithmHopCount, topo, 9, 5, nil) },
			gini: 0.97, fairness75: 0.03, total: 3605,
		},
		"Cont": {
			run:  func() (*faircache.Result, error) { return runAlg(faircache.AlgorithmContention, topo, 9, 5, nil) },
			gini: 0.72, fairness75: 0.22, total: 3695,
		},
	}
	for name, want := range cases {
		res, err := want.run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.Gini(); math.Abs(got-want.gini) > 0.15 {
			t.Errorf("%s gini = %.3f, expected %.3f ± 0.15", name, got, want.gini)
		}
		pf, err := res.PercentileFairness(75)
		if err != nil {
			t.Fatalf("%s percentile: %v", name, err)
		}
		if math.Abs(pf-want.fairness75) > 0.15 {
			t.Errorf("%s fairness75 = %.3f, expected %.3f ± 0.15", name, pf, want.fairness75)
		}
		cost, err := res.ContentionCost()
		if err != nil {
			t.Fatalf("%s cost: %v", name, err)
		}
		if got := cost.Total(); got < 0.75*want.total || got > 1.25*want.total {
			t.Errorf("%s total cost = %.0f, expected %.0f ± 25%%", name, got, want.total)
		}
	}
}
