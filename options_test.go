package faircache

import (
	"errors"
	"reflect"
	"testing"
)

// TestWithDefaultsNil covers the nil-receiver path: every field lands on
// the paper's defaults.
func TestWithDefaultsNil(t *testing.T) {
	var o *Options
	got := o.withDefaults()
	if got.Capacity != 5 {
		t.Errorf("Capacity = %d, want 5", got.Capacity)
	}
	if got.FairnessWeight != 1 {
		t.Errorf("FairnessWeight = %f, want 1", got.FairnessWeight)
	}
	if got.HopLimit != 2 {
		t.Errorf("HopLimit = %d, want 2", got.HopLimit)
	}
	if got.Capacities != nil || got.BatteryLevels != nil {
		t.Errorf("nil options produced non-nil slices: %+v", got)
	}
}

// TestWithDefaultsCapacityFallback covers the zero- and negative-capacity
// branches: both fall back to the paper's 5.
func TestWithDefaultsCapacityFallback(t *testing.T) {
	for _, capacity := range []int{0, -3} {
		got := (&Options{Capacity: capacity}).withDefaults()
		if got.Capacity != 5 {
			t.Errorf("Capacity %d -> %d, want fallback 5", capacity, got.Capacity)
		}
	}
	got := (&Options{Capacity: 9}).withDefaults()
	if got.Capacity != 9 {
		t.Errorf("Capacity 9 -> %d, want 9 kept", got.Capacity)
	}
}

// TestWithDefaultsFairnessWeightClamp covers the FairnessWeight branches:
// zero selects the default 1, negative requests the contention-only
// ablation and is clamped to 0, positive passes through.
func TestWithDefaultsFairnessWeightClamp(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
	}{
		{0, 1},
		{-1, 0},
		{-0.5, 0},
		{2.5, 2.5},
	}
	for _, tc := range cases {
		got := (&Options{FairnessWeight: tc.in}).withDefaults()
		if got.FairnessWeight != tc.want {
			t.Errorf("FairnessWeight %f -> %f, want %f", tc.in, got.FairnessWeight, tc.want)
		}
	}
}

// TestWithDefaultsCapacitiesPassthrough: heterogeneous capacities pass
// through untouched and coexist with the scalar default.
func TestWithDefaultsCapacitiesPassthrough(t *testing.T) {
	caps := []int{1, 2, 3}
	got := (&Options{Capacities: caps}).withDefaults()
	if !reflect.DeepEqual(got.Capacities, caps) {
		t.Errorf("Capacities = %v, want %v", got.Capacities, caps)
	}
	if got.Capacity != 5 {
		t.Errorf("scalar Capacity = %d, want default 5 alongside Capacities", got.Capacity)
	}
}

// TestWithDefaultsMiscBranches covers the remaining conditional copies.
func TestWithDefaultsMiscBranches(t *testing.T) {
	got := (&Options{HopLimit: -1}).withDefaults()
	if got.HopLimit != 2 {
		t.Errorf("HopLimit -1 -> %d, want default 2", got.HopLimit)
	}
	got = (&Options{HopLimit: 4}).withDefaults()
	if got.HopLimit != 4 {
		t.Errorf("HopLimit 4 -> %d, want 4", got.HopLimit)
	}
	got = (&Options{BatteryWeight: -2}).withDefaults()
	if got.BatteryWeight != 0 {
		t.Errorf("BatteryWeight -2 -> %f, want clamp to 0 (disabled)", got.BatteryWeight)
	}
	got = (&Options{ChunkTTL: -1, GreedyConFL: true, ImproveSteiner: true}).withDefaults()
	if got.ChunkTTL != -1 || !got.GreedyConFL || !got.ImproveSteiner {
		t.Errorf("passthrough fields lost: %+v", got)
	}
}

// TestOnlineTTLNeverExpire: ChunkTTL = -1 maps to "never expire" — no
// publication ever evicts, and every chunk stays live and locatable.
func TestOnlineTTLNeverExpire(t *testing.T) {
	topo, err := Grid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewOnline(topo, 9, &Options{Capacity: 3, ChunkTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	const pubs = 6
	for i := 0; i < pubs; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if len(pub.Expired) != 0 {
			t.Fatalf("publish %d evicted %v with never-expire TTL", i, pub.Expired)
		}
		if len(pub.CacheNodes) == 0 {
			t.Fatalf("publish %d placed no copies", i)
		}
	}
	live := sys.Live()
	if len(live) != pubs {
		t.Fatalf("Live() = %v, want all %d chunks live", live, pubs)
	}
	for chunk := 0; chunk < pubs; chunk++ {
		if len(sys.Holders(chunk)) == 0 {
			t.Errorf("chunk %d has no holders under never-expire TTL", chunk)
		}
	}
	snap := sys.Snapshot()
	if snap.Clock != pubs || snap.Published != pubs || len(snap.Holders) != pubs {
		t.Fatalf("snapshot %+v, want clock=published=%d with %d live chunks", snap, pubs, pubs)
	}
}

// TestOnlineTTLImmediateExpiry: ChunkTTL = 1 means a chunk published at
// time t is evicted before the publication at t+1 — exactly one chunk is
// ever live.
func TestOnlineTTLImmediateExpiry(t *testing.T) {
	topo, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewOnline(topo, 4, &Options{Capacity: 3, ChunkTTL: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pub, err := sys.Publish()
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if i == 0 {
			if len(pub.Expired) != 0 {
				t.Fatalf("first publication expired %v", pub.Expired)
			}
		} else if !reflect.DeepEqual(pub.Expired, []int{i - 1}) {
			t.Fatalf("publish %d expired %v, want [%d]", i, pub.Expired, i-1)
		}
		live := sys.Live()
		if !reflect.DeepEqual(live, []int{i}) {
			t.Fatalf("after publish %d, Live() = %v, want [%d]", i, live, i)
		}
	}
	// Expired chunks hold nothing; the latest does.
	if n := len(sys.Holders(0)); n != 0 {
		t.Errorf("expired chunk 0 still has %d holders", n)
	}
	if len(sys.Holders(3)) == 0 {
		t.Error("latest chunk has no holders")
	}
}

// TestNewOnlineValidatesCapacity: a negative capacity is rejected with
// the library's typed argument error instead of being silently defaulted.
func TestNewOnlineValidatesCapacity(t *testing.T) {
	topo, err := Grid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnline(topo, 0, &Options{Capacity: -1}); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("NewOnline(capacity=-1) error = %v, want ErrBadArgument", err)
	}
}

// TestTopologyHopDistances covers the façade's BFS export hook.
func TestTopologyHopDistances(t *testing.T) {
	topo, err := Grid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := topo.HopDistances(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 1, 2, 3} // row-major 2x3 grid from corner 0
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("HopDistances(0) = %v, want %v", dist, want)
	}
	if _, err := topo.HopDistances(-1); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("HopDistances(-1) error = %v, want ErrBadArgument", err)
	}
	if _, err := topo.HopDistances(6); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("HopDistances(6) error = %v, want ErrBadArgument", err)
	}
}
