package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// buildDaemon compiles the faircached binary into a temp dir once per
// test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "faircached")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port and returns the
// base URL parsed from its "listening on" banner.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, *bufio.Scanner, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(10 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "faircached: listening on "); ok {
			return cmd, scanner, "http://" + strings.TrimSpace(addr)
		}
		if time.Now().After(deadline) {
			break
		}
	}
	_ = cmd.Process.Kill()
	t.Fatalf("daemon never printed its listen banner (scan err: %v)", scanner.Err())
	return nil, nil, ""
}

// TestEndToEnd starts the daemon, serves /healthz, registers a 4x4 grid,
// solves it, answers a lookup, and shuts down gracefully on SIGINT.
func TestEndToEnd(t *testing.T) {
	bin := buildDaemon(t)
	cmd, scanner, baseURL := startDaemon(t, bin)
	defer func() { _ = cmd.Process.Kill() }()
	client := &http.Client{Timeout: 5 * time.Second}

	// Health.
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz: status %q err %v", health.Status, err)
	}
	resp.Body.Close()

	// Register a 4x4 grid.
	producer := 5
	body, _ := json.Marshal(server.RegisterRequest{Kind: "grid", Rows: 4, Cols: 4, Producer: &producer})
	resp, err = client.Post(baseURL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg server.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	resp.Body.Close()
	if reg.Nodes != 16 || reg.ID == "" {
		t.Fatalf("register response %+v", reg)
	}

	// Solve it.
	body, _ = json.Marshal(server.SolveRequest{Algorithm: "appx", Chunks: 3})
	resp, err = client.Post(baseURL+"/v1/topologies/"+reg.ID+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	var solve server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solve); err != nil {
		t.Fatalf("solve decode: %v", err)
	}
	resp.Body.Close()
	if len(solve.Holders) != 3 || solve.TotalCost <= 0 {
		t.Fatalf("solve response %+v", solve)
	}

	// Answer a lookup from the committed placement.
	resp, err = client.Get(fmt.Sprintf("%s/v1/topologies/%s/lookup?chunk=1&node=15", baseURL, reg.ID))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	var lk server.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lk); err != nil {
		t.Fatalf("lookup decode: %v", err)
	}
	resp.Body.Close()
	if lk.ServedBy < 0 || lk.ServedBy >= 16 || lk.Hops < 0 {
		t.Fatalf("lookup response %+v", lk)
	}
	if !lk.FromProducer {
		found := false
		for _, h := range solve.Holders[1] {
			if h == lk.ServedBy {
				found = true
			}
		}
		if !found {
			t.Fatalf("lookup served by %d, not in holders %v", lk.ServedBy, solve.Holders[1])
		}
	}

	// Graceful SIGINT shutdown.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	sawComplete := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "shutdown complete") {
			sawComplete = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
	}
	if !sawComplete {
		t.Fatal("daemon never reported graceful shutdown")
	}
}

// TestLoadMode runs the self-driving load mode end to end: the daemon
// registers its own grid, drives traffic, prints throughput and exits 0.
func TestLoadMode(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "-load-grid", "4x4", "-load-requests", "60", "-load-workers", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("load mode: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"load mode:", "load done:", "ops/s", "shutdown complete"} {
		if !strings.Contains(text, want) {
			t.Errorf("load-mode output missing %q:\n%s", want, text)
		}
	}
}

func TestParseGrid(t *testing.T) {
	rows, cols, err := parseGrid("4x6")
	if err != nil || rows != 4 || cols != 6 {
		t.Fatalf("parseGrid(4x6) = %d,%d,%v", rows, cols, err)
	}
	for _, bad := range []string{"", "4", "x", "ax2", "2xb"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) should fail", bad)
		}
	}
}
