package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/loadgen"
)

// buildDaemon compiles the faircached binary into a temp dir once per
// test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "faircached")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port and returns the
// base URL parsed from its "listening on" banner.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, *bufio.Scanner, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	scanner := bufio.NewScanner(stdout)
	deadline := time.Now().Add(10 * time.Second)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "faircached: listening on "); ok {
			return cmd, scanner, "http://" + strings.TrimSpace(addr)
		}
		if time.Now().After(deadline) {
			break
		}
	}
	_ = cmd.Process.Kill()
	t.Fatalf("daemon never printed its listen banner (scan err: %v)", scanner.Err())
	return nil, nil, ""
}

// TestEndToEnd starts the daemon, serves /healthz, registers a 4x4 grid,
// solves it, answers a lookup, and shuts down gracefully on SIGINT.
func TestEndToEnd(t *testing.T) {
	bin := buildDaemon(t)
	cmd, scanner, baseURL := startDaemon(t, bin)
	defer func() { _ = cmd.Process.Kill() }()
	client := &http.Client{Timeout: 5 * time.Second}

	// Health.
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz: status %q err %v", health.Status, err)
	}
	resp.Body.Close()

	// Register a 4x4 grid.
	producer := 5
	body, _ := json.Marshal(server.RegisterRequest{Kind: "grid", Rows: 4, Cols: 4, Producer: &producer})
	resp, err = client.Post(baseURL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg server.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	resp.Body.Close()
	if reg.Nodes != 16 || reg.ID == "" {
		t.Fatalf("register response %+v", reg)
	}

	// Solve it.
	body, _ = json.Marshal(server.SolveRequest{Algorithm: "appx", Chunks: 3})
	resp, err = client.Post(baseURL+"/v1/topologies/"+reg.ID+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	var solve server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&solve); err != nil {
		t.Fatalf("solve decode: %v", err)
	}
	resp.Body.Close()
	if len(solve.Holders) != 3 || solve.TotalCost <= 0 {
		t.Fatalf("solve response %+v", solve)
	}

	// Answer a lookup from the committed placement.
	resp, err = client.Get(fmt.Sprintf("%s/v1/topologies/%s/lookup?chunk=1&node=15", baseURL, reg.ID))
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	var lk server.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lk); err != nil {
		t.Fatalf("lookup decode: %v", err)
	}
	resp.Body.Close()
	if lk.ServedBy < 0 || lk.ServedBy >= 16 || lk.Hops < 0 {
		t.Fatalf("lookup response %+v", lk)
	}
	if !lk.FromProducer {
		found := false
		for _, h := range solve.Holders[1] {
			if h == lk.ServedBy {
				found = true
			}
		}
		if !found {
			t.Fatalf("lookup served by %d, not in holders %v", lk.ServedBy, solve.Holders[1])
		}
	}

	// Graceful SIGINT shutdown.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	sawComplete := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "shutdown complete") {
			sawComplete = true
		}
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGINT: %v", err)
	}
	if !sawComplete {
		t.Fatal("daemon never reported graceful shutdown")
	}
}

// TestLoadMode runs the self-driving load mode end to end: the daemon
// registers its own grid, drives traffic, prints throughput and exits 0.
func TestLoadMode(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "-load-grid", "4x4", "-load-requests", "60", "-load-workers", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("load mode: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"load mode:", "load done:", "ops/s", "shutdown complete"} {
		if !strings.Contains(text, want) {
			t.Errorf("load-mode output missing %q:\n%s", want, text)
		}
	}
}

// TestCrashRecovery is the durability end-to-end test: a daemon with
// -data-dir takes a register, a solve and 20+ publications (the last
// stretch from the concurrent load generator), dies on SIGKILL
// mid-stream, and a restart on the same dir must answer /report and
// /lookup exactly as the write-ahead log says the last fsynced commit
// did. The expected state is derived from the WAL through
// server.LoadWALState — an independent decode path, not the server's
// own recovery code.
func TestCrashRecovery(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	cmd, _, baseURL := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	defer func() { _ = cmd.Process.Kill() }()
	client := &http.Client{Timeout: 5 * time.Second}

	producer := 5
	body, _ := json.Marshal(server.RegisterRequest{Kind: "grid", Rows: 4, Cols: 4, Producer: &producer})
	resp, err := client.Post(baseURL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg server.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil || reg.ID == "" {
		t.Fatalf("register: %+v err %v", reg, err)
	}
	resp.Body.Close()

	body, _ = json.Marshal(server.SolveRequest{Algorithm: "appx", Chunks: 3})
	resp, err = client.Post(baseURL+"/v1/topologies/"+reg.ID+"/solve", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %v (status %v)", err, resp.Status)
	}
	resp.Body.Close()

	// 20 acknowledged publications, then the load generator keeps the
	// mutation stream hot so SIGKILL lands mid-traffic.
	for i := 0; i < 20; i++ {
		resp, err = client.Post(baseURL+"/v1/topologies/"+reg.ID+"/publish", "application/json", nil)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("publish %d: %v (status %v)", i, err, resp.Status)
		}
		resp.Body.Close()
	}
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		// The generator dies with the daemon; any error is expected.
		_, _ = loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: baseURL, TopologyID: reg.ID, Requests: 100000, Workers: 4,
		})
	}()
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()
	<-loadDone

	// What does the log say survived? Every acknowledged response was
	// fsynced first, so this is at least the state the client saw.
	st, err := server.LoadWALState(dataDir)
	if err != nil {
		t.Fatalf("LoadWALState: %v", err)
	}
	var want *server.WALTopology
	for i := range st.Topologies {
		if st.Topologies[i].ID == reg.ID {
			want = &st.Topologies[i]
		}
	}
	if want == nil || want.Snap == nil {
		t.Fatalf("WAL lost topology %s: %+v", reg.ID, st)
	}
	if want.Clock < 20 {
		t.Fatalf("WAL recorded only %d publications, want >= 20", want.Clock)
	}

	cmd2, scanner2, baseURL2 := startDaemon(t, bin, "-data-dir", dataDir, "-fsync", "always")
	defer func() { _ = cmd2.Process.Kill() }()

	var rep server.ReportResponse
	resp, err = client.Get(baseURL2 + "/v1/topologies/" + reg.ID + "/report")
	if err != nil {
		t.Fatalf("recovered report: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("recovered report decode: %v", err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(rep.Snapshot, want.Snap) {
		t.Errorf("recovered snapshot diverges from the WAL:\n wal    %+v\n server %+v", want.Snap, rep.Snapshot)
	}

	// Lookups answer from the recovered holder sets.
	for chunk := 0; chunk < 3; chunk++ {
		resp, err = client.Get(fmt.Sprintf("%s/v1/topologies/%s/lookup?chunk=%d&node=0", baseURL2, reg.ID, chunk))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered lookup chunk %d: %v (status %v)", chunk, err, resp.Status)
		}
		var lk server.LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lk); err != nil {
			t.Fatalf("recovered lookup decode: %v", err)
		}
		resp.Body.Close()
		if lk.Version != want.Snap.Version {
			t.Errorf("lookup chunk %d answered from v%d, want v%d", chunk, lk.Version, want.Snap.Version)
		}
		if !lk.FromProducer {
			holders := want.Snap.Holders[chunk]
			found := false
			for _, h := range holders {
				if h == lk.ServedBy {
					found = true
				}
			}
			if !found {
				t.Errorf("lookup chunk %d served by %d, not in WAL holders %v", chunk, lk.ServedBy, holders)
			}
		}
	}

	// The clock keeps counting where the log left off.
	resp, err = client.Post(baseURL2+"/v1/topologies/"+reg.ID+"/publish", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery publish: %v (status %v)", err, resp.Status)
	}
	var pub server.PublishResponse
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatalf("post-recovery publish decode: %v", err)
	}
	resp.Body.Close()
	if pub.Clock != want.Snap.Clock+1 || pub.Version != want.Snap.Version+1 {
		t.Errorf("post-recovery publish v%d clock %d, want v%d clock %d",
			pub.Version, pub.Clock, want.Snap.Version+1, want.Snap.Clock+1)
	}

	if err := cmd2.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("SIGINT: %v", err)
	}
	for scanner2.Scan() {
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("recovered daemon exited non-zero: %v", err)
	}
}

// TestInspectMode checks -inspect prints a record listing and the
// folded state without starting a server.
func TestInspectMode(t *testing.T) {
	bin := buildDaemon(t)
	dataDir := t.TempDir()
	cmd, scanner, baseURL := startDaemon(t, bin, "-data-dir", dataDir)
	defer func() { _ = cmd.Process.Kill() }()
	client := &http.Client{Timeout: 5 * time.Second}

	body, _ := json.Marshal(server.RegisterRequest{Kind: "grid", Rows: 3, Cols: 3})
	resp, err := client.Post(baseURL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg server.RegisterResponse
	_ = json.NewDecoder(resp.Body).Decode(&reg)
	resp.Body.Close()
	resp, err = client.Post(baseURL+"/v1/topologies/"+reg.ID+"/publish", "application/json", nil)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	resp.Body.Close()
	_ = cmd.Process.Signal(os.Interrupt)
	for scanner.Scan() {
	}
	_ = cmd.Wait()

	out, err := exec.Command(bin, "-inspect", "-data-dir", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("inspect: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"WAL entries", "register " + reg.ID, "publish  " + reg.ID, "recovered state:", "clock=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("inspect output missing %q:\n%s", want, text)
		}
	}
	// Redacted: the listing must not dump holder sets.
	if strings.Contains(text, "holders") || strings.Contains(text, "Holders") {
		t.Errorf("inspect output leaks holder sets:\n%s", text)
	}

	if out, err := exec.Command(bin, "-inspect").CombinedOutput(); err == nil {
		t.Errorf("-inspect without -data-dir should fail, got:\n%s", out)
	}
}

func TestParseGrid(t *testing.T) {
	rows, cols, err := parseGrid("4x6")
	if err != nil || rows != 4 || cols != 6 {
		t.Fatalf("parseGrid(4x6) = %d,%d,%v", rows, cols, err)
	}
	for _, bad := range []string{"", "4", "x", "ax2", "2xb"} {
		if _, _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) should fail", bad)
		}
	}
}
